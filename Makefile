# Convenience targets for the reproduction repository.

PY ?= python

.PHONY: install test bench bench-full experiments quick-experiments clean

install:
	pip install -e . || $(PY) setup.py develop

test:
	$(PY) -m pytest tests/

test-fast:
	$(PY) -m pytest tests/ -x -q -m "not slow"

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Record-quality bench scale (slow; see EXPERIMENTS.md)
bench-full:
	REPRO_BENCH_BUDGET=30000 REPRO_BENCH_SEEDS=1,2 \
		$(PY) -m pytest benchmarks/ --benchmark-only -s

experiments:
	$(PY) scripts/run_all_experiments.py --budget 30000 --seeds 1 2 \
		--out EXPERIMENTS-data.md

quick-experiments:
	$(PY) scripts/run_all_experiments.py --quick --budget 8000 --seeds 1

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
