"""End-to-end behavioural signatures of each scheduling policy.

These run small two-core systems with an extreme light-vs-hog contrast
and check the *direction* each policy must move latency/IPC — the
distilled versions of the paper's Figures 2 and 4.
"""

import pytest

from repro.config import SystemConfig
from repro.core import make_policy
from repro.sim.runner import run_multicore
from repro.workloads.builder import custom_mix

BUDGET = 6000
WARMUP = 9000
#: mcf (heavy pointer-chaser) next to facerec (light streamer)
MIX = custom_mix("kn")


def run(policy, me_values=None, seed=5):
    return run_multicore(
        MIX, policy, BUDGET, seed=seed, warmup_insts=WARMUP, me_values=me_values
    )


@pytest.fixture(scope="module")
def baseline():
    return run("HF-RF")


class TestLreqBehavior:
    def test_light_core_latency_improves(self, baseline):
        r = run("LREQ")
        # facerec (few pending reads) must not be served worse than under
        # the core-oblivious baseline
        assert (
            r.per_core[1].avg_read_latency
            <= baseline.per_core[1].avg_read_latency * 1.10
        )


class TestMeBehavior:
    def test_priority_follows_me_values(self):
        # give facerec overwhelming ME priority: its latency must be lower
        # than the hog's in the same run
        r = run("ME", me_values=(0.001, 1000.0))
        assert r.per_core[1].avg_read_latency < r.per_core[0].avg_read_latency

    def test_inverted_priorities_invert_latencies(self):
        hi_for_1 = run("ME", me_values=(0.001, 1000.0))
        hi_for_0 = run("ME", me_values=(1000.0, 0.001))
        # flipping the profile must flip the relative treatment
        ratio_a = (
            hi_for_1.per_core[1].avg_read_latency
            / hi_for_1.per_core[0].avg_read_latency
        )
        ratio_b = (
            hi_for_0.per_core[1].avg_read_latency
            / hi_for_0.per_core[0].avg_read_latency
        )
        assert ratio_a < ratio_b


class TestMeLreqBehavior:
    def test_interpolates_between_me_and_lreq(self):
        me = (0.05, 5.0)
        r_me = run("ME", me_values=me)
        r_melreq = run("ME-LREQ", me_values=me)
        # ME-LREQ must not starve the hog as hard as pure fixed ME
        assert (
            r_melreq.per_core[0].avg_read_latency
            <= r_me.per_core[0].avg_read_latency * 1.15
        )

    def test_flat_me_reduces_to_lreq_like(self):
        r_flat = run("ME-LREQ", me_values=(1.0, 1.0))
        r_lreq = run("LREQ")
        # identical ME values leave only the pending term: same ordering
        # drivers, so per-core IPCs land close
        for a, b in zip(r_flat.per_core, r_lreq.per_core):
            assert a.ipc == pytest.approx(b.ipc, rel=0.15)


class TestRoundRobinBehavior:
    def test_bounded_latency_ratio(self):
        r = run("RR")
        lats = [c.avg_read_latency for c in r.per_core]
        # rotation bounds the spread between cores
        assert max(lats) / min(lats) < 2.5


class TestFixedBehavior:
    def test_fix_orders_matter(self):
        a = run("FIX-01")
        b = run("FIX-10")
        # some observable difference must follow from the swapped order
        assert a.ipcs() != b.ipcs()


class TestFcfsBehavior:
    def test_fcfs_runs_and_is_age_fair(self):
        r = run("FCFS")
        assert all(c.ipc > 0 for c in r.per_core)
