"""Tests for the Table 1 configuration dataclasses."""

import pytest

from repro.config import (
    CacheConfig,
    ControllerConfig,
    CoreConfig,
    DramTimingConfig,
    DramTopologyConfig,
    SystemConfig,
)


class TestDefaultsMatchTable1:
    def test_core(self):
        c = CoreConfig()
        assert c.freq_hz == 3.2e9
        assert c.issue_width == 4
        assert c.rob_size == 196
        assert c.data_mshrs == 32
        assert c.inst_mshrs == 8

    def test_caches(self):
        s = SystemConfig()
        assert s.caches.l1d.size_bytes == 64 * 1024
        assert s.caches.l1d.assoc == 2
        assert s.caches.l1d.hit_latency == 3
        assert s.caches.l1i.hit_latency == 1
        assert s.caches.l2.size_bytes == 4 * 1024 * 1024
        assert s.caches.l2.assoc == 4
        assert s.caches.l2.hit_latency == 15
        assert s.line_bytes == 64

    def test_dram_timing(self):
        t = DramTimingConfig()
        assert t.t_rp == t.t_rcd == t.t_cl == 40  # 12.5 ns at 3.2 GHz
        assert t.t_burst == 16  # 64 B over a 16 B/transfer logic channel
        assert t.row_miss_core_latency == 96

    def test_topology(self):
        topo = DramTopologyConfig()
        assert topo.logic_channels == 2
        assert topo.banks_per_channel == 16
        assert topo.total_banks == 32

    def test_controller(self):
        c = ControllerConfig()
        assert c.buffer_entries == 64
        assert c.overhead == 48  # 15 ns
        assert c.write_drain_high == 32  # half the buffer
        assert c.write_drain_low == 16  # a quarter
        assert c.page_policy == "closed"

    def test_system_validates(self):
        assert SystemConfig().validate() is not None


class TestCacheConfig:
    def test_num_sets(self):
        c = CacheConfig(size_bytes=64 * 1024, assoc=2, line_bytes=64)
        assert c.num_sets == 512

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=96 * 1024, assoc=2, line_bytes=64).validate()

    def test_rejects_tiny_cache(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64, assoc=2, line_bytes=64).validate()


class TestValidationErrors:
    def test_zero_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0).validate()

    def test_bad_drain_watermarks(self):
        with pytest.raises(ValueError):
            ControllerConfig(write_drain_high=10, write_drain_low=20).validate()

    def test_bad_page_policy(self):
        with pytest.raises(ValueError):
            ControllerConfig(page_policy="weird").validate()

    def test_bad_topology(self):
        with pytest.raises(ValueError):
            DramTopologyConfig(logic_channels=3).validate()

    def test_priority_table_covers_mshrs(self):
        from dataclasses import replace

        s = SystemConfig()
        bad = replace(s, controller=replace(s.controller, max_pending_per_core=8))
        with pytest.raises(ValueError):
            bad.validate()


class TestWithCores:
    def test_with_cores(self):
        s = SystemConfig(num_cores=4)
        s8 = s.with_cores(8)
        assert s8.num_cores == 8
        assert s.num_cores == 4  # original untouched
        assert s8.caches == s.caches

    def test_summary_mentions_key_facts(self):
        text = SystemConfig().summary()
        assert "4" in text and "GHz" in text and "L2" in text
