"""Tests for request-lifecycle spans and stall attribution.

Covers the PR's acceptance criteria:

* components of every traced span sum *exactly* to its end-to-end
  latency (the conservation invariant), on a deterministic multi-core
  workload;
* span stamps are monotone and the exported Chrome trace is valid
  trace-event JSON with properly nested span slices;
* per-core breakdowns move in the paper-predicted direction between
  HF-RF and ME-LREQ (the high-ME core's buffered-wait share shrinks);
* a run with span tracing enabled is bit-identical to one without.
"""

import json

import pytest

from repro.metrics.memory_efficiency import MeProfiler
from repro.sim.runner import run_multicore
from repro.telemetry import (
    Telemetry,
    attribute,
    decompose,
    format_attribution,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_spans_jsonl,
)
from repro.telemetry.attribution import COMPONENTS, drain_windows
from repro.telemetry.spans import RequestSpan, SpanCollector
from repro.workloads.mixes import workload_by_name

BUDGET = 8000

#: stage stamps in required timeline order
_STAGE_ORDER = (
    "first_attempt", "arrival", "pick", "bank_start", "cas",
    "data_start", "data_end", "done",
)


@pytest.fixture(scope="module")
def traced():
    """One span-traced 4-core run shared by the read-only assertions."""
    tm = Telemetry(sample_every=2000, capture_spans=True, span_sample=4)
    result = run_multicore(
        workload_by_name("4MEM-1"), "HF-RF", inst_budget=BUDGET, seed=1,
        telemetry=tm,
    )
    return tm, result


class TestSpanCollector:
    def test_deterministic_sampling_rate(self):
        c = SpanCollector(sample_every=3)
        traced = [
            c.start_request(0, line, "read", cycle=line) is not None
            for line in range(12)
        ]
        assert traced == [False, False, True] * 4
        assert c.offered == 12

    def test_sample_every_one_traces_everything(self):
        c = SpanCollector(sample_every=1)
        assert all(
            c.start_request(0, i, "read", 0) is not None for i in range(5)
        )

    def test_blocked_stamp_consumed_by_reads_only(self):
        c = SpanCollector(sample_every=1)
        c.note_blocked(0, cycle=10, line=7)
        # A writeback from the same core must not consume the stamp...
        wb = c.start_request(0, 7, "write", 30)
        assert wb.first_attempt == 30
        # ...so the demand read that was actually stalled still gets it.
        rd = c.start_request(0, 7, "read", 40)
        assert rd.first_attempt == 10

    def test_blocked_stamp_keeps_first_cycle(self):
        c = SpanCollector(sample_every=1)
        c.note_blocked(0, cycle=10, line=7)
        c.note_blocked(0, cycle=25, line=7)  # retry: must not advance
        assert c.start_request(0, 7, "read", 40).first_attempt == 10

    def test_merges_count_until_fill_returns(self):
        c = SpanCollector(sample_every=1)
        span = c.start_request(1, 99, "read", 0)
        c.note_merge(1, 99, 5)
        c.finish(span)
        c.note_merge(1, 99, 9)  # between commit and fill delivery
        c.end_inflight(1, 99)
        c.note_merge(1, 99, 12)  # after the fill: no longer merging
        assert span.merged_waiters == 2


class TestConservation:
    def test_components_sum_exactly_to_latency(self, traced):
        tm, _ = traced
        spans = tm.spans.completed
        assert len(spans) > 100, "workload too short to exercise tracing"
        t_cl = tm.spans.timing.t_cl
        windows = drain_windows(tm)
        for s in spans:
            parts = decompose(
                s, t_cl, tm.spans.overhead, windows.get(s.track, ())
            )
            assert sum(parts.values()) == s.latency
            assert all(v >= 0 for v in parts.values())
            assert set(parts) == set(COMPONENTS)

    def test_stamps_monotone(self, traced):
        tm, _ = traced
        for s in tm.spans.completed:
            stamps = [getattr(s, name) for name in _STAGE_ORDER]
            assert stamps == sorted(stamps), f"non-monotone stamps on {s!r}"

    def test_decompose_rejects_incomplete_span(self):
        span = RequestSpan(0, 0x40, "read", 100)
        with pytest.raises(ValueError):
            decompose(span, t_cl=40)

    def test_attribution_report_totals_conserve(self, traced):
        tm, _ = traced
        report = attribute(tm, kind="all")
        assert report.spans_used == report.spans_seen == len(tm.spans.completed)
        total_latency = sum(s.latency for s in tm.spans.completed)
        assert sum(report.totals().values()) == total_latency
        # The rendered table includes every component column.
        text = format_attribution(report)
        for comp in COMPONENTS:
            assert comp in text


class TestExports:
    def test_chrome_trace_spans_parse_and_nest(self, traced, tmp_path):
        tm, _ = traced
        path = tmp_path / "spans.trace.json"
        write_chrome_trace(tm, path)
        with open(path) as f:
            doc = json.load(f)  # must be valid JSON
        span_events = [e for e in doc["traceEvents"] if e.get("cat") == "span"]
        assert span_events, "no span slices in the trace"
        # Per tid: timestamps monotone in emission order (ties allowed)
        # and B/E strictly balanced, never negative depth => proper
        # nesting when the viewer replays them.
        by_tid = {}
        for e in span_events:
            by_tid.setdefault(e["tid"], []).append(e)
        for tid, evs in by_tid.items():
            last_ts = -1.0
            depth = 0
            for e in evs:
                assert e["ts"] >= last_ts
                last_ts = e["ts"]
                depth += 1 if e["ph"] == "B" else -1
                assert depth >= 0
            assert depth == 0, f"unbalanced B/E on tid {tid}"
        assert doc["otherData"]["format"] == "repro-telemetry-v1"

    def test_jsonl_span_records_round_trip(self, traced, tmp_path):
        tm, _ = traced
        path = tmp_path / "run.jsonl"
        write_jsonl(tm, path)
        back = read_jsonl(path)
        assert len(back["spans"]) == len(tm.spans.completed)
        for rec in back["spans"]:
            assert sum(rec["components"].values()) == rec["latency"]
        assert back["header"]["meta"]["run"]["policy"] == "HF-RF"
        assert "config_hash" in back["header"]["meta"]["run"]

    def test_spans_jsonl_artifact(self, traced, tmp_path):
        tm, _ = traced
        path = tmp_path / "spans.jsonl"
        lines = write_spans_jsonl(tm, path)
        assert lines == 1 + len(tm.spans.completed)
        with open(path) as f:
            header = json.loads(f.readline())
        assert header["span_sample_every"] == 4
        assert header["spans_offered"] == tm.spans.offered


class TestBitIdentity:
    def test_spans_do_not_perturb_results(self):
        mix = workload_by_name("2MEM-1")

        def fingerprint(tm):
            r = run_multicore(
                mix, "LREQ", inst_budget=4000, seed=1, telemetry=tm
            )
            return (
                r.end_cycle, r.ipcs(), r.row_hit_rate,
                tuple(c.avg_read_latency for c in r.per_core),
                tuple(c.bw_gbps for c in r.per_core),
            )

        base = fingerprint(None)
        spanned = fingerprint(
            Telemetry(capture_spans=True, span_sample=1)
        )
        assert spanned == base


class TestPolicyDirection:
    def test_me_lreq_cuts_high_me_core_queue_share(self):
        """Paper direction: ME-LREQ prioritises high-ME cores, so the
        highest-ME core's buffered-wait (queue + drain) share of its
        read latency must drop relative to HF-RF."""
        mix = workload_by_name("4MEM-1")
        me = MeProfiler(inst_budget=10_000, seed=1).me_values(mix)
        top = me.index(max(me))

        def queue_share(policy):
            tm = Telemetry(capture_spans=True, span_sample=4)
            run_multicore(
                mix, policy, inst_budget=20_000, seed=1, me_values=me,
                telemetry=tm,
            )
            report = attribute(tm, kind="read")
            return report.core(top).queue_share()

        assert queue_share("ME-LREQ") < queue_share("HF-RF")
