"""Tests for the controller request queues and per-core counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import DramTimingConfig, DramTopologyConfig
from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest
from repro.dram.address import AddressMapper

MAPPER = AddressMapper(DramTopologyConfig(), 64)


def make_req(addr=0, core=0, write=False, t=0):
    r = MemoryRequest(addr=addr, core_id=core, is_write=write, arrival_cycle=t)
    r.coord = MAPPER.decode(addr)
    return r


class TestCapacity:
    def test_empty(self):
        q = RequestQueues(4, 2)
        assert q.occupancy == 0
        assert not q.is_full
        assert q.free_slots == 4

    def test_fills_up(self):
        q = RequestQueues(2, 1)
        q.add(make_req(0))
        q.add(make_req(64))
        assert q.is_full
        with pytest.raises(OverflowError):
            q.add(make_req(128))

    def test_shared_between_reads_and_writes(self):
        q = RequestQueues(2, 1)
        q.add(make_req(0, write=False))
        q.add(make_req(64, write=True))
        assert q.is_full


class TestCounters:
    def test_pending_reads_per_core(self):
        q = RequestQueues(8, 2)
        q.add(make_req(0, core=0))
        q.add(make_req(64, core=0))
        q.add(make_req(128, core=1))
        assert q.pending_reads == [2, 1]
        assert q.pending_writes == [0, 0]

    def test_remove_decrements(self):
        q = RequestQueues(8, 2)
        r = make_req(0, core=1)
        q.add(r)
        q.remove(r)
        assert q.pending_reads == [0, 0]
        assert q.occupancy == 0

    def test_write_counters(self):
        q = RequestQueues(8, 2)
        q.add(make_req(0, core=1, write=True))
        assert q.pending_writes == [0, 1]
        assert q.pending_reads == [0, 0]

    def test_cores_with_reads(self):
        q = RequestQueues(8, 3)
        q.add(make_req(0, core=2))
        assert list(q.cores_with_reads()) == [2]

    def test_bad_core_rejected(self):
        q = RequestQueues(8, 2)
        with pytest.raises(ValueError):
            q.add(make_req(0, core=5))


class TestSequenceNumbers:
    def test_monotone_assignment(self):
        q = RequestQueues(8, 1)
        rs = [make_req(i * 64) for i in range(4)]
        for r in rs:
            q.add(r)
        assert [r.seq for r in rs] == sorted(r.seq for r in rs)
        assert len({r.seq for r in rs}) == 4


class TestChannelViews:
    def test_reads_for_channel(self):
        q = RequestQueues(8, 1)
        r0 = make_req(0)  # channel 0
        r1 = make_req(64)  # channel 1
        q.add(r0)
        q.add(r1)
        assert q.reads_for_channel(0) == [r0]
        assert q.reads_for_channel(1) == [r1]

    def test_any_for_bank(self):
        q = RequestQueues(8, 1)
        r = make_req(0)
        q.add(r)
        c = r.coord
        assert q.any_for_bank(c.channel, c.bank, c.row)
        assert not q.any_for_bank(c.channel, c.bank, c.row + 1)
        q.remove(r)
        assert not q.any_for_bank(c.channel, c.bank, c.row)

    def test_any_for_bank_sees_writes(self):
        q = RequestQueues(8, 1)
        w = make_req(128, write=True)
        q.add(w)
        c = w.coord
        assert q.any_for_bank(c.channel, c.bank, c.row)


class TestPropertyCounters:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # core
                st.booleans(),  # write
                st.integers(min_value=0, max_value=1000),  # line index
            ),
            max_size=32,
        )
    )
    def test_counters_match_queue_contents(self, ops):
        q = RequestQueues(64, 4)
        reqs = []
        for core, write, line in ops:
            r = make_req(line * 64, core=core, write=write)
            q.add(r)
            reqs.append(r)
        for core in range(4):
            assert q.pending_reads[core] == sum(
                1 for r in q.reads if r.core_id == core
            )
            assert q.pending_writes[core] == sum(
                1 for r in q.writes if r.core_id == core
            )
        # removal keeps counters consistent
        for r in reqs:
            q.remove(r)
        assert q.occupancy == 0
        assert q.pending_reads == [0] * 4
        assert q.pending_writes == [0] * 4
