"""Tests for the trace representation."""

import pytest

from repro.cpu.trace import ListTrace, MemOp, TraceSource


class TestMemOp:
    def test_fields(self):
        op = MemOp(gap=3, addr=0x40, is_write=True)
        assert (op.gap, op.addr, op.is_write) == (3, 0x40, True)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemOp(gap=-1, addr=0)
        with pytest.raises(ValueError):
            MemOp(gap=0, addr=-4)

    def test_equality_and_hash(self):
        assert MemOp(1, 64) == MemOp(1, 64)
        assert MemOp(1, 64) != MemOp(1, 64, True)
        assert len({MemOp(1, 64), MemOp(1, 64)}) == 1

    def test_not_equal_other_type(self):
        assert MemOp(1, 64) != "MemOp"


class TestListTrace:
    def test_iteration_and_exhaustion(self):
        ops = [MemOp(0, 0), MemOp(1, 64)]
        t = ListTrace(ops)
        assert t.next_op() == ops[0]
        assert t.next_op() == ops[1]
        assert t.next_op() is None
        assert t.next_op() is None  # stays exhausted

    def test_rewind(self):
        t = ListTrace([MemOp(0, 0)])
        t.next_op()
        t.rewind()
        assert t.next_op() == MemOp(0, 0)

    def test_total_instructions(self):
        t = ListTrace([MemOp(3, 0), MemOp(5, 64)])
        assert t.total_instructions == 10  # 3+1 + 5+1
        assert len(t) == 2

    def test_satisfies_protocol(self):
        assert isinstance(ListTrace([]), TraceSource)
