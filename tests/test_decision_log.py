"""Tests for the scheduling-decision log."""

import pytest

from repro.config import SystemConfig
from repro.controller.decision_log import Decision, DecisionLog
from repro.core import make_policy
from repro.sim.system import MultiCoreSystem
from repro.workloads.mixes import workload_by_name
from repro.workloads.synthetic import make_trace


def run_logged(policy_name="HF-RF", me=None):
    mix = workload_by_name("2MEM-1")
    cfg = SystemConfig(num_cores=2)
    traces = [make_trace(a, 7, "eval", i) for i, a in enumerate(mix.apps())]
    policy = (
        make_policy(policy_name, me_values=me)
        if me is not None
        else make_policy(policy_name)
    )
    sys_ = MultiCoreSystem(cfg, policy, traces, 3000, warmup_insts=8000, seed=7)
    log = DecisionLog.attach(sys_.controller)
    sys_.run()
    return sys_, log


class TestCapture:
    def test_decisions_recorded(self):
        sys_, log = run_logged()
        assert len(log.decisions) > 100
        d = log.decisions[0]
        assert isinstance(d, Decision)
        assert d.core_id in (0, 1)
        assert len(d.pending_reads) == 2
        assert d.num_candidates >= 1

    def test_decision_count_matches_transactions(self):
        sys_, log = run_logged()
        assert len(log.decisions) == sys_.dram.total_transactions


class TestAnalyses:
    def test_service_share_sums_to_one(self):
        sys_, log = run_logged()
        share = log.service_share(2)
        assert sum(share) == pytest.approx(1.0)
        assert all(s > 0 for s in share)

    def test_fcfs_reorders_least(self):
        # FCFS still shows some reordering (the controller's bank-ready
        # eligibility itself skips blocked requests), but it must reorder
        # less than an aggressive priority policy.
        _, fcfs_log = run_logged("FCFS")
        _, lreq_log = run_logged("LREQ")
        assert fcfs_log.reorder_rate() <= lreq_log.reorder_rate()

    def test_priority_policy_reorders(self):
        _, fcfs_log = run_logged("FCFS")
        _, me_log = run_logged("ME", me=(100.0, 0.01))
        assert me_log.reorder_rate() > fcfs_log.reorder_rate()

    def test_fixed_priority_skews_service_share(self):
        _, log = run_logged("ME", me=(100.0, 0.01))
        share = log.service_share(2)
        # core 0 holds absolute priority; it must win at least its
        # proportional share of decisions
        assert share[0] > 0.4

    def test_hit_rate_bounds(self):
        sys_, log = run_logged()
        assert 0.0 <= log.hit_rate() <= 1.0

    def test_mean_run_length_at_least_one(self):
        sys_, log = run_logged()
        assert log.mean_run_length() >= 1.0

    def test_summary_renders(self):
        sys_, log = run_logged()
        text = log.summary(2)
        assert "decisions logged" in text
        assert "service share" in text

    def test_empty_log_defaults(self):
        log = DecisionLog()
        assert log.service_share(2) == (0.0, 0.0)
        assert log.reorder_rate() == 0.0
        assert log.hit_rate() == 0.0
        assert log.mean_run_length() == 0.0
