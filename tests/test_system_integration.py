"""System-level integration tests: invariants that must hold across the
whole stack for any policy, and the online-ME machinery."""

import pytest

from repro.config import SystemConfig
from repro.core import OnlineMeLreqPolicy, make_policy
from repro.sim.system import MultiCoreSystem
from repro.workloads.mixes import workload_by_name
from repro.workloads.synthetic import make_trace

BUDGET = 3000
WARMUP = 8000


def build(mix_name="2MEM-1", policy=None, seed=3, budget=BUDGET):
    mix = workload_by_name(mix_name)
    cfg = SystemConfig(num_cores=mix.num_cores)
    traces = [
        make_trace(a, seed, "eval", i) for i, a in enumerate(mix.apps())
    ]
    pol = policy or make_policy("HF-RF")
    return MultiCoreSystem(cfg, pol, traces, budget, warmup_insts=WARMUP, seed=seed)


class TestConservation:
    def test_every_issued_read_completes(self):
        sys_ = build()
        sys_.run()
        st = sys_.controller.stats
        issued = sum(c.stats.mem_requests for c in sys_.cores)
        served = sum(st.read_count)
        in_queue = len(sys_.controller.queues.reads)
        # every issued demand read was served or is still queued at stop
        assert served + in_queue >= issued

    def test_bytes_match_transactions(self):
        sys_ = build()
        sys_.run()
        st = sys_.controller.stats
        total_lines = sum(st.read_count) + sum(st.write_count)
        total_bytes = sum(st.bytes_read) + sum(st.bytes_written)
        assert total_bytes == total_lines * 64
        assert sys_.dram.total_transactions == total_lines

    def test_dram_hits_plus_activations_cover_transactions(self):
        sys_ = build()
        sys_.run()
        d = sys_.dram
        assert d.total_row_hits + d.total_activations == d.total_transactions


class TestSnapshots:
    def test_warmup_before_finish(self):
        sys_ = build()
        sys_.run()
        for i in range(2):
            assert sys_.start_snapshots[i].cycle <= sys_.snapshots[i].cycle
            win = sys_.window(i)
            assert win.read_count >= 0
            assert win.bytes_total >= 0

    def test_window_before_finish_raises(self):
        sys_ = build()
        with pytest.raises(RuntimeError):
            sys_.window(0)

    def test_end_cycle_is_max_finish(self):
        sys_ = build()
        sys_.run()
        assert sys_.end_cycle == max(c.finish_cycle for c in sys_.cores)


class TestBounds:
    def test_max_events_guard(self):
        sys_ = build(budget=100_000)
        with pytest.raises(RuntimeError):
            sys_.run(max_events=500)

    def test_trace_count_mismatch(self):
        cfg = SystemConfig(num_cores=2)
        with pytest.raises(ValueError):
            MultiCoreSystem(cfg, make_policy("HF-RF"), [], 100)


class TestDeterminismAcrossPolicies:
    @pytest.mark.parametrize("name", ["HF-RF", "RR", "LREQ", "FCFS"])
    def test_two_identical_runs_agree(self, name):
        a = build(policy=make_policy(name))
        b = build(policy=make_policy(name))
        a.run()
        b.run()
        assert [c.finish_cycle for c in a.cores] == [c.finish_cycle for c in b.cores]
        assert a.controller.stats.read_latency_sum == b.controller.stats.read_latency_sum


class TestOnlineMeLreq:
    def test_windows_update_estimates(self):
        pol = OnlineMeLreqPolicy(window=5_000, alpha=0.5)
        sys_ = build("2MEM-1", policy=pol, budget=8000)
        initial = pol.me_values
        sys_.run()
        assert pol.me_values != initial  # estimates moved
        assert all(v > 0 for v in pol.me_values)

    def test_observe_window_zero_traffic_keeps_estimate(self):
        pol = OnlineMeLreqPolicy(num_cores_hint=2, window=1000)
        pol.setup(2, __import__("repro.util.rng", fromlist=["RngStream"]).RngStream(0))
        before = pol.me_values
        pol.observe_window([100, 100], [0, 0], 1000)
        assert pol.me_values == before

    def test_observe_window_blends(self):
        pol = OnlineMeLreqPolicy(num_cores_hint=1, window=1000, alpha=1.0)
        from repro.util.rng import RngStream

        pol.setup(1, RngStream(0))
        # 3200 insts, 64000 bytes over 3200 cycles at 3.2GHz:
        # ipc=1.0, bw = 64000/1e-6s... just verify it's ipc/bw
        pol.observe_window([3200], [64000], 3200)
        from repro.util.units import gbps

        expect = 1.0 / gbps(64000, 3200)
        assert pol.me_values[0] == pytest.approx(expect)

    def test_reset_restores_flat(self):
        pol = OnlineMeLreqPolicy(num_cores_hint=2)
        from repro.util.rng import RngStream

        pol.setup(2, RngStream(0))
        pol.observe_window([10, 10], [640, 640], 100)
        pol.reset()
        assert pol.me_values == (1.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineMeLreqPolicy(window=0)
        with pytest.raises(ValueError):
            OnlineMeLreqPolicy(alpha=0.0)
