"""Tests for the optional DRAM refresh model."""

from dataclasses import replace

import pytest

from repro.config import DramTimingConfig, SystemConfig
from repro.core import make_policy
from repro.cpu.trace import ListTrace, MemOp
from repro.dram.channel import Channel
from repro.dram.refresh import T_REFI, T_RFC, RefreshScheduler
from repro.sim.system import MultiCoreSystem


class TestScheduler:
    def test_constants_scale(self):
        # 7.8 us at 3.2 GHz = 24960 cycles; 127.5 ns = 408 cycles
        assert T_REFI == 24960
        assert T_RFC == 408

    def test_no_refresh_before_first_window(self):
        ch = Channel(0, 4, DramTimingConfig())
        sched = RefreshScheduler(1)
        assert sched.advance(0, ch, 100) == 100
        assert sched.refreshes_issued == 0

    def test_refresh_blocks_channel_and_closes_rows(self):
        timing = DramTimingConfig()
        ch = Channel(0, 4, timing)
        ch.execute(0, row=3, now=0, is_write=False, keep_open=True)
        sched = RefreshScheduler(1, t_refi=1000, t_rfc=100)
        usable = sched.advance(0, ch, 1000)
        assert usable >= 1100
        assert sched.refreshes_issued == 1
        assert all(b.open_row is None for b in ch.banks)
        assert all(b.ready_cycle >= usable for b in ch.banks)

    def test_catches_up_on_overdue_refreshes(self):
        ch = Channel(0, 2, DramTimingConfig())
        sched = RefreshScheduler(1, t_refi=1000, t_rfc=100)
        sched.advance(0, ch, 3500)  # three windows overdue
        assert sched.refreshes_issued == 3
        assert sched.next_refresh(0) == 4000

    def test_channels_staggered(self):
        sched = RefreshScheduler(2, t_refi=1000, t_rfc=100)
        assert sched.next_refresh(0) != sched.next_refresh(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RefreshScheduler(1, t_refi=10, t_rfc=100)


class TestEndToEnd:
    def test_refresh_slows_execution_slightly(self):
        ops = [MemOp(5, (i * 37 % 512) << 13) for i in range(800)]
        results = {}
        for enabled in (False, True):
            cfg = SystemConfig(num_cores=1)
            cfg = replace(
                cfg, controller=replace(cfg.controller, refresh_enabled=enabled)
            )
            sys_ = MultiCoreSystem(
                cfg, make_policy("HF-RF"), [ListTrace(list(ops))], 4000
            )
            sys_.run()
            results[enabled] = sys_.cores[0].finish_cycle
        assert results[True] >= results[False]
        # refresh overhead is small: well under 10 %
        assert results[True] <= results[False] * 1.10
