"""Tests for cycle/time/bandwidth conversions."""

import pytest

from repro.util.units import (
    CPU_FREQ_HZ,
    bytes_per_sec_to_gbps,
    gbps,
    ns_to_cycles,
    seconds,
)


class TestNsToCycles:
    def test_table1_values(self):
        # 12.5 ns at 3.2 GHz = exactly 40 cycles (tRP/tRCD/CL)
        assert ns_to_cycles(12.5) == 40
        # 15 ns controller overhead = 48 cycles
        assert ns_to_cycles(15.0) == 48

    def test_rounds_up(self):
        # 1 ns at 3.2 GHz = 3.2 cycles -> 4 (constraints never shortened)
        assert ns_to_cycles(1.0) == 4

    def test_zero(self):
        assert ns_to_cycles(0.0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ns_to_cycles(-1.0)

    def test_custom_frequency(self):
        assert ns_to_cycles(10.0, freq_hz=1e9) == 10


class TestSeconds:
    def test_one_second_of_cycles(self):
        assert seconds(int(CPU_FREQ_HZ)) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            seconds(-1)


class TestBandwidth:
    def test_bytes_per_sec_conversion(self):
        assert bytes_per_sec_to_gbps(12.8e9) == pytest.approx(12.8)

    def test_gbps_basic(self):
        # 64 bytes every 16 cycles at 3.2 GHz = 12.8 GB/s (one channel's peak)
        assert gbps(64, 16) == pytest.approx(12.8)

    def test_gbps_empty_interval(self):
        assert gbps(100, 0) == 0.0
        assert gbps(0, 100) == 0.0
