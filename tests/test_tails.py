"""Exact nearest-rank tail percentiles: hand-built cases and properties.

The cloud tables stand on these numbers, so the math is pinned the
hard way: hand-computed expectations on tiny sets (ties, n < 100,
single-request streams) plus property tests over random integer
populations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.tails import (
    PERCENTILES,
    TailStats,
    count_violations,
    nearest_rank,
    percentile,
    tail_stats,
)


class TestNearestRank:
    def test_four_values_median(self):
        # rank = ceil(4 * 50/100) = 2 -> second value
        assert nearest_rank([10, 20, 30, 40], 50, 100) == 20

    def test_p99_small_n_is_max(self):
        # rank = ceil(n * 99/100) = n for every n < 100 ...
        for n in (1, 2, 10, 99):
            xs = list(range(1, n + 1))
            assert nearest_rank(xs, 99, 100) == n
        # ... and exactly the 99th (second-to-last) element at n = 100
        assert nearest_rank(list(range(1, 101)), 99, 100) == 99

    def test_p999_below_1000_samples_is_max(self):
        # ceil(999 * 999/1000) = 999: still the max at n = 999 ...
        xs = list(range(999))
        assert nearest_rank(xs, 999, 1000) == 998
        # ... and the 999th (second-to-last) element at n = 1000
        xs = list(range(1000))
        assert nearest_rank(xs, 999, 1000) == 998

    def test_single_request_stream(self):
        for num, den in PERCENTILES:
            assert nearest_rank([7], num, den) == 7

    def test_ties_index_the_multiset(self):
        xs = [5, 5, 5, 9]
        assert nearest_rank(xs, 50, 100) == 5
        assert nearest_rank(xs, 99, 100) == 9

    def test_hand_computed_hundred(self):
        xs = list(range(1, 101))  # 1..100
        assert nearest_rank(xs, 50, 100) == 50
        assert nearest_rank(xs, 99, 100) == 99
        assert nearest_rank(xs, 999, 1000) == 100

    def test_exact_integer_rank_no_float_rounding(self):
        # ceil(29 * 0.29...) style cases where float math is off by one:
        # n=70, p=0.29 -> exact ceil(70*29/100)=ceil(20.3)=21
        xs = list(range(1, 71))
        assert nearest_rank(xs, 29, 100) == 21

    def test_empty_and_bad_fractions_raise(self):
        with pytest.raises(ValueError):
            nearest_rank([], 50, 100)
        with pytest.raises(ValueError):
            nearest_rank([1], 0, 100)
        with pytest.raises(ValueError):
            nearest_rank([1], 101, 100)

    def test_percentile_sorts_a_copy(self):
        xs = [40, 10, 30, 20]
        assert percentile(xs, 50, 100) == 20
        assert xs == [40, 10, 30, 20]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=300))
    def test_percentile_is_a_member_and_monotone(self, xs):
        vals = [percentile(xs, num, den) for num, den in PERCENTILES]
        for v in vals:
            assert v in xs
        assert vals == sorted(vals)  # p50 <= p99 <= p999
        assert vals[-1] <= max(xs)


class TestViolations:
    def test_strictly_greater(self):
        # finishing exactly on the deadline meets the SLO
        assert count_violations([100, 200, 300], 200) == 1
        assert count_violations([200, 200], 200) == 0

    def test_negative_slo_rejected(self):
        with pytest.raises(ValueError):
            count_violations([1], -1)


class TestTailStats:
    def test_summary_fields(self):
        ts = tail_stats([30, 10, 20])
        assert ts == TailStats(count=3, total=60, p50=20, p99=30,
                               p999=30, worst=30)
        assert ts.mean == 20.0

    def test_empty_population_raises(self):
        with pytest.raises(ValueError):
            tail_stats([])
