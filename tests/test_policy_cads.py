"""CADS: rank/adaptation unit behaviour + golden fingerprints.

Unit tests drive ``select_read`` against a hand-built scheduling context
so the least-attained-service ranking and the adaptive re-rank interval
(halve on skewed service, double on balanced service, clamped) of
arXiv:1907.07776 are checked boundary by boundary.  The golden section
pins one end-to-end run per backend against
``tests/golden/golden_cads.json`` (float-hex exact; regenerate with
``REPRO_REGEN_GOLDEN=1``, always from the object backend).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import run_multicore, workload_by_name
from repro.config import DramTimingConfig, DramTopologyConfig
from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest
from repro.core import make_policy
from repro.core.policy import SchedulingContext
from repro.dram.dram_system import DramSystem
from repro.util.rng import RngStream

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_cads.json"

MIX = "4MEM-1"
SEED = 7
BUDGET = 2500
WARMUP = 2000
BACKENDS = ("object", "fast")


def make_ctx(num_cores=4, capacity=64):
    dram = DramSystem(DramTopologyConfig(), DramTimingConfig(), 64)
    queues = RequestQueues(capacity, num_cores)
    rng = RngStream(0, "test")
    return dram, queues, rng


def add_read(queues, dram, core, line, t=0):
    r = MemoryRequest(addr=line * 64, core_id=core, is_write=False,
                      arrival_cycle=t)
    r.coord = dram.coord(r.addr)
    queues.add(r)
    return r


def ctx_for(dram, queues, rng, channel=0, now=0):
    return SchedulingContext(now, channel, queues, dram, rng)


def make(num_cores=4, **kw):
    kw.setdefault("rank_interval", 1000)
    kw.setdefault("min_interval", 250)
    kw.setdefault("max_interval", 4000)
    p = make_policy("CADS", **kw)
    p.setup(num_cores, RngStream(0, "pol"))
    return p


class TestRanking:
    def test_least_served_core_ranks_highest(self):
        dram, queues, rng = make_ctx(num_cores=2)
        pol = make(num_cores=2)
        ctx = ctx_for(dram, queues, rng, now=0)
        # Within the first interval: serve core 0 three times, core 1 once.
        for core, line in ((0, 0), (0, 2), (0, 4), (1, 100)):
            r = add_read(queues, dram, core, line)
            assert pol.select_read([r], ctx) is r
            queues.remove(r)
        # Cross the boundary: core 1 (least served) must outrank core 0.
        late = ctx_for(dram, queues, rng, now=1000)
        a = add_read(queues, dram, 0, 6, t=0)      # older
        b = add_read(queues, dram, 1, 102, t=10)   # younger, higher rank
        assert pol.select_read([a, b], late) is b
        assert pol.rank_of(1) == 0
        assert pol.rank_of(0) == 1
        assert pol.rerank_count == 1

    def test_equal_ranks_fall_back_to_shared_tiebreak(self):
        dram, queues, rng = make_ctx(num_cores=2)
        pol = make(num_cores=2)
        ctx = ctx_for(dram, queues, rng, now=0)
        # Before any boundary, all ranks are 0: the two-level helper
        # tie-breaks through the shared RNG, then hit-first/oldest.
        a = add_read(queues, dram, 0, 0, t=0)
        b = add_read(queues, dram, 1, 100, t=0)
        assert pol.select_read([a, b], ctx) in (a, b)


class TestAdaptation:
    def test_skewed_service_halves_interval(self):
        dram, queues, rng = make_ctx(num_cores=2)
        pol = make(num_cores=2, imbalance_high=2.0)
        ctx = ctx_for(dram, queues, rng, now=0)
        for core, line in ((0, 0), (0, 2), (0, 4), (1, 100)):
            r = add_read(queues, dram, core, line)
            pol.select_read([r], ctx)
            queues.remove(r)
        r = add_read(queues, dram, 0, 6)
        pol.select_read([r], ctx_for(dram, queues, rng, now=1000))
        # imbalance 3/1 > 2.0 -> interval halves
        assert pol.current_interval == 500
        assert pol.shrink_count == 1

    def test_balanced_service_doubles_interval(self):
        dram, queues, rng = make_ctx(num_cores=2)
        pol = make(num_cores=2, imbalance_low=1.5)
        ctx = ctx_for(dram, queues, rng, now=0)
        for core, line in ((0, 0), (1, 100)):
            r = add_read(queues, dram, core, line)
            pol.select_read([r], ctx)
            queues.remove(r)
        r = add_read(queues, dram, 0, 6)
        pol.select_read([r], ctx_for(dram, queues, rng, now=1000))
        # imbalance 1/1 < 1.5 -> interval doubles
        assert pol.current_interval == 2000
        assert pol.grow_count == 1

    def test_interval_clamps_at_bounds(self):
        dram, queues, rng = make_ctx(num_cores=2)
        pol = make(num_cores=2, rank_interval=500, min_interval=250,
                   max_interval=1000, imbalance_high=2.0)
        ctx = ctx_for(dram, queues, rng, now=0)
        now = 0
        # Repeated skew: 500 -> 250 -> stays 250 (min clamp).
        for boundary in range(3):
            for core, line in ((0, 8 * boundary), (0, 8 * boundary + 2),
                               (0, 8 * boundary + 4)):
                r = add_read(queues, dram, core, line)
                pol.select_read([r], ctx_for(dram, queues, rng, now=now))
                queues.remove(r)
            now = pol._interval_end
            r = add_read(queues, dram, 1, 100 + 2 * boundary)
            pol.select_read([r], ctx_for(dram, queues, rng, now=now))
            queues.remove(r)
        assert pol.current_interval == 250

    def test_idle_interval_keeps_cadence(self):
        dram, queues, rng = make_ctx(num_cores=2)
        pol = make(num_cores=2)
        # No request served in intervals 1..3; boundaries are caught up
        # lazily with no adaptation.
        r = add_read(queues, dram, 0, 0)
        pol.select_read([r], ctx_for(dram, queues, rng, now=3500))
        assert pol.rerank_count == 3
        assert pol.current_interval == 1000
        assert pol.shrink_count == 0 and pol.grow_count == 0

    def test_reset_restores_initial_state(self):
        dram, queues, rng = make_ctx(num_cores=2)
        pol = make(num_cores=2, imbalance_high=2.0)
        ctx = ctx_for(dram, queues, rng, now=0)
        for core, line in ((0, 0), (0, 2), (0, 4)):
            r = add_read(queues, dram, core, line)
            pol.select_read([r], ctx)
            queues.remove(r)
        r = add_read(queues, dram, 0, 6)
        pol.select_read([r], ctx_for(dram, queues, rng, now=1000))
        assert pol.current_interval != 1000
        pol.reset()
        assert pol.current_interval == 1000
        assert pol.rerank_count == 0
        assert pol.rank_of(0) == 0 and pol.rank_of(1) == 0


class TestParameters:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_policy("CADS", rank_interval=100, min_interval=200,
                        max_interval=400)
        with pytest.raises(ValueError):
            make_policy("CADS", imbalance_high=1.0, imbalance_low=2.0)

    def test_hardware_cost_has_no_table(self):
        cost = make_policy("CADS").describe_hardware(8)
        assert cost.priority_table_bits == 0
        assert cost.per_core_bits > 0


# -- golden fingerprints (both backends vs one object-made file) -------------


def _hex(x: float) -> str:
    return float(x).hex()


def _fingerprint(backend: str) -> dict:
    result = run_multicore(
        workload_by_name(MIX), "CADS", inst_budget=BUDGET, seed=SEED,
        warmup_insts=WARMUP, backend=backend,
    )
    return {
        "mix": MIX,
        "seed": SEED,
        "budget": BUDGET,
        "warmup": WARMUP,
        "end_cycle": result.end_cycle,
        "row_hit_rate": _hex(result.row_hit_rate),
        "drain_entries": result.drain_entries,
        "per_core": [
            {
                "app": c.app,
                "ipc": _hex(c.ipc),
                "finish_cycle": c.finish_cycle,
                "reads": c.reads,
                "avg_read_latency": _hex(c.avg_read_latency),
                "bytes_total": c.bytes_total,
                "bw_gbps": _hex(c.bw_gbps),
            }
            for c in result.per_core
        ],
    }


@pytest.mark.parametrize("backend", BACKENDS)
def test_golden_cads_bit_identical(backend):
    snap = _fingerprint(backend)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        if backend != "object":
            pytest.skip("golden file is regenerated from the object backend")
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(snap, indent=2) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — run with REPRO_REGEN_GOLDEN=1 to create it"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert snap == golden, (
        f"CADS statistics drifted from the golden snapshot under the "
        f"{backend!r} backend"
    )
