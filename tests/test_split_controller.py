"""Tests for the per-channel split-controller variant."""

import pytest

from repro.config import SystemConfig
from repro.controller.split import SplitControllerGroup, _ChannelView
from repro.core import make_policy
from repro.dram.dram_system import DramSystem
from repro.sim.engine import EventEngine
from repro.sim.system import MultiCoreSystem
from repro.util.rng import RngStream
from repro.workloads.mixes import workload_by_name
from repro.workloads.synthetic import make_trace

CFG = SystemConfig(num_cores=2)


def make_group():
    engine = EventEngine()
    dram = DramSystem(CFG.dram_topology, CFG.dram_timing, 64)
    group = SplitControllerGroup(
        CFG.controller,
        dram,
        [make_policy("HF-RF"), make_policy("HF-RF")],
        2,
        engine,
        RngStream(0, "g"),
    )
    return engine, dram, group


class TestChannelView:
    def test_rehomes_coords(self):
        dram = DramSystem(CFG.dram_topology, CFG.dram_timing, 64)
        view = _ChannelView(dram, 1)
        coord = view.coord(64)  # line 1 -> physical channel 1
        assert coord.channel == 0  # re-homed
        assert len(view.channels) == 1
        assert view.channels[0] is dram.channels[1]

    def test_execute_hits_real_channel(self):
        dram = DramSystem(CFG.dram_topology, CFG.dram_timing, 64)
        view = _ChannelView(dram, 1)
        view.execute(view.coord(64), 0, is_write=False, keep_open=True)
        assert dram.channels[1].transactions == 1
        assert dram.channels[0].transactions == 0


class TestGroup:
    def test_routes_by_channel(self):
        from repro.controller.request import MemoryRequest

        engine, dram, group = make_group()
        r0 = MemoryRequest(addr=0, core_id=0, is_write=False, arrival_cycle=0)
        r1 = MemoryRequest(addr=64, core_id=0, is_write=False, arrival_cycle=0)
        assert group.enqueue(r0, 0)
        assert group.enqueue(r1, 0)
        assert len(group.controllers[0].queues.reads) == 1
        assert len(group.controllers[1].queues.reads) == 1
        engine.run()
        assert dram.channels[0].transactions == 1
        assert dram.channels[1].transactions == 1

    def test_buffer_split_evenly(self):
        engine, dram, group = make_group()
        assert group.controllers[0].config.buffer_entries == 32
        assert group.controllers[0].config.write_drain_high == 16

    def test_merged_stats(self):
        from repro.controller.request import MemoryRequest

        engine, dram, group = make_group()
        for addr in (0, 64, 128, 192):
            group.enqueue(
                MemoryRequest(addr=addr, core_id=0, is_write=False, arrival_cycle=0),
                0,
            )
        engine.run()
        st = group.stats
        assert st.read_count[0] == 4
        assert st.bytes_read[0] == 256
        assert st.avg_read_latency(0) > 0

    def test_wait_for_space_fires_once(self):
        engine, dram, group = make_group()
        hits = []
        group.wait_for_space(lambda now: hits.append(now))
        from repro.controller.request import MemoryRequest

        group.enqueue(
            MemoryRequest(addr=0, core_id=0, is_write=False, arrival_cycle=0), 0
        )
        group.enqueue(
            MemoryRequest(addr=64, core_id=0, is_write=False, arrival_cycle=0), 0
        )
        engine.run()
        assert len(hits) == 1

    def test_policy_count_validated(self):
        engine = EventEngine()
        dram = DramSystem(CFG.dram_topology, CFG.dram_timing, 64)
        with pytest.raises(ValueError):
            SplitControllerGroup(
                CFG.controller, dram, [make_policy("HF-RF")], 2, engine,
                RngStream(0, "g"),
            )


class TestEndToEnd:
    def test_full_run_with_split_controllers(self):
        mix = workload_by_name("2MEM-1")
        traces = [make_trace(a, 3, "eval", i) for i, a in enumerate(mix.apps())]
        sys_ = MultiCoreSystem(
            CFG,
            make_policy("LREQ"),
            traces,
            3000,
            warmup_insts=8000,
            seed=3,
            controller_kind="split",
            policy_factory=lambda: make_policy("LREQ"),
        )
        sys_.run()
        assert all(c.finished for c in sys_.cores)
        assert sum(sys_.controller.stats.read_count) > 0

    def test_split_requires_factory(self):
        mix = workload_by_name("2MEM-1")
        traces = [make_trace(a, 3, "eval", i) for i, a in enumerate(mix.apps())]
        with pytest.raises(ValueError):
            MultiCoreSystem(
                CFG, make_policy("LREQ"), traces, 1000, controller_kind="split"
            )

    def test_unknown_kind_rejected(self):
        mix = workload_by_name("2MEM-1")
        traces = [make_trace(a, 3, "eval", i) for i, a in enumerate(mix.apps())]
        with pytest.raises(ValueError):
            MultiCoreSystem(
                CFG, make_policy("LREQ"), traces, 1000, controller_kind="triple"
            )


class TestChannelViewTiming:
    def test_timing_passthrough(self):
        dram = DramSystem(CFG.dram_topology, CFG.dram_timing, 64)
        view = _ChannelView(dram, 0)
        assert view.timing is dram.timing

    def test_is_row_hit_consults_real_bank(self):
        dram = DramSystem(CFG.dram_topology, CFG.dram_timing, 64)
        view = _ChannelView(dram, 1)
        coord = view.coord(64)
        assert not view.is_row_hit(coord)
        view.execute(coord, 0, is_write=False, keep_open=True)
        assert view.is_row_hit(coord)
