"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventEngine, PastEventError


class TestOrdering:
    def test_time_order(self):
        e = EventEngine()
        seen = []
        e.schedule(30, lambda now: seen.append((now, "c")))
        e.schedule(10, lambda now: seen.append((now, "a")))
        e.schedule(20, lambda now: seen.append((now, "b")))
        e.run()
        assert seen == [(10, "a"), (20, "b"), (30, "c")]

    def test_same_cycle_fifo(self):
        e = EventEngine()
        seen = []
        for tag in "abc":
            e.schedule(5, lambda now, t=tag: seen.append(t))
        e.run()
        assert seen == ["a", "b", "c"]

    def test_past_events_clamped_to_now(self):
        e = EventEngine()
        seen = []

        def first(now):
            e.schedule(now - 100, lambda t: seen.append(t))

        e.schedule(50, first)
        e.run()
        assert seen == [50]
        assert e.now == 50

    def test_clamped_events_counted(self):
        e = EventEngine()
        e.schedule(50, lambda now: e.schedule(now - 1, lambda t: None))
        e.schedule(50, lambda now: e.schedule(now - 30, lambda t: None))
        e.run()
        assert e.clamped_events == 2

    def test_same_cycle_schedule_is_not_a_clamp(self):
        e = EventEngine()
        e.schedule(50, lambda now: e.schedule(now, lambda t: None))
        e.schedule(10, lambda now: None)
        e.run()
        assert e.clamped_events == 0

    def test_strict_mode_raises_on_past_schedule(self):
        e = EventEngine(strict=True)
        boom = []

        def first(now):
            try:
                e.schedule(now - 1, lambda t: None)
            except PastEventError as exc:
                boom.append(exc)

        e.schedule(5, first)
        e.run()
        assert len(boom) == 1

    def test_strict_mode_counts_clamp_before_raising(self):
        # The counter is the causality-violation record: a strict-mode
        # rejection must still be counted, even when the caller swallows
        # the exception — otherwise the run reports itself clean.
        e = EventEngine(strict=True)
        rejected = []

        def first(now):
            for back in (1, 30):
                try:
                    e.schedule(now - back, lambda t: None)
                except PastEventError as exc:
                    rejected.append(exc)

        e.schedule(50, first)
        e.run()
        assert len(rejected) == 2
        assert e.clamped_events == 2

    def test_strict_mode_allows_present_and_future(self):
        e = EventEngine(strict=True)
        seen = []
        e.schedule(5, lambda now: e.schedule(now, lambda t: seen.append(t)))
        e.schedule(5, lambda now: e.schedule(now + 3, lambda t: seen.append(t)))
        e.run()
        assert seen == [5, 8]

    def test_reset_clears_clamp_counter(self):
        e = EventEngine()
        e.schedule(10, lambda now: e.schedule(0, lambda t: None))
        e.run()
        assert e.clamped_events == 1
        e.reset()
        assert e.clamped_events == 0

    def test_now_never_decreases(self):
        e = EventEngine()
        trace = []
        e.schedule(10, lambda now: trace.append(e.now))
        e.schedule(10, lambda now: e.schedule(5, lambda t: trace.append(e.now)))
        e.run()
        assert trace == sorted(trace)


class TestControl:
    def test_step_returns_false_when_empty(self):
        assert EventEngine().step() is False

    def test_until_predicate_stops(self):
        e = EventEngine()
        count = []
        for i in range(10):
            e.schedule(i, lambda now: count.append(now))
        e.run(until=lambda: len(count) >= 3)
        assert len(count) == 3
        assert e.pending == 7

    def test_max_cycles_bound(self):
        e = EventEngine()
        hits = []
        e.schedule(10, lambda now: hits.append(now))
        e.schedule(1000, lambda now: hits.append(now))
        e.run(max_cycles=100)
        assert hits == [10]

    def test_max_events_raises(self):
        e = EventEngine()

        def respawn(now):
            e.schedule(now + 1, respawn)

        e.schedule(0, respawn)
        with pytest.raises(RuntimeError):
            e.run(max_events=50)

    def test_events_with_args(self):
        e = EventEngine()
        seen = []
        e.schedule(1, lambda now, a, b: seen.append((a, b)), "x", 2)
        e.run()
        assert seen == [("x", 2)]

    def test_reset(self):
        e = EventEngine()
        e.schedule(5, lambda now: None)
        e.run()
        e.reset()
        assert e.now == 0
        assert e.pending == 0
        assert e.events_processed == 0

    def test_peek_cycle(self):
        e = EventEngine()
        assert e.peek_cycle() is None
        e.schedule(7, lambda now: None)
        assert e.peek_cycle() == 7
