"""Tests for fleet observability: traces, metrics, merge, dashboard."""

import json

import pytest

from repro import Telemetry
from repro.telemetry.export import read_jsonl, write_chrome_trace, write_jsonl
from repro.telemetry.fleet import (
    ENV_CELL_ID,
    ENV_RUN_ID,
    ENV_WORKER_ID,
    FLEET_FORMAT,
    FleetMetrics,
    FleetObserver,
    FleetTraceWriter,
    fleet_ids,
    merge_traces,
    new_run_id,
    prometheus_text,
    read_fleet_trace,
    render_dashboard,
    write_merged_trace,
    write_prometheus,
)


class TestIds:
    def test_new_run_id_short_and_unique(self):
        a, b = new_run_id(), new_run_id()
        assert a != b
        assert len(a) == 12
        assert all(c in "0123456789abcdef" for c in a)

    def test_fleet_ids_empty_outside_fleet(self, monkeypatch):
        for env in (ENV_RUN_ID, ENV_WORKER_ID, ENV_CELL_ID):
            monkeypatch.delenv(env, raising=False)
        assert fleet_ids() == {}

    def test_fleet_ids_reads_env(self, monkeypatch):
        monkeypatch.setenv(ENV_RUN_ID, "r1")
        monkeypatch.setenv(ENV_WORKER_ID, "w0")
        monkeypatch.delenv(ENV_CELL_ID, raising=False)
        assert fleet_ids() == {"run_id": "r1", "worker_id": "w0"}


class TestTraceWriter:
    def test_round_trip(self, tmp_path):
        p = tmp_path / "w.jsonl"
        tw = FleetTraceWriter(p, role="worker", run_id="r1", worker_id="w0")
        tw.event("cell a", "B", track="cells", t=10.0, attempt=0)
        tw.event("cell a", "E", track="cells", t=11.5, status="done")
        tw.snapshot("progress", t=11.0, executed=1, hits=0)
        tw.event("note", "i", track="cells", t=11.2)
        tw.close(executed=1)
        doc = read_fleet_trace(p)
        assert doc["header"]["format"] == FLEET_FORMAT
        assert doc["header"]["run_id"] == "r1"
        assert doc["header"]["worker_id"] == "w0"
        assert [e["ph"] for e in doc["events"]] == ["B", "E", "i"]
        assert doc["events"][0]["args"] == {"attempt": 0}
        assert doc["snapshots"][0]["values"] == {"executed": 1, "hits": 0}
        assert doc["footer"]["totals"] == {"executed": 1}
        assert doc["footer"]["events"] == 4

    def test_bad_phase_rejected(self, tmp_path):
        tw = FleetTraceWriter(tmp_path / "x.jsonl", role="worker",
                              run_id="r1")
        with pytest.raises(ValueError, match="phase"):
            tw.event("oops", "X", track="cells")
        tw.close()

    def test_close_idempotent(self, tmp_path):
        tw = FleetTraceWriter(tmp_path / "x.jsonl", role="worker",
                              run_id="r1")
        tw.close()
        tw.close()  # second close is a no-op, not a crash

    def test_crashed_process_leaves_readable_prefix(self, tmp_path):
        p = tmp_path / "crash.jsonl"
        tw = FleetTraceWriter(p, role="worker", run_id="r1")
        tw.event("cell a", "B", track="cells", t=1.0)
        # no close(): simulates a killed worker — flushed lines remain
        doc = read_fleet_trace(p)
        assert len(doc["events"]) == 1
        assert doc["footer"] is None
        tw.close()

    def test_foreign_file_rejected(self, tmp_path):
        p = tmp_path / "foreign.jsonl"
        p.write_text('{"type": "header", "format": "something-else"}\n')
        with pytest.raises(ValueError, match=FLEET_FORMAT):
            read_fleet_trace(p)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_fleet_trace(empty)


def _two_process_traces(tmp_path, run_id="r1"):
    """Coordinator and worker traces with interleaved concurrent flushes,
    the way two live processes write them."""
    cp = tmp_path / "coord.jsonl"
    wp = tmp_path / "worker.jsonl"
    coord = FleetTraceWriter(cp, role="coordinator", run_id=run_id)
    work = FleetTraceWriter(wp, role="worker", run_id=run_id,
                            worker_id="w0")
    # flushes alternate between the two files (concurrent processes)
    coord.event("lease eval:4MEM-1", "B", track="w0", t=100.0, cell_id="d1")
    work.event("cell eval:4MEM-1", "B", track="cells", t=100.1,
               cell_id="d1")
    coord.snapshot("queue", t=100.5, pending=3, leased=1)
    work.snapshot("progress", t=100.6, executed=0, hits=0)
    work.event("cell eval:4MEM-1", "E", track="cells", t=101.0,
               status="done")
    coord.event("lease eval:4MEM-1", "E", track="w0", t=101.1,
                status="done")
    coord.event("job 1 completed", "i", track="jobs", t=101.2)
    coord.close()
    work.close(executed=1)
    return cp, wp


class TestMerge:
    def test_two_process_merge(self, tmp_path):
        cp, wp = _two_process_traces(tmp_path)
        doc = merge_traces([wp, cp])  # order given must not matter
        assert doc["otherData"]["run_id"] == "r1"
        assert doc["otherData"]["format"] == FLEET_FORMAT
        # coordinator sorts first regardless of argument order
        assert [s["role"] for s in doc["otherData"]["sources"]] == [
            "coordinator", "worker"]
        events = doc["traceEvents"]
        by_pid = {}
        for e in events:
            by_pid.setdefault(e["pid"], []).append(e)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"
                 and e["name"] == "process_name"}
        assert names == {"coordinator", "worker w0"}
        lease_b = [e for e in events if e["ph"] == "B"
                   and e["name"].startswith("lease ")]
        cell_b = [e for e in events if e["ph"] == "B"
                  and e["name"].startswith("cell ")]
        assert len(lease_b) == len(cell_b) == 1
        # both slices carry the shared run_id and lie on different pids
        assert lease_b[0]["args"]["run_id"] == "r1"
        assert cell_b[0]["args"]["run_id"] == "r1"
        assert lease_b[0]["pid"] != cell_b[0]["pid"]
        # timestamps are µs relative to the earliest event (t=100.0)
        assert lease_b[0]["ts"] == 0.0
        assert cell_b[0]["ts"] == pytest.approx(0.1e6)
        counters = [e for e in events if e["ph"] == "C"]
        assert {c["name"] for c in counters} == {"queue", "progress"}
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_mixed_run_ids_rejected(self, tmp_path):
        cp, _ = _two_process_traces(tmp_path, run_id="r1")
        other = tmp_path / "other.jsonl"
        tw = FleetTraceWriter(other, role="worker", run_id="r2")
        tw.close()
        with pytest.raises(ValueError, match="one run at a time"):
            merge_traces([cp, other])

    def test_no_files_rejected(self):
        with pytest.raises(ValueError, match="no fleet trace"):
            merge_traces([])

    def test_write_merged_trace(self, tmp_path):
        cp, wp = _two_process_traces(tmp_path)
        out = tmp_path / "merged.json"
        doc = write_merged_trace([cp, wp], out)
        assert json.loads(out.read_text()) == doc

    def test_merge_trace_cli(self, tmp_path, capsys):
        from repro.cli import main

        cp, wp = _two_process_traces(tmp_path)
        out = tmp_path / "merged.json"
        assert main(["obs", "merge-trace", str(cp), str(wp),
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "run r1" in printed
        assert json.loads(out.read_text())["otherData"]["run_id"] == "r1"


class TestFleetMetrics:
    def test_lease_lifecycle_counters(self):
        m = FleetMetrics("r1")
        m.on_worker_join("w0")
        m.on_lease_granted("w0", "eval:4MEM-1:HF-RF", attempt=0)
        m.on_lease_ended("w0", "done", 2.0)
        m.on_lease_granted("w0", "eval:4MEM-1:RR", attempt=1)
        m.on_lease_ended("w0", "failed", 0.5)
        m.on_lease_granted("w0", "eval:4MEM-1:RR", attempt=2)
        m.on_lease_ended("w0", "expired", 0.0)
        snap = m.snapshot(queue={"pending": 4})
        inst = snap["instruments"]
        assert inst["fleet.lease.granted"]["value"] == 3
        assert inst["fleet.lease.completed"]["value"] == 1
        assert inst["fleet.lease.retried"]["value"] == 2
        assert inst["fleet.lease.failed"]["value"] == 1
        assert inst["fleet.lease.expired"]["value"] == 1
        assert inst["fleet.cell.seconds"]["count"] == 1
        assert snap["queue"] == {"pending": 4}
        assert snap["run_id"] == "r1"
        row = snap["workers"]["w0"]
        assert row["cells"] == 1
        assert row["busy_seconds"] == 2.0
        assert row["current"] is None

    def test_worker_leave_marks_disconnected(self):
        m = FleetMetrics("r1")
        m.on_worker_join("w0")
        m.on_lease_granted("w0", "eval:x", attempt=0)
        assert m.workers["w0"]["current"] == "eval:x"
        m.on_worker_leave("w0")
        table = m.worker_table()
        assert table["w0"]["connected"] is False
        assert table["w0"]["current"] is None

    def test_heartbeat_gap_tracked(self):
        m = FleetMetrics("r1")
        m.on_worker_join("w0")
        m.workers["w0"]["last_heartbeat"] -= 3.0  # simulate a silent spell
        m.on_heartbeat("w0")
        assert m.workers["w0"]["heartbeat_gap_max"] >= 3.0
        snap = m.snapshot()
        assert snap["instruments"]["fleet.worker.heartbeat_gap"]["max"] >= 3.0


class TestPrometheus:
    def _snapshot(self):
        m = FleetMetrics("r1")
        m.on_worker_join("w0")
        m.on_lease_granted("w0", "eval:x", attempt=0)
        m.on_lease_ended("w0", "done", 1.5)
        return m.snapshot(queue={"pending": 2, "leased": 0})

    def test_format(self):
        text = prometheus_text(self._snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_fleet_queue_pending gauge" in lines
        assert "repro_fleet_queue_pending 2" in lines
        assert "# TYPE repro_fleet_lease_completed_total counter" in lines
        assert "repro_fleet_lease_completed_total 1" in lines
        assert "# TYPE repro_fleet_cell_seconds_count gauge" in lines
        worker = [ln for ln in lines
                  if ln.startswith("repro_fleet_worker_cells_total{")]
        assert worker == [
            'repro_fleet_worker_cells_total{worker="w0",run_id="r1"} 1']
        # every sample line ends in a parseable number
        for ln in lines:
            if ln.startswith("#"):
                continue
            float(ln.rsplit(" ", 1)[1])

    def test_write_is_atomic_replace(self, tmp_path):
        path = tmp_path / "fleet.prom"
        snap = self._snapshot()
        write_prometheus(snap, path)
        assert path.read_text() == prometheus_text(snap)
        assert not (tmp_path / "fleet.prom.tmp").exists()
        assert "repro_fleet_uptime_seconds" in path.read_text()


class TestFleetObserver:
    def test_hooks_noop_with_everything_disabled(self):
        obs = FleetObserver("r1", metrics=False)
        obs.on_worker_join("w0")
        obs.on_heartbeat("w0")
        obs.on_lease_granted("w0", "d1", "eval:x", 0)
        obs.on_lease_ended("d1", "done")
        obs.on_worker_leave("w0", executed=1)
        obs.on_store_probe(True)
        obs.on_job("submitted", 1, 4)
        assert obs.status_doc() is None

    def test_snapshot_files(self, tmp_path):
        obs = FleetObserver("r1", metrics_out=tmp_path / "m.jsonl",
                            prometheus_out=tmp_path / "f.prom")
        obs.board_counts = lambda: {"pending": 1}
        obs.on_worker_join("w0")
        obs.on_store_probe(False)
        obs.write_snapshot()
        obs.write_snapshot()
        snaps = [json.loads(ln) for ln in
                 (tmp_path / "m.jsonl").read_text().splitlines()]
        assert len(snaps) == 2  # JSONL appends
        assert snaps[-1]["queue"] == {"pending": 1}
        assert snaps[-1]["instruments"]["fleet.store.misses"]["value"] == 1
        prom = (tmp_path / "f.prom").read_text()
        assert "repro_fleet_store_misses_total 1" in prom  # prom rewrites

    def test_trace_slices_and_disconnect(self, tmp_path):
        p = tmp_path / "coord.jsonl"
        obs = FleetObserver("r1", metrics=True, trace_out=p)
        obs.on_worker_join("w0")
        obs.on_lease_granted("w0", "d1", "eval:x:cfg=abc", 0)
        obs.on_lease_ended("d1", "done")
        obs.on_lease_granted("w0", "d2", "eval:y:cfg=abc", 0)
        # worker vanishes mid-lease: the open slice closes as disconnect
        obs.on_worker_leave("w0", executed=1)
        obs.trace.close()
        doc = read_fleet_trace(p)
        slices = [(e["name"], e["ph"], e.get("args", {}).get("status"))
                  for e in doc["events"] if e["name"].startswith("lease ")]
        assert slices == [
            ("lease eval:x", "B", None),
            ("lease eval:x", "E", "done"),
            ("lease eval:y", "B", None),
            ("lease eval:y", "E", "disconnect"),
        ]
        assert obs.metrics.lease_completed.value == 1

    def test_stale_lease_end_ignored(self):
        obs = FleetObserver("r1")
        obs.on_lease_ended("never-granted", "done")  # tolerated, no-op
        assert obs.metrics.lease_completed.value == 0

    def test_stop_writes_final_snapshot(self, tmp_path):
        import asyncio

        async def scenario():
            obs = FleetObserver("r1", metrics_out=tmp_path / "m.jsonl",
                                snapshot_every=3600.0)
            obs.start()
            await obs.stop()

        asyncio.run(scenario())
        snaps = (tmp_path / "m.jsonl").read_text().splitlines()
        assert len(snaps) == 1  # run shorter than the interval still lands


class TestDashboard:
    def _status(self):
        m = FleetMetrics("r1")
        m.on_worker_join("w0")
        m.on_lease_granted("w0", "eval:4MEM-1:HF-RF:cfg=abc", attempt=0)
        m.on_lease_ended("w0", "done", 1.0)
        m.on_lease_granted("w0", "eval:4MEM-1:RR:cfg=abc", attempt=0)
        return {"tasks": {"pending": 2, "leased": 1, "done": 1,
                          "failed": 0},
                "fleet": m.snapshot()}

    def test_renders_bar_board_and_workers(self):
        text = render_dashboard(self._status(), done=1, total=4)
        assert "1/4 cells" in text
        assert "25.0%" in text
        assert "board: pending=2  leased=1  done=1  failed=0" in text
        assert "w0" in text
        assert "eval:4MEM-1:RR" in text     # current cell, cfg stripped
        assert ":cfg=" not in text

    def test_renders_without_fleet_section(self):
        text = render_dashboard({"workers": ["a", "b"]}, done=0, total=0)
        assert "workers: a, b" in text
        assert "100.0%" in text  # empty job renders as complete


class TestExporterFleetCorrelation:
    """Exporter edge cases the fleet adds: empty runs and id stamping."""

    def test_empty_run_exports_cleanly_with_fleet_ids(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv(ENV_RUN_ID, "r42")
        monkeypatch.setenv(ENV_WORKER_ID, "w7")
        monkeypatch.setenv(ENV_CELL_ID, "c9")
        tm = Telemetry()  # nothing ran: no samples, no events, no spans
        p = tmp_path / "empty.jsonl"
        write_jsonl(tm, p)
        doc = read_jsonl(p)
        assert doc["samples"] == [] and doc["events"] == []
        assert doc["header"]["fleet"] == {
            "run_id": "r42", "worker_id": "w7", "cell_id": "c9"}

    def test_chrome_trace_carries_fleet_ids(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_RUN_ID, "r42")
        monkeypatch.delenv(ENV_WORKER_ID, raising=False)
        monkeypatch.delenv(ENV_CELL_ID, raising=False)
        p = tmp_path / "trace.json"
        write_chrome_trace(Telemetry(), p)
        doc = json.loads(p.read_text())
        assert doc["otherData"]["fleet"] == {"run_id": "r42"}

    def test_no_fleet_section_outside_fleet(self, tmp_path, monkeypatch):
        for env in (ENV_RUN_ID, ENV_WORKER_ID, ENV_CELL_ID):
            monkeypatch.delenv(env, raising=False)
        p = tmp_path / "plain.jsonl"
        write_jsonl(Telemetry(), p)
        assert "fleet" not in read_jsonl(p)["header"]
