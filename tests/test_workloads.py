"""Tests for the workload substrate: app table, mixes, synthetic streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.mixes import WORKLOAD_MIXES, mixes_for, workload_by_name
from repro.workloads.spec2000 import APPS, app_by_code, app_by_name
from repro.workloads.synthetic import CORE_ADDR_STRIDE, make_trace


class TestAppTable:
    def test_twenty_six_apps(self):
        assert len(APPS) == 26
        assert "".join(sorted(a.code for a in APPS)) == "abcdefghijklmnopqrstuvwxyz"

    def test_all_profiles_valid(self):
        for app in APPS:
            app.validate()

    def test_class_split_matches_table2(self):
        mem = {a.code for a in APPS if a.klass == "MEM"}
        assert mem == set("bcdefgijklnpqv")

    def test_paper_me_values_sampled(self):
        assert app_by_name("eon").paper_me == 16276
        assert app_by_name("mcf").paper_me == 1
        assert app_by_name("swim").paper_me == 2
        assert app_by_code("u").name == "perlbmk"

    def test_mpki_anti_correlates_with_paper_me(self):
        # within each class, strictly higher published ME must mean lower
        # mpki (apps sharing a published ME may order freely)
        for klass in ("MEM", "ILP"):
            apps = sorted(
                (a for a in APPS if a.klass == klass), key=lambda a: a.paper_me
            )
            for lo, hi in zip(apps, apps[1:]):
                if hi.paper_me > lo.paper_me:
                    assert hi.mpki < lo.mpki, (lo.name, hi.name)

    def test_unknown_lookups(self):
        with pytest.raises(KeyError):
            app_by_code("A")
        with pytest.raises(KeyError):
            app_by_name("doom")


class TestMixes:
    def test_table3_counts(self):
        assert len(WORKLOAD_MIXES) == 36
        for n in (2, 4, 8):
            assert len(mixes_for(n)) == 12
            assert len(mixes_for(n, "MEM")) == 6
            assert len(mixes_for(n, "MIX")) == 6

    def test_codes_match_core_count(self):
        for m in WORKLOAD_MIXES:
            assert m.num_cores == len(m.codes)
            m.validate()

    def test_published_compositions(self):
        assert workload_by_name("2MEM-1").codes == "bc"
        assert workload_by_name("4MEM-1").codes == "bcde"
        assert workload_by_name("4MIX-2").codes == "hzde"
        assert workload_by_name("8MEM-4").codes == "bcdenpqv"

    def test_apps_resolved_in_core_order(self):
        mix = workload_by_name("4MEM-1")
        assert [a.name for a in mix.apps()] == ["wupwise", "swim", "mgrid", "applu"]

    def test_group_parsing(self):
        assert workload_by_name("4MEM-1").group == "MEM"
        assert workload_by_name("4MIX-1").group == "MIX"

    def test_case_insensitive_lookup(self):
        assert workload_by_name("4mem-1").name == "4MEM-1"

    def test_bad_lookups(self):
        with pytest.raises(KeyError):
            workload_by_name("4MEM-9")
        with pytest.raises(ValueError):
            mixes_for(4, "WEIRD")


class TestSyntheticStream:
    def test_deterministic_per_phase(self):
        app = app_by_code("c")
        a = make_trace(app, seed=5, phase="eval", core_id=0)
        b = make_trace(app, seed=5, phase="eval", core_id=0)
        for _ in range(200):
            assert a.next_op() == b.next_op()

    def test_phases_differ(self):
        app = app_by_code("c")
        a = make_trace(app, seed=5, phase="eval", core_id=0)
        b = make_trace(app, seed=5, phase="profile", core_id=0)
        ops_a = [a.next_op() for _ in range(100)]
        ops_b = [b.next_op() for _ in range(100)]
        assert ops_a != ops_b

    def test_core_address_spaces_disjoint(self):
        app = app_by_code("k")
        lo = make_trace(app, seed=1, phase="eval", core_id=0)
        hi = make_trace(app, seed=1, phase="eval", core_id=3)
        for _ in range(500):
            a = lo.next_op().addr
            b = hi.next_op().addr
            assert a // CORE_ADDR_STRIDE != b // CORE_ADDR_STRIDE

    def test_gap_matches_mem_ratio(self):
        app = app_by_code("c")  # mem_ratio 0.30
        t = make_trace(app, seed=1, phase="eval")
        ops = [t.next_op() for _ in range(4000)]
        total_insts = sum(op.gap + 1 for op in ops)
        ratio = len(ops) / total_insts
        assert abs(ratio - app.mem_ratio) < 0.05

    def test_store_fraction_roughly_respected(self):
        app = app_by_code("c")  # store_frac 0.40
        t = make_trace(app, seed=1, phase="eval")
        # skip the (load-only) prologue
        for _ in range(t._hot_lines + t._l2_lines):
            t.next_op()
        ops = [t.next_op() for _ in range(4000)]
        frac = sum(op.is_write for op in ops) / len(ops)
        assert abs(frac - app.store_frac) < 0.06

    def test_prologue_touches_every_resident_line(self):
        app = app_by_code("a")
        t = make_trace(app, seed=1, phase="eval")
        n = t._hot_lines + t._l2_lines
        lines = {t.next_op().addr // 64 for _ in range(n)}
        assert len(lines) == n  # each exactly once

    def test_streaming_app_emits_strided_row_runs(self):
        # swim: seq_frac 0.95, 4 streams, stride 32 lines. Ops of one
        # stream are n_streams apart in the merged order and advance by
        # stride_lines — consecutive columns of one DRAM row.
        app = app_by_code("c")
        t = make_trace(app, seed=1, phase="eval")
        for _ in range(t._hot_lines + t._l2_lines):
            t.next_op()
        lines = [t.next_op().addr // 64 for _ in range(3000)]
        k, stride = app.n_streams, app.stride_lines
        strided_pairs = sum(
            1 for x, y in zip(lines, lines[k:]) if y == x + stride
        )
        assert strided_pairs > 100

    def test_pointer_chaser_has_no_stride_pattern(self):
        app = app_by_code("k")  # mcf: seq_frac 0.05
        t = make_trace(app, seed=1, phase="eval")
        for _ in range(t._hot_lines + t._l2_lines):
            t.next_op()
        lines = [t.next_op().addr // 64 for _ in range(3000)]
        k, stride = app.n_streams, app.stride_lines
        strided_pairs = sum(
            1 for x, y in zip(lines, lines[k:]) if y == x + stride
        )
        assert strided_pairs < 50

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([a.code for a in APPS]), st.integers(1, 100))
    def test_stream_is_infinite_and_valid(self, code, seed):
        t = make_trace(app_by_code(code), seed=seed, phase="eval")
        for _ in range(300):
            op = t.next_op()
            assert op is not None
            assert op.gap >= 0
            assert op.addr >= CORE_ADDR_STRIDE  # inside core 0's space

    @pytest.mark.parametrize("loop", ["closed", "open"])
    def test_stream_determinism_both_loop_families(self, loop):
        if loop == "closed":
            def mk():
                return make_trace(app_by_code("k"), seed=5, phase="eval")
        else:
            from repro.workloads.cloud import make_cloud_trace, service_by_code

            def mk():
                return make_cloud_trace(service_by_code("K"), seed=5, core_id=0)
        a, b = mk(), mk()
        assert [a.next_op() for _ in range(200)] == [
            b.next_op() for _ in range(200)
        ]


class TestBuilder:
    @pytest.mark.parametrize(
        "codes,loop,names",
        [
            ("kcb", "closed", ["mcf", "swim", "wupwise"]),
            ("Kb", "open", ["kvstore", "wupwise"]),
        ],
        ids=["closed", "open"],
    )
    def test_custom_mix(self, codes, loop, names):
        from repro.workloads.builder import custom_mix

        mix = custom_mix(codes)
        assert mix.num_cores == len(codes)
        if loop == "closed":
            assert type(mix).__name__ == "Mix"
            assert [a.name for a in mix.apps()] == names
        else:
            assert type(mix).__name__ == "CloudMix"
            got = [s.name for s in mix.services()]
            got += [a.name for a in mix.batch_apps()]
            assert got == names

    @pytest.mark.parametrize("codes", ["k?", "K?"], ids=["closed", "open"])
    def test_custom_mix_validates_codes(self, codes):
        from repro.workloads.builder import custom_mix

        with pytest.raises(KeyError):
            custom_mix(codes)

    def test_random_mem_mix_all_mem(self):
        from repro.workloads.builder import random_mix

        mix = random_mix(4, "MEM", seed=9)
        assert all(a.klass == "MEM" for a in mix.apps())
        assert mix.group == "MEM"

    def test_random_mix_half_and_half(self):
        from repro.workloads.builder import random_mix

        mix = random_mix(4, "MIX", seed=9)
        klasses = [a.klass for a in mix.apps()]
        assert klasses.count("ILP") == 2
        assert klasses.count("MEM") == 2

    def test_random_mix_deterministic(self):
        from repro.workloads.builder import random_mix

        assert random_mix(8, "MEM", seed=3).codes == random_mix(8, "MEM", seed=3).codes
        assert random_mix(8, "MEM", seed=3).codes != random_mix(8, "MEM", seed=4).codes

    def test_no_duplicates_option(self):
        from repro.workloads.builder import random_mix

        mix = random_mix(8, "MEM", seed=5, allow_duplicates=False)
        assert len(set(mix.codes)) == 8

    def test_no_duplicates_overflow(self):
        from repro.workloads.builder import random_mix

        with pytest.raises(ValueError):
            random_mix(20, "MEM", seed=5, allow_duplicates=False)

    def test_suite_shape(self):
        from repro.workloads.builder import random_workload_suite

        suite = random_workload_suite(4, seed=2, mixes_per_group=3)
        assert len(suite) == 6
        assert {m.group for m in suite} == {"MEM", "MIX"}
        assert all(m.num_cores == 4 for m in suite)


class TestMpkiContract:
    """The generator must honour each app's mpki target (the property the
    whole Table 2 calibration rests on)."""

    @pytest.mark.parametrize("code", ["c", "k", "b", "a", "t"])
    def test_miss_density_tracks_mpki(self, code):
        from repro.workloads.synthetic import (
            _CHASE_BASE_LINE,
            _STREAM_BASE_LINE,
        )

        app = app_by_code(code)
        t = make_trace(app, seed=3, phase="eval")
        for _ in range(t._hot_lines + t._l2_lines):  # skip prologue
            t.next_op()
        n_ops = 60_000
        insts = 0
        misses = 0
        for _ in range(n_ops):
            op = t.next_op()
            insts += op.gap + 1
            line = (op.addr - t.base_addr) // 64
            if line >= _CHASE_BASE_LINE or line >= _STREAM_BASE_LINE:
                misses += 1
        measured_mpki = misses / insts * 1000
        # generous band: stochastic burst structure wobbles short windows
        assert measured_mpki == pytest.approx(app.mpki, rel=0.35, abs=0.05)


class TestPhaseBehaviour:
    """Optional phase alternation (extension for the online-ME study)."""

    def _miss_count(self, trace, n_ops):
        from repro.workloads.synthetic import _CHASE_BASE_LINE

        misses = 0
        for _ in range(n_ops):
            op = trace.next_op()
            if (op.addr - trace.base_addr) // 64 >= _CHASE_BASE_LINE:
                misses += 1
        return misses

    def test_stationary_by_default(self):
        app = app_by_code("c")
        assert app.phase_period == 0

    def test_phases_modulate_miss_rate(self):
        import dataclasses

        base = app_by_code("c")
        phased = dataclasses.replace(
            base, phase_period=4000, phase_mpki_scale=0.05
        )
        t = make_trace(phased, seed=3, phase="eval")
        for _ in range(t._hot_lines + t._l2_lines):
            t.next_op()
        # phase 0 (nominal) vs phase 1 (scaled down)
        hot_phase = self._miss_count(t, 3500)
        t.next_op()  # cross into odd phase territory
        while (t.ops_generated // 4000) % 2 == 0:
            t.next_op()
        cold_phase = self._miss_count(t, 3500)
        assert cold_phase < hot_phase * 0.5

    def test_phase_validation(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(app_by_code("c"), phase_period=-1).validate()
        with pytest.raises(ValueError):
            dataclasses.replace(app_by_code("c"), phase_mpki_scale=-0.1).validate()
