"""Memoization-key hygiene for :class:`ExperimentContext`.

Regression tests for the seed-list audit: two contexts that differ only
in ``seeds`` (or any other run determinant) must never exchange memo
entries.  In-memory memos are per-instance, so the sharing risk is the
*disk* cache — these tests drive two contexts through one shared cache
directory and assert isolation via the cache's own hit/miss accounting.
"""

from __future__ import annotations

import dataclasses

from repro.config import SystemConfig
from repro.experiments.cache import ResultCache
from repro.experiments.cells import CellKey, eval_cell_key
from repro.experiments.harness import ExperimentContext

BUDGET = 300
WARMUP = 200
PROFILE = 200


def _ctx(cache_dir, **overrides) -> ExperimentContext:
    kw = dict(inst_budget=BUDGET, warmup_insts=WARMUP,
              profile_budget=PROFILE, seeds=(1,),
              cache=ResultCache(root=cache_dir, mode="rw"))
    kw.update(overrides)
    return ExperimentContext(**kw)


def test_contexts_differing_only_in_seeds_do_not_share(tmp_path):
    a = _ctx(tmp_path, seeds=(1,))
    res_a = a.run("2MEM-1", "HF-RF", 1)
    assert a.cache.stats.writes >= 1

    b = _ctx(tmp_path, seeds=(2,))
    res_b = b.run("2MEM-1", "HF-RF", 2)
    assert b.cache.stats.hits == 0  # seed 2 must not see seed 1's entry
    assert res_b != res_a

    # the same seed DOES share — that is the point of the cache
    c = _ctx(tmp_path, seeds=(1,))
    res_c = c.run("2MEM-1", "HF-RF", 1)
    assert c.cache.stats.hits == 1 and c.cache.stats.misses == 0
    assert res_c == res_a


def test_in_memory_memo_is_per_seed():
    ctx = ExperimentContext(inst_budget=BUDGET, warmup_insts=WARMUP,
                            profile_budget=PROFILE, seeds=(1, 2))
    r1 = ctx.run("2MEM-1", "HF-RF", 1)
    r2 = ctx.run("2MEM-1", "HF-RF", 2)
    assert r1 != r2
    assert ctx.run("2MEM-1", "HF-RF", 1) is r1  # memoised per seed
    assert ctx.run("2MEM-1", "HF-RF", 2) is r2


def test_profile_budget_isolates_me_family_entries(tmp_path):
    """ME-family results depend on the profiling budget; changing it must
    invalidate exactly those entries and nothing else."""
    a = _ctx(tmp_path, profile_budget=200)
    a.run("2MEM-1", "ME-LREQ", 1)
    a.run("2MEM-1", "HF-RF", 1)

    b = _ctx(tmp_path, profile_budget=250)
    b.run("2MEM-1", "HF-RF", 1)
    assert b.cache.stats.hits == 1  # HF-RF ignores the profiling budget
    b.run("2MEM-1", "ME-LREQ", 1)
    hits_after = b.cache.stats.hits
    assert hits_after == 1  # the ME-LREQ eval entry did NOT carry over


def test_eval_key_covers_every_determinant():
    cfg = SystemConfig()
    base = eval_cell_key("4MEM-1", "ME-LREQ", 1, 300, 200, 256, cfg, 150)
    variants = [
        eval_cell_key("4MEM-2", "ME-LREQ", 1, 300, 200, 256, cfg, 150),
        eval_cell_key("4MEM-1", "ME", 1, 300, 200, 256, cfg, 150),
        eval_cell_key("4MEM-1", "ME-LREQ", 2, 300, 200, 256, cfg, 150),
        eval_cell_key("4MEM-1", "ME-LREQ", 1, 301, 200, 256, cfg, 150),
        eval_cell_key("4MEM-1", "ME-LREQ", 1, 300, 201, 256, cfg, 150),
        eval_cell_key("4MEM-1", "ME-LREQ", 1, 300, 200, 128, cfg, 150),
        eval_cell_key("4MEM-1", "ME-LREQ", 1, 300, 200, 256, cfg, 151),
        eval_cell_key("4MEM-1", "ME-LREQ", 1, 300, 200, 256,
                      cfg.with_cores(8), 150),
    ]
    digests = {base.digest()} | {v.digest() for v in variants}
    assert len(digests) == 1 + len(variants)


def test_non_me_policies_ignore_profile_budget_in_key():
    cfg = SystemConfig()
    a = eval_cell_key("4MEM-1", "HF-RF", 1, 300, 200, 256, cfg, 150)
    b = eval_cell_key("4MEM-1", "HF-RF", 1, 300, 200, 256, cfg, 999)
    assert a.digest() == b.digest()  # result cannot depend on profiling


def test_cellkey_digest_sensitive_to_every_field():
    base = CellKey(kind="eval", workload="4MEM-1", policy="HF-RF", seed=1,
                   inst_budget=300, warmup=200, config_digest="abc",
                   phase="eval", lookahead=256, profile_budget=0,
                   policy_args=())
    seen = {base.digest()}
    for change in (
        {"kind": "custom"}, {"workload": "4MEM-2"}, {"policy": "RR"},
        {"seed": 2}, {"inst_budget": 301}, {"warmup": 201},
        {"config_digest": "abd"}, {"phase": "profile"},
        {"lookahead": 128}, {"profile_budget": 100},
        {"policy_args": (("table_bits", 6),)},
    ):
        d = dataclasses.replace(base, **change).digest()
        assert d not in seen, change
        seen.add(d)
