"""Tests for the DRAM bank state machine."""

from repro.config import DramTimingConfig
from repro.dram.bank import Bank

T = DramTimingConfig()  # tRP=tRCD=tCL=40, burst=16, tWR=48


def make_bank():
    return Bank(0, T)


class TestInitialState:
    def test_starts_precharged(self):
        b = make_bank()
        assert b.open_row is None
        assert b.ready_cycle == 0
        assert not b.is_open(5)

    def test_access_start_is_now_when_idle(self):
        b = make_bank()
        assert b.access_start(100) == 100


class TestCommit:
    def test_keep_open_latches_row(self):
        b = make_bank()
        b.commit(7, data_end=200, was_hit=False, is_write=False, keep_open=True)
        assert b.is_open(7)
        assert b.ready_cycle == 200  # CAS to same row may follow the burst

    def test_auto_precharge_closes_row(self):
        b = make_bank()
        b.commit(7, data_end=200, was_hit=False, is_write=False, keep_open=False)
        assert b.open_row is None
        assert b.ready_cycle == 200 + T.t_rp

    def test_write_recovery_added(self):
        b = make_bank()
        b.commit(7, data_end=200, was_hit=False, is_write=True, keep_open=False)
        assert b.ready_cycle == 200 + T.t_wr + T.t_rp

    def test_hit_and_activation_counters(self):
        b = make_bank()
        b.commit(1, 100, was_hit=False, is_write=False, keep_open=True)
        b.commit(1, 200, was_hit=True, is_write=False, keep_open=True)
        assert b.activations == 1
        assert b.row_hits == 1


class TestPrecharge:
    def test_precharge_open_bank(self):
        b = make_bank()
        b.commit(3, data_end=100, was_hit=False, is_write=False, keep_open=True)
        b.precharge(now=150)
        assert b.open_row is None
        assert b.ready_cycle == 150 + T.t_rp

    def test_precharge_waits_for_bank(self):
        b = make_bank()
        b.commit(3, data_end=100, was_hit=False, is_write=False, keep_open=True)
        # bank ready at 100; precharge issued earlier must queue behind it
        b.precharge(now=50)
        assert b.ready_cycle == 100 + T.t_rp

    def test_precharge_idempotent_when_closed(self):
        b = make_bank()
        b.precharge(now=10)
        assert b.ready_cycle == 0  # nothing to close


class TestReset:
    def test_reset_restores_initial_state(self):
        b = make_bank()
        b.commit(3, 100, was_hit=False, is_write=True, keep_open=True)
        b.reset()
        assert b.open_row is None
        assert b.ready_cycle == 0
        assert b.activations == 0
        assert b.row_hits == 0
