"""Golden cloud tail-latency table: the bit-identity contract for the
open-loop workload family.

Same deal as ``test_golden_stats.py``: both simulation backends must
reproduce the SAME checked-in snapshot — per-request latencies in
integer cycles, SLO-violation attribution vectors, batch IPCs through
``float.hex()``, and the rendered table byte for byte.  On top of the
backend axis, the rendered table must also be byte-identical between
serial execution and the ``--jobs 2`` cell planner.

Regenerate deliberately (a model change, not an optimization)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_cloud_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext, format_cloud, run_cloud_table
from repro.experiments.cloud import run_cloud
from repro.experiments.parallel import merge_into, plan_cells, run_cells
from repro.metrics.memory_efficiency import MeProfiler
from repro.sim.backend import ENV_VAR
from repro.workloads.cloud import cloud_mix_by_name

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_cloud.json"

MIXES = ("2CLD-1",)
POLICIES = ("FCFS", "HF-RF", "ME-LREQ")
BUDGET = 2000
WARMUP = 1500
PROFILE_BUDGET = 1000
SEEDS = (1,)
BACKENDS = ("object", "fast")


def _hex(x: float) -> str:
    return float(x).hex()


def small_ctx() -> ExperimentContext:
    return ExperimentContext(
        inst_budget=BUDGET, seeds=SEEDS, profile_budget=PROFILE_BUDGET,
        warmup_insts=WARMUP,
    )


def _batch_me(mix, seed: int):
    profiler = MeProfiler(inst_budget=PROFILE_BUDGET, seed=seed)
    return tuple(profiler.profile(app).me for app in mix.batch_apps())


def _run_detail(mix_name: str, policy: str, backend: str) -> dict:
    mix = cloud_mix_by_name(mix_name)
    me = _batch_me(mix, SEEDS[0]) if policy.startswith("ME-") else None
    r = run_cloud(
        mix_name, policy, inst_budget=BUDGET, seed=SEEDS[0],
        warmup_insts=WARMUP, me_values=me, backend=backend,
    )
    return {
        "end_cycle": r.end_cycle,
        "row_hit_rate": _hex(r.row_hit_rate),
        "services": [
            {
                "code": s.code,
                "slo": s.slo,
                "requests": s.requests,
                "latencies": list(s.latencies),
                "viol_count": s.viol_count,
                "viol_latency_sum": s.viol_latency_sum,
                "viol_components": list(s.viol_components),
            }
            for s in r.services
        ],
        "batch": [
            {"app": b.app, "ipc": _hex(b.ipc), "reads": b.reads}
            for b in r.batch
        ],
    }


def _current_snapshot(backend: str) -> dict:
    rows = run_cloud_table(small_ctx(), mixes=MIXES, policies=POLICIES)
    return {
        "mixes": list(MIXES),
        "seeds": list(SEEDS),
        "budget": BUDGET,
        "warmup": WARMUP,
        "profile_budget": PROFILE_BUDGET,
        "table": format_cloud(rows),
        "runs": {
            f"{m}:{p}": _run_detail(m, p, backend)
            for m in MIXES for p in POLICIES
        },
    }


def _diff_paths(expected, actual, prefix=""):
    diffs = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for k in sorted(set(expected) | set(actual)):
            diffs += _diff_paths(
                expected.get(k), actual.get(k), f"{prefix}.{k}" if prefix else k
            )
    elif isinstance(expected, list) and isinstance(actual, list) and len(
        expected
    ) == len(actual):
        for i, (e, a) in enumerate(zip(expected, actual)):
            diffs += _diff_paths(e, a, f"{prefix}[{i}]")
    elif expected != actual:
        diffs.append(f"{prefix}: expected {expected!r}, got {actual!r}")
    return diffs


@pytest.fixture(scope="module", params=BACKENDS)
def snapshot(request):
    """One snapshot per backend; the serial table goes through the same
    env override the CLI's ``--backend`` flag uses."""
    backend = request.param
    saved = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = backend
    try:
        snap = _current_snapshot(backend)
    finally:
        if saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved
    return backend, snap


def test_golden_snapshot_exists():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — run with REPRO_REGEN_GOLDEN=1 to create it"
    )


def test_golden_cloud_bit_identical(snapshot):
    backend, snap = snapshot
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        if backend != "object":
            pytest.skip("golden file is regenerated from the object backend")
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(snap, indent=2) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    golden = json.loads(GOLDEN_PATH.read_text())
    diffs = _diff_paths(golden, snap)
    assert not diffs, (
        f"cloud statistics drifted from the golden snapshot under the "
        f"{backend!r} backend:\n  " + "\n  ".join(diffs[:40])
    )


def test_attribution_conserved_in_golden(snapshot):
    """The committed numbers themselves satisfy the conservation law."""
    _backend, snap = snapshot
    for detail in snap["runs"].values():
        for svc in detail["services"]:
            expected = sum(
                lat for lat in svc["latencies"] if lat > svc["slo"]
            )
            assert svc["viol_latency_sum"] == expected
            assert sum(svc["viol_components"]) == svc["viol_latency_sum"]


def test_policies_distinguishable(snapshot):
    _backend, snap = snapshot
    cycles = {k: d["end_cycle"] for k, d in snap["runs"].items()}
    assert len(set(cycles.values())) > 1, cycles


def test_parallel_prewarm_is_byte_identical():
    serial_table = format_cloud(
        run_cloud_table(small_ctx(), mixes=MIXES, policies=POLICIES)
    )

    ctx = small_ctx()
    cells = plan_cells(ctx, cloud=(MIXES, POLICIES))
    kinds = {c.key.kind for c in cells}
    assert "cloud" in kinds
    clouds = [c for c in cells if c.key.kind == "cloud"]
    assert len(clouds) == len(MIXES) * len(POLICIES) * len(SEEDS)
    report = run_cells(cells, jobs=2)
    assert not report.failures, report.failure_report()
    merge_into(ctx, report)
    parallel_table = format_cloud(
        run_cloud_table(ctx, mixes=MIXES, policies=POLICIES)
    )

    assert parallel_table == serial_table
