"""Tests for the DRAM command-log reconstruction."""

import pytest

from repro.config import DramTimingConfig, DramTopologyConfig
from repro.dram.command import CommandKind, CommandLog, DramCommand
from repro.dram.dram_system import DramSystem

T = DramTimingConfig()


def logged_system():
    """DramSystem with an attached CommandLog observer."""
    dram = DramSystem(DramTopologyConfig(), T, 64)
    log = CommandLog(T).attach(dram)
    return dram, log


class TestReconstruction:
    def test_closed_bank_read(self):
        dram, log = logged_system()
        dram.execute(dram.coord(0), 0, is_write=False, keep_open=False)
        kinds = [c.kind for c in sorted(log.commands)]
        assert kinds == [CommandKind.ACTIVATE, CommandKind.READ_AP]

    def test_row_hit_needs_no_activate(self):
        dram, log = logged_system()
        c = dram.coord(0)
        dram.execute(c, 0, is_write=False, keep_open=True)
        log.clear()
        c2 = dram.coord(32 * 64)  # same bank/row, next column
        dram.execute(c2, 500, is_write=False, keep_open=False)
        kinds = [c.kind for c in log.commands]
        assert kinds == [CommandKind.READ_AP]

    def test_write_command_kind(self):
        dram, log = logged_system()
        dram.execute(dram.coord(0), 0, is_write=True, keep_open=True)
        assert log.count(CommandKind.WRITE) == 1

    def test_conflict_emits_precharge(self):
        dram, log = logged_system()
        dram.execute(dram.coord(0), 0, is_write=False, keep_open=True)
        log.clear()
        # same bank, different row, while row 0 is open
        conflict_addr = 4096 * 64
        dram.execute(dram.coord(conflict_addr), 500, is_write=False, keep_open=False)
        kinds = [c.kind for c in sorted(log.commands)]
        assert kinds == [
            CommandKind.PRECHARGE, CommandKind.ACTIVATE, CommandKind.READ_AP,
        ]

    def test_act_to_cas_spacing_is_trcd(self):
        dram, log = logged_system()
        dram.execute(dram.coord(0), 0, is_write=False, keep_open=False)
        cmds = sorted(log.commands)
        assert cmds[1].cycle - cmds[0].cycle == T.t_rcd


class TestDiscipline:
    def test_verify_accepts_legal_stream(self):
        dram, log = logged_system()
        for i in range(64):
            keep = i % 2 == 0
            dram.execute(dram.coord(i * 64), i * 20, is_write=False, keep_open=keep)
        # follow-up hits on kept-open rows
        for i in range(0, 64, 2):
            dram.execute(
                dram.coord(i * 64 + 32 * 64 * 1), 2000 + i * 20,
                is_write=False, keep_open=False,
            )
        log.verify_bank_discipline()

    def test_verify_rejects_wrong_row(self):
        log = CommandLog(T)
        log.commands.append(DramCommand(0, 0, 0, CommandKind.ACTIVATE, 1))
        log.commands.append(DramCommand(40, 0, 0, CommandKind.READ, 2))
        with pytest.raises(AssertionError):
            log.verify_bank_discipline()

    def test_verify_rejects_act_on_open_bank(self):
        log = CommandLog(T)
        log.commands.append(DramCommand(0, 0, 0, CommandKind.ACTIVATE, 1))
        log.commands.append(DramCommand(40, 0, 0, CommandKind.ACTIVATE, 2))
        with pytest.raises(AssertionError):
            log.verify_bank_discipline()

    def test_per_bank_filter(self):
        dram, log = logged_system()
        dram.execute(dram.coord(0), 0, is_write=False, keep_open=False)  # b0
        dram.execute(dram.coord(128), 0, is_write=False, keep_open=False)  # b1
        assert len(log.per_bank(0, 0)) == 2
        assert len(log.per_bank(0, 1)) == 2
        assert len(log.per_bank(1, 0)) == 0


class TestEndToEndDiscipline:
    def test_full_simulation_obeys_bank_discipline(self):
        """Wire a CommandLog through a real multi-core run and verify."""
        from repro.config import SystemConfig
        from repro.core import make_policy
        from repro.sim.system import MultiCoreSystem
        from repro.workloads.mixes import workload_by_name
        from repro.workloads.synthetic import make_trace

        mix = workload_by_name("2MEM-1")
        cfg = SystemConfig(num_cores=2)
        traces = [make_trace(a, 5, "eval", i) for i, a in enumerate(mix.apps())]
        sys_ = MultiCoreSystem(
            cfg, make_policy("HF-RF"), traces, 3000, warmup_insts=8000, seed=5
        )
        log = CommandLog(cfg.dram_timing).attach(sys_.dram)
        sys_.run()
        assert len(log.commands) > 100
        log.verify_bank_discipline()
