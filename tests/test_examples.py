"""Smoke tests: every example script runs end-to-end at a tiny budget."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        r = run_example("quickstart.py", "--budget", "6000")
        assert r.returncode == 0, r.stderr
        assert "SMT speedup" in r.stdout
        assert "simulated machine" in r.stdout

    def test_policy_comparison(self):
        r = run_example(
            "policy_comparison.py", "--cores", "2", "--group", "MEM",
            "--budget", "4000",
        )
        assert r.returncode == 0, r.stderr
        assert "best policy" in r.stdout
        assert "2MEM-1" in r.stdout

    def test_fairness_study(self):
        r = run_example("fairness_study.py", "--budget", "5000")
        assert r.returncode == 0, r.stderr
        assert "unfair" in r.stdout
        assert "ME-LREQ" in r.stdout

    def test_online_me(self):
        r = run_example("online_me.py", "--budget", "8000", "--window", "5000")
        assert r.returncode == 0, r.stderr
        assert "online" in r.stdout

    def test_trace_tools(self, tmp_path):
        out = tmp_path / "t.trace"
        r = run_example(
            "trace_tools.py", "--ops", "600", "--budget", "2500",
            "--out", str(out),
        )
        assert r.returncode == 0, r.stderr
        assert out.exists()
        assert "p50=" in r.stdout

    def test_parallel_sweep(self):
        r = run_example(
            "parallel_sweep.py", "--cores", "2", "--budget", "3000",
            "--workers", "1", "--seeds", "3",
        )
        assert r.returncode == 0, r.stderr
        assert "group averages" in r.stdout
        assert "simulations/s" in r.stdout

    def test_telemetry_tour(self, tmp_path):
        r = run_example(
            "telemetry_tour.py", "--budget", "5000", "--policy", "HF-RF",
            "--out-dir", str(tmp_path),
        )
        assert r.returncode == 0, r.stderr
        assert "write-drain windows" in r.stdout
        assert "load in Perfetto" in r.stdout
        assert (tmp_path / "tour.trace.json").exists()
        assert (tmp_path / "tour.telemetry.jsonl").exists()
        assert (tmp_path / "tour.telemetry.csv").exists()

    def test_policy_anatomy(self):
        r = run_example(
            "policy_anatomy.py", "--workload", "2MEM-1", "--budget", "4000",
            "--policies", "FCFS", "LREQ",
        )
        assert r.returncode == 0, r.stderr
        assert "service share" in r.stdout
        assert "bus util" in r.stdout
