"""Tests for the evaluation metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.memory_efficiency import memory_efficiency
from repro.metrics.speedup import slowdowns, smt_speedup, unfairness
from repro.metrics.stats import OnlineStat, WindowedCounter

ipc_lists = st.lists(
    st.floats(min_value=0.01, max_value=8.0, allow_nan=False), min_size=1, max_size=8
)


class TestSmtSpeedup:
    def test_ideal_n_core(self):
        assert smt_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_half_speed(self):
        assert smt_speedup([0.5, 1.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            smt_speedup([1.0], [1.0, 2.0])

    def test_zero_ipc_rejected(self):
        with pytest.raises(ValueError):
            smt_speedup([0.0], [1.0])
        with pytest.raises(ValueError):
            smt_speedup([1.0], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            smt_speedup([], [])

    @given(ipc_lists)
    def test_bounded_by_core_count(self, singles):
        # running multiprogrammed can't beat running alone per-core here
        multi = [s * 0.9 for s in singles]
        assert smt_speedup(multi, singles) <= len(singles)


class TestUnfairness:
    def test_perfectly_fair(self):
        assert unfairness([0.5, 1.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_starved_core(self):
        # core 1 at 10% of solo, core 0 at 100%
        assert unfairness([1.0, 0.2], [1.0, 2.0]) == pytest.approx(10.0)

    def test_slowdowns(self):
        assert slowdowns([0.5, 1.0], [1.0, 3.0]) == (2.0, 3.0)

    @given(ipc_lists)
    def test_at_least_one(self, singles):
        multi = [s / 2 for s in singles]
        assert unfairness(multi, singles) >= 1.0


class TestMemoryEfficiency:
    def test_eq1(self):
        assert memory_efficiency(1.5, 3.0) == 0.5

    def test_zero_bandwidth_capped(self):
        assert memory_efficiency(2.0, 0.0) == 1e5

    def test_cap_applied(self):
        assert memory_efficiency(1e7, 1.0, cap=100.0) == 100.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            memory_efficiency(-1.0, 1.0)


class TestOnlineStat:
    def test_mean_and_variance(self):
        s = OnlineStat()
        for x in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            s.add(x)
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(2.138, abs=1e-3)
        assert s.min == 2.0 and s.max == 9.0

    def test_empty(self):
        s = OnlineStat()
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_merge_equivalent_to_sequential(self):
        xs = [1.0, 5.0, 2.5, 7.0, 3.3]
        a, b, whole = OnlineStat(), OnlineStat(), OnlineStat()
        for x in xs[:2]:
            a.add(x)
        for x in xs[2:]:
            b.add(x)
        for x in xs:
            whole.add(x)
        a.merge(b)
        assert a.n == whole.n
        assert a.mean == pytest.approx(whole.mean)
        assert a.variance == pytest.approx(whole.variance)
        assert a.min == whole.min and a.max == whole.max

    def test_merge_empty_sides(self):
        a, b = OnlineStat(), OnlineStat()
        b.add(3.0)
        a.merge(b)
        assert a.mean == 3.0
        a.merge(OnlineStat())
        assert a.mean == 3.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_matches_numpy(self, xs):
        import numpy as np

        s = OnlineStat()
        for x in xs:
            s.add(x)
        assert s.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(
            float(np.var(xs, ddof=1)), rel=1e-6, abs=1e-6
        )


class TestWindowedCounter:
    def test_deltas(self):
        w = WindowedCounter()
        assert w.sample(10) == 10
        assert w.sample(10) == 0
        assert w.sample(25) == 15

    def test_initial_offset(self):
        w = WindowedCounter(initial=100)
        assert w.sample(130) == 30

    def test_backwards_rejected(self):
        w = WindowedCounter()
        w.sample(10)
        with pytest.raises(ValueError):
            w.sample(5)


class TestReservoirSampler:
    def test_keeps_everything_under_capacity(self):
        from repro.metrics.stats import ReservoirSampler

        r = ReservoirSampler(10)
        for x in range(5):
            r.add(float(x))
        assert sorted(r.sample) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_capacity_bound(self):
        from repro.metrics.stats import ReservoirSampler

        r = ReservoirSampler(8)
        for x in range(1000):
            r.add(float(x))
        assert len(r.sample) == 8
        assert r.seen == 1000

    def test_percentiles_plausible(self):
        from repro.metrics.stats import ReservoirSampler

        r = ReservoirSampler(512, seed=3)
        for x in range(10_000):
            r.add(float(x))
        assert 3500 < r.percentile(50) < 6500
        assert r.percentile(0) <= r.percentile(100)

    def test_percentile_validation(self):
        from repro.metrics.stats import ReservoirSampler

        r = ReservoirSampler(4)
        with pytest.raises(ValueError):
            r.percentile(50)  # empty
        r.add(1.0)
        with pytest.raises(ValueError):
            r.percentile(101)

    def test_deterministic(self):
        from repro.metrics.stats import ReservoirSampler

        a, b = ReservoirSampler(8, seed=5), ReservoirSampler(8, seed=5)
        for x in range(200):
            a.add(float(x))
            b.add(float(x))
        assert a.sample == b.sample

    def test_clear(self):
        from repro.metrics.stats import ReservoirSampler

        r = ReservoirSampler(4)
        r.add(1.0)
        r.clear()
        assert r.sample == [] and r.seen == 0
