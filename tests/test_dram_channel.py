"""Tests for the logic-channel timing model (banks + shared data bus)."""

import pytest

from repro.config import DramTimingConfig
from repro.dram.channel import Channel

T = DramTimingConfig()  # 40/40/40, burst 16, tWR 48


def make_channel(banks=4):
    return Channel(0, banks, T)


class TestSingleTransaction:
    def test_closed_bank_timing(self):
        ch = make_channel()
        t = ch.execute(0, row=5, now=100, is_write=False, keep_open=False)
        assert not t.row_hit
        assert t.cas_cycle == 100 + T.t_rcd
        assert t.data_start == t.cas_cycle + T.t_cl
        assert t.data_end == t.data_start + T.t_burst
        # total: 40 + 40 + 16 = 96 cycles
        assert t.data_end - 100 == 96

    def test_row_hit_timing(self):
        ch = make_channel()
        first = ch.execute(0, row=5, now=0, is_write=False, keep_open=True)
        t = ch.execute(0, row=5, now=first.data_end, is_write=False, keep_open=True)
        assert t.row_hit
        # hit skips ACT: CAS at bank-ready
        assert t.cas_cycle == first.data_end
        assert t.data_end - t.cas_cycle == T.t_cl + T.t_burst

    def test_open_row_conflict_pays_precharge(self):
        ch = make_channel()
        first = ch.execute(0, row=5, now=0, is_write=False, keep_open=True)
        t = ch.execute(0, row=9, now=first.data_end, is_write=False, keep_open=False)
        assert not t.row_hit
        assert t.cas_cycle == first.data_end + T.t_rp + T.t_rcd


class TestBusSerialisation:
    def test_bursts_never_overlap(self):
        ch = make_channel(banks=8)
        windows = []
        now = 0
        for bank in range(8):
            t = ch.execute(bank, row=1, now=now, is_write=False, keep_open=False)
            windows.append((t.data_start, t.data_end))
            now += 1  # near-simultaneous commits
        windows.sort()
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert s2 >= e1, "data bursts overlapped on the shared bus"

    def test_bank_prep_overlaps_bus(self):
        # two transactions on different banks: the second's ACT overlaps the
        # first's CAS/burst, so its data follows back-to-back
        ch = make_channel()
        t1 = ch.execute(0, row=1, now=0, is_write=False, keep_open=False)
        t2 = ch.execute(1, row=1, now=16, is_write=False, keep_open=False)
        assert t2.data_start == t1.data_end  # seamless on the bus

    def test_same_bank_serialises_on_bank(self):
        ch = make_channel()
        t1 = ch.execute(0, row=1, now=0, is_write=False, keep_open=False)
        t2 = ch.execute(0, row=2, now=1, is_write=False, keep_open=False)
        # bank 0 not ready until data_end + tRP
        assert t2.cas_cycle >= t1.data_end + T.t_rp


class TestPacing:
    def test_one_decision_per_burst_slot(self):
        ch = make_channel()
        ch.execute(0, row=1, now=100, is_write=False, keep_open=False)
        assert ch.earliest_issue(100) == 100 + T.t_burst

    def test_idle_channel_issues_immediately(self):
        ch = make_channel()
        assert ch.earliest_issue(500) == 500


class TestStatsAndReset:
    def test_counters(self):
        ch = make_channel()
        ch.execute(0, row=1, now=0, is_write=False, keep_open=True)
        t = ch.execute(0, row=1, now=200, is_write=False, keep_open=True)
        assert t.row_hit
        assert ch.transactions == 2
        assert ch.total_row_hits == 1
        assert ch.total_activations == 1

    def test_reset(self):
        ch = make_channel()
        ch.execute(0, row=1, now=0, is_write=False, keep_open=True)
        ch.reset()
        assert ch.transactions == 0
        assert ch.bus_free_cycle == 0
        assert ch.earliest_issue(0) == 0
        assert not ch.is_row_hit(0, 1)

    def test_needs_at_least_one_bank(self):
        with pytest.raises(ValueError):
            Channel(0, 0, T)


class TestActivateRateConstraints:
    """Optional tRRD / tFAW enforcement (disabled in the paper baseline)."""

    def test_trrd_spaces_activates(self):
        from dataclasses import replace

        t = replace(T, t_rrd=24)
        ch = Channel(0, 8, t)
        t1 = ch.execute(0, row=1, now=0, is_write=False, keep_open=False)
        t2 = ch.execute(1, row=1, now=0, is_write=False, keep_open=False)
        act1 = t1.cas_cycle - t.t_rcd
        act2 = t2.cas_cycle - t.t_rcd
        assert act2 - act1 >= 24

    def test_tfaw_caps_four_activate_window(self):
        from dataclasses import replace

        t = replace(T, t_faw=120)
        ch = Channel(0, 8, t)
        acts = []
        for bank in range(5):
            tr = ch.execute(bank, row=1, now=0, is_write=False, keep_open=False)
            acts.append(tr.cas_cycle - t.t_rcd)
        # the 5th ACT must fall outside the window opened by the 1st
        assert acts[4] - acts[0] >= 120

    def test_disabled_by_default(self):
        ch = Channel(0, 8, T)
        t1 = ch.execute(0, row=1, now=0, is_write=False, keep_open=False)
        t2 = ch.execute(1, row=1, now=0, is_write=False, keep_open=False)
        # without constraints both ACTs may issue at cycle 0
        assert t1.cas_cycle == t2.cas_cycle

    def test_hits_do_not_consume_act_budget(self):
        from dataclasses import replace

        t = replace(T, t_faw=120)
        ch = Channel(0, 8, t)
        ch.execute(0, row=1, now=0, is_write=False, keep_open=True)
        # row hits: no ACT, so the window never fills
        for i in range(6):
            tr = ch.execute(0, row=1, now=200 * (i + 1), is_write=False, keep_open=True)
            assert tr.row_hit
        assert len(ch._act_times) == 1
