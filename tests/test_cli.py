"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main
from repro.sim.backend import ENV_VAR as BACKEND_ENV_VAR


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "4MEM-1", "ME-LREQ"])
        assert args.workload == "4MEM-1"
        assert args.policy == "ME-LREQ"

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "7"])

    def test_backend_choices(self):
        args = build_parser().parse_args(["run", "4MEM-1", "LREQ",
                                          "--backend", "fast"])
        assert args.backend == "fast"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "4MEM-1", "LREQ",
                                       "--backend", "turbo"])


class TestCommands:
    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "ME-LREQ" in out and "HF-RF" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "4MEM-1" in out and "wupwise" in out
        assert "4CLD-1" in out and "kvstore" in out
        # 36 Table 3 mixes + 5 cloud mixes
        assert out.count("\n") == 41

    def test_profile_one_app(self, capsys):
        assert main(["profile", "--app", "eon", "--budget", "3000"]) == 0
        out = capsys.readouterr().out
        assert "eon" in out

    def test_run_small(self, capsys):
        assert main(["run", "2MEM-1", "LREQ", "--budget", "3000"]) == 0
        out = capsys.readouterr().out
        assert "SMT speedup" in out
        assert "unfairness" in out

    def test_run_backend_flag_sets_env(self, capsys, monkeypatch):
        """--backend exports REPRO_BACKEND (workers inherit it) and both
        engines print byte-identical reports."""
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        outputs = {}
        for backend in ("object", "fast"):
            assert main(["run", "2MEM-1", "LREQ", "--budget", "3000",
                         "--backend", backend]) == 0
            assert os.environ.get(BACKEND_ENV_VAR) == backend
            outputs[backend] = capsys.readouterr().out
            monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert outputs["object"] == outputs["fast"]
