"""Tests for the cProfile-based engine profiling hooks."""

import pytest

from repro.telemetry.profiling import EngineProfiler


def _busy(n=2000):
    return sum(i * i for i in range(n))


class TestEngineProfiler:
    def test_in_memory_summary(self):
        with EngineProfiler(top_n=5) as prof:
            _busy()
        assert prof.pstats_path is None and prof.folded_path is None
        assert 0 < len(prof.top) <= 5
        funcs = [e["func"] for e in prof.top]
        assert any("_busy" in f for f in funcs)
        # sorted by descending cumulative time
        cums = [e["cumtime"] for e in prof.top]
        assert cums == sorted(cums, reverse=True)
        for e in prof.top:
            assert set(e) == {"func", "ncalls", "tottime", "cumtime"}

    def test_writes_pstats_and_folded(self, tmp_path):
        base = tmp_path / "prof"
        with EngineProfiler(base) as prof:
            _busy()
        assert prof.pstats_path == str(base) + ".pstats"
        assert prof.folded_path == str(base) + ".folded"
        import pstats

        stats = pstats.Stats(prof.pstats_path)  # loadable dump
        assert stats.total_calls > 0
        folded = (tmp_path / "prof.folded").read_text()
        assert folded
        for line in folded.splitlines():
            stack, us = line.rsplit(" ", 1)
            assert stack
            assert int(us) > 0  # widths are microseconds, never zero
        assert any("_busy" in line for line in folded.splitlines())

    def test_exception_skips_artifacts(self, tmp_path):
        base = tmp_path / "prof"
        with pytest.raises(RuntimeError):
            with EngineProfiler(base) as prof:
                raise RuntimeError("engine blew up")
        assert not (tmp_path / "prof.pstats").exists()
        assert not (tmp_path / "prof.folded").exists()
        assert prof.top is not None  # summary still usable post-mortem

    def test_format_top_table(self):
        with EngineProfiler() as prof:
            _busy()
        table = prof.format_top()
        lines = table.splitlines()
        assert lines[0].split() == ["function", "ncalls", "tottime",
                                    "cumtime"]
        assert len(lines) == len(prof.top) + 1

    def test_format_top_empty(self):
        prof = EngineProfiler()
        with prof:
            pass
        if not prof.top:  # nothing measurable ran
            assert "no calls" in prof.format_top()

    def test_cli_run_profile(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["run", "2MEM-1", "LREQ", "--budget", "3000",
                     "--profile", str(tmp_path / "p")]) == 0
        out = capsys.readouterr().out
        assert "cumtime" in out
        assert (tmp_path / "p.pstats").exists()
        assert (tmp_path / "p.folded").exists()
