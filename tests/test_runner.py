"""Integration tests for the run helpers (full-stack, small budgets)."""

import pytest

from repro.config import SystemConfig
from repro.core import make_policy
from repro.sim.runner import run_multicore, run_single_core
from repro.workloads.mixes import workload_by_name
from repro.workloads.spec2000 import app_by_code

BUDGET = 4000
WARMUP = 8000  # must cover the trace prologue


class TestSingleCore:
    def test_swim_profile_plausible(self):
        res = run_single_core(app_by_code("c"), BUDGET, seed=3, warmup_insts=WARMUP)
        assert 0.1 < res.ipc < 4.0
        assert res.bw_gbps > 1.0  # memory-intensive
        assert res.reads > 20
        assert res.avg_read_latency > 100
        assert res.memory_efficiency == res.ipc / res.bw_gbps

    def test_ilp_app_low_bandwidth(self):
        res = run_single_core(app_by_code("t"), BUDGET, seed=3, warmup_insts=WARMUP)
        assert res.bw_gbps < 0.5
        assert res.ipc > 2.0

    def test_deterministic(self):
        a = run_single_core(app_by_code("k"), BUDGET, seed=9, warmup_insts=WARMUP)
        b = run_single_core(app_by_code("k"), BUDGET, seed=9, warmup_insts=WARMUP)
        assert a == b

    def test_seed_changes_result(self):
        a = run_single_core(app_by_code("k"), BUDGET, seed=1, warmup_insts=WARMUP)
        b = run_single_core(app_by_code("k"), BUDGET, seed=2, warmup_insts=WARMUP)
        assert a.finish_cycle != b.finish_cycle

    def test_mem_class_beats_ilp_on_me(self):
        mem = run_single_core(app_by_code("e"), BUDGET, seed=3, warmup_insts=WARMUP)
        ilp = run_single_core(app_by_code("a"), BUDGET, seed=3, warmup_insts=WARMUP)
        assert ilp.memory_efficiency > mem.memory_efficiency


class TestMultiCore:
    def test_runs_all_policies(self):
        mix = workload_by_name("2MEM-1")
        me = (1.0, 0.2)
        for pol in ("HF-RF", "RR", "LREQ", "FCFS", "RF", "FIX-01"):
            r = run_multicore(mix, pol, BUDGET, seed=3, warmup_insts=WARMUP)
            assert r.num_cores == 2
            assert all(c.ipc > 0 for c in r.per_core)
        for pol in ("ME", "ME-LREQ"):
            r = run_multicore(
                mix, pol, BUDGET, seed=3, warmup_insts=WARMUP, me_values=me
            )
            assert r.policy_name == pol

    def test_me_requires_values(self):
        mix = workload_by_name("2MEM-1")
        with pytest.raises(ValueError):
            run_multicore(mix, "ME", BUDGET, seed=3)

    def test_deterministic(self):
        mix = workload_by_name("2MIX-1")
        a = run_multicore(mix, "HF-RF", BUDGET, seed=5, warmup_insts=WARMUP)
        b = run_multicore(mix, "HF-RF", BUDGET, seed=5, warmup_insts=WARMUP)
        assert a.ipcs() == b.ipcs()
        assert a.avg_read_latency() == b.avg_read_latency()

    def test_contention_slows_cores_down(self):
        # Note: the solo runs use core 0's trace stream while the mix gives
        # each core its own stream, so per-core IPCs are noisy at this tiny
        # budget — compare the aggregate, which damps the stream noise.
        mix = workload_by_name("4MEM-1")
        multi = run_multicore(mix, "HF-RF", BUDGET, seed=3, warmup_insts=WARMUP)
        solo_sum = sum(
            run_single_core(
                app, BUDGET, seed=3, phase="eval", warmup_insts=WARMUP
            ).ipc
            for app in mix.apps()
        )
        assert sum(multi.ipcs()) <= solo_sum * 1.10

    def test_policy_object_accepted(self):
        mix = workload_by_name("2MEM-1")
        r = run_multicore(
            mix, make_policy("LREQ"), BUDGET, seed=3, warmup_insts=WARMUP
        )
        assert r.policy_name == "LREQ"

    def test_result_aggregates(self):
        mix = workload_by_name("2MEM-2")
        r = run_multicore(mix, "HF-RF", BUDGET, seed=3, warmup_insts=WARMUP)
        assert 0 <= r.row_hit_rate <= 1
        assert r.end_cycle > 0
        assert r.avg_read_latency() > 0
        assert r.per_core[0].app == "mgrid"

    def test_custom_config_core_count_adapted(self):
        mix = workload_by_name("2MEM-1")
        cfg = SystemConfig(num_cores=8)  # wrong count: runner re-sizes
        r = run_multicore(mix, "HF-RF", BUDGET, seed=3, warmup_insts=WARMUP, config=cfg)
        assert r.num_cores == 2
