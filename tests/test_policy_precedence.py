"""Tests for the controller-level policy precedence rules.

Covers the paper's layering: global hit-first above core selection, the
bank-readiness eligibility rule, and the interplay with write drains —
behaviours that live in the controller rather than any single policy.
"""

from dataclasses import replace

from repro.config import SystemConfig
from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest
from repro.core import make_policy
from repro.dram.dram_system import DramSystem
from repro.sim.engine import EventEngine
from repro.util.rng import RngStream

CFG = SystemConfig(num_cores=4)


def make_controller(policy_name, me_values=None, num_cores=4):
    engine = EventEngine()
    dram = DramSystem(CFG.dram_topology, CFG.dram_timing, 64)
    if me_values is not None:
        policy = make_policy(policy_name, me_values=me_values)
    else:
        policy = make_policy(policy_name)
    ctrl = MemoryController(
        CFG.controller, dram, policy, num_cores, engine, RngStream(3, "t")
    )
    return engine, dram, ctrl


def read(addr, core):
    return MemoryRequest(addr=addr, core_id=core, is_write=False, arrival_cycle=0)


class TestGlobalHitFirst:
    def test_hit_beats_core_priority(self):
        # core 0 opens a row (a, with b queued behind it keeping the row
        # open); core 3 has absolute fixed-ME priority, but b is a row hit
        # and must still go first (Section 4.1 command rule)
        engine, dram, ctrl = make_controller(
            "ME", me_values=[1.0, 1.0, 1.0, 1000.0]
        )
        a = read(0, core=0)
        b = read(32 * 64, core=0)  # same bank/row as a: queued hit
        ctrl.enqueue(a, 0)
        ctrl.enqueue(b, 0)
        # let a commit (opens the row for b)
        while a.issue_cycle < 0:
            engine.step()
        # same bank, different row: directly competes with b for the bank
        c = read(4096 * 64, core=3)
        ctrl.enqueue(c, engine.now)
        engine.run()
        assert b.row_hit
        assert b.issue_cycle < c.issue_cycle

    def test_fcfs_ignores_hits(self):
        engine, dram, ctrl = make_controller("FCFS")
        a = read(0, core=0)
        b = read(32 * 64, core=0)  # would be a hit after a
        c = read(4096 * 64, core=1)  # same bank as a, different row - miss
        ctrl.enqueue(a, 0)
        ctrl.enqueue(c, 0)
        ctrl.enqueue(b, 0)
        engine.run()
        # arrival order: a, c, b regardless of b's row hit
        assert a.issue_cycle < c.issue_cycle < b.issue_cycle


class TestDrainInteraction:
    def test_drain_mode_serves_writes_even_with_reads(self):
        cfg = replace(
            CFG.controller, buffer_entries=8, write_drain_high=3, write_drain_low=1
        )
        engine = EventEngine()
        dram = DramSystem(CFG.dram_topology, CFG.dram_timing, 64)
        ctrl = MemoryController(
            cfg, dram, make_policy("HF-RF"), 4, engine, RngStream(3, "t")
        )
        writes = [
            MemoryRequest(addr=i * 128, core_id=0, is_write=True, arrival_cycle=0)
            for i in range(3)
        ]
        r = read(64 * 7, core=1)
        for w in writes:
            ctrl.enqueue(w, 0)
        assert ctrl.drain_mode
        ctrl.enqueue(r, 0)
        engine.run()
        # at least one write beat the read to its channel (drain priority)
        same_channel_writes = [
            w for w in writes if w.coord.channel == r.coord.channel
        ]
        if same_channel_writes:
            assert min(w.issue_cycle for w in same_channel_writes) < r.issue_cycle
        assert not ctrl.drain_mode  # drained below the low watermark


class TestBankReadiness:
    def test_scheduler_rearms_for_busy_banks(self):
        engine, dram, ctrl = make_controller("HF-RF")
        # saturate one bank with back-to-back rows
        reqs = [read(i * 4096 * 64, core=0) for i in range(4)]  # same bank
        for r in reqs:
            ctrl.enqueue(r, 0)
        engine.run()
        assert all(r.done_cycle > 0 for r in reqs)
        # service strictly serialised on the bank
        issues = sorted(r.issue_cycle for r in reqs)
        assert all(b - a >= 96 for a, b in zip(issues, issues[1:]))


class TestRandomTieBreakDeterminism:
    def test_same_seed_same_schedule(self):
        outcomes = []
        for _ in range(2):
            engine, dram, ctrl = make_controller("LREQ")
            reqs = [read(i * 256, core=i % 4) for i in range(12)]
            for r in reqs:
                ctrl.enqueue(r, 0)
            engine.run()
            outcomes.append(tuple(r.issue_cycle for r in reqs))
        assert outcomes[0] == outcomes[1]
