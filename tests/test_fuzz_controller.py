"""Adversarial fuzz: a deliberately bad policy must not break invariants.

A policy that picks *randomly* (worst case for the controller's
assumptions) is run over random workloads; whatever it chooses, the
memory system must preserve causality, conservation and forward progress.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.policy import SchedulingPolicy
from repro.cpu.trace import ListTrace, MemOp
from repro.sim.system import MultiCoreSystem


class RandomPolicy(SchedulingPolicy):
    """Chooses uniformly at random among candidates (test-only)."""

    name = "RANDOM-TEST"
    hit_first_global = False

    def select_read(self, candidates, ctx):
        return candidates[ctx.rng.randint(0, len(candidates))]

    def select_write(self, candidates, ctx):
        return candidates[ctx.rng.randint(0, len(candidates))]


ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=500),
        st.booleans(),
    ),
    min_size=1,
    max_size=80,
)


def build(raw):
    return ListTrace([MemOp(g, (l * 97 % 8192) * 64 * 129, w) for g, l, w in raw])


class TestRandomPolicyFuzz:
    @settings(max_examples=25, deadline=None)
    @given(ops_strategy, st.integers(min_value=0, max_value=100))
    def test_single_core_invariants(self, raw, seed):
        cfg = SystemConfig(num_cores=1)
        target = sum(g + 1 for g, _, _ in raw) + 10
        sys_ = MultiCoreSystem(cfg, RandomPolicy(), [build(raw)], target, seed=seed)
        sys_.run()
        core = sys_.cores[0]
        assert core.finished
        st_ = sys_.controller.stats
        # causality: cumulative latency non-negative, counts consistent
        assert all(s >= 0 for s in st_.read_latency_sum)
        assert st_.read_count[0] == 0 or st_.avg_read_latency(0) >= 96
        # no request left behind at the end of a drained run
        assert len(sys_.controller.queues.reads) + len(
            sys_.controller.queues.writes
        ) <= cfg.controller.buffer_entries

    @settings(max_examples=10, deadline=None)
    @given(ops_strategy, ops_strategy)
    def test_two_cores_progress(self, raw_a, raw_b):
        cfg = SystemConfig(num_cores=2)
        target = max(
            sum(g + 1 for g, _, _ in raw_a),
            sum(g + 1 for g, _, _ in raw_b),
        ) + 10
        sys_ = MultiCoreSystem(
            cfg, RandomPolicy(), [build(raw_a), build(raw_b)], target, seed=1
        )
        sys_.run()
        assert all(c.finished for c in sys_.cores)
