"""Property-based, full-stack invariants under randomly generated traces.

Hypothesis drives small random programs through the complete machine and
checks invariants that must hold for *any* workload under *any* policy:
causality (no response before request), conservation (requests neither
lost nor duplicated), monotone commit, and cross-policy functional
equivalence (scheduling may reorder, never change, the work done).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core import make_policy
from repro.cpu.trace import ListTrace, MemOp
from repro.sim.system import MultiCoreSystem

CFG1 = SystemConfig(num_cores=1)
CFG2 = SystemConfig(num_cores=2)

# Small random programs: gaps up to 50, a handful of 64 B-aligned lines
# spread over regions that hit different banks/rows.
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),  # gap
        st.integers(min_value=0, max_value=255),  # line selector
        st.booleans(),  # store?
    ),
    min_size=1,
    max_size=60,
)


def build_trace(raw):
    return ListTrace(
        [MemOp(gap, (line * 73 % 4096) * 64 * 513, w) for gap, line, w in raw]
    )


def total_insts(raw):
    return sum(gap + 1 for gap, _, _ in raw)


class TestSingleCoreInvariants:
    @settings(max_examples=30, deadline=None)
    @given(ops_strategy)
    def test_causality_and_conservation(self, raw):
        trace = build_trace(raw)
        target = total_insts(raw) + 20
        sys_ = MultiCoreSystem(CFG1, make_policy("HF-RF"), [trace], target)
        sys_.run()
        core = sys_.cores[0]
        assert core.finish_cycle is not None
        assert core.committed >= target
        # every load/store accounted for
        assert core.stats.loads + core.stats.stores == len(raw)
        # no response precedes its request
        st_ = sys_.controller.stats
        assert all(v >= 0 for v in st_.read_latency_sum)
        # bytes moved == transactions * line size
        lines = sum(st_.read_count) + sum(st_.write_count)
        assert sum(st_.bytes_read) + sum(st_.bytes_written) == 64 * lines

    @settings(max_examples=15, deadline=None)
    @given(ops_strategy)
    def test_finish_cycle_lower_bound(self, raw):
        """A core can never finish faster than ideal issue width allows."""
        trace = build_trace(raw)
        target = total_insts(raw)
        sys_ = MultiCoreSystem(CFG1, make_policy("HF-RF"), [trace], target)
        sys_.run()
        ideal = (target + CFG1.core.issue_width - 1) // CFG1.core.issue_width
        assert sys_.cores[0].finish_cycle >= ideal

    @settings(max_examples=15, deadline=None)
    @given(ops_strategy, st.sampled_from(["FCFS", "HF-RF", "LREQ", "RR"]))
    def test_policy_does_not_change_work(self, raw, policy):
        """Scheduling reorders service; committed work must be identical."""
        trace = build_trace(raw)
        target = total_insts(raw) + 20
        sys_ = MultiCoreSystem(CFG1, make_policy(policy), [trace], target)
        sys_.run()
        core = sys_.cores[0]
        assert core.stats.loads + core.stats.stores == len(raw)


class TestTwoCoreInvariants:
    @settings(max_examples=15, deadline=None)
    @given(ops_strategy, ops_strategy)
    def test_two_cores_both_finish(self, raw_a, raw_b):
        traces = [build_trace(raw_a), build_trace(raw_b)]
        target = max(total_insts(raw_a), total_insts(raw_b)) + 20
        sys_ = MultiCoreSystem(CFG2, make_policy("LREQ"), traces, target)
        sys_.run()
        assert all(c.finished for c in sys_.cores)
        # per-core accounting is independent
        for i, raw in enumerate((raw_a, raw_b)):
            c = sys_.cores[i]
            assert c.stats.loads + c.stats.stores >= len(raw)

    @settings(max_examples=10, deadline=None)
    @given(ops_strategy)
    def test_identical_programs_roughly_symmetric(self, raw):
        """Two cores running the same program under RR finish near each
        other (no systematic asymmetry in the machine)."""
        traces = [build_trace(raw), build_trace(list(raw))]
        target = total_insts(raw) + 20
        sys_ = MultiCoreSystem(CFG2, make_policy("RR"), traces, target)
        sys_.run()
        a, b = (c.finish_cycle for c in sys_.cores)
        assert abs(a - b) <= max(a, b) * 0.5 + 200
