"""Tests for the parallel sweep runner."""

import pytest

from repro.sim.sweep import SweepCell, grid, run_sweep


class TestGrid:
    def test_cartesian_product(self):
        cells = grid(["2MEM-1", "2MEM-2"], ["HF-RF"], [1, 2])
        assert len(cells) == 4
        assert cells[0] == SweepCell("2MEM-1", "HF-RF", 1)
        assert cells[-1] == SweepCell("2MEM-2", "HF-RF", 2)


class TestRunSweep:
    def test_empty(self):
        assert run_sweep([]) == []

    def test_inline_single_worker(self):
        cells = grid(["2MEM-1"], ["HF-RF", "LREQ"], [3])
        results = run_sweep(cells, inst_budget=2500, workers=1)
        assert len(results) == 2
        assert [r.cell for r in results] == cells
        for r in results:
            assert r.smt_speedup > 0
            assert r.unfairness >= 1.0
            assert len(r.per_core_ipc) == 2

    def test_parallel_matches_inline(self):
        cells = grid(["2MEM-1", "2MIX-1"], ["HF-RF"], [3])
        inline = run_sweep(cells, inst_budget=2500, workers=1)
        parallel = run_sweep(cells, inst_budget=2500, workers=2)
        # full determinism: parallelism must not change any result
        assert inline == parallel

    def test_me_policy_profiles_in_worker(self):
        cells = [SweepCell("2MEM-1", "ME-LREQ", 3)]
        (res,) = run_sweep(cells, inst_budget=2500, workers=1)
        assert res.smt_speedup > 0

    def test_order_preserved_under_parallelism(self):
        cells = grid(["2MEM-1", "2MEM-2", "2MEM-3"], ["HF-RF"], [3])
        results = run_sweep(cells, inst_budget=2500, workers=3)
        assert [r.cell.workload for r in results] == [
            "2MEM-1", "2MEM-2", "2MEM-3",
        ]

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            run_sweep([SweepCell("9MEM-1", "HF-RF", 1)], workers=1)
