"""Loopback end-to-end tests of the distributed sweep service.

Everything runs in one process on 127.0.0.1 — coordinator, workers and
client are asyncio tasks sharing a loop — which makes the fault
scenarios of docs/DISTRIBUTED.md deterministic and fast:

* a distributed run is **byte-identical** to a serial one (compared
  through the canonical float-hex payload encoding);
* a worker killed mid-cell releases its lease instantly and the cell is
  reassigned; a worker that *hangs* loses the lease at its deadline;
* a corrupted payload (SHA-256 mismatch) costs the cell one attempt and
  is retried, never stored or forwarded;
* a coordinator restarted against a warm store completes a whole job
  from hits with zero workers attached;
* a code-fingerprint mismatch is rejected at the handshake, for clients
  and workers alike.

No pytest-asyncio in the environment: each test drives its scenario
with ``asyncio.run`` from a synchronous body.
"""

from __future__ import annotations

import asyncio
import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentContext
from repro.experiments.parallel import plan_cells, run_cells
from repro.service.client import (
    coordinator_status,
    request_shutdown,
    submit_cells,
    submit_cells_async,
)
from repro.service.coordinator import Coordinator
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ServiceError,
    expect,
    read_msg,
    send_msg,
)
from repro.service.store import ResultStore, code_fingerprint, encode_payload
from repro.service.worker import run_worker

BUDGET = 300
WARMUP = 200
PROFILE = 200
SEED = 7

TIMEOUT = 120  # generous per-scenario ceiling; normal runs take seconds


def _ctx(**overrides) -> ExperimentContext:
    kw = dict(inst_budget=BUDGET, warmup_insts=WARMUP,
              profile_budget=PROFILE, seeds=(SEED,))
    kw.update(overrides)
    return ExperimentContext(**kw)


def _figure2_cells():
    return plan_cells(_ctx(), figure2=((2,), ("MEM",)))


def _hfrf_cells():
    """A small dependency-free cell set for the fault scenarios."""
    cells = [c for c in _figure2_cells() if c.key.policy == "HF-RF"]
    assert len(cells) >= 2
    return cells


def _payload_bytes(report) -> list[str]:
    return [json.dumps(encode_payload(v), sort_keys=True)
            for v in report.results.values()]


@pytest.fixture(scope="module")
def serial_figure2():
    report = run_cells(_figure2_cells(), jobs=1)
    assert not report.failures
    return report


@pytest.fixture(scope="module")
def serial_hfrf():
    report = run_cells(_hfrf_cells(), jobs=1)
    assert not report.failures
    return report


def _assert_identical(report, serial) -> None:
    assert not report.failures, report.failures
    assert [k.key_str() for k in report.results] \
        == [k.key_str() for k in serial.results]
    assert _payload_bytes(report) == _payload_bytes(serial)


async def _run_scenario(cells, *, n_workers=2, store=None,
                        coordinator_kwargs=None, before_submit=None,
                        after_submit=None):
    """Start a coordinator + N workers, submit ``cells``, tear down.

    Returns ``(report, coordinator)``; optional hooks run inside the
    loop before/after the submission (fault choreography).
    """
    coord = Coordinator(port=0, store=store, **(coordinator_kwargs or {}))
    await coord.start()
    workers = []
    try:
        if before_submit is not None:
            await before_submit(coord)
        workers = [
            asyncio.create_task(run_worker(coord.host, coord.port,
                                           worker_id=f"w{i}"))
            for i in range(n_workers)
        ]
        report = await asyncio.wait_for(
            submit_cells_async(coord.host, coord.port, cells), TIMEOUT)
        if after_submit is not None:
            await after_submit(coord)
    finally:
        await coord.stop()
        for w in workers:
            try:
                await asyncio.wait_for(w, 10)
            except (ConnectionError, ServiceError, asyncio.IncompleteReadError):
                pass
    return report, coord


# -- the happy path ----------------------------------------------------------------


def test_distributed_run_is_byte_identical_to_serial(serial_figure2,
                                                     tmp_path):
    cells = _figure2_cells()
    store = ResultStore(root=tmp_path, mode="rw")
    report, coord = asyncio.run(
        _run_scenario(cells, n_workers=2, store=store))
    _assert_identical(report, serial_figure2)
    assert report.executed == len(cells) and report.cache_hits == 0
    assert coord.stats["results"] == len(cells)
    assert coord.stats["failed_cells"] == 0

    # restart: a brand-new coordinator on the warm store finishes the
    # same job from hits alone, with ZERO workers attached
    report2, coord2 = asyncio.run(
        _run_scenario(cells, n_workers=0,
                      store=ResultStore(root=tmp_path, mode="rw")))
    _assert_identical(report2, serial_figure2)
    assert report2.cache_hits == len(cells) and report2.executed == 0
    assert coord2.stats["hits"] == len(cells)
    assert coord2.stats["results"] == 0  # nothing was ever dispatched


def test_two_concurrent_jobs_share_one_execution(serial_hfrf):
    """The same cell submitted by two clients runs once; both get it."""
    cells = _hfrf_cells()

    async def scenario():
        coord = Coordinator(port=0)
        await coord.start()
        worker = asyncio.create_task(
            run_worker(coord.host, coord.port, worker_id="w0"))
        try:
            r1, r2 = await asyncio.wait_for(asyncio.gather(
                submit_cells_async(coord.host, coord.port, cells),
                submit_cells_async(coord.host, coord.port, cells),
            ), TIMEOUT)
        finally:
            await coord.stop()
            try:
                await asyncio.wait_for(worker, 10)
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
        return r1, r2, coord

    r1, r2, coord = asyncio.run(scenario())
    _assert_identical(r1, serial_hfrf)
    assert _payload_bytes(r1) == _payload_bytes(r2)
    assert coord.stats["results"] == len(cells)  # executed exactly once
    assert coord.stats["jobs"] == 2


def test_fleet_observability_end_to_end(serial_hfrf, tmp_path, monkeypatch):
    """Fleet observability on the loopback cluster: the coordinator and
    workers share one run_id, results stay byte-identical, the merged
    Chrome timeline pairs lease slices with cell slices, and the
    correlation env vars do not leak out of the in-process workers."""
    import os

    from repro.telemetry.fleet import ENV_RUN_ID, FleetObserver, merge_traces

    monkeypatch.delenv(ENV_RUN_ID, raising=False)
    cells = _hfrf_cells()
    obs = FleetObserver(
        trace_out=tmp_path / "coord.fleet.jsonl",
        metrics_out=tmp_path / "metrics.jsonl",
        prometheus_out=tmp_path / "fleet.prom",
        snapshot_every=0.2,
    )

    async def scenario():
        coord = Coordinator(port=0, observer=obs)
        await coord.start()
        workers = [
            asyncio.create_task(run_worker(
                coord.host, coord.port, worker_id=f"w{i}",
                trace_out=tmp_path / f"w{i}.fleet.jsonl",
                snapshot_seconds=0.2))
            for i in range(2)
        ]
        try:
            report = await asyncio.wait_for(
                submit_cells_async(coord.host, coord.port, cells), TIMEOUT)
        finally:
            await coord.stop()
            for w in workers:
                try:
                    await asyncio.wait_for(w, 10)
                except (ConnectionError, ServiceError,
                        asyncio.IncompleteReadError):
                    pass
        return report, coord

    report, coord = asyncio.run(scenario())
    _assert_identical(report, serial_hfrf)
    assert report.run_id == coord.run_id == obs.run_id
    assert ENV_RUN_ID not in os.environ  # workers restored their env

    snaps = [json.loads(ln) for ln in
             (tmp_path / "metrics.jsonl").read_text().splitlines()]
    assert snaps  # stop() wrote at least the final snapshot
    done = snaps[-1]["instruments"]["fleet.lease.completed"]["value"]
    assert done == len(cells)
    assert "repro_fleet_lease_completed_total" in \
        (tmp_path / "fleet.prom").read_text()

    traces = [tmp_path / "coord.fleet.jsonl",
              tmp_path / "w0.fleet.jsonl", tmp_path / "w1.fleet.jsonl"]
    merged = merge_traces(traces)
    assert merged["otherData"]["run_id"] == obs.run_id
    events = merged["traceEvents"]
    leases = [e for e in events
              if e.get("ph") == "B" and e["name"].startswith("lease ")]
    cells_b = [e for e in events
               if e.get("ph") == "B" and e["name"].startswith("cell ")]
    assert len(leases) == len(cells) and len(cells_b) == len(cells)
    assert {e["args"]["run_id"] for e in leases + cells_b} == {obs.run_id}


# -- fault paths -------------------------------------------------------------------


async def _saboteur(host, port, *, taken: asyncio.Event,
                    die: str, release: asyncio.Event | None = None):
    """A raw-protocol worker that accepts one task and never finishes it.

    ``die="disconnect"`` drops the connection (instant lease release);
    ``die="hang"`` keeps it open without heartbeats (lease expiry).
    """
    reader, writer = await asyncio.open_connection(host, port,
                                                   limit=MAX_LINE_BYTES)
    await send_msg(writer, {
        "t": "hello", "role": "worker", "protocol": PROTOCOL_VERSION,
        "worker": "saboteur", "fingerprint": code_fingerprint(),
    })
    expect(await read_msg(reader), "welcome")
    msg = await read_msg(reader)
    assert msg is not None and msg["t"] == "task"
    taken.set()
    if die == "hang":
        await release.wait()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


def test_worker_killed_mid_cell_is_reassigned(serial_hfrf):
    cells = _hfrf_cells()
    taken = asyncio.Event()
    # the event loop only holds weak references to tasks — the holder
    # keeps the saboteur alive across the scenario
    holder = {}

    async def before(coord):
        # the saboteur registers first, so the first dispatch is its
        holder["sab"] = asyncio.create_task(
            _saboteur(coord.host, coord.port, taken=taken,
                      die="disconnect"))
        await asyncio.sleep(0.05)  # welcome exchanged, worker idle
        assert "saboteur" in coord.workers

    async def after(coord):
        await asyncio.wait_for(holder["sab"], 10)

    report, coord = asyncio.run(
        _run_scenario(cells, n_workers=1, before_submit=before,
                      after_submit=after))
    assert taken.is_set()
    _assert_identical(report, serial_hfrf)
    # the dropped cell cost one reassignment, and the client saw the
    # retry (attempts > 1 on at least one cell)
    assert coord.stats["reassigned"] >= 1
    assert report.retried


def test_hung_worker_lease_expires_and_cell_is_reassigned(serial_hfrf):
    cells = _hfrf_cells()
    taken = asyncio.Event()
    release = asyncio.Event()
    holder = {}

    async def before(coord):
        holder["sab"] = asyncio.create_task(
            _saboteur(coord.host, coord.port, taken=taken, die="hang",
                      release=release))
        await asyncio.sleep(0.05)
        assert "saboteur" in coord.workers

    async def after(coord):
        release.set()
        await asyncio.wait_for(holder["sab"], 10)

    report, coord = asyncio.run(
        _run_scenario(cells, n_workers=1, before_submit=before,
                      after_submit=after,
                      coordinator_kwargs={"lease_seconds": 0.4}))
    assert taken.is_set()
    _assert_identical(report, serial_hfrf)
    assert coord.stats["expired"] >= 1
    assert report.retried


def test_corrupt_payload_costs_one_attempt_and_is_retried(
        serial_hfrf, tmp_path, monkeypatch):
    cells = _hfrf_cells()
    target = cells[0].key.key_str()
    monkeypatch.setenv("REPRO_SERVICE_CORRUPT", target)
    store = ResultStore(root=tmp_path, mode="rw")
    report, coord = asyncio.run(
        _run_scenario(cells, n_workers=1, store=store))
    _assert_identical(report, serial_hfrf)
    assert coord.stats["sha_mismatch"] == 1
    assert report.retried == [target]
    # the corrupted attempt never reached the store; the retry did
    assert store.get(cells[0].key) is not None


def test_simulation_fault_exhausts_retry_budget(monkeypatch):
    cells = _hfrf_cells()
    target = cells[0].key.key_str()
    monkeypatch.setenv("REPRO_PARALLEL_FAULT", target)
    monkeypatch.setenv("REPRO_PARALLEL_FAULT_ALWAYS", "1")
    report, coord = asyncio.run(
        _run_scenario(cells, n_workers=1,
                      coordinator_kwargs={"max_attempts": 2}))
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert failure.key_str == target
    assert failure.attempts == 2
    assert "CellFault" in failure.error
    assert coord.stats["failed_cells"] == 1
    assert coord.stats["worker_errors"] == 2
    # every other cell still completed
    assert len(report.results) == len(cells) - 1


def test_fingerprint_mismatch_is_rejected_at_handshake():
    async def scenario():
        coord = Coordinator(port=0, fingerprint="deadbeef00000000")
        await coord.start()
        try:
            with pytest.raises(ServiceError, match="fingerprint mismatch"):
                await submit_cells_async(coord.host, coord.port,
                                         _hfrf_cells()[:1])
            with pytest.raises(ServiceError, match="fingerprint mismatch"):
                await run_worker(coord.host, coord.port)
        finally:
            await coord.stop()

    asyncio.run(scenario())


# -- administrative verbs ----------------------------------------------------------


def test_status_and_shutdown_round_trip():
    async def scenario():
        coord = Coordinator(port=0)
        await coord.start()
        worker = asyncio.create_task(
            run_worker(coord.host, coord.port, worker_id="w0"))
        await asyncio.sleep(0.05)
        status = await asyncio.to_thread(
            coordinator_status, f"{coord.host}:{coord.port}")
        assert status["workers"] == ["w0"]
        assert status["tasks"] == {"pending": 0, "leased": 0, "done": 0,
                                   "failed": 0}
        await asyncio.to_thread(
            request_shutdown, f"{coord.host}:{coord.port}")
        await asyncio.wait_for(coord.wait_stopped(), 5)
        await coord.stop()
        try:
            await asyncio.wait_for(worker, 10)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass

    asyncio.run(scenario())


# -- the CLI / script surface ------------------------------------------------------

SCRIPT = Path(__file__).parent.parent / "scripts" / "run_all_experiments.py"


@pytest.fixture()
def run_all():
    spec = importlib.util.spec_from_file_location("run_all_experiments",
                                                  SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _script_args(*extra):
    return ["--budget", str(BUDGET), "--profile-budget", str(PROFILE),
            "--warmup", str(WARMUP), "--seeds", str(SEED), "--no-cache",
            "--stable-output", "--quick", *extra]


class _Cluster:
    """A coordinator + workers on a background thread's event loop, for
    exercising the *synchronous* client surface (script, CLI)."""

    def __init__(self, n_workers=2):
        import threading

        self.addr = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve,
                                        args=(n_workers,), daemon=True)
        self._thread.start()
        assert self._ready.wait(30), "cluster failed to start"

    def _serve(self, n_workers):
        async def body():
            coord = Coordinator(port=0)
            await coord.start()
            self.addr = f"{coord.host}:{coord.port}"
            self._ready.set()
            workers = [
                asyncio.create_task(run_worker(coord.host, coord.port,
                                               worker_id=f"w{i}"))
                for i in range(n_workers)
            ]
            await coord.wait_stopped()
            await coord.stop()
            for w in workers:
                try:
                    await asyncio.wait_for(w, 10)
                except (ConnectionError, asyncio.IncompleteReadError):
                    pass

        asyncio.run(body())

    def stop(self):
        request_shutdown(self.addr)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive()


def test_run_all_coordinator_is_byte_identical_to_serial(run_all, tmp_path,
                                                         capsys):
    serial = tmp_path / "serial.md"
    distributed = tmp_path / "distributed.md"
    assert run_all.main(_script_args("--jobs", "1",
                                     "--out", str(serial))) == 0
    capsys.readouterr()

    cluster = _Cluster(n_workers=2)
    try:
        rc = run_all.main(_script_args("--coordinator", cluster.addr,
                                       "--out", str(distributed)))
    finally:
        cluster.stop()
    assert rc == 0
    err = capsys.readouterr().err
    assert "via coordinator" in err
    assert serial.read_bytes() == distributed.read_bytes()


def test_cli_submit_matches_serial_figure_output(capsys):
    from repro.cli import main as cli_main

    common = ["--budget", "2000", "--seeds", str(SEED),
              "--cores", "2", "--groups", "MEM"]
    assert cli_main(["figure", "2", *common]) == 0
    serial_out = capsys.readouterr().out

    cluster = _Cluster(n_workers=2)
    try:
        rc = cli_main(["submit", cluster.addr, "figure2", *common])
    finally:
        cluster.stop()
    assert rc == 0
    assert capsys.readouterr().out == serial_out


def test_script_interrupt_exits_130_with_guidance(run_all, monkeypatch,
                                                  capsys):
    def boom(*_a, **_kw):
        raise KeyboardInterrupt

    monkeypatch.setattr(run_all, "run_cells", boom)
    rc = run_all.main(_script_args("--jobs", "2"))
    assert rc == 130
    err = capsys.readouterr().err
    assert "interrupted" in err and "--resume" in err


def test_cli_interrupt_exits_130(monkeypatch, capsys):
    import repro.cli as cli

    def boom(_args):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli, "_cmd_policies", boom)
    # parser binds fn at build time, so rebuild through main()
    rc = cli.main(["policies"])
    assert rc == 130
    assert "interrupted" in capsys.readouterr().err
