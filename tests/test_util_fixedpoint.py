"""Tests for the fixed-point codec behind the priority table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.fixedpoint import FixedPointCodec, quantize_ratio


class TestFixedPointCodec:
    def test_levels(self):
        assert FixedPointCodec(bits=10, max_value=1.0).levels == 1024
        assert FixedPointCodec(bits=1, max_value=1.0).levels == 2

    def test_zero_maps_to_zero(self):
        c = FixedPointCodec(bits=8, max_value=100.0)
        assert c.encode(0.0) == 0
        assert c.encode(-5.0) == 0

    def test_max_maps_to_top_code(self):
        c = FixedPointCodec(bits=8, max_value=100.0)
        assert c.encode(100.0) == 255

    def test_saturation(self):
        c = FixedPointCodec(bits=8, max_value=100.0)
        assert c.encode(1e9) == 255

    def test_roundtrip_error_bounded(self):
        c = FixedPointCodec(bits=10, max_value=50.0)
        for v in (0.1, 1.0, 7.3, 25.0, 49.9):
            assert abs(c.decode(c.encode(v)) - v) <= c.scale / 2 + 1e-12

    def test_decode_range_check(self):
        c = FixedPointCodec(bits=4, max_value=1.0)
        with pytest.raises(ValueError):
            c.decode(16)
        with pytest.raises(ValueError):
            c.decode(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FixedPointCodec(bits=0, max_value=1.0)
        with pytest.raises(ValueError):
            FixedPointCodec(bits=8, max_value=0.0)

    @given(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.integers(min_value=2, max_value=16),
    )
    def test_encode_always_in_range(self, value, bits):
        c = FixedPointCodec(bits=bits, max_value=1000.0)
        code = c.encode(value)
        assert 0 <= code < c.levels

    @given(
        st.floats(min_value=0.001, max_value=999.0, allow_nan=False),
        st.floats(min_value=0.001, max_value=999.0, allow_nan=False),
    )
    def test_encode_monotone(self, a, b):
        c = FixedPointCodec(bits=10, max_value=1000.0)
        lo, hi = min(a, b), max(a, b)
        assert c.encode(lo) <= c.encode(hi)


class TestQuantizeRatio:
    def test_basic(self):
        c = FixedPointCodec(bits=10, max_value=10.0)
        assert quantize_ratio(5.0, 1.0, c) == c.encode(5.0)
        assert quantize_ratio(5.0, 2.0, c) == c.encode(2.5)

    def test_zero_denominator_saturates(self):
        c = FixedPointCodec(bits=10, max_value=10.0)
        assert quantize_ratio(5.0, 0.0, c) == c.levels - 1
        assert quantize_ratio(5.0, -1.0, c) == c.levels - 1
