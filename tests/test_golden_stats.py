"""Golden end-of-run statistics: the bit-identity contract for optimizations.

Every performance optimization of the simulation kernel must leave the
simulated behaviour untouched — not "statistically equivalent", but
*bit-identical*.  This test pins a checked-in snapshot of end-of-run
statistics for one small fixed-seed configuration under each representative
policy family (HF-RF, ME-LREQ, RR, LREQ) and fails on any drift.

Floats are compared through ``float.hex()`` so the check is exact at the
bit level (JSON round-trips of decimal reprs are not trusted).

Regenerating the snapshot is a deliberate act — it means you claim the
simulated behaviour legitimately changed (a model fix, not an
optimization).  Run::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_stats.py

and explain the drift in the commit message.  See docs/PERFORMANCE.md
("The golden-stats contract").
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import run_multicore, workload_by_name
from repro.config import SystemConfig
from repro.core.registry import make_policy
from repro.metrics.memory_efficiency import MeProfiler
from repro.sim.system import MultiCoreSystem
from repro.workloads.synthetic import make_trace

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_stats.json"

MIX = "4MEM-1"
SEED = 7
BUDGET = 2500
WARMUP = 2000
POLICIES = ("HF-RF", "ME-LREQ", "RR", "LREQ")
#: both engines must reproduce the SAME golden file — the fingerprints
#: are backend-independent by contract (see repro/sim/backend.py)
BACKENDS = ("object", "fast")


def _hex(x: float) -> str:
    return float(x).hex()


def _me_values(mix):
    profiler = MeProfiler(inst_budget=2000, seed=SEED)
    return profiler.me_values(mix)


def _run_fingerprint(policy: str, backend: str) -> dict:
    """End-of-run statistics of one multicore run through the public path."""
    mix = workload_by_name(MIX)
    me = _me_values(mix) if policy == "ME-LREQ" else None
    result = run_multicore(
        mix, policy, inst_budget=BUDGET, seed=SEED,
        warmup_insts=WARMUP, me_values=me, backend=backend,
    )
    return {
        "end_cycle": result.end_cycle,
        "row_hit_rate": _hex(result.row_hit_rate),
        "drain_entries": result.drain_entries,
        "per_core": [
            {
                "app": c.app,
                "ipc": _hex(c.ipc),
                "finish_cycle": c.finish_cycle,
                "reads": c.reads,
                "avg_read_latency": _hex(c.avg_read_latency),
                "bytes_total": c.bytes_total,
                "bw_gbps": _hex(c.bw_gbps),
            }
            for c in result.per_core
        ],
    }


def _deep_fingerprint(backend: str) -> dict:
    """Internal counters of one assembled system (HF-RF), beyond RunResult.

    Catches drift that the run-level statistics could mask: event counts,
    per-bank row-buffer behaviour, cache/MSHR traffic, write drains.
    The engine counters (``events_processed``/``clamped_events``) are
    part of the fingerprint, so the fast engine's lane dispatch must
    count events exactly like the object engine's heap loop.
    """
    mix = workload_by_name(MIX)
    cfg = SystemConfig().with_cores(mix.num_cores)
    traces = [
        make_trace(app, SEED, "eval", core_id=i)
        for i, app in enumerate(mix.apps())
    ]
    system = MultiCoreSystem(
        cfg, make_policy("HF-RF"), traces, BUDGET,
        warmup_insts=WARMUP, seed=SEED, backend=backend,
    )
    system.run()
    st = system.controller.stats
    hier = system.hierarchy
    return {
        "engine": {
            "events_processed": system.engine.events_processed,
            "clamped_events": system.engine.clamped_events,
            "now": system.engine.now,
        },
        "dram": {
            "transactions": system.dram.total_transactions,
            "row_hits": system.dram.total_row_hits,
            "activations": system.dram.total_activations,
            "conflicts": sum(
                ch.total_conflicts for ch in system.dram.channels
            ),
            "data_cycles": [ch.data_cycles for ch in system.dram.channels],
            "writes": [ch.writes for ch in system.dram.channels],
        },
        "controller": {
            "read_count": list(st.read_count),
            "read_latency_sum": list(st.read_latency_sum),
            "read_latency_max": list(st.read_latency_max),
            "write_count": list(st.write_count),
            "bytes_read": list(st.bytes_read),
            "bytes_written": list(st.bytes_written),
            "read_row_hits": st.read_row_hits,
            "drain_entries": st.drain_entries,
        },
        "hierarchy": {
            "writebacks": hier.writebacks,
            "l2_misses": list(hier.l2_misses),
            "demand_accesses": list(hier.demand_accesses),
            "l2_hits": hier.l2.stats.hits,
            "l2_miss_count": hier.l2.stats.misses,
            "l2_evictions": hier.l2.stats.evictions,
            "l1_hits": [c.stats.hits for c in hier.l1d],
            "l1_misses": [c.stats.misses for c in hier.l1d],
            "mshr_allocations": [m.allocations for m in hier.mshrs],
            "mshr_merges": [m.merges for m in hier.mshrs],
        },
        "cores": {
            "committed": [c.committed for c in system.cores],
            "fetched": [c.fetched for c in system.cores],
            "stall_q": [c.stall_q for c in system.cores],
            "structural_stalls": [
                c.stats.structural_stalls for c in system.cores
            ],
            "loads": [c.stats.loads for c in system.cores],
            "stores": [c.stats.stores for c in system.cores],
        },
    }


def _current_snapshot(backend: str) -> dict:
    return {
        "mix": MIX,
        "seed": SEED,
        "budget": BUDGET,
        "warmup": WARMUP,
        "runs": {p: _run_fingerprint(p, backend) for p in POLICIES},
        "deep": _deep_fingerprint(backend),
    }


def _diff_paths(expected, actual, prefix=""):
    """Human-readable list of leaf paths where two JSON trees differ."""
    diffs = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for k in sorted(set(expected) | set(actual)):
            diffs += _diff_paths(
                expected.get(k), actual.get(k), f"{prefix}.{k}" if prefix else k
            )
    elif isinstance(expected, list) and isinstance(actual, list) and len(
        expected
    ) == len(actual):
        for i, (e, a) in enumerate(zip(expected, actual)):
            diffs += _diff_paths(e, a, f"{prefix}[{i}]")
    elif expected != actual:
        diffs.append(f"{prefix}: expected {expected!r}, got {actual!r}")
    return diffs


@pytest.fixture(scope="module", params=BACKENDS)
def snapshot(request):
    """One snapshot per backend; every test below runs against both."""
    return request.param, _current_snapshot(request.param)


def test_golden_snapshot_exists():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — run with REPRO_REGEN_GOLDEN=1 to create it"
    )


def test_golden_stats_bit_identical(snapshot):
    backend, snap = snapshot
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        if backend != "object":
            pytest.skip("golden file is regenerated from the object backend")
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(snap, indent=2) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    golden = json.loads(GOLDEN_PATH.read_text())
    diffs = _diff_paths(golden, snap)
    assert not diffs, (
        f"simulation statistics drifted from the golden snapshot under the "
        f"{backend!r} backend (an optimization changed simulated "
        "behaviour):\n  " + "\n  ".join(diffs[:40])
    )


def test_policies_distinguishable(snapshot):
    """Sanity: the four policies do not collapse onto identical outcomes
    (a snapshot of four identical runs would pin nothing)."""
    _backend, snap = snapshot
    cycles = {p: snap["runs"][p]["end_cycle"] for p in POLICIES}
    assert len(set(cycles.values())) > 1, cycles
