"""Tests for the repro.telemetry subsystem.

Covers the three ISSUE-mandated properties — disabled-mode no-op
behaviour (bit-identical simulation with telemetry on/off), sampler
epoch math at run boundaries, and exporter round-trip validity — plus
the registry/bus primitives and the decision/command-log bus refactor.
"""

import csv
import json

import pytest

from repro.config import SystemConfig
from repro.controller.decision_log import DecisionLog
from repro.core.registry import make_policy
from repro.metrics.serialize import to_jsonable
from repro.sim.system import MultiCoreSystem
from repro.telemetry import (
    NULL_INSTRUMENT,
    Telemetry,
    TelemetryBus,
    TelemetryRegistry,
    read_jsonl,
    render_summary,
    write_chrome_trace,
    write_csv,
    write_jsonl,
)
from repro.sim.runner import run_multicore
from repro.workloads.mixes import workload_by_name
from repro.workloads.synthetic import make_trace

BUDGET = 4000


def _build_system(telemetry=None, policy="LREQ", cores=2, mix="2MEM-1"):
    m = workload_by_name(mix)
    cfg = SystemConfig().with_cores(cores)
    traces = [
        make_trace(app, 1, "eval", core_id=i) for i, app in enumerate(m.apps())
    ]
    return MultiCoreSystem(
        cfg, make_policy(policy), traces, BUDGET, warmup_insts=1000, seed=1,
        telemetry=telemetry,
    )


@pytest.fixture(scope="module")
def captured():
    """One telemetry-enabled run shared by the read-only assertions."""
    tm = Telemetry(sample_every=1000, capture_decisions=True)
    system = _build_system(tm)
    system.run()
    return tm, system


class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = TelemetryRegistry()
        c = reg.counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = reg.gauge("g")
        g.set(2.5)
        assert g.value == 2.5
        h = reg.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3 and h.min == 1.0 and h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_same_name_shares_instrument(self):
        reg = TelemetryRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_disabled_registry_returns_null_stubs(self):
        reg = TelemetryRegistry(enabled=False)
        c = reg.counter("c")
        assert c is NULL_INSTRUMENT
        assert c is reg.histogram("h") is reg.gauge("g")
        c.inc()
        c.set(9)
        c.observe(1.0)  # all no-ops
        assert c.value == 0
        assert len(reg) == 0

    def test_snapshot(self):
        reg = TelemetryRegistry()
        reg.counter("a").inc(2)
        reg.histogram("b").observe(4.0)
        snap = reg.snapshot()
        assert snap["a"] == {"kind": "counter", "value": 2}
        assert snap["b"]["count"] == 1 and snap["b"]["mean"] == 4.0


class TestBus:
    def test_emit_retains_and_notifies(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit("x", "instant", 5, "controller", a=1)
        assert len(bus) == 1
        assert seen[0].args == {"a": 1}
        with pytest.raises(ValueError):
            bus.emit("x", "bogus", 5, "controller")

    def test_span_matching(self):
        bus = TelemetryBus()
        bus.emit("drain", "begin", 10, "controller")
        bus.emit("drain", "end", 30, "controller")
        bus.emit("drain", "begin", 50, "controller")
        assert bus.spans("drain") == [(10, 30, "controller")]
        # open span closed at the supplied end cycle
        assert bus.spans("drain", end_cycle=99) == [
            (10, 30, "controller"),
            (50, 99, "controller"),
        ]

    def test_no_retain_mode(self):
        bus = TelemetryBus(retain=False)
        seen = []
        bus.subscribe(seen.append)
        bus.emit("x", "instant", 1, "t")
        assert len(bus) == 0 and len(seen) == 1


class TestDisabledModeNoOp:
    """Telemetry must be a pure observer: bit-identical simulation."""

    def test_results_identical_with_and_without_telemetry(self):
        off = _build_system(None)
        off.run()
        tm = Telemetry(sample_every=500)
        on = _build_system(tm)
        on.run()
        assert [c.ipc() for c in on.cores] == [c.ipc() for c in off.cores]
        assert [c.committed for c in on.cores] == [c.committed for c in off.cores]
        assert on.end_cycle == off.end_cycle
        assert on.dram.row_hit_rate() == off.dram.row_hit_rate()
        assert on.controller.stats.read_latency_sum == off.controller.stats.read_latency_sum
        # The only event-count difference is the sampler's own ticks.
        assert (
            on.engine.events_processed - off.engine.events_processed
            == on.sampler.ticks
        )

    def test_capture_streams_do_not_perturb_results(self):
        base = run_multicore(
            workload_by_name("2MIX-1"), "HF-RF", inst_budget=BUDGET, seed=2
        )
        tm = Telemetry(sample_every=750, capture_decisions=True,
                       capture_commands=True)
        traced = run_multicore(
            workload_by_name("2MIX-1"), "HF-RF", inst_budget=BUDGET, seed=2,
            telemetry=tm,
        )
        assert traced.ipcs() == base.ipcs()
        assert traced.end_cycle == base.end_cycle
        assert traced.extra["telemetry"] is tm
        assert tm.bus.named("decision")
        assert tm.bus.named("cmd")

    def test_plain_run_schedules_no_sampler(self):
        system = _build_system(None)
        assert system.sampler is None and system.telemetry is None


class TestSamplerEpochMath:
    def test_boundary_ticks_and_final_partial_epoch(self, captured):
        tm, system = captured
        samples = tm.samples
        assert samples, "sampler took no samples"
        every = tm.sample_every
        # All but the last sample land exactly on epoch boundaries.
        for i, s in enumerate(samples[:-1]):
            assert s.cycle == (i + 1) * every
            assert s.span == every
        last = samples[-1]
        # Regression: commit crossings are interpolated analytically and
        # can land past the last engine event, so the tail epoch must
        # flush to the true end of run, not to engine.now — otherwise
        # the final cycles (and their committed instructions) vanish
        # from the series.
        assert last.cycle == max(system.engine.now, system.end_cycle)
        assert 0 < last.span <= every
        assert last.cycle == sum(s.span for s in samples)

    def test_byte_conservation(self, captured):
        """Per-epoch channel bytes sum to the DRAM totals."""
        tm, system = captured
        line = system.config.line_bytes
        for i, ch in enumerate(system.dram.channels):
            sampled = sum(s.channels[i].bytes for s in tm.samples)
            assert sampled == ch.transactions * line

    def test_committed_conservation(self, captured):
        tm, system = captured
        for i, core in enumerate(system.cores):
            sampled = sum(s.cores[i].committed for s in tm.samples)
            assert sampled == core.committed

    def test_sampled_ranges_are_physical(self, captured):
        tm, _ = captured
        for s in tm.samples:
            for c in s.channels:
                assert 0.0 <= c.bus_util <= 1.0
                assert 0.0 <= c.row_hit_rate <= 1.0
                assert c.bytes >= 0 and c.reads >= 0 and c.writes >= 0
            for c in s.cores:
                assert 0.0 <= c.rob_stall_frac <= 1.0
                assert c.pending_reads >= 0 and c.mshr_occupancy >= 0

    def test_required_series_present(self, captured):
        """The ISSUE's acceptance series all exist in each sample."""
        tm, _ = captured
        s = tm.samples[0]
        assert hasattr(s.channels[0], "bw_gbps")
        assert hasattr(s.channels[0], "bus_util")
        assert hasattr(s.channels[0], "row_hit_rate")
        assert hasattr(s, "read_queue") and hasattr(s, "write_queue")
        assert hasattr(s.cores[0], "pending_reads")
        assert hasattr(s.cores[0], "rob_stall_frac")
        assert hasattr(s.cores[0], "mshr_occupancy")


class TestExporters:
    def test_jsonl_round_trip(self, captured, tmp_path):
        tm, _ = captured
        path = tmp_path / "run.jsonl"
        lines = write_jsonl(tm, path)
        # header + samples + events + registry footer
        assert lines == 1 + len(tm.samples) + len(tm.bus.events) + 1
        back = read_jsonl(path)
        assert back["header"]["sample_every"] == tm.sample_every
        assert back["samples"] == [to_jsonable(s) for s in tm.samples]
        assert len(back["events"]) == len(tm.bus.events)
        # ISSUE acceptance: the JSONL series carries bandwidth, queue
        # depths and row-hit rate.
        s0 = back["samples"][0]
        assert "bw_gbps" in s0["channels"][0]
        assert "row_hit_rate" in s0["channels"][0]
        assert "read_queue" in s0 and "write_queue" in s0

    def test_jsonl_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"type": "header", "format": "nope"}\n')
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_csv_round_trip(self, captured, tmp_path):
        tm, _ = captured
        path = tmp_path / "run.csv"
        rows = write_csv(tm, path)
        assert rows == len(tm.samples)
        with open(path, newline="") as f:
            comments = []
            data = []
            for line in f:
                (comments if line.startswith("#") else data).append(line)
            parsed = list(csv.DictReader(data))
        # metadata rides ahead of the header as '# key: value' comments
        assert any(c.startswith("# format:") for c in comments)
        assert len(parsed) == rows
        for rec, s in zip(parsed, tm.samples):
            assert int(rec["cycle"]) == s.cycle
            assert int(rec["ch0_bytes"]) == s.channels[0].bytes
            assert float(rec["core0_stall_frac"]) == pytest.approx(
                s.cores[0].rob_stall_frac, abs=1e-6
            )

    def test_chrome_trace_is_valid_trace_event_json(self, captured, tmp_path):
        tm, _ = captured
        path = tmp_path / "run.trace.json"
        n = write_chrome_trace(tm, path)
        with open(path) as f:
            doc = json.load(f)
        events = doc["traceEvents"]
        assert len(events) == n
        phases = {"M", "C", "B", "E", "i"}
        tracks = set()
        last_ts = -1.0
        for e in events:
            assert e["ph"] in phases
            assert isinstance(e["pid"], int)
            if e["ph"] != "M":
                assert e["ts"] >= 0
            if e["ph"] == "M" and e["name"] == "thread_name":
                tracks.add(e["args"]["name"])
        # Counter events must be time-ordered per the sample series.
        counter_ts = [e["ts"] for e in events if e["ph"] == "C"]
        assert counter_ts == sorted(counter_ts)
        # One track per channel and per core, plus the controller.
        assert {"controller", "ch0", "ch1", "core0", "core1"} <= tracks
        # Decisions landed as thread-scoped instants.
        assert any(e["ph"] == "i" and e["name"] == "decision" for e in events)

    def test_empty_hub_exports_cleanly(self, tmp_path):
        tm = Telemetry()
        assert write_csv(tm, tmp_path / "e.csv") == 0
        assert write_chrome_trace(tm, tmp_path / "e.json") >= 1  # metadata only
        back = read_jsonl_after_write(tm, tmp_path / "e.jsonl")
        assert back["samples"] == [] and back["events"] == []


def read_jsonl_after_write(tm, path):
    write_jsonl(tm, path)
    return read_jsonl(path)


class TestSharedSink:
    """DecisionLog / CommandLog / drain hysteresis share one bus."""

    def test_decision_log_keeps_api_and_emits(self, captured):
        tm, system = captured
        log = system.decision_log
        assert isinstance(log, DecisionLog)
        assert log.decisions, "no decisions logged"
        emitted = tm.bus.named("decision")
        assert len(emitted) == len(log.decisions)
        for ev, d in zip(emitted, log.decisions):
            assert ev.cycle == d.cycle
            assert ev.args["core"] == d.core_id
            assert ev.track == f"ch{d.channel}"

    def test_decision_log_attach_without_telemetry_unchanged(self):
        system = _build_system(None)
        log = DecisionLog.attach(system.controller)
        system.run()
        assert log.decisions
        assert 0.0 <= log.hit_rate() <= 1.0

    def test_split_controllers_emit_per_channel_tracks(self):
        # The split facade re-homes every coordinate to channel 0, so
        # decision events need the attach-site track override to keep
        # the two sub-controllers on distinct trace tracks.
        m = workload_by_name("2MEM-1")
        cfg = SystemConfig().with_cores(2)
        traces = [
            make_trace(app, 1, "eval", core_id=i)
            for i, app in enumerate(m.apps())
        ]
        tm = Telemetry(sample_every=1000, capture_decisions=True)
        system = MultiCoreSystem(
            cfg, None, traces, BUDGET, warmup_insts=1000, seed=1,
            controller_kind="split",
            policy_factory=lambda: make_policy("LREQ"),
            telemetry=tm,
        )
        system.run()
        tracks = {e.track for e in tm.bus.named("decision")}
        assert tracks == {"ch0", "ch1"}
        for ch, log in enumerate(system.decision_log):
            emitted = [
                e for e in tm.bus.named("decision") if e.track == f"ch{ch}"
            ]
            assert len(emitted) == len(log.decisions)
        assert tm.samples, "sampler must handle split controllers too"

    def test_drain_spans_on_bus(self):
        # A write-heavy synthetic mix engages the drain hysteresis.
        tm = Telemetry(sample_every=1000)
        result = run_multicore(
            workload_by_name("4MEM-1"), "HF-RF", inst_budget=BUDGET, seed=1,
            telemetry=tm,
        )
        begins = [e for e in tm.bus.named("write_drain") if e.kind == "begin"]
        assert len(begins) == result.drain_entries


class TestSummary:
    def test_render_summary_mentions_key_series(self, captured):
        tm, _ = captured
        text = render_summary(tm)
        assert "channel bandwidth" in text
        assert "row-hit rate" in text
        assert "queue depth" in text
        assert "stall fraction" in text

    def test_empty_summary(self):
        assert "no samples" in render_summary(Telemetry())
