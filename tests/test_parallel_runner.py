"""Determinism contract of the parallel sharded experiment runner.

Three guarantees, each pinned here:

* sharding cells over worker processes (``jobs`` 2..4) produces figure
  tables equal to the serial path, element for element;
* the parallel execution path reproduces the checked-in golden
  float-hex fingerprints (``tests/golden/golden_stats.json``) exactly —
  the bit-identity contract extends to worker processes;
* a cache hit returns the identical result without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import SystemConfig
from repro.experiments.cache import ResultCache
from repro.experiments.cells import (
    ME_FAMILY,
    Cell,
    eval_cell_key,
    profile_cell_key,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.harness import ExperimentContext
from repro.experiments.parallel import merge_into, plan_cells, run_cells
from repro.workloads.mixes import workload_by_name

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_stats.json"

# Small budgets keep the determinism checks fast; bit-identity does not
# depend on run length.
BUDGET = 300
WARMUP = 200
PROFILE = 200
SEED = 7


def _ctx(**overrides) -> ExperimentContext:
    kw = dict(inst_budget=BUDGET, warmup_insts=WARMUP,
              profile_budget=PROFILE, seeds=(SEED,))
    kw.update(overrides)
    return ExperimentContext(**kw)


def _figure2_rows(ctx):
    return run_figure2(ctx, core_counts=(2,), groups=("MEM",))


@pytest.fixture(scope="module")
def serial_rows():
    return _figure2_rows(_ctx())


@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_figure2_matches_serial(serial_rows, jobs):
    ctx = _ctx()
    cells = plan_cells(ctx, figure2=((2,), ("MEM",)))
    report = run_cells(cells, jobs=jobs)
    assert not report.failures, report.failure_report()
    merge_into(ctx, report)
    rows = _figure2_rows(ctx)
    assert rows == serial_rows
    # every cell came from the prewarm, none from in-section simulation
    assert report.executed == len(cells)


def test_merge_order_is_key_order_not_completion_order(serial_rows):
    """Shuffling the submitted cell order must not change anything:
    results are merged in canonical key order by construction."""
    ctx = _ctx()
    cells = plan_cells(ctx, figure2=((2,), ("MEM",)))
    report = run_cells(list(reversed(cells)), jobs=2)
    assert list(report.results) == sorted(
        report.results, key=lambda k: k.key_str()
    )
    merge_into(ctx, report)
    assert _figure2_rows(ctx) == serial_rows


def test_parallel_reproduces_golden_fingerprints():
    """Worker-process results must match the checked-in golden stats
    (same float bits, compared through ``float.hex``)."""
    golden = json.loads(GOLDEN_PATH.read_text())["runs"]
    cfg = SystemConfig()
    mix = workload_by_name("4MEM-1")
    cells: list[Cell] = []
    for policy in ("HF-RF", "ME-LREQ", "RR", "LREQ"):
        key = eval_cell_key(mix.name, policy, 7, 2500, 2000, 256, cfg, 2000)
        deps = ()
        if policy in ME_FAMILY:
            deps = tuple(profile_cell_key(c, 7, 2000, cfg)
                         for c in mix.codes)
            cells.extend(Cell(key=d, config=cfg) for d in deps)
        cells.append(Cell(key=key, config=cfg, me_deps=deps))
    report = run_cells(cells, jobs=2)
    assert not report.failures, report.failure_report()
    by_policy = {k.policy: v for k, v in report.results.items()
                 if k.kind == "eval"}
    for policy, want in golden.items():
        got = by_policy[policy]
        assert got.end_cycle == want["end_cycle"], policy
        assert got.row_hit_rate.hex() == want["row_hit_rate"], policy
        assert got.drain_entries == want["drain_entries"], policy
        for core, w in zip(got.per_core, want["per_core"]):
            assert core.app == w["app"]
            assert core.ipc.hex() == w["ipc"]
            assert core.finish_cycle == w["finish_cycle"]
            assert core.reads == w["reads"]
            assert core.avg_read_latency.hex() == w["avg_read_latency"]
            assert core.bytes_total == w["bytes_total"]
            assert core.bw_gbps.hex() == w["bw_gbps"]


def test_cache_hits_return_identical_results_without_resimulating(
    tmp_path, serial_rows
):
    cells_ctx = _ctx()
    cells = plan_cells(cells_ctx, figure2=((2,), ("MEM",)))

    first = ResultCache(root=tmp_path, mode="rw")
    warm = run_cells(cells, jobs=2, cache=first)
    assert warm.executed == len(cells) and warm.cache_hits == 0

    second = ResultCache(root=tmp_path, mode="rw")
    ctx = _ctx(cache=second)
    report = run_cells(cells, jobs=2, cache=second)
    assert report.executed == 0
    assert report.cache_hits == len(cells)
    assert second.stats.hits == len(cells)
    assert second.stats.misses == 0
    assert report.results == warm.results  # bit-exact payload round-trip
    merge_into(ctx, report)
    assert _figure2_rows(ctx) == serial_rows


def test_write_mode_never_reads_but_leaves_resumable_trail(tmp_path):
    all_cells = plan_cells(_ctx(), figure2=((2,), ("MEM",)))
    cells = [c for c in all_cells if c.key.policy == "HF-RF"][:3]
    cache = ResultCache(root=tmp_path, mode="write")
    rep = run_cells(cells, jobs=1, cache=cache)
    assert rep.executed == len(cells)
    assert cache.stats.writes == len(cells)

    again = ResultCache(root=tmp_path, mode="write")
    rep2 = run_cells(cells, jobs=1, cache=again)
    assert rep2.cache_hits == 0 and rep2.executed == len(cells)

    resumed = ResultCache(root=tmp_path, mode="rw")
    rep3 = run_cells(cells, jobs=1, cache=resumed)
    assert rep3.cache_hits == len(cells) and rep3.executed == 0
    assert rep3.results == rep.results


def test_progress_events_on_bus():
    from repro.telemetry.bus import TelemetryBus

    bus = TelemetryBus()
    all_cells = plan_cells(_ctx(), figure2=((2,), ("MEM",)))
    cells = [c for c in all_cells if c.key.policy == "HF-RF"][:4]
    run_cells(cells, jobs=1, bus=bus)
    done = bus.named("experiment.cell")
    assert len(done) == len(cells)
    assert [e.args["done"] for e in done] == list(range(1, len(cells) + 1))
    assert all(e.args["total"] == len(cells) for e in done)
    assert all(e.args["status"] == "run" for e in done)
    stats = bus.named("experiment.cache")
    assert len(stats) == 1
