"""BLISS: blacklist-threshold unit behaviour + golden fingerprints.

Unit tests drive ``select_read`` against a hand-built scheduling context
(real queues + DRAM, no cores) so the blacklisting state machine of
arXiv:1504.00390 — streak counting, thresholding, periodic clearing and
the non-blacklisted > row-hit > oldest precedence — is checked decision
by decision.  The golden section pins one end-to-end run per backend
against ``tests/golden/golden_bliss.json`` (float-hex exact; regenerate
with ``REPRO_REGEN_GOLDEN=1``, always from the object backend).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import run_multicore, workload_by_name
from repro.config import DramTimingConfig, DramTopologyConfig
from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest
from repro.core import make_policy
from repro.core.policy import SchedulingContext
from repro.dram.dram_system import DramSystem
from repro.util.rng import RngStream

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_bliss.json"

MIX = "4MEM-1"
SEED = 7
BUDGET = 2500
WARMUP = 2000
BACKENDS = ("object", "fast")


def make_ctx(num_cores=4, capacity=64):
    dram = DramSystem(DramTopologyConfig(), DramTimingConfig(), 64)
    queues = RequestQueues(capacity, num_cores)
    rng = RngStream(0, "test")
    return dram, queues, rng


def add_read(queues, dram, core, line, t=0):
    r = MemoryRequest(addr=line * 64, core_id=core, is_write=False,
                      arrival_cycle=t)
    r.coord = dram.coord(r.addr)
    queues.add(r)
    return r


def ctx_for(dram, queues, rng, channel=0, now=0):
    return SchedulingContext(now, channel, queues, dram, rng)


def make(threshold=4, interval=10_000):
    p = make_policy("BLISS", blacklist_threshold=threshold,
                    clearing_interval=interval)
    p.setup(4, RngStream(0, "pol"))
    return p


class TestBlacklisting:
    def test_streak_at_threshold_blacklists(self):
        dram, queues, rng = make_ctx()
        reqs = [add_read(queues, dram, 0, i) for i in range(4)]
        lone = add_read(queues, dram, 1, 100)
        pol = make(threshold=3)
        ctx = ctx_for(dram, queues, rng)
        # Core 0 is oldest three times in a row -> blacklisted on the 3rd.
        for i in range(3):
            chosen = pol.select_read(reqs[i:] + [lone], ctx)
            assert chosen is reqs[i]
            queues.remove(chosen)
        assert pol.is_blacklisted(0)
        assert not pol.is_blacklisted(1)
        # Now core 1's younger request outranks core 0's remaining one.
        assert pol.select_read([reqs[3], lone], ctx) is lone

    def test_switching_cores_resets_streak(self):
        dram, queues, rng = make_ctx()
        a0 = add_read(queues, dram, 0, 0)
        b = add_read(queues, dram, 1, 1)
        a1 = add_read(queues, dram, 0, 2)
        pol = make(threshold=2)
        ctx = ctx_for(dram, queues, rng)
        # Served order by age: core0, core1, core0 — never two in a row.
        for expect in (a0, b, a1):
            chosen = pol.select_read(
                [r for r in (a0, b, a1) if r in queues.reads], ctx
            )
            assert chosen is expect
            queues.remove(chosen)
        assert not pol.is_blacklisted(0)
        assert not pol.is_blacklisted(1)

    def test_all_blacklisted_falls_back_to_hit_first_oldest(self):
        dram, queues, rng = make_ctx()
        reqs = [add_read(queues, dram, 0, i) for i in range(3)]
        pol = make(threshold=2)
        ctx = ctx_for(dram, queues, rng)
        pol.select_read(reqs, ctx)
        queues.remove(reqs[0])
        pol.select_read(reqs[1:], ctx)
        queues.remove(reqs[1])
        assert pol.is_blacklisted(0)
        # Only blacklisted candidates left: selection degrades gracefully.
        assert pol.select_read([reqs[2]], ctx) is reqs[2]

    def test_row_hit_preferred_within_non_blacklisted_pool(self):
        dram, queues, rng = make_ctx()
        older_miss = add_read(queues, dram, 0, 0)
        newer_hit = add_read(queues, dram, 1, 2)
        dram.execute(newer_hit.coord, 0, is_write=False, keep_open=True)
        pol = make()
        chosen = pol.select_read([older_miss, newer_hit],
                                 ctx_for(dram, queues, rng))
        assert chosen is newer_hit

    def test_blacklist_outranks_row_hit(self):
        dram, queues, rng = make_ctx()
        pol = make(threshold=1)  # every served request blacklists its core
        hot = [add_read(queues, dram, 0, 0, t=0),
               add_read(queues, dram, 0, 32, t=0)]  # same (ch0,bank0,row0)
        cold = add_read(queues, dram, 1, 2, t=5)
        ctx = ctx_for(dram, queues, rng)
        first = pol.select_read(hot + [cold], ctx)
        assert first is hot[0]
        queues.remove(first)
        dram.execute(first.coord, 0, is_write=False, keep_open=True)
        assert pol.is_blacklisted(0)
        # hot[1] is now a row hit, but core 0 is blacklisted: core 1 wins.
        assert ctx.is_row_hit(hot[1])
        assert pol.select_read([hot[1], cold], ctx) is cold


class TestClearing:
    def test_interval_clears_blacklist(self):
        dram, queues, rng = make_ctx()
        reqs = [add_read(queues, dram, 0, i) for i in range(3)]
        pol = make(threshold=2, interval=1000)
        ctx = ctx_for(dram, queues, rng, now=0)
        pol.select_read(reqs, ctx)
        queues.remove(reqs[0])
        pol.select_read(reqs[1:], ctx)
        queues.remove(reqs[1])
        assert pol.is_blacklisted(0)
        late = ctx_for(dram, queues, rng, now=1000)
        pol.select_read(reqs[2:], late)
        assert not pol.is_blacklisted(0)
        assert pol.clearings == 1

    def test_clearing_catches_up_over_skipped_periods(self):
        dram, queues, rng = make_ctx()
        r = add_read(queues, dram, 0, 0)
        pol = make(interval=1000)
        pol.select_read([r], ctx_for(dram, queues, rng, now=5500))
        # One wipe happened; the next boundary is on the fixed grid.
        assert pol.clearings == 1
        assert pol._next_clear == 6000

    def test_reset_clears_all_state(self):
        dram, queues, rng = make_ctx()
        reqs = [add_read(queues, dram, 0, i) for i in range(2)]
        pol = make(threshold=2)
        ctx = ctx_for(dram, queues, rng)
        pol.select_read(reqs, ctx)
        queues.remove(reqs[0])
        pol.select_read(reqs[1:], ctx)
        assert pol.is_blacklisted(0)
        pol.reset()
        assert not pol.is_blacklisted(0)
        assert pol.clearings == 0


class TestParameters:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_policy("BLISS", blacklist_threshold=0)
        with pytest.raises(ValueError):
            make_policy("BLISS", clearing_interval=0)

    def test_hardware_cost_is_one_bit_per_core(self):
        cost = make_policy("BLISS").describe_hardware(8)
        assert cost.priority_table_bits == 0
        assert cost.per_core_bits == 1


# -- golden fingerprints (both backends vs one object-made file) -------------


def _hex(x: float) -> str:
    return float(x).hex()


def _fingerprint(backend: str) -> dict:
    result = run_multicore(
        workload_by_name(MIX), "BLISS", inst_budget=BUDGET, seed=SEED,
        warmup_insts=WARMUP, backend=backend,
    )
    return {
        "mix": MIX,
        "seed": SEED,
        "budget": BUDGET,
        "warmup": WARMUP,
        "end_cycle": result.end_cycle,
        "row_hit_rate": _hex(result.row_hit_rate),
        "drain_entries": result.drain_entries,
        "per_core": [
            {
                "app": c.app,
                "ipc": _hex(c.ipc),
                "finish_cycle": c.finish_cycle,
                "reads": c.reads,
                "avg_read_latency": _hex(c.avg_read_latency),
                "bytes_total": c.bytes_total,
                "bw_gbps": _hex(c.bw_gbps),
            }
            for c in result.per_core
        ],
    }


@pytest.mark.parametrize("backend", BACKENDS)
def test_golden_bliss_bit_identical(backend):
    snap = _fingerprint(backend)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        if backend != "object":
            pytest.skip("golden file is regenerated from the object backend")
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(snap, indent=2) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — run with REPRO_REGEN_GOLDEN=1 to create it"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert snap == golden, (
        f"BLISS statistics drifted from the golden snapshot under the "
        f"{backend!r} backend"
    )
