"""Tests for the MSHR file."""

import pytest

from repro.cache.mshr import MshrFile


class TestAllocation:
    def test_new_entry(self):
        m = MshrFile(4)
        assert m.allocate(0x1000) is True
        assert m.occupancy == 1
        assert m.outstanding(0x1000)

    def test_merge_same_line(self):
        m = MshrFile(4)
        assert m.allocate(0x1000) is True
        assert m.allocate(0x1000) is False  # merged
        assert m.occupancy == 1
        assert m.merges == 1

    def test_capacity_enforced(self):
        m = MshrFile(2)
        m.allocate(0)
        m.allocate(64)
        assert m.is_full
        with pytest.raises(OverflowError):
            m.allocate(128)

    def test_merge_allowed_when_full(self):
        m = MshrFile(1)
        m.allocate(0)
        assert m.allocate(0) is False  # merge needs no new entry

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MshrFile(0)


class TestCompletion:
    def test_waiters_fired_in_order(self):
        m = MshrFile(4)
        fired = []
        m.allocate(0, lambda line, now: fired.append(("a", line, now)))
        m.allocate(0, lambda line, now: fired.append(("b", line, now)))
        n = m.complete(0, now=55)
        assert n == 2
        assert fired == [("a", 0, 55), ("b", 0, 55)]
        assert not m.outstanding(0)

    def test_complete_without_waiters(self):
        m = MshrFile(4)
        m.allocate(0)
        assert m.complete(0, 10) == 0

    def test_complete_unknown_line_raises(self):
        m = MshrFile(4)
        with pytest.raises(KeyError):
            m.complete(0x2000, 0)

    def test_slot_reusable_after_completion(self):
        m = MshrFile(1)
        m.allocate(0)
        m.complete(0, 0)
        assert m.allocate(64) is True


class TestStats:
    def test_peak_occupancy(self):
        m = MshrFile(4)
        m.allocate(0)
        m.allocate(64)
        m.complete(0, 0)
        m.allocate(128)
        assert m.peak_occupancy == 2

    def test_clear(self):
        m = MshrFile(4)
        m.allocate(0, lambda l, n: pytest.fail("must not fire on clear"))
        m.clear()
        assert m.occupancy == 0
        assert m.peak_occupancy == 0
        assert m.merges == 0
