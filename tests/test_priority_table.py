"""Tests for the Figure 1 hardware priority table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.priority_table import PriorityTable


class TestGeometry:
    def test_paper_storage_cost(self):
        # N x 64 x 10 bits = 640N bits (Section 3.2)
        t = PriorityTable([1.0, 2.0, 3.0, 4.0])
        assert t.total_bits == 4 * 640

    def test_row_length(self):
        t = PriorityTable([1.0], max_pending=16)
        assert len(t.row(0)) == 16


class TestLookupSemantics:
    def test_priority_decreases_with_pending(self):
        t = PriorityTable([8.0, 1.0])
        row = t.row(0)
        assert all(a >= b for a, b in zip(row, row[1:]))

    def test_higher_me_higher_priority_same_pending(self):
        t = PriorityTable([8.0, 1.0])
        for p in (1, 2, 7, 64):
            assert t.lookup(0, p) >= t.lookup(1, p)

    def test_clamps_pending_beyond_table(self):
        t = PriorityTable([4.0], max_pending=8)
        assert t.lookup(0, 100) == t.lookup(0, 8)

    def test_zero_pending_rejected(self):
        t = PriorityTable([4.0])
        with pytest.raises(ValueError):
            t.lookup(0, 0)

    def test_exact_reference(self):
        t = PriorityTable([6.0])
        assert t.exact(0, 3) == 2.0

    def test_me_ratio_comparison_preserved_log(self):
        # the comparison the comparator performs: wupwise-like core at
        # pending=4 should still beat an applu-like core at pending=1
        # (ME ratio 15x > pending ratio 4x)
        t = PriorityTable([15.0, 1.0], encoding="log")
        assert t.lookup(0, 4) > t.lookup(1, 1)

    def test_log_survives_wide_me_range(self):
        # with an eon-like outlier, linear encoding flattens the MEM apps
        # to code 0 while log keeps them distinct — the degeneracy that
        # motivated the log default
        lin = PriorityTable([16276.0, 2.0, 1.0], encoding="linear")
        log = PriorityTable([16276.0, 2.0, 1.0], encoding="log")
        assert lin.lookup(1, 1) == lin.lookup(2, 1) == 0
        assert log.lookup(1, 1) > log.lookup(2, 1) > 0


class TestValidation:
    def test_empty_me(self):
        with pytest.raises(ValueError):
            PriorityTable([])

    def test_negative_me(self):
        with pytest.raises(ValueError):
            PriorityTable([-1.0])

    def test_bad_encoding(self):
        with pytest.raises(ValueError):
            PriorityTable([1.0], encoding="exp")

    def test_all_zero_me_ok(self):
        t = PriorityTable([0.0, 0.0])
        assert t.lookup(0, 1) == 0


class TestQuantisationProperties:
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=1, max_value=64),
        st.sampled_from(["log", "linear"]),
    )
    def test_codes_in_range(self, me_values, pending, encoding):
        t = PriorityTable(me_values, bits=10, encoding=encoding)
        for core in range(len(me_values)):
            assert 0 <= t.lookup(core, pending) < 1024

    @given(
        st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
        st.integers(min_value=1, max_value=63),
    )
    def test_monotone_in_pending(self, me, pending):
        t = PriorityTable([me], bits=10)
        assert t.lookup(0, pending) >= t.lookup(0, pending + 1)

    @given(
        st.floats(min_value=0.5, max_value=100.0),
        st.floats(min_value=0.5, max_value=100.0),
    )
    def test_quantised_order_never_contradicts_exact(self, me_a, me_b):
        # quantisation may merge, but must never invert, exact priorities
        t = PriorityTable([me_a, me_b], bits=10)
        for p in (1, 5, 33):
            exact_cmp = t.exact(0, p) - t.exact(1, p)
            code_cmp = t.lookup(0, p) - t.lookup(1, p)
            if code_cmp != 0:
                assert (exact_cmp > 0) == (code_cmp > 0)
