"""Tests for the trace-driven core model, wired to the real memory stack.

These build a single-core system with hand-written finite traces so the
expected timing can be reasoned about exactly.
"""

import pytest

from repro.config import SystemConfig
from repro.core import make_policy
from repro.cpu.trace import ListTrace, MemOp
from repro.sim.system import MultiCoreSystem

CFG = SystemConfig(num_cores=1)
# single closed-bank read: tRCD + CL + burst + controller overhead
BASE_READ = 40 + 40 + 16 + 48


def run_trace(ops, target, warmup=0, config=CFG):
    sys_ = MultiCoreSystem(
        config, make_policy("HF-RF"), [ListTrace(ops)], target, warmup_insts=warmup
    )
    sys_.run()
    return sys_


class TestPlainInstructions:
    def test_ideal_ipc_without_memory(self):
        sys_ = run_trace([], target=1000)
        core = sys_.cores[0]
        # 1000 instructions at 4/cycle = 250 cycles
        assert core.finish_cycle == 250
        assert core.ipc() == pytest.approx(4.0)

    def test_ipc_definition_uses_window(self):
        sys_ = run_trace([], target=1000, warmup=400)
        core = sys_.cores[0]
        assert core.warmup_cycle == 100
        assert core.finish_cycle == 350
        assert core.ipc() == pytest.approx(4.0)


class TestSingleLoad:
    def test_miss_stalls_commit(self):
        # one load at instruction 10 that misses everything
        ops = [MemOp(gap=10, addr=1 << 20, is_write=False)]
        sys_ = run_trace(ops, target=100)
        core = sys_.cores[0]
        # the load is fetched at cycle ~2, returns ~BASE_READ later; the
        # remaining 89 instructions retire at 4/cycle afterwards
        expect_min = BASE_READ
        assert core.finish_cycle >= expect_min
        assert core.finish_cycle <= expect_min + 2 + 89 // 4 + 4
        assert core.stats.mem_requests == 1
        assert core.stats.loads == 1

    def test_l1_hit_is_cheap(self):
        # second access to the same line, long after the first returned
        ops = [
            MemOp(gap=10, addr=1 << 20, is_write=False),
            MemOp(gap=4000, addr=1 << 20, is_write=False),
        ]
        sys_ = run_trace(ops, target=5000)
        core = sys_.cores[0]
        assert core.stats.l1_hits == 1
        assert core.stats.mem_requests == 1


class TestMlp:
    def test_independent_misses_overlap(self):
        # two lines on different banks, back to back: service overlaps
        # ((1<<20)+128 is two lines on: same channel, next bank)
        one = run_trace([MemOp(10, 1 << 20)], target=100).cores[0].finish_cycle
        two_ops = [MemOp(10, 1 << 20), MemOp(0, (1 << 20) + 128)]
        two = run_trace(two_ops, target=100).cores[0].finish_cycle
        # far less than serial (2x one); generous bound: one + 60
        assert two < one + 60

    def test_mshr_merge_single_request(self):
        ops = [MemOp(10, 1 << 20), MemOp(0, (1 << 20) + 8)]  # same line
        sys_ = run_trace(ops, target=100)
        assert sys_.cores[0].stats.mem_requests == 1
        assert sys_.hierarchy.mshrs[0].merges == 1


class TestStores:
    def test_store_does_not_stall_commit(self):
        ld = run_trace([MemOp(10, 1 << 20, False)], target=100).cores[0]
        st_ = run_trace([MemOp(10, 1 << 20, True)], target=100).cores[0]
        assert st_.finish_cycle < ld.finish_cycle
        # the store still fetched its line (write allocate)
        assert st_.stats.stores == 1

    def test_store_miss_generates_fill_read(self):
        sys_ = run_trace([MemOp(10, 1 << 20, True)], target=100)
        # the fill read was issued (it may still be queued when the
        # commit-driven run ends, since stores never block commit)
        served = sys_.controller.stats.read_count[0]
        queued = len(sys_.controller.queues.reads)
        assert served + queued == 1


class TestRobLimit:
    def test_rob_bounds_overlap(self):
        # many independent misses with tiny gaps: MLP is bounded by the
        # ROB window (196 insts / ~1 inst per miss) and MSHRs (32)
        ops = [MemOp(0, (i + 1) << 20) for i in range(64)]
        sys_ = run_trace(ops, target=200)
        core = sys_.cores[0]
        assert core.stats.mem_requests == 64
        # with 32 MSHRs the 64 misses need at least two service waves
        assert core.finish_cycle > BASE_READ + 16 * 8


class TestFinishSemantics:
    def test_finish_hook_called_once(self):
        calls = []
        sys_ = MultiCoreSystem(
            CFG, make_policy("HF-RF"), [ListTrace([])], 100, warmup_insts=0
        )
        orig = sys_.cores[0].on_finish
        sys_.cores[0].on_finish = lambda c: (calls.append(c), orig(c))
        sys_.run()
        assert len(calls) == 1

    def test_core_keeps_running_after_finish(self):
        # infinite-ish trace; core 0 finishes early but still generates
        # traffic afterwards (paper methodology: reload and keep running)
        ops = [MemOp(3, (i + 1) << 20) for i in range(200)]
        sys_ = MultiCoreSystem(
            CFG, make_policy("HF-RF"), [ListTrace(ops)], 40, warmup_insts=0
        )
        reads_at_finish = []
        core = sys_.cores[0]
        orig = core.on_finish
        core.on_finish = lambda c: (
            reads_at_finish.append(sys_.controller.stats.read_count[0]),
            orig(c),
        )
        sys_.run()
        assert core.finished

    def test_ipc_zero_before_finish(self):
        sys_ = MultiCoreSystem(CFG, make_policy("HF-RF"), [ListTrace([])], 100)
        assert sys_.cores[0].ipc() == 0.0


class TestValidation:
    def test_bad_budget(self):
        from repro.cpu.core_model import TraceCore

        with pytest.raises(ValueError):
            TraceCore(0, CFG.core, ListTrace([]), None, None, target_insts=0)

    def test_bad_warmup(self):
        from repro.cpu.core_model import TraceCore

        with pytest.raises(ValueError):
            TraceCore(
                0, CFG.core, ListTrace([]), None, None,
                target_insts=10, warmup_insts=-1,
            )
