"""Tests for the text-rendering helpers."""

import pytest

from repro.metrics.report import bar, bar_chart, grouped_bar_chart, histogram


class TestBar:
    def test_full_scale(self):
        assert bar(1.0, 1.0, width=10) == "#" * 10

    def test_half_scale(self):
        assert bar(0.5, 1.0, width=10) == "#" * 5

    def test_clamps(self):
        assert bar(5.0, 1.0, width=10) == "#" * 10
        assert bar(-1.0, 1.0, width=10) == ""

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            bar(1.0, 0.0)


class TestBarChart:
    def test_renders_all_labels(self):
        out = bar_chart({"HF-RF": 2.0, "ME-LREQ": 2.5})
        assert "HF-RF" in out and "ME-LREQ" in out
        assert out.count("\n") == 1

    def test_longest_value_fills_width(self):
        out = bar_chart({"a": 2.0, "b": 1.0}, width=8)
        lines = out.splitlines()
        assert lines[0].count("#") == 8
        assert lines[1].count("#") == 4

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_all_zero(self):
        out = bar_chart({"a": 0.0})
        assert "a" in out


class TestGroupedBarChart:
    def test_groups_rendered(self):
        out = grouped_bar_chart({"4MEM-1": {"HF-RF": 1.0}, "4MEM-2": {"HF-RF": 2.0}})
        assert "4MEM-1:" in out and "4MEM-2:" in out

    def test_shared_scale(self):
        out = grouped_bar_chart(
            {"g1": {"x": 1.0}, "g2": {"x": 2.0}}, width=10
        )
        lines = [l for l in out.splitlines() if "#" in l]
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_empty(self):
        assert grouped_bar_chart({}) == "(no data)"


class TestHistogram:
    def test_bins_cover_range(self):
        out = histogram([1, 2, 3, 4, 5, 6, 7, 8, 9, 10], bins=5)
        assert out.count("\n") == 4

    def test_all_equal(self):
        assert "x3" in histogram([7.0, 7.0, 7.0])

    def test_empty(self):
        assert histogram([]) == "(no data)"

    def test_counts_sum(self):
        vals = list(range(100))
        out = histogram(vals, bins=4)
        total = sum(int(line.split(")")[1].split()[0]) for line in out.splitlines())
        assert total == 100

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)
