"""Tests for the post-run analysis module."""

import pytest

from repro.config import SystemConfig
from repro.core import make_policy
from repro.metrics.analysis import analyze
from repro.sim.system import MultiCoreSystem
from repro.workloads.mixes import workload_by_name
from repro.workloads.synthetic import make_trace


@pytest.fixture(scope="module")
def finished_system():
    mix = workload_by_name("2MEM-1")
    cfg = SystemConfig(num_cores=2)
    traces = [make_trace(a, 11, "eval", i) for i, a in enumerate(mix.apps())]
    sys_ = MultiCoreSystem(
        cfg, make_policy("HF-RF"), traces, 4000, warmup_insts=8000, seed=11
    )
    sys_.run()
    return sys_, [a.name for a in mix.apps()]


class TestAnalyze:
    def test_requires_finished_run(self):
        cfg = SystemConfig(num_cores=1)
        mix = workload_by_name("2MEM-1")
        sys_ = MultiCoreSystem(
            cfg.with_cores(1),
            make_policy("HF-RF"),
            [make_trace(mix.apps()[0], 1, "eval", 0)],
            1000,
        )
        with pytest.raises(ValueError):
            analyze(sys_)

    def test_channel_usage(self, finished_system):
        sys_, names = finished_system
        a = analyze(sys_, names)
        assert len(a.channels) == 2
        for ch in a.channels:
            assert 0.0 <= ch.utilization <= 1.0
            assert 0.0 <= ch.row_hit_rate <= 1.0
            assert len(ch.per_bank) == 16
            assert sum(ch.per_bank) == ch.transactions
            assert ch.bank_imbalance >= 1.0

    def test_core_usage(self, finished_system):
        sys_, names = finished_system
        a = analyze(sys_, names)
        assert [c.app for c in a.cores] == names
        for c in a.cores:
            assert c.ipc > 0
            assert c.bandwidth_gbps >= 0
            assert 0 <= c.l1_miss_rate <= 1

    def test_aggregate_bandwidth_positive(self, finished_system):
        sys_, names = finished_system
        a = analyze(sys_, names)
        assert 0 < a.total_bandwidth_gbps < 25.6  # under the machine peak

    def test_report_renders(self, finished_system):
        sys_, names = finished_system
        text = analyze(sys_, names).report()
        assert "aggregate DRAM bandwidth" in text
        assert "wupwise" in text
        assert "ch0" in text and "ch1" in text

    def test_bus_busy_consistent(self, finished_system):
        sys_, names = finished_system
        a = analyze(sys_, names)
        for ch in a.channels:
            assert ch.bus_busy_cycles == ch.transactions * 16
