"""Cloud workload family: arrival generation, mixes, machine config,
SLO-violation attribution conservation, and determinism properties.

The reproducibility contract under test: same seed => identical arrival
trace across runs (and backends — traces are generated host-side, the
golden suite pins the backends); inter-arrival times match the
configured rate within exact integer accounting; and no wall clock
leaks into the cloud modules or cell keys.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.workloads.cloud import (
    ARRIVALS,
    CLOUD_BUFFER_PER_CORE,
    CLOUD_L2_MSHRS_PER_CORE,
    CLOUD_MIXES,
    CLOUD_REGION_LINES,
    CLOUD_ROB_SIZE,
    CloudMix,
    ServiceProfile,
    SERVICES,
    arrival_gaps,
    cloud_mix_by_name,
    cloud_system_config,
    is_cloud_codes,
    make_cloud_trace,
    service_by_code,
)
from repro.config import SystemConfig
from repro.util.rng import RngStream


def _gaps(profile: ServiceProfile, n: int, seed: int = 1) -> list[int]:
    gen = arrival_gaps(profile, RngStream(seed, "t", profile.code))
    return [next(gen) for _ in range(n)]


class TestArrivalGeneration:
    def test_same_seed_identical_trace(self):
        svc = service_by_code("K")
        a = make_cloud_trace(svc, seed=7, core_id=0)
        b = make_cloud_trace(svc, seed=7, core_id=0)
        ops_a = [a.next_op() for _ in range(300)]
        ops_b = [b.next_op() for _ in range(300)]
        assert ops_a == ops_b
        assert a.requests_emitted == b.requests_emitted == 300

    def test_seeds_and_cores_differ(self):
        svc = service_by_code("K")
        base = [make_cloud_trace(svc, seed=7, core_id=0).next_op()
                for _ in range(50)]
        other_seed = [make_cloud_trace(svc, seed=8, core_id=0).next_op()
                      for _ in range(50)]
        other_core = [make_cloud_trace(svc, seed=7, core_id=1).next_op()
                      for _ in range(50)]
        assert base != other_seed
        assert base != other_core  # disjoint address spaces at least

    def test_gap_encoding_and_addresses(self):
        svc = service_by_code("S")
        t = make_cloud_trace(svc, seed=3, core_id=2, issue_width=4)
        for _ in range(200):
            op = t.next_op()
            # gap = delta * issue_width - 1 with delta >= 1
            assert op.gap >= 3 and (op.gap + 1) % 4 == 0
            assert not op.is_write
            line = (op.addr - t.base_addr) // 64
            assert 0 <= line - (5 << 30) <= CLOUD_REGION_LINES

    def test_poisson_rate_exact_integer_accounting(self):
        svc = service_by_code("S")  # mean_gap 48
        gaps = _gaps(svc, 3000)
        assert all(isinstance(g, int) and g >= 1 for g in gaps)
        mean = sum(gaps) / len(gaps)
        assert svc.mean_gap * 0.9 <= mean <= svc.mean_gap * 1.1

    def test_bursty_rate_between_states(self):
        svc = service_by_code("B")  # calm 64, burst 6, dwell 32
        gaps = _gaps(svc, 4000)
        mean = sum(gaps) / len(gaps)
        assert svc.burst_gap < mean < svc.calm_gap

    def test_diurnal_rate_scaled_by_curve(self):
        svc = service_by_code("D")  # base 32, multipliers 1..4
        gaps = _gaps(svc, 4000)
        mean = sum(gaps) / len(gaps)
        assert mean > svc.mean_gap  # some buckets are slower than base
        assert mean < svc.mean_gap * max(svc.curve)

    def test_arrival_validation(self):
        with pytest.raises(ValueError):
            ServiceProfile(code="x", name="bad", arrival="poisson",
                           mean_gap=10, slo=100).validate()
        with pytest.raises(ValueError):
            ServiceProfile(code="X", name="bad", arrival="weibull",
                           mean_gap=10, slo=100).validate()
        with pytest.raises(ValueError):
            ServiceProfile(code="X", name="bad", arrival="bursty",
                           mean_gap=0, slo=100, calm_gap=4, burst_gap=8,
                           dwell=2).validate()  # burst slower than calm
        with pytest.raises(ValueError):
            ServiceProfile(code="X", name="bad", arrival="diurnal",
                           mean_gap=10, slo=100).validate()  # no curve

    def test_catalogue_is_valid_and_covers_every_arrival(self):
        for svc in SERVICES:
            svc.validate()
        assert {s.arrival for s in SERVICES} == set(ARRIVALS)

    def test_service_lookup(self):
        assert service_by_code("K").name == "kvstore"
        with pytest.raises(KeyError):
            service_by_code("Z")


class TestCloudMixes:
    def test_registered_mixes_validate(self):
        for mix in CLOUD_MIXES:
            mix.validate()
            assert mix.num_cores == len(mix.codes)
            assert mix.group == "CLOUD"
            assert mix.service_cores()  # at least one open-loop core

    def test_lookup_case_insensitive(self):
        assert cloud_mix_by_name("2cld-1").codes == "Kb"
        with pytest.raises(KeyError):
            cloud_mix_by_name("9CLD-1")

    def test_core_partition(self):
        mix = cloud_mix_by_name("4CLD-1")  # SKhz
        assert mix.service_cores() == (0, 1)
        assert mix.batch_cores() == (2, 3)
        assert [s.code for s in mix.services()] == ["S", "K"]
        assert [a.name for a in mix.batch_apps()] == ["mesa", "apsi"]

    def test_mix_without_service_rejected(self):
        with pytest.raises(ValueError):
            CloudMix(name="BAD", codes="bc").validate()

    def test_is_cloud_codes(self):
        assert is_cloud_codes("Kb")
        assert not is_cloud_codes("bc")


class TestBuilderDispatch:
    """custom_mix covers both loop families (open and closed)."""

    @pytest.mark.parametrize("codes,kind", [("kcb", "Mix"), ("Kb", "CloudMix")])
    def test_dispatch_by_case(self, codes, kind):
        from repro.workloads.builder import custom_mix

        assert type(custom_mix(codes)).__name__ == kind

    @pytest.mark.parametrize("codes", ["k?", "K?", "Zb"])
    def test_unknown_codes_rejected_both_paths(self, codes):
        from repro.workloads.builder import custom_mix

        with pytest.raises(KeyError):
            custom_mix(codes)


class TestCloudMachine:
    def test_datacenter_scaling(self):
        base = SystemConfig()
        for n in (2, 4, 8):
            cfg = cloud_system_config(base, n)
            cfg.validate()
            assert cfg.num_cores == n
            assert cfg.core.rob_size == CLOUD_ROB_SIZE
            assert cfg.caches.l2.mshrs == CLOUD_L2_MSHRS_PER_CORE * n
            assert cfg.controller.buffer_entries == max(
                base.controller.buffer_entries, CLOUD_BUFFER_PER_CORE * n
            )

    def test_digest_differs_from_desktop_part(self):
        base = SystemConfig()
        assert cloud_system_config(base, 4).digest() != base.with_cores(4).digest()

    def test_cell_keys_deterministic_no_wall_clock(self):
        from repro.experiments.cells import cloud_cell_key

        base = SystemConfig()
        a = cloud_cell_key("2CLD-1", "fcfs", 1, 2000, 1500, 256, base, 1000)
        b = cloud_cell_key("2cld-1", "FCFS", 1, 2000, 1500, 256, base, 1000)
        assert a == b and a.digest() == b.digest()
        assert a.kind == "cloud" and a.profile_budget == 0  # non-ME policy

    def test_no_wall_clock_in_cloud_modules(self):
        import repro.experiments.cloud as exp_cloud
        import repro.metrics.tails as tails
        import repro.workloads.cloud as wl_cloud

        banned = ("time.time", "datetime.now", "perf_counter",
                  "time.monotonic", "utcnow")
        for mod in (wl_cloud, exp_cloud, tails):
            src = pathlib.Path(mod.__file__).read_text()
            for token in banned:
                assert token not in src, f"{token} in {mod.__name__}"


class TestAttributionConservation:
    """Per-violation stall attribution must sum exactly (integer cycles)
    to each violating request's measured latency."""

    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.cloud import run_cloud

        # 4-core co-run in the calibrated moderate-violation regime
        return run_cloud("4CLD-1", "FCFS", inst_budget=2500, seed=1,
                         warmup_insts=2000)

    def test_services_completed_requests(self, result):
        assert [s.code for s in result.services] == ["S", "K"]
        for svc in result.services:
            assert svc.requests > 0
            assert svc.latencies == tuple(sorted(svc.latencies))
            assert all(lat > 0 for lat in svc.latencies)

    def test_violations_counted_strictly(self, result):
        from repro.metrics.tails import count_violations

        total = 0
        for svc in result.services:
            assert svc.viol_count == count_violations(svc.latencies, svc.slo)
            total += svc.viol_count
        assert total > 0, "calibrated regime should violate some SLOs"

    def test_attribution_sums_to_violating_latencies(self, result):
        from repro.telemetry.attribution import COMPONENTS

        for svc in result.services:
            expected = sum(lat for lat in svc.latencies if lat > svc.slo)
            assert svc.viol_latency_sum == expected
            assert len(svc.viol_components) == len(COMPONENTS)
            assert all(v >= 0 for v in svc.viol_components)
            assert sum(svc.viol_components) == svc.viol_latency_sum

    def test_me_policy_requires_batch_me(self):
        from repro.experiments.cloud import run_cloud

        with pytest.raises(ValueError):
            run_cloud("2CLD-1", "ME-LREQ", inst_budget=1500, seed=1,
                      warmup_insts=1000)
        with pytest.raises(ValueError):
            run_cloud("2CLD-1", "ME-LREQ", inst_budget=1500, seed=1,
                      warmup_insts=1000, me_values=(1.0, 2.0))  # 1 batch core
