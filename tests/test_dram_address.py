"""Tests for the cache-line-interleaved address mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import DramTopologyConfig
from repro.dram.address import AddressMapper, DramCoord

TOPO = DramTopologyConfig()


@pytest.fixture
def mapper():
    return AddressMapper(TOPO, line_bytes=64)


class TestInterleaving:
    def test_consecutive_lines_alternate_channels(self, mapper):
        c0 = mapper.decode(0 * 64)
        c1 = mapper.decode(1 * 64)
        assert c0.channel == 0
        assert c1.channel == 1

    def test_lines_walk_banks_after_channels(self, mapper):
        # with 2 channels, lines 0 and 2 share a channel but differ in bank
        a = mapper.decode(0 * 64)
        b = mapper.decode(2 * 64)
        assert a.channel == b.channel
        assert a.bank != b.bank

    def test_row_capacity(self, mapper):
        # 8 KB row / 64 B lines = 128 columns per row
        assert mapper.lines_per_row == 128

    def test_same_row_stride(self, mapper):
        # lines 32 apart (2 channels x 16 banks) share channel+bank,
        # consecutive column, same row
        a = mapper.decode(0)
        b = mapper.decode(32 * 64)
        assert (a.channel, a.bank, a.row) == (b.channel, b.bank, b.row)
        assert b.col == a.col + 1

    def test_row_rollover(self, mapper):
        # 32 banks x 128 cols = 4096 lines per full row sweep
        a = mapper.decode(0)
        b = mapper.decode(4096 * 64)
        assert (a.channel, a.bank) == (b.channel, b.bank)
        assert b.row == a.row + 1

    def test_sub_line_bits_ignored(self, mapper):
        assert mapper.decode(100) == mapper.decode(64)

    def test_channel_of_matches_decode(self, mapper):
        for addr in (0, 64, 4096, 123456 * 64):
            assert mapper.channel_of(addr) == mapper.decode(addr).channel


class TestBijection:
    @given(st.integers(min_value=0, max_value=2**44))
    def test_roundtrip(self, addr):
        mapper = AddressMapper(TOPO, line_bytes=64)
        line_addr = mapper.line_address(addr)
        assert mapper.encode(mapper.decode(addr)) == line_addr

    @given(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=0, max_value=127),
    )
    def test_inverse_roundtrip(self, channel, bank, row, col):
        mapper = AddressMapper(TOPO, line_bytes=64)
        coord = DramCoord(channel=channel, bank=bank, row=row, col=col)
        assert mapper.decode(mapper.encode(coord)) == coord

    def test_distinct_lines_distinct_coords(self, mapper):
        seen = set()
        for line in range(10_000):
            coord = mapper.decode(line * 64)
            assert coord not in seen
            seen.add(coord)


class TestErrors:
    def test_negative_address(self, mapper):
        with pytest.raises(ValueError):
            mapper.decode(-1)

    def test_encode_range_checks(self, mapper):
        with pytest.raises(ValueError):
            mapper.encode(DramCoord(channel=2, bank=0, row=0, col=0))
        with pytest.raises(ValueError):
            mapper.encode(DramCoord(channel=0, bank=16, row=0, col=0))
        with pytest.raises(ValueError):
            mapper.encode(DramCoord(channel=0, bank=0, row=-1, col=0))
        with pytest.raises(ValueError):
            mapper.encode(DramCoord(channel=0, bank=0, row=0, col=128))

    def test_row_smaller_than_line_rejected(self):
        topo = DramTopologyConfig(row_bytes=32)
        with pytest.raises(ValueError):
            AddressMapper(topo, line_bytes=64)
