"""Tests for trace recording and the REPROTR1 file format."""

import pytest

from repro.cpu.trace import ListTrace, MemOp
from repro.cpu.trace_io import TraceRecorder, load_trace, record_trace, save_trace
from repro.workloads.spec2000 import app_by_code
from repro.workloads.synthetic import make_trace


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        ops = [MemOp(3, 0x1000), MemOp(0, 0xFFFF_FFFF_0040, True), MemOp(7, 64)]
        p = tmp_path / "t.trace"
        save_trace(ops, p)
        loaded = load_trace(p)
        assert [loaded.next_op() for _ in range(3)] == ops
        assert loaded.next_op() is None

    def test_empty_trace(self, tmp_path):
        p = tmp_path / "empty.trace"
        save_trace([], p)
        assert load_trace(p).next_op() is None

    def test_synthetic_roundtrip(self, tmp_path):
        src = make_trace(app_by_code("c"), seed=3, phase="eval")
        ops = record_trace(src, 500)
        p = tmp_path / "swim.trace"
        save_trace(ops, p)
        loaded = load_trace(p)
        assert [loaded.next_op() for _ in range(500)] == ops


class TestErrors:
    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.trace"
        p.write_bytes(b"NOTATRACE" + b"\x00" * 64)
        with pytest.raises(ValueError, match="REPROTR1"):
            load_trace(p)

    def test_truncated(self, tmp_path):
        p = tmp_path / "short.trace"
        save_trace([MemOp(1, 64)], p)
        data = p.read_bytes()
        p.write_bytes(data[:-8])
        with pytest.raises(ValueError, match="truncated"):
            load_trace(p)

    def test_record_negative(self):
        with pytest.raises(ValueError):
            record_trace(ListTrace([]), -1)


class TestRecorder:
    def test_passthrough_and_capture(self, tmp_path):
        ops = [MemOp(1, 64), MemOp(2, 128)]
        rec = TraceRecorder(ListTrace(ops))
        seen = [rec.next_op(), rec.next_op(), rec.next_op()]
        assert seen == ops + [None]
        assert rec.ops == ops
        p = tmp_path / "rec.trace"
        assert rec.save(p) == 2
        assert len(load_trace(p)) == 2

    def test_record_stops_at_end(self):
        assert record_trace(ListTrace([MemOp(0, 0)]), 10) == [MemOp(0, 0)]
