"""Smoke tests for the experiment harnesses at tiny budgets.

These verify the harness plumbing (caching, aggregation, formatting), not
the scientific results — EXPERIMENTS.md and the benchmarks cover those.
"""

import pytest

from repro.experiments import (
    ExperimentContext,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table2,
)
from repro.experiments.figure2 import average_gains, format_figure2
from repro.experiments.figure3 import format_figure3
from repro.experiments.figure4 import format_figure4
from repro.experiments.figure5 import format_figure5
from repro.experiments.harness import mean
from repro.experiments.table2 import format_table2, rank_correlation
from repro.workloads.mixes import workload_by_name


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        inst_budget=2_000, warmup_insts=8_000, seeds=(7,), profile_budget=2_000
    )


class TestHarness:
    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_run_caching(self, ctx):
        a = ctx.run("2MEM-1", "HF-RF", 7)
        b = ctx.run("2MEM-1", "HF-RF", 7)
        assert a is b  # cached object

    def test_profiler_caching(self, ctx):
        p1 = ctx.profiler(7)
        p2 = ctx.profiler(7)
        assert p1 is p2
        mix = workload_by_name("2MEM-1")
        assert ctx.me_values(mix, 7) == ctx.me_values(mix, 7)

    def test_outcome_fields(self, ctx):
        o = ctx.outcome("2MEM-1", "HF-RF")
        assert o.workload == "2MEM-1"
        assert o.policy == "HF-RF"
        assert o.smt_speedup > 0
        assert o.unfairness >= 1.0
        assert len(o.per_core_latency) == 2
        assert len(o.per_core_ipc) == 2

    def test_gain_over(self, ctx):
        a = ctx.outcome("2MEM-1", "HF-RF")
        assert a.gain_over(a) == 0.0

    def test_seeds_required(self):
        with pytest.raises(ValueError):
            ExperimentContext(seeds=())


class TestFigureHarnesses:
    def test_figure2_single_panel(self, ctx):
        rows = run_figure2(
            ctx, core_counts=(2,), groups=("MEM",), policies=("HF-RF", "RR")
        )
        assert len(rows) == 6
        gains = average_gains(rows, policies=("HF-RF", "RR"))
        assert (2, "MEM", "RR") in gains
        text = format_figure2(rows)
        assert "2MEM-1" in text

    def test_figure3_runs(self, ctx):
        rows = run_figure3(ctx, groups=("MEM",))
        assert len(rows) == 6
        assert "FIX-3210" in format_figure3(rows)

    def test_figure4_runs(self, ctx):
        res = run_figure4(ctx, policies=("HF-RF", "RR"))
        assert set(res.right) == {"4MEM-1", "4MEM-5"}
        assert res.avg_latency("HF-RF") > 0
        assert res.latency_spread("4MEM-1", "RR") >= 1.0
        assert "Figure 4" in format_figure4(res)

    def test_figure5_runs(self, ctx):
        res = run_figure5(ctx, policies=("HF-RF", "RR"))
        assert res.avg_unfairness("HF-RF") >= 1.0
        assert "unfairness" in format_figure5(res)
        # reduction vs itself is zero
        assert res.reduction_vs("RR", "RR") == pytest.approx(0.0)


class TestTable2:
    def test_runs_all_apps(self, ctx):
        rows = run_table2(ctx)
        assert len(rows) == 26
        assert {r.klass for r in rows} == {"MEM", "ILP"}
        text = format_table2(rows)
        assert "swim" in text and "Spearman" in text

    def test_rank_correlation_bounds(self, ctx):
        rows = run_table2(ctx)
        rho = rank_correlation(rows)
        assert -1.0 <= rho <= 1.0

    def test_rank_correlation_perfect(self):
        from repro.experiments.table2 import Table2Row

        rows = [
            Table2Row("a", "a", "MEM", float(i), float(i), 1.0, 1.0)
            for i in range(1, 6)
        ]
        assert rank_correlation(rows) == pytest.approx(1.0)

    def test_rank_correlation_inverted(self):
        from repro.experiments.table2 import Table2Row

        rows = [
            Table2Row("a", "a", "MEM", float(i), float(-i), 1.0, 1.0)
            for i in range(1, 6)
        ]
        assert rank_correlation(rows) == pytest.approx(-1.0)


class TestExtensionStudy:
    def test_tiny_study(self, ctx):
        from repro.experiments.extensions_study import (
            format_extension_study,
            run_extension_study,
        )

        outcomes = run_extension_study(
            ctx, num_cores=2, policies=("HF-RF", "LREQ", "FQ")
        )
        assert [o.policy for o in outcomes] == ["HF-RF", "LREQ", "FQ"]
        assert all(o.avg_speedup > 0 for o in outcomes)
        text = format_extension_study(outcomes)
        assert "FQ" in text and "vs HF-RF" in text


class TestAblations:
    def test_split_controller_ablation(self, ctx):
        from repro.experiments import ablation_split_controllers

        res = ablation_split_controllers(ctx, workload="2MEM-1")
        assert set(res) == {"shared", "split"}
        assert all(v > 0 for v in res.values())

    def test_page_policy_ablation(self, ctx):
        from repro.experiments import ablation_page_policy

        res = ablation_page_policy(ctx, workload="2MEM-1")
        assert set(res) == {"closed", "open"}

    def test_table_bits_ablation(self, ctx):
        from repro.experiments import ablation_table_bits

        res = ablation_table_bits(
            ctx,
            workload="2MEM-1",
            variants=(("ideal-divider", None, "log"), ("4-bit log", 4, "log")),
        )
        assert set(res) == {"ideal-divider", "4-bit log"}

    def test_lookahead_ablation(self, ctx):
        from repro.experiments import ablation_lookahead

        res = ablation_lookahead(ctx, workload="2MEM-1", lookaheads=(64, 256))
        assert set(res) == {64, 256}

    def test_online_phase_ablation(self, ctx):
        from repro.experiments import ablation_online_phases

        res = ablation_online_phases(
            ctx, workload="2MEM-1", phase_period=1000, window=5000
        )
        assert set(res) == {"LREQ", "ME-LREQ offline", "ME-LREQ online"}
        assert all(v > 0 for v in res.values())

    def test_prefetch_ablation(self, ctx):
        from repro.experiments import ablation_prefetch

        res = ablation_prefetch(ctx, workload="2MEM-1", degrees=(0, 2))
        assert set(res) == {"off", "degree=2"}
        assert all(v > 0 for v in res.values())
