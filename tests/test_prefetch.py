"""Tests for the stream-prefetcher extension."""

from dataclasses import replace

import pytest

from repro.cache.prefetch import PrefetchConfig, StridePrefetcher
from repro.config import SystemConfig
from repro.core import make_policy
from repro.cpu.trace import ListTrace, MemOp
from repro.sim.system import MultiCoreSystem


class TestStrideDetection:
    def test_needs_two_matching_strides(self):
        pf = StridePrefetcher(PrefetchConfig(enabled=True, degree=2), 1)
        assert pf.observe_miss(0, 0 * 64) == []
        assert pf.observe_miss(0, 1 * 64) == []  # first stride sample
        out = pf.observe_miss(0, 2 * 64)  # stride confirmed
        assert out == [3 * 64, 4 * 64]

    def test_stride_any_size(self):
        pf = StridePrefetcher(PrefetchConfig(enabled=True, degree=1), 1)
        pf.observe_miss(0, 0)
        pf.observe_miss(0, 32 * 64)
        out = pf.observe_miss(0, 64 * 64)
        assert out == [96 * 64]

    def test_stride_change_retrains(self):
        pf = StridePrefetcher(PrefetchConfig(enabled=True, degree=1), 1)
        pf.observe_miss(0, 0)
        pf.observe_miss(0, 64)
        assert pf.observe_miss(0, 128) != []  # trained at +1
        assert pf.observe_miss(0, 1000 * 64) == []  # broken
        assert pf.observe_miss(0, 1001 * 64) == []  # new stride sample
        assert pf.observe_miss(0, 1002 * 64) != []  # retrained

    def test_per_core_isolation(self):
        pf = StridePrefetcher(PrefetchConfig(enabled=True, degree=1), 2)
        pf.observe_miss(0, 0)
        pf.observe_miss(0, 64)
        pf.observe_miss(1, 0)
        # core 1's history must not borrow core 0's training
        assert pf.observe_miss(1, 5000 * 64) == []

    def test_outstanding_budget(self):
        pf = StridePrefetcher(PrefetchConfig(enabled=True, max_outstanding=2), 1)
        assert pf.can_issue(0)
        pf.mark_issued(0)
        pf.mark_issued(0)
        assert not pf.can_issue(0)
        pf.mark_completed(0)
        assert pf.can_issue(0)

    def test_accuracy(self):
        pf = StridePrefetcher(PrefetchConfig(enabled=True), 1)
        assert pf.accuracy == 0.0
        pf.mark_issued(0)
        pf.mark_issued(0)
        pf.mark_useful()
        assert pf.accuracy == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchConfig(degree=0).validate()
        with pytest.raises(ValueError):
            PrefetchConfig(max_outstanding=0).validate()


def run_stream(prefetch_cfg, n_lines=64, gap=40):
    """A perfectly sequential miss stream through the full system."""
    base = 1 << 22
    ops = [MemOp(gap, base + i * 64) for i in range(n_lines)]
    cfg = SystemConfig(num_cores=1, prefetch=prefetch_cfg)
    sys_ = MultiCoreSystem(
        cfg, make_policy("HF-RF"), [ListTrace(ops)],
        target_insts=n_lines * (gap + 1) + 10,
    )
    sys_.run()
    return sys_


class TestEndToEnd:
    def test_disabled_by_default(self):
        sys_ = run_stream(None)
        assert sys_.hierarchy.prefetcher is None
        assert sum(sys_.controller.stats.prefetch_count) == 0

    def test_prefetches_issued_and_useful(self):
        sys_ = run_stream(PrefetchConfig(enabled=True, degree=2))
        pf = sys_.hierarchy.prefetcher
        assert pf.issued > 10
        assert pf.useful > 10
        assert pf.accuracy > 0.5  # a pure stream is the best case
        assert sum(sys_.controller.stats.prefetch_count) > 0

    def test_prefetching_speeds_up_streams(self):
        off = run_stream(None).cores[0].finish_cycle
        on = run_stream(PrefetchConfig(enabled=True, degree=4)).cores[0].finish_cycle
        assert on < off  # hiding miss latency must help a pure stream

    def test_demand_stats_not_polluted(self):
        sys_ = run_stream(PrefetchConfig(enabled=True, degree=2))
        st = sys_.controller.stats
        # demand reads + prefetches together cover the stream's lines
        assert st.read_count[0] + st.prefetch_count[0] >= 60
        # latency stats only from demand reads
        assert st.read_latency_sum[0] > 0
        assert st.avg_read_latency(0) < 5000

    def test_merged_demand_counts_useful(self):
        # tiny gaps: demand catches up with in-flight prefetches
        base = 1 << 22
        ops = [MemOp(2, base + i * 64) for i in range(64)]
        cfg = SystemConfig(num_cores=1, prefetch=PrefetchConfig(enabled=True, degree=2))
        sys_ = MultiCoreSystem(
            cfg, make_policy("HF-RF"), [ListTrace(ops)], target_insts=300
        )
        sys_.run()
        assert sys_.hierarchy.prefetcher.useful > 0
