"""Tests for the related-work extension policies (FQ, STFM)."""

import pytest

from repro.config import DramTimingConfig, DramTopologyConfig
from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest
from repro.core import make_policy
from repro.core.extensions import FairQueueingPolicy, StallTimeFairPolicy
from repro.core.policy import SchedulingContext
from repro.dram.dram_system import DramSystem
from repro.sim.runner import run_multicore
from repro.util.rng import RngStream
from repro.workloads.mixes import workload_by_name


def make_ctx(num_cores=4):
    dram = DramSystem(DramTopologyConfig(), DramTimingConfig(), 64)
    queues = RequestQueues(64, num_cores)
    return dram, queues, RngStream(0, "x")


def add_read(queues, dram, core, line, t=0):
    r = MemoryRequest(addr=line * 64, core_id=core, is_write=False, arrival_cycle=t)
    r.coord = dram.coord(r.addr)
    queues.add(r)
    return r


def sctx(dram, queues, rng, now=0):
    return SchedulingContext(now, 0, queues, dram, rng)


class TestFairQueueing:
    def test_alternates_between_equal_cores(self):
        dram, queues, rng = make_ctx(2)
        pol = make_policy("FQ")
        pol.setup(2, RngStream(0))
        reqs = [add_read(queues, dram, c, 10 * c + i) for c in range(2) for i in range(3)]
        served = []
        ctx = sctx(dram, queues, rng)
        for _ in range(4):
            cands = [r for r in queues.reads if r.coord.channel == 0]
            r = pol.select_read(cands, ctx)
            served.append(r.core_id)
            queues.remove(r)
        # equal shares: after 4 services, each core served twice
        assert served.count(0) == served.count(1) == 2

    def test_virtual_clock_advances(self):
        dram, queues, rng = make_ctx(2)
        pol = FairQueueingPolicy(quantum=10)
        pol.setup(2, RngStream(0))
        add_read(queues, dram, 0, 0)
        ctx = sctx(dram, queues, rng)
        pol.select_read(list(queues.reads), ctx)
        assert pol.virtual_clock(0) == 10

    def test_idle_core_cannot_hoard_credit(self):
        dram, queues, rng = make_ctx(2)
        pol = FairQueueingPolicy(quantum=10)
        pol.setup(2, RngStream(0))
        # core 0 served many times while core 1 idle
        for i in range(5):
            r = add_read(queues, dram, 0, i * 2)
            pol.select_read([r], sctx(dram, queues, rng))
            queues.remove(r)
        # when core 1 shows up it joins at the virtual-time floor (core 0's
        # clock), so it does NOT get 5 back-to-back services of banked credit
        r0 = add_read(queues, dram, 0, 100)
        r1 = add_read(queues, dram, 1, 201)
        pol.select_read([r0, r1], sctx(dram, queues, rng))
        assert pol.virtual_clock(1) >= pol.virtual_clock(0) - pol.quantum
        # from here service alternates: over 6 rounds each core gets ~3
        served = []
        for i in range(6):
            a = add_read(queues, dram, 0, 300 + 2 * i)
            b = add_read(queues, dram, 1, 401 + 2 * i)
            chosen = pol.select_read([a, b], sctx(dram, queues, rng))
            served.append(chosen.core_id)
            queues.remove(a)
            queues.remove(b)
        assert 2 <= served.count(0) <= 4

    def test_quantum_validation(self):
        with pytest.raises(ValueError):
            FairQueueingPolicy(quantum=0)

    def test_end_to_end(self):
        mix = workload_by_name("2MEM-1")
        r = run_multicore(mix, "FQ", 3000, seed=3, warmup_insts=8000)
        assert all(c.ipc > 0 for c in r.per_core)


class TestStallTimeFair:
    def test_most_delayed_core_wins(self):
        dram, queues, rng = make_ctx(2)
        pol = StallTimeFairPolicy(alpha=1.0)
        pol.setup(2, RngStream(0))
        fresh = add_read(queues, dram, 0, 0, t=990)
        stale = add_read(queues, dram, 1, 2, t=0)  # waiting 1000 cycles
        chosen = pol.select_read([fresh, stale], sctx(dram, queues, rng, now=1000))
        assert chosen is stale

    def test_slowdown_estimates_update(self):
        dram, queues, rng = make_ctx(2)
        pol = StallTimeFairPolicy(alpha=0.5)
        pol.setup(2, RngStream(0))
        assert pol.slowdown(0) == pytest.approx(1.0)
        r = add_read(queues, dram, 0, 0, t=0)
        pol.select_read([r], sctx(dram, queues, rng, now=288))
        assert pol.slowdown(0) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StallTimeFairPolicy(baseline_latency=0)
        with pytest.raises(ValueError):
            StallTimeFairPolicy(alpha=2.0)

    def test_reset(self):
        pol = StallTimeFairPolicy()
        pol.setup(2, RngStream(0))
        pol._avg_latency[0] = 999.0
        pol.reset()
        assert pol.slowdown(0) == pytest.approx(1.0)

    def test_end_to_end(self):
        mix = workload_by_name("2MEM-1")
        r = run_multicore(mix, "STFM", 3000, seed=3, warmup_insts=8000)
        assert all(c.ipc > 0 for c in r.per_core)


class TestBatchScheduling:
    def _pol(self, num_cores=2, cap=2):
        from repro.core.extensions import BatchSchedulingPolicy

        pol = BatchSchedulingPolicy(marking_cap=cap)
        pol.setup(num_cores, RngStream(0))
        return pol

    def test_batch_served_before_new_arrivals(self):
        dram, queues, rng = make_ctx(2)
        pol = self._pol()
        old = [add_read(queues, dram, 0, i * 2) for i in range(2)]
        ctx = sctx(dram, queues, rng)
        first = pol.select_read(list(queues.reads), ctx)
        assert first in old
        queues.remove(first)
        # a new request arrives mid-batch: the remaining marked request
        # still goes first
        newcomer = add_read(queues, dram, 1, 100)
        second = pol.select_read(list(queues.reads), ctx)
        assert second in old
        queues.remove(second)
        third = pol.select_read(list(queues.reads), ctx)
        assert third is newcomer

    def test_marking_cap_limits_per_core(self):
        dram, queues, rng = make_ctx(2)
        pol = self._pol(cap=2)
        for i in range(6):
            add_read(queues, dram, 0, i * 2)
        ctx = sctx(dram, queues, rng)
        pol.select_read(list(queues.reads), ctx)
        # batch was formed with at most 2 of core 0's requests, 1 consumed
        assert len(pol._batch) == 1
        assert pol.batches_formed == 1

    def test_shortest_job_first_within_batch(self):
        dram, queues, rng = make_ctx(2)
        pol = self._pol(cap=4)
        hog = [add_read(queues, dram, 0, i * 2) for i in range(4)]
        light = add_read(queues, dram, 1, 101)
        ctx = sctx(dram, queues, rng)
        chosen = pol.select_read(list(queues.reads), ctx)
        assert chosen is light  # fewest marked requests

    def test_validation(self):
        from repro.core.extensions import BatchSchedulingPolicy

        with pytest.raises(ValueError):
            BatchSchedulingPolicy(marking_cap=0)

    def test_end_to_end(self):
        mix = workload_by_name("2MEM-1")
        r = run_multicore(mix, "BATCH", 3000, seed=3, warmup_insts=8000)
        assert all(c.ipc > 0 for c in r.per_core)
