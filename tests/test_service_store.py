"""The shared result store: wire-payload admission and the directory
lock that serialises concurrent invocations on one cache directory.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.config import SystemConfig
from repro.experiments.cache import DirLock, ResultCache
from repro.experiments.cells import eval_cell_key
from repro.service.store import (
    PayloadIntegrityError,
    ResultStore,
    encode_payload,
    payload_sha,
)
from repro.sim.runner import CoreResult

CFG = SystemConfig()


def _key(policy: str = "HF-RF"):
    return eval_cell_key("4MEM-1", policy, 7, 300, 200, 256, CFG, 200)


def _result() -> CoreResult:
    return CoreResult(app="art", code="E", core_id=0, ipc=0.5,
                      finish_cycle=1000, committed=300, reads=10,
                      avg_read_latency=200.0, bytes_total=640,
                      bw_gbps=1.25)


def test_admit_verifies_stores_and_decodes(tmp_path):
    store = ResultStore(root=tmp_path, mode="rw")
    payload = encode_payload(_result())
    decoded = store.admit(_key(), payload, payload_sha(payload))
    assert decoded == _result()
    # the entry is a regular cache entry, readable by a plain ResultCache
    assert ResultCache(root=tmp_path, mode="rw").get(_key()) == _result()


def test_admit_rejects_sha_mismatch_without_writing(tmp_path):
    store = ResultStore(root=tmp_path, mode="rw")
    payload = encode_payload(_result())
    with pytest.raises(PayloadIntegrityError, match="SHA mismatch"):
        store.admit(_key(), payload, "0" * 64)
    assert store.get(_key()) is None
    assert list(tmp_path.glob("*.json")) == []


def test_admit_rejects_undecodable_payload(tmp_path):
    store = ResultStore(root=tmp_path, mode="rw")
    junk = {"type": "RunResult", "mix_name": "4MEM-1"}  # missing fields
    with pytest.raises(PayloadIntegrityError, match="does not decode"):
        store.admit(_key(), junk, payload_sha(junk))
    assert list(tmp_path.glob("*.json")) == []


def test_store_is_interchangeable_with_the_local_cache(tmp_path):
    """A directory warmed by the local runner is warm for the service
    and vice versa — the addressing is identical by construction."""
    local = ResultCache(root=tmp_path, mode="rw")
    local.put(_key("RR"), _result())
    assert ResultStore(root=tmp_path, mode="rw").get(_key("RR")) == _result()

    service = ResultStore(root=tmp_path, mode="rw")
    service.put(_key("LREQ"), _result())
    assert ResultCache(root=tmp_path, mode="rw").get(_key("LREQ")) \
        == _result()


# -- DirLock ----------------------------------------------------------------------


def _locked_increments(root: str, counter: str, iters: int) -> None:
    lock = DirLock(root)
    for _ in range(iters):
        with lock.held():
            value = int(open(counter).read())
            open(counter, "w").write(str(value + 1))


def test_dirlock_serialises_concurrent_processes(tmp_path):
    """A read-modify-write cycle under the lock must never lose an
    update across processes — the property the cache-entry writes of
    concurrent invocations rely on."""
    counter = tmp_path / "counter"
    counter.write_text("0")
    procs = [
        multiprocessing.Process(
            target=_locked_increments,
            args=(str(tmp_path), str(counter), 50),
        )
        for _ in range(4)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    assert int(counter.read_text()) == 4 * 50


def _put_many(root: str, n: int) -> None:
    cache = ResultCache(root=root, mode="rw")
    result = _result()
    for i in range(n):
        cache.put(_key(f"P{i % 5}"), result)


def test_concurrent_cache_writers_leave_only_valid_entries(tmp_path):
    """Two invocations hammering the same five entries: every surviving
    file must parse and verify (no interleaved/torn writes), and no
    temp files leak."""
    procs = [multiprocessing.Process(target=_put_many,
                                     args=(str(tmp_path), 40))
             for _ in range(3)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    entries = list(tmp_path.glob("*.json"))
    assert len(entries) == 5
    for path in entries:
        doc = json.loads(path.read_text())
        assert payload_sha(doc["payload"]) == doc["sha"]
    assert not list(tmp_path.glob("*.tmp.*"))
    assert (tmp_path / DirLock.LOCK_NAME).exists()


def test_lockfile_is_not_mistaken_for_an_entry(tmp_path):
    cache = ResultCache(root=tmp_path, mode="rw")
    cache.put(_key(), _result())
    assert (tmp_path / ".lock").exists()
    assert cache.get(_key()) == _result()
    assert os.path.basename(cache._path(_key())) != DirLock.LOCK_NAME
