"""Integration tests for the memory controller with a real engine/DRAM."""

from dataclasses import replace

import pytest

from repro.config import SystemConfig
from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest
from repro.core import make_policy
from repro.dram.dram_system import DramSystem
from repro.sim.engine import EventEngine
from repro.util.rng import RngStream

CFG = SystemConfig(num_cores=2)


def make_controller(policy="HF-RF", controller_cfg=None, num_cores=2):
    engine = EventEngine()
    dram = DramSystem(CFG.dram_topology, CFG.dram_timing, 64)
    cfg = controller_cfg or CFG.controller
    ctrl = MemoryController(
        cfg, dram, make_policy(policy), num_cores, engine, RngStream(7, "t")
    )
    return engine, dram, ctrl


def read(addr, core=0, done=None):
    return MemoryRequest(
        addr=addr, core_id=core, is_write=False, arrival_cycle=0, on_complete=done
    )


def write(addr, core=0):
    return MemoryRequest(addr=addr, core_id=core, is_write=True, arrival_cycle=0)


class TestReadPath:
    def test_single_read_latency(self):
        engine, dram, ctrl = make_controller()
        got = []
        assert ctrl.enqueue(read(0, done=lambda r, t: got.append((r, t))), 0)
        engine.run()
        (r, t), = got
        # closed bank: tRCD + CL + burst + controller overhead
        assert t == 40 + 40 + 16 + 48
        assert r.latency == t
        assert ctrl.stats.read_count[0] == 1

    def test_reads_on_different_channels_parallel(self):
        engine, dram, ctrl = make_controller()
        done = []
        ctrl.enqueue(read(0, done=lambda r, t: done.append(t)), 0)
        ctrl.enqueue(read(64, done=lambda r, t: done.append(t)), 0)  # other channel
        engine.run()
        assert max(done) == min(done)  # fully parallel channels

    def test_same_bank_serialises(self):
        engine, dram, ctrl = make_controller()
        done = []
        ctrl.enqueue(read(0, done=lambda r, t: done.append(t)), 0)
        ctrl.enqueue(read(4096 * 64, done=lambda r, t: done.append(t)), 0)  # same bank, next row
        engine.run()
        assert max(done) - min(done) >= CFG.dram_timing.t_rp

    def test_buffer_backpressure(self):
        cfg = replace(
            CFG.controller, buffer_entries=2, write_drain_high=1, write_drain_low=0
        )
        engine, dram, ctrl = make_controller(controller_cfg=cfg)
        assert ctrl.enqueue(read(0), 0)
        assert ctrl.enqueue(read(128), 0)
        assert not ctrl.enqueue(read(256), 0)
        woken = []
        ctrl.wait_for_space(lambda now: woken.append(now))
        engine.run()
        assert woken


class TestWriteHandling:
    def test_reads_bypass_writes(self):
        engine, dram, ctrl = make_controller()
        order = []
        # a write ages first, then a read to the same channel: the read
        # must be served first (read-first)
        w = write(0)
        r = read(128, done=lambda rq, t: order.append(("r", t)))
        ctrl.enqueue(w, 0)
        ctrl.enqueue(r, 0)
        engine.run()
        assert w.issue_cycle > r.issue_cycle

    def test_write_drain_hysteresis(self):
        cfg = replace(
            CFG.controller, buffer_entries=8, write_drain_high=4, write_drain_low=2
        )
        engine, dram, ctrl = make_controller(controller_cfg=cfg)
        for i in range(4):
            ctrl.enqueue(write(i * 128), 0)
        assert ctrl.drain_mode
        engine.run()
        assert not ctrl.drain_mode
        assert sum(ctrl.stats.write_count) == 4
        assert ctrl.stats.drain_entries == 1

    def test_writes_flow_on_idle_channel(self):
        engine, dram, ctrl = make_controller()
        ctrl.enqueue(write(0), 0)
        engine.run()
        assert sum(ctrl.stats.write_count) == 1  # opportunistic write


class TestCausality:
    def test_future_dated_request_not_served_early(self):
        engine, dram, ctrl = make_controller()
        r = read(0)
        ctrl.enqueue(r, 500)  # core lookahead: arrival in the future
        engine.run()
        assert r.issue_cycle >= 500
        assert r.done_cycle > r.arrival_cycle

    def test_latency_never_negative(self):
        engine, dram, ctrl = make_controller()
        reqs = [read(i * 128) for i in range(8)]
        for i, r in enumerate(reqs):
            ctrl.enqueue(r, i * 3)
        engine.run()
        assert all(r.done_cycle >= r.arrival_cycle for r in reqs)


class TestPagePolicy:
    def test_closed_page_keeps_row_for_queued_hit(self):
        engine, dram, ctrl = make_controller()
        # two reads to the same row, same bank: second should be a row hit
        # because a queued hit exists when the first is scheduled
        a = read(0)
        b = read(32 * 64)  # same channel/bank/row, next column
        ctrl.enqueue(a, 0)
        ctrl.enqueue(b, 0)
        engine.run()
        assert b.row_hit
        assert ctrl.stats.read_row_hits == 1

    def test_closed_page_precharges_without_hit(self):
        engine, dram, ctrl = make_controller()
        a = read(0)
        ctrl.enqueue(a, 0)
        engine.run()
        assert not dram.is_row_hit(dram.coord(0))

    def test_open_page_keeps_rows(self):
        cfg = replace(CFG.controller, page_policy="open")
        engine, dram, ctrl = make_controller(controller_cfg=cfg)
        ctrl.enqueue(read(0), 0)
        engine.run()
        assert dram.is_row_hit(dram.coord(0))


class TestBankReadiness:
    def test_busy_bank_request_deferred_not_starved(self):
        engine, dram, ctrl = make_controller()
        done = []
        # 3 reads to the same bank (rows differ): they serialise on the
        # bank but all must complete
        for row in range(3):
            ctrl.enqueue(
                read(row * 4096 * 64, done=lambda r, t: done.append(t)), 0
            )
        engine.run()
        assert len(done) == 3

    def test_ready_bank_preferred_over_busy(self):
        engine, dram, ctrl = make_controller()
        first = read(0)
        same_bank = read(4096 * 64)  # same bank as first, different row
        other_bank = read(128)  # same channel, different bank
        ctrl.enqueue(first, 0)
        engine.run()
        # bank 0 is now in precharge; enqueue both at the same cycle
        now = engine.now
        same_bank.arrival_cycle = now
        other_bank.arrival_cycle = now
        ctrl.enqueue(same_bank, now)
        ctrl.enqueue(other_bank, now)
        engine.run()
        assert other_bank.issue_cycle <= same_bank.issue_cycle


class TestStats:
    def test_avg_read_latency(self):
        engine, dram, ctrl = make_controller()
        ctrl.enqueue(read(0), 0)
        ctrl.enqueue(read(64, core=1), 0)
        engine.run()
        assert ctrl.stats.avg_read_latency() > 0
        assert ctrl.stats.avg_read_latency(0) > 0
        assert ctrl.stats.avg_read_latency(1) > 0

    def test_bytes_accounting(self):
        engine, dram, ctrl = make_controller()
        ctrl.enqueue(read(0), 0)
        ctrl.enqueue(write(128), 0)
        engine.run()
        assert ctrl.stats.bytes_read[0] == 64
        assert ctrl.stats.bytes_written[0] == 64
        assert ctrl.stats.total_bytes(0) == 128
