"""Tests for repro.util.rng — determinism and stream independence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_label_sensitivity(self):
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_is_63_bit_nonnegative(self):
        for s in range(20):
            v = derive_seed(s, "lbl")
            assert 0 <= v < 2**63

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_stable_across_calls(self, seed, label):
        assert derive_seed(seed, label) == derive_seed(seed, label)


class TestRngStream:
    def test_reproducible_sequence(self):
        a = RngStream(7, "core", 0)
        b = RngStream(7, "core", 0)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_distinct_labels_distinct_streams(self):
        a = RngStream(7, "core", 0)
        b = RngStream(7, "core", 1)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_child_derivation(self):
        parent = RngStream(7, "sys")
        c1 = parent.child("ctrl")
        c2 = RngStream(7, "sys", "ctrl")
        assert [c1.random() for _ in range(5)] == [c2.random() for _ in range(5)]

    def test_randint_range(self):
        rng = RngStream(1)
        vals = [rng.randint(3, 9) for _ in range(200)]
        assert all(3 <= v < 9 for v in vals)
        assert set(vals) == set(range(3, 9))  # all values reachable

    def test_geometric_positive(self):
        rng = RngStream(1)
        vals = [rng.geometric(0.3) for _ in range(500)]
        assert all(v >= 1 for v in vals)
        # mean of geometric(p) is 1/p
        assert 2.0 < np.mean(vals) < 5.0

    def test_geometric_clamps_bad_p(self):
        rng = RngStream(1)
        assert rng.geometric(5.0) == 1  # p clamped to 1
        assert rng.geometric(0.0) >= 1  # p clamped above 0

    def test_choice(self):
        rng = RngStream(1)
        seq = ["x", "y", "z"]
        assert all(rng.choice(seq) in seq for _ in range(20))

    def test_choice_index_weighted(self):
        rng = RngStream(1)
        # all weight on index 2
        assert all(rng.choice_index([0, 0, 5]) == 2 for _ in range(10))

    def test_choice_index_rejects_zero_weights(self):
        rng = RngStream(1)
        with pytest.raises(ValueError):
            rng.choice_index([0.0, 0.0])

    def test_shuffle_permutes(self):
        rng = RngStream(1)
        xs = list(range(30))
        ys = list(xs)
        rng.shuffle(ys)
        assert sorted(ys) == xs

    def test_uniform_floats_shape(self):
        rng = RngStream(1)
        arr = rng.uniform_floats(64)
        assert arr.shape == (64,)
        assert ((arr >= 0) & (arr < 1)).all()
