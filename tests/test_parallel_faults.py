"""Robustness of the parallel runner: crashes, resume, corruption.

* a worker that raises is retried once, then reported with its cell key
  — the pool never hangs;
* an interrupted run resumes from the on-disk cache, completing only the
  missing cells;
* a corrupted / truncated cache entry is detected (payload digest
  mismatch) and recomputed, never trusted;
* entries written by a different code revision are treated as stale.

Fault injection goes through the ``REPRO_PARALLEL_FAULT*`` env hooks in
:mod:`repro.experiments.cells` (they match a substring of the cell key
and only exist for these tests).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.cells import CellFault, execute_cell
from repro.experiments.harness import ExperimentContext
from repro.experiments.parallel import plan_cells, run_cells

BUDGET = 300
WARMUP = 200
PROFILE = 200
SEED = 7


def _ctx(**overrides) -> ExperimentContext:
    kw = dict(inst_budget=BUDGET, warmup_insts=WARMUP,
              profile_budget=PROFILE, seeds=(SEED,))
    kw.update(overrides)
    return ExperimentContext(**kw)


@pytest.fixture()
def cells():
    all_cells = plan_cells(_ctx(), figure2=((2,), ("MEM",)))
    # two eval cells plus the two single-core baselines behind them
    return [c for c in all_cells
            if c.key.workload in ("2MEM-1", "b", "c")
            and c.key.policy in ("HF-RF", "LREQ", "")]


def _fault_key(cells):
    """Pick one eval cell to sabotage; returns (cell, unique substring)."""
    target = next(c for c in cells if c.key.kind == "eval")
    return target, target.key.key_str()


def test_fault_hook_raises(monkeypatch, cells):
    target, pattern = _fault_key(cells)
    monkeypatch.setenv("REPRO_PARALLEL_FAULT", pattern)
    with pytest.raises(CellFault):
        execute_cell(target, attempt=0)
    # the retry attempt is clean unless FAULT_ALWAYS is set
    result = execute_cell(target, attempt=1)
    assert result is not None


@pytest.mark.parametrize("jobs", [1, 2])
def test_crashed_cell_is_retried_once_and_succeeds(monkeypatch, cells, jobs):
    target, pattern = _fault_key(cells)
    baseline = run_cells(cells, jobs=1)

    monkeypatch.setenv("REPRO_PARALLEL_FAULT", pattern)
    report = run_cells(cells, jobs=jobs)
    assert not report.failures, report.failure_report()
    assert pattern in report.retried
    assert report.results == baseline.results


def test_persistent_crash_is_reported_with_cell_key(monkeypatch, cells):
    target, pattern = _fault_key(cells)
    monkeypatch.setenv("REPRO_PARALLEL_FAULT", pattern)
    monkeypatch.setenv("REPRO_PARALLEL_FAULT_ALWAYS", "1")
    report = run_cells(cells, jobs=2)
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert failure.key_str == pattern
    assert failure.attempts == 2
    assert "CellFault" in failure.error
    assert target.key not in report.results
    # every other cell still completed
    assert len(report.results) == len(cells) - 1
    assert pattern in report.failure_report()


def test_hard_worker_crash_falls_back_serially(monkeypatch, cells):
    """A worker dying without raising (os._exit) breaks the pool; the
    runner must finish the round in-parent instead of hanging."""
    target, pattern = _fault_key(cells)
    baseline = run_cells(cells, jobs=1)

    monkeypatch.setenv("REPRO_PARALLEL_FAULT", pattern)
    monkeypatch.setenv("REPRO_PARALLEL_FAULT_KIND", "exit")
    report = run_cells(cells, jobs=2)
    assert report.pool_broken
    assert not report.failures, report.failure_report()
    assert report.results == baseline.results


def test_interrupted_run_resumes_only_missing_cells(tmp_path, cells):
    # "interrupt" after a prefix of the work: only some cells got cached
    done = cells[: len(cells) // 2]
    first = ResultCache(root=tmp_path, mode="rw")
    run_cells(done, jobs=1, cache=first)
    assert first.stats.writes == len(done)

    resumed = ResultCache(root=tmp_path, mode="rw")
    report = run_cells(cells, jobs=2, cache=resumed)
    assert report.cache_hits == len(done)
    assert report.executed == len(cells) - len(done)
    assert len(report.results) == len(cells)

    # and the completed trail makes a third pass simulation-free
    final = ResultCache(root=tmp_path, mode="rw")
    again = run_cells(cells, jobs=1, cache=final)
    assert again.executed == 0 and again.cache_hits == len(cells)


def test_corrupted_cache_entry_is_recomputed(tmp_path, cells):
    pristine = ResultCache(root=tmp_path, mode="rw")
    baseline = run_cells(cells, jobs=1, cache=pristine)

    entries = sorted(tmp_path.glob("*.json"))
    assert len(entries) == len(cells)
    # flip a payload bit in one entry, truncate another
    doc = json.loads(entries[0].read_text())
    doc["payload"]["end_cycle"] = doc["payload"].get("end_cycle", 0) + 1
    entries[0].write_text(json.dumps(doc))
    entries[1].write_text(entries[1].read_text()[: 40])

    cache = ResultCache(root=tmp_path, mode="rw")
    report = run_cells(cells, jobs=1, cache=cache)
    assert cache.stats.corrupt == 2
    assert report.executed == 2  # only the damaged entries re-simulate
    assert report.cache_hits == len(cells) - 2
    assert report.results == baseline.results

    # the recompute healed the damaged entries on disk
    healed = ResultCache(root=tmp_path, mode="rw")
    again = run_cells(cells, jobs=1, cache=healed)
    assert again.cache_hits == len(cells) and healed.stats.corrupt == 0


def test_stale_code_fingerprint_invalidates(tmp_path, monkeypatch, cells):
    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "rev-a")
    run_cells(cells, jobs=1, cache=ResultCache(root=tmp_path, mode="rw"))

    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "rev-b")
    cache = ResultCache(root=tmp_path, mode="rw")
    report = run_cells(cells, jobs=1, cache=cache)
    assert cache.stats.stale == len(cells)
    assert report.executed == len(cells) and report.cache_hits == 0
