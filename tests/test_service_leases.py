"""Unit tests for the coordinator's pure bookkeeping core
(:class:`repro.service.leases.TaskBoard`).

The board has no sockets or clocks, so every lease / retry / expiry /
dependency rule is pinned here with explicit timestamps — the loopback
e2e tests then only need to show the coordinator drives it correctly.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.experiments.cells import Cell, eval_cell_key, profile_cell_key
from repro.metrics.memory_efficiency import MeProfile
from repro.service.leases import TaskBoard

CFG = SystemConfig()


def _eval_cell(policy: str, mix: str = "4MEM-1", codes: str = "") -> Cell:
    key = eval_cell_key(mix, policy, 7, 300, 200, 256, CFG, 200)
    deps = tuple(profile_cell_key(c, 7, 200, CFG) for c in codes)
    return Cell(key=key, config=CFG, me_deps=deps)


def _profile_cell(code: str) -> Cell:
    return Cell(key=profile_cell_key(code, 7, 200, CFG), config=CFG)


def _me_profile(code: str, me: float) -> MeProfile:
    return MeProfile(app=f"app{code}", code=code, ipc=1.0, bw_gbps=1.0,
                     me=me, avg_read_latency=100.0)


def test_add_is_idempotent_across_jobs():
    board = TaskBoard()
    a = board.add(_eval_cell("HF-RF"))
    b = board.add(_eval_cell("HF-RF"))
    assert a is b
    assert len(board.tasks) == 1


def test_retry_budget_requeues_then_fails():
    board = TaskBoard(max_attempts=2)
    state = board.add(_eval_cell("HF-RF"))
    board.lease(state, "w1", now=0.0, duration=60.0, task_id=1)
    assert state.attempts == 1
    assert board.release(state, "boom") == "pending"  # budget left
    board.lease(state, "w2", now=1.0, duration=60.0, task_id=2)
    assert board.release(state, "boom again") == "failed"  # exhausted
    assert board.settled(state.digest)
    assert state.error == "boom again"
    assert board.counts()["failed"] == 1


def test_expiry_and_heartbeat_extension():
    board = TaskBoard()
    s1 = board.add(_eval_cell("HF-RF"))
    s2 = board.add(_eval_cell("RR"))
    board.lease(s1, "w1", now=0.0, duration=10.0, task_id=1)
    board.lease(s2, "w2", now=0.0, duration=10.0, task_id=2)
    # w1 heartbeats at t=8, w2 stays silent
    assert board.extend_leases("w1", now=8.0, duration=10.0) == 1
    expired = board.expire(now=12.0)
    assert [s.digest for s in expired] == [s2.digest]
    assert s2.status == "pending" and "expired" in s2.error
    assert s1.status == "leased"


def test_release_worker_requeues_everything_it_held():
    board = TaskBoard()
    s1 = board.add(_eval_cell("HF-RF"))
    s2 = board.add(_eval_cell("RR"))
    board.lease(s1, "w1", now=0.0, duration=60.0, task_id=1)
    board.lease(s2, "w1", now=0.0, duration=60.0, task_id=2)
    released = board.release_worker("w1")
    assert {s.digest for s in released} == {s1.digest, s2.digest}
    assert all(s.status == "pending" for s in released)
    assert board.release_worker("w1") == []  # nothing left to release


def test_me_cell_blocked_until_profiles_settle_then_resolved():
    board = TaskBoard()
    me = board.add(_eval_cell("ME-LREQ", codes="EF"))
    p_e = board.add(_profile_cell("E"))
    p_f = board.add(_profile_cell("F"))
    ready = board.ready()
    assert me not in ready and p_e in ready and p_f in ready

    board.mark_done(p_e.digest, _me_profile("E", 1.5))
    assert me not in board.ready()  # one dependency still pending
    board.mark_done(p_f.digest, _me_profile("F", 0.25))
    assert me in board.ready()

    resolved = board.resolve(me)
    assert resolved.me_values == (1.5, 0.25)
    assert me.cell.me_values is None  # board state untouched


def test_failed_or_absent_dependency_does_not_block():
    board = TaskBoard(max_attempts=1)
    # dependencies never registered on the board at all
    orphan = board.add(_eval_cell("ME-LREQ", mix="4MIX-1", codes="EF"))
    assert orphan in board.ready()
    assert board.resolve(orphan).me_values is None  # worker profiles itself

    # dependency registered but permanently failed
    me = board.add(_eval_cell("ME-LREQ", codes="E"))
    dep = board.add(_profile_cell("E"))
    board.lease(dep, "w1", now=0.0, duration=60.0, task_id=1)
    assert me not in board.ready()
    board.release(dep, "boom")
    assert dep.status == "failed"
    assert me in board.ready()
    assert board.resolve(me).me_values is None


def test_non_me_policies_never_consult_dependencies():
    board = TaskBoard()
    cell = _eval_cell("HF-RF", codes="EF")  # deps present but irrelevant
    state = board.add(cell)
    assert state in board.ready()
    assert board.resolve(state) is cell


def test_ready_is_sorted_by_canonical_key():
    board = TaskBoard()
    for policy in ("RR", "HF-RF", "LREQ"):
        board.add(_eval_cell(policy))
    keys = [s.cell.key.key_str() for s in board.ready()]
    assert keys == sorted(keys)


def test_max_attempts_must_be_positive():
    with pytest.raises(ValueError):
        TaskBoard(max_attempts=0)
