"""Wire-format unit tests for :mod:`repro.service.protocol`.

The codec carries three exactness obligations that the loopback e2e
tests rely on but cannot isolate: configs must round-trip to the same
digest the cell keys were computed from, float-valued fields must
survive JSON bit-for-bit, and malformed input must fail loudly (a
silent mis-decode would poison the content-addressed store).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.config import SystemConfig
from repro.experiments.cells import (
    Cell,
    custom_cell_key,
    eval_cell_key,
    profile_cell_key,
)
from repro.service.protocol import (
    ProtocolError,
    ServiceError,
    decode_cell,
    decode_config,
    decode_key,
    encode_cell,
    encode_config,
    encode_key,
    expect,
    parse_addr,
    read_msg,
)

CFG = SystemConfig()


def _feed(*lines: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for line in lines:
        reader.feed_data(line)
    reader.feed_eof()
    return reader


def test_parse_addr():
    assert parse_addr("10.0.0.5:4000") == ("10.0.0.5", 4000)
    assert parse_addr(":4000") == ("127.0.0.1", 4000)
    for bad in ("nocolon", "host:", "host:port", ""):
        with pytest.raises(ValueError):
            parse_addr(bad)


def test_config_roundtrip_preserves_digest():
    doc = encode_config(CFG)
    json.dumps(doc)  # must be JSON-safe as-is
    back = decode_config(doc)
    assert back == CFG
    assert back.digest() == CFG.digest()
    # and through an actual JSON round trip (what the wire does)
    again = decode_config(json.loads(json.dumps(doc)))
    assert again.digest() == CFG.digest()


def test_key_roundtrip_with_float_policy_args():
    key = custom_cell_key(
        "4MEM-1", "HF-RF", (("alpha", 0.1), ("bits", 3), ("mode", "x")),
        7, 300, 200, 256, CFG, 200,
    )
    doc = json.loads(json.dumps(encode_key(key)))
    back = decode_key(doc)
    assert back == key
    assert back.digest() == key.digest()
    # the float came back bit-exact, not via repr/str
    args = dict(back.policy_args)
    assert args["alpha"].hex() == (0.1).hex()
    assert isinstance(args["bits"], int)


def test_cell_roundtrip_eval_with_deps_and_me_values():
    mix_codes = ("E", "F")
    deps = tuple(profile_cell_key(c, 7, 200, CFG) for c in mix_codes)
    key = eval_cell_key("4MEM-1", "ME-LREQ", 7, 300, 200, 256, CFG, 200)
    cell = Cell(key=key, config=CFG, me_deps=deps,
                me_values=(1.5, 0.3333333333333333))
    doc = json.loads(json.dumps(encode_cell(cell)))
    back = decode_cell(doc)
    assert back.key == key
    assert back.me_deps == deps
    assert back.me_values is not None
    assert [v.hex() for v in back.me_values] == [v.hex()
                                                for v in cell.me_values]


def test_cell_roundtrip_profile_uses_single_core_digest():
    key = profile_cell_key("E", 7, 200, CFG)
    cell = Cell(key=key, config=CFG)
    back = decode_cell(json.loads(json.dumps(encode_cell(cell))))
    assert back.key == key


def test_decode_cell_rejects_config_digest_mismatch():
    key = eval_cell_key("4MEM-1", "HF-RF", 7, 300, 200, 256, CFG, 200)
    doc = encode_cell(Cell(key=key, config=CFG))
    doc["config"]["num_cores"] = 16  # codec drift / tampering
    with pytest.raises(ProtocolError, match="digest"):
        decode_cell(doc)


def test_read_msg_framing():
    async def scenario():
        reader = _feed(b'{"t": "hello"}\n', b"not json\n")
        assert (await read_msg(reader)) == {"t": "hello"}
        with pytest.raises(ProtocolError, match="undecodable"):
            await read_msg(reader)
        # clean EOF is None, not an error
        assert (await read_msg(_feed())) is None
        with pytest.raises(ProtocolError, match="JSON object"):
            await read_msg(_feed(b"[1, 2]\n"))

    asyncio.run(scenario())


def test_expect_surfaces_peer_errors():
    assert expect({"t": "welcome"}, "welcome") == {"t": "welcome"}
    with pytest.raises(ServiceError, match="closed by peer"):
        expect(None, "welcome")
    with pytest.raises(ServiceError, match="fingerprint mismatch"):
        expect({"t": "error", "error": "code fingerprint mismatch: ..."},
               "welcome")
    with pytest.raises(ProtocolError, match="expected 'welcome'"):
        expect({"t": "task"}, "welcome")
