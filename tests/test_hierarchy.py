"""Tests for the cache hierarchy wired to a real controller + engine."""

import pytest

from repro.cache.hierarchy import BLOCKED, MERGED, PENDING, CacheHierarchy
from repro.config import SystemConfig
from repro.controller.controller import MemoryController
from repro.core import make_policy
from repro.dram.dram_system import DramSystem
from repro.sim.engine import EventEngine
from repro.util.rng import RngStream


def make_stack(num_cores=2, buffer_entries=64):
    from dataclasses import replace

    cfg = SystemConfig(num_cores=num_cores)
    cfg = replace(
        cfg,
        controller=replace(
            cfg.controller,
            buffer_entries=buffer_entries,
            write_drain_high=max(buffer_entries // 2, 1),
            write_drain_low=max(buffer_entries // 4, 0),
        ),
    )
    engine = EventEngine()
    dram = DramSystem(cfg.dram_topology, cfg.dram_timing, cfg.line_bytes)
    policy = make_policy("HF-RF")
    ctrl = MemoryController(
        cfg.controller, dram, policy, num_cores, engine, RngStream(0, "c")
    )
    hier = CacheHierarchy(cfg, ctrl, num_cores)
    return cfg, engine, ctrl, hier


class TestHitPaths:
    def test_l1_hit_after_fill(self):
        cfg, engine, ctrl, hier = make_stack()
        got = []
        r = hier.access(0, 0x10000, False, 0, lambda l, t: got.append(t))
        assert r == PENDING
        engine.run()
        assert len(got) == 1
        assert hier.access(0, 0x10000, False, engine.now, None) == cfg.caches.l1d.hit_latency

    def test_l2_hit_for_other_l1_misses(self):
        cfg, engine, ctrl, hier = make_stack()
        hier.access(0, 0x10000, False, 0, lambda l, t: None)
        engine.run()
        # evict from L1 by invalidation, keep L2 copy
        hier.l1d[0].invalidate(0x10000)
        lat = hier.access(0, 0x10000, False, engine.now, None)
        assert lat == cfg.caches.l1d.hit_latency + cfg.caches.l2.hit_latency

    def test_per_core_l1_privacy(self):
        cfg, engine, ctrl, hier = make_stack()
        hier.access(0, 0x10000, False, 0, lambda l, t: None)
        engine.run()
        # core 1 misses its own L1 but hits the shared L2
        lat = hier.access(1, 0x10000, False, engine.now, None)
        assert lat == cfg.caches.l1d.hit_latency + cfg.caches.l2.hit_latency


class TestMissPaths:
    def test_merge_returns_merged(self):
        cfg, engine, ctrl, hier = make_stack()
        assert hier.access(0, 0x10000, False, 0, lambda l, t: None) == PENDING
        assert hier.access(0, 0x10020, False, 1, lambda l, t: None) == MERGED
        assert hier.mshrs[0].merges == 1

    def test_merged_waiters_all_fire(self):
        cfg, engine, ctrl, hier = make_stack()
        got = []
        hier.access(0, 0x10000, False, 0, lambda l, t: got.append("a"))
        hier.access(0, 0x10000, False, 1, lambda l, t: got.append("b"))
        engine.run()
        assert sorted(got) == ["a", "b"]

    def test_mshr_full_blocks(self):
        cfg, engine, ctrl, hier = make_stack()
        n = cfg.core.data_mshrs
        for i in range(n):
            assert hier.access(0, (i + 1) << 20, False, 0, lambda l, t: None) == PENDING
        assert hier.access(0, (n + 1) << 20, False, 0, lambda l, t: None) == BLOCKED

    def test_unblock_fires_after_completion(self):
        cfg, engine, ctrl, hier = make_stack()
        n = cfg.core.data_mshrs
        for i in range(n):
            hier.access(0, (i + 1) << 20, False, 0, lambda l, t: None)
        woken = []
        hier.wait_unblock(lambda now: woken.append(now))
        engine.run()
        assert woken, "unblock callback never fired"

    def test_controller_buffer_full_blocks(self):
        cfg, engine, ctrl, hier = make_stack(buffer_entries=4)
        for i in range(4):
            assert hier.access(0, (i + 1) << 20, False, 0, lambda l, t: None) == PENDING
        assert hier.access(0, 99 << 20, False, 0, lambda l, t: None) == BLOCKED


class TestWritebacks:
    def test_dirty_l2_eviction_writes_back(self):
        cfg, engine, ctrl, hier = make_stack()
        # dirty a line via a store miss, then evict it from L2 by filling
        # its set with (assoc) other lines
        store_addr = 0x10000
        hier.access(0, store_addr, True, 0, lambda l, t: None)
        engine.run()
        set_idx = hier.l2.set_index(store_addr)
        stride = hier.l2.config.num_sets * 64
        fills = 0
        addr = store_addr + stride
        while fills < cfg.caches.l2.assoc:
            if hier.l2.set_index(addr) == set_idx:
                hier.access(0, addr, False, engine.now, lambda l, t: None)
                engine.run()
                fills += 1
            addr += stride
        assert ctrl.stats.write_count[0] >= 1

    def test_owner_attribution(self):
        cfg, engine, ctrl, hier = make_stack()
        hier.access(1, 0x20000, True, 0, lambda l, t: None)
        engine.run()
        # line owned by core 1; force eviction via same-set fills from core 0
        set_idx = hier.l2.set_index(0x20000)
        stride = hier.l2.config.num_sets * 64
        addr = 0x20000 + stride
        fills = 0
        while fills < cfg.caches.l2.assoc:
            if hier.l2.set_index(addr) == set_idx:
                hier.access(0, addr, False, engine.now, lambda l, t: None)
                engine.run()
                fills += 1
            addr += stride
        assert ctrl.stats.write_count[1] >= 1, "writeback not billed to owner"


class TestStatistics:
    def test_demand_and_miss_counters(self):
        cfg, engine, ctrl, hier = make_stack()
        hier.access(0, 0x10000, False, 0, lambda l, t: None)
        engine.run()
        hier.access(0, 0x10000, False, engine.now, None)
        assert hier.demand_accesses[0] == 2
        assert hier.l2_miss_count(0) == 1
        assert 0.0 < hier.l1_miss_rate(0) <= 1.0
