"""Tests for the set-associative cache, including a model-based LRU check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssocCache
from repro.config import CacheConfig


def small_cache(assoc=2, sets=4, line=64):
    return SetAssocCache(
        CacheConfig(size_bytes=assoc * sets * line, assoc=assoc, line_bytes=line)
    )


class TestBasics:
    def test_miss_then_hit_after_fill(self):
        c = small_cache()
        assert not c.lookup(0)
        c.fill(0)
        assert c.lookup(0)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_same_line_different_offsets(self):
        c = small_cache()
        c.fill(0)
        assert c.lookup(63)
        assert not c.lookup(64)

    def test_probe_does_not_touch(self):
        c = small_cache()
        c.fill(0)
        h, m = c.stats.hits, c.stats.misses
        assert c.probe(0)
        assert not c.probe(64)
        assert (c.stats.hits, c.stats.misses) == (h, m)


class TestLru:
    def test_eviction_order(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0 * 64)
        c.fill(1 * 64)
        ev = c.fill(2 * 64)  # evicts line 0 (LRU)
        assert ev == (0, False)
        assert not c.probe(0)
        assert c.probe(64) and c.probe(128)

    def test_touch_refreshes_recency(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0 * 64)
        c.fill(1 * 64)
        c.lookup(0)  # refresh line 0
        ev = c.fill(2 * 64)
        assert ev == (64, False)  # line 1 is now LRU

    def test_fill_existing_refreshes(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0 * 64)
        c.fill(1 * 64)
        assert c.fill(0 * 64) is None  # already resident
        ev = c.fill(2 * 64)
        assert ev == (64, False)


class TestDirty:
    def test_write_lookup_sets_dirty(self):
        c = small_cache()
        c.fill(0)
        c.lookup(0, is_write=True)
        assert c.is_dirty(0)

    def test_dirty_eviction_reported(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0, dirty=True)
        ev = c.fill(64)
        assert ev == (0, True)
        assert c.stats.dirty_evictions == 1

    def test_set_dirty_absent_line(self):
        c = small_cache()
        assert not c.set_dirty(0)
        c.fill(0)
        assert c.set_dirty(0)
        assert c.is_dirty(0)

    def test_fill_merges_dirty_flag(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0, dirty=True)
        c.fill(0, dirty=False)  # refresh must not clean the line
        assert c.is_dirty(0)


class TestInvalidate:
    def test_invalidate(self):
        c = small_cache()
        c.fill(0)
        assert c.invalidate(0)
        assert not c.probe(0)
        assert not c.invalidate(0)

    def test_clear(self):
        c = small_cache()
        c.fill(0)
        c.lookup(0)
        c.clear()
        assert c.resident_lines() == 0
        assert c.stats.accesses == 0


class TestSetMapping:
    def test_set_index_uses_line_bits(self):
        c = small_cache(assoc=2, sets=4)
        assert c.set_index(0) == 0
        assert c.set_index(64) == 1
        assert c.set_index(4 * 64) == 0  # wraps

    def test_distinct_sets_do_not_interfere(self):
        c = small_cache(assoc=1, sets=4)
        for i in range(4):
            c.fill(i * 64)
        assert all(c.probe(i * 64) for i in range(4))


class TestModelBasedLru:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["fill", "lookup", "invalidate"]),
                st.integers(min_value=0, max_value=15),  # line index
                st.booleans(),  # dirty/write flag
            ),
            max_size=80,
        )
    )
    def test_against_reference_model(self, ops):
        """Drive the cache and a dict-based reference LRU in lockstep."""
        assoc, sets = 2, 2
        cache = small_cache(assoc=assoc, sets=sets)
        # reference: per set, ordered dict line->dirty (front = LRU)
        model = [dict() for _ in range(sets)]

        for op, line, flag in ops:
            addr = line * 64
            s = line % sets
            ref = model[s]
            if op == "fill":
                got = cache.fill(addr, dirty=flag)
                if line in ref:
                    ref[line] = ref.pop(line) or flag
                    assert got is None
                else:
                    want_evict = None
                    if len(ref) >= assoc:
                        victim = next(iter(ref))
                        want_evict = (victim * 64, ref.pop(victim))
                    ref[line] = flag
                    assert got == want_evict
            elif op == "lookup":
                got = cache.lookup(addr, is_write=flag)
                if line in ref:
                    ref[line] = ref.pop(line) or flag
                    assert got
                else:
                    assert not got
            else:  # invalidate
                got = cache.invalidate(addr)
                assert got == (line in ref)
                ref.pop(line, None)
            # residency must agree after every operation
            for ln in range(16):
                assert cache.probe(ln * 64) == (ln in model[ln % sets])
