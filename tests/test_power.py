"""Tests for the DDR2 energy model."""

import pytest

from repro.config import DramTimingConfig, DramTopologyConfig, SystemConfig
from repro.core import make_policy
from repro.dram.dram_system import DramSystem
from repro.dram.power import DramEnergyModel, EnergyBreakdown
from repro.sim.system import MultiCoreSystem
from repro.workloads.mixes import workload_by_name
from repro.workloads.synthetic import make_trace


def fresh_dram():
    return DramSystem(DramTopologyConfig(), DramTimingConfig(), 64)


class TestBreakdown:
    def test_total(self):
        b = EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert b.total_nj == 15.0

    def test_avg_power(self):
        # 3.2e9 cycles = 1 s; 1e9 nJ = 1 J -> 1 W = 1000 mW
        b = EnergyBreakdown(1e9, 0, 0, 0, 0)
        assert b.avg_power_mw(int(3.2e9)) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            b.avg_power_mw(0)

    def test_energy_per_bit(self):
        b = EnergyBreakdown(0, 8.0, 0, 0, 0)  # 8 nJ
        # one 64-byte line = 512 bits -> 8000 pJ / 512
        assert b.energy_per_bit_pj(64) == pytest.approx(8000 / 512)
        assert b.energy_per_bit_pj(0) == 0.0


class TestModel:
    def test_counts_map_to_components(self):
        dram = fresh_dram()
        c = dram.coord(0)
        dram.execute(c, 0, is_write=False, keep_open=True)  # ACT + read
        dram.execute(c, 500, is_write=False, keep_open=False)  # hit + read
        model = DramEnergyModel(
            e_activate_nj=10.0, e_read_nj=1.0, e_write_nj=2.0,
            p_background_mw_per_channel=0.0,
        )
        b = model.measure(dram, cycles=1000, reads=2, writes=0)
        assert b.activate_nj == 10.0  # one activation, one hit
        assert b.read_nj == 2.0
        assert b.write_nj == 0.0

    def test_row_hits_save_energy(self):
        """The same traffic with row hits must cost less than all-misses."""
        model = DramEnergyModel(p_background_mw_per_channel=0.0)
        hitty = fresh_dram()
        c0 = hitty.coord(0)
        hitty.execute(c0, 0, is_write=False, keep_open=True)
        for i in range(1, 8):
            hitty.execute(hitty.coord(i * 32 * 64), i * 500, is_write=False, keep_open=True)
        missy = fresh_dram()
        for i in range(8):
            missy.execute(missy.coord(i * 4096 * 64), i * 500, is_write=False, keep_open=False)
        e_hit = model.measure(hitty, 5000, reads=8, writes=0).total_nj
        e_miss = model.measure(missy, 5000, reads=8, writes=0).total_nj
        assert e_hit < e_miss

    def test_background_scales_with_time(self):
        dram = fresh_dram()
        model = DramEnergyModel()
        b1 = model.measure(dram, cycles=1000, reads=0, writes=0)
        b2 = model.measure(dram, cycles=2000, reads=0, writes=0)
        assert b2.background_nj == pytest.approx(2 * b1.background_nj)

    def test_validation(self):
        with pytest.raises(ValueError):
            DramEnergyModel(e_activate_nj=-1.0)
        model = DramEnergyModel()
        with pytest.raises(ValueError):
            model.measure(fresh_dram(), cycles=-1, reads=0, writes=0)


class TestSystemMeasurement:
    def test_measure_full_run(self):
        mix = workload_by_name("2MEM-1")
        cfg = SystemConfig(num_cores=2)
        traces = [make_trace(a, 7, "eval", i) for i, a in enumerate(mix.apps())]
        sys_ = MultiCoreSystem(
            cfg, make_policy("HF-RF"), traces, 3000, warmup_insts=8000, seed=7
        )
        sys_.run()
        b = DramEnergyModel().measure_system(sys_)
        assert b.total_nj > 0
        assert b.activate_nj > 0
        assert b.read_nj > 0
        assert 0 < b.avg_power_mw(sys_.engine.now) < 10_000
