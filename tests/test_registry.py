"""Tests for the policy registry."""

import pytest

from repro.core import available_policies, make_policy
from repro.core.fixed import FixedPriorityPolicy
from repro.core.registry import register_policy


class TestLookup:
    def test_paper_names_resolve(self):
        for name in ("FCFS", "RF", "HF-RF", "RR", "LREQ"):
            assert make_policy(name).name == name

    def test_case_insensitive(self):
        assert make_policy("hf-rf").name == "HF-RF"

    def test_me_policies_need_values(self):
        with pytest.raises(TypeError):
            make_policy("ME")
        assert make_policy("ME", me_values=[1.0]).name == "ME"
        assert make_policy("ME-LREQ", me_values=[1.0]).name == "ME-LREQ"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("WFQ")

    def test_available_lists_fix_placeholder(self):
        names = available_policies()
        assert "HF-RF" in names
        assert "ME-LREQ" in names
        assert "FIX-<order>" in names


class TestFixParsing:
    def test_fix_orders(self):
        p = make_policy("FIX-3210")
        assert isinstance(p, FixedPriorityPolicy)
        assert p.order == (3, 2, 1, 0)
        assert p.name == "FIX-3210"

    def test_fix_two_core(self):
        assert make_policy("FIX-10").order == (1, 0)

    def test_fix_bad_spec(self):
        with pytest.raises(ValueError):
            make_policy("FIX-abc")


class TestRegistration:
    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            @register_policy("HF-RF")
            class Dup:  # pragma: no cover - never instantiated
                pass
