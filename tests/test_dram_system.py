"""Tests for the assembled DRAM system."""

from repro.config import DramTimingConfig, DramTopologyConfig
from repro.dram.dram_system import DramSystem


def make_system():
    return DramSystem(DramTopologyConfig(), DramTimingConfig(), line_bytes=64)


class TestRouting:
    def test_channel_count(self):
        sys_ = make_system()
        assert len(sys_.channels) == 2
        assert all(len(ch.banks) == 16 for ch in sys_.channels)

    def test_execute_routes_to_decoded_channel(self):
        sys_ = make_system()
        addr = 64  # line 1 -> channel 1
        coord = sys_.coord(addr)
        assert coord.channel == 1
        sys_.execute(coord, 0, is_write=False, keep_open=False)
        assert sys_.channels[1].transactions == 1
        assert sys_.channels[0].transactions == 0

    def test_row_hit_query(self):
        sys_ = make_system()
        coord = sys_.coord(0)
        assert not sys_.is_row_hit(coord)
        sys_.execute(coord, 0, is_write=False, keep_open=True)
        assert sys_.is_row_hit(coord)


class TestStats:
    def test_aggregates(self):
        sys_ = make_system()
        c = sys_.coord(0)
        sys_.execute(c, 0, is_write=False, keep_open=True)
        sys_.execute(c, 500, is_write=False, keep_open=True)
        assert sys_.total_transactions == 2
        assert sys_.total_row_hits == 1
        assert sys_.total_activations == 1
        assert sys_.row_hit_rate() == 0.5

    def test_empty_hit_rate(self):
        assert make_system().row_hit_rate() == 0.0

    def test_reset(self):
        sys_ = make_system()
        sys_.execute(sys_.coord(0), 0, is_write=False, keep_open=True)
        sys_.reset()
        assert sys_.total_transactions == 0
        assert not sys_.is_row_hit(sys_.coord(0))
