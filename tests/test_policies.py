"""Unit tests for the scheduling policies' selection logic.

Each policy is exercised against a hand-built scheduling context (real
queues + real DRAM state, no cores), so the expected choice is fully
determined.
"""

import pytest

from repro.config import DramTimingConfig, DramTopologyConfig
from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest
from repro.core import make_policy
from repro.core.policy import SchedulingContext, hit_first_oldest, oldest
from repro.dram.dram_system import DramSystem
from repro.util.rng import RngStream


def make_ctx(num_cores=4, capacity=64):
    dram = DramSystem(DramTopologyConfig(), DramTimingConfig(), 64)
    queues = RequestQueues(capacity, num_cores)
    rng = RngStream(0, "test")
    return dram, queues, rng


def add_read(queues, dram, core, line, t=0):
    r = MemoryRequest(addr=line * 64, core_id=core, is_write=False, arrival_cycle=t)
    r.coord = dram.coord(r.addr)
    queues.add(r)
    return r


def ctx_for(dram, queues, rng, channel=0, now=0):
    return SchedulingContext(now, channel, queues, dram, rng)


def make(name, **kw):
    p = make_policy(name, **kw)
    p.setup(kw.get("num_cores", 4), RngStream(0, "pol"))
    return p


class TestHelpers:
    def test_oldest_picks_lowest_seq(self):
        dram, queues, rng = make_ctx()
        a = add_read(queues, dram, 0, 0)
        b = add_read(queues, dram, 0, 2)
        assert oldest([b, a]) is a

    def test_hit_first_prefers_open_row(self):
        dram, queues, rng = make_ctx()
        a = add_read(queues, dram, 0, 0)  # (ch0, bank0, row0)
        b = add_read(queues, dram, 0, 2)  # (ch0, bank1, row0)
        # open b's bank row
        dram.execute(b.coord, 0, is_write=False, keep_open=True)
        ctx = ctx_for(dram, queues, rng)
        assert hit_first_oldest([a, b], ctx) is b


class TestFcfs:
    def test_strict_age_order(self):
        dram, queues, rng = make_ctx()
        a = add_read(queues, dram, 1, 0)
        b = add_read(queues, dram, 0, 2)
        pol = make("FCFS")
        assert pol.select_read([b, a], ctx_for(dram, queues, rng)) is a

    def test_write_selection_also_age_order(self):
        dram, queues, rng = make_ctx()
        w1 = MemoryRequest(addr=0, core_id=0, is_write=True, arrival_cycle=0)
        w1.coord = dram.coord(0)
        w2 = MemoryRequest(addr=128, core_id=0, is_write=True, arrival_cycle=0)
        w2.coord = dram.coord(128)
        queues.add(w1)
        queues.add(w2)
        pol = make("FCFS")
        assert pol.select_write([w2, w1], ctx_for(dram, queues, rng)) is w1


class TestHfRf:
    def test_hit_first_over_age(self):
        dram, queues, rng = make_ctx()
        older = add_read(queues, dram, 0, 0)
        newer_hit = add_read(queues, dram, 1, 2)
        dram.execute(newer_hit.coord, 0, is_write=False, keep_open=True)
        pol = make("HF-RF")
        chosen = pol.select_read([older, newer_hit], ctx_for(dram, queues, rng))
        assert chosen is newer_hit

    def test_age_breaks_tie_without_hits(self):
        dram, queues, rng = make_ctx()
        a = add_read(queues, dram, 3, 0)
        b = add_read(queues, dram, 0, 2)
        pol = make("HF-RF")
        assert pol.select_read([b, a], ctx_for(dram, queues, rng)) is a


class TestRoundRobin:
    def test_rotates_over_cores(self):
        dram, queues, rng = make_ctx()
        reqs = {c: [add_read(queues, dram, c, 2 * i + 100 * c) for i in range(2)]
                for c in range(3)}
        pol = make("RR")
        ctx = ctx_for(dram, queues, rng)
        order = []
        for _ in range(3):
            r = pol.select_read(
                [x for rs in reqs.values() for x in rs if x in queues.reads], ctx
            )
            order.append(r.core_id)
            queues.remove(r)
        assert order == [0, 1, 2]

    def test_skips_absent_cores(self):
        dram, queues, rng = make_ctx()
        r2 = add_read(queues, dram, 2, 0)
        pol = make("RR")
        assert pol.select_read([r2], ctx_for(dram, queues, rng)) is r2
        # pointer advanced past 2
        r0 = add_read(queues, dram, 0, 2)
        assert pol.select_read([r0], ctx_for(dram, queues, rng)) is r0

    def test_empty_candidates_rejected(self):
        dram, queues, rng = make_ctx()
        pol = make("RR")
        with pytest.raises(ValueError):
            pol.select_read([], ctx_for(dram, queues, rng))


class TestLreq:
    def test_fewest_pending_core_wins(self):
        dram, queues, rng = make_ctx()
        hog = [add_read(queues, dram, 0, 2 * i) for i in range(5)]
        light = add_read(queues, dram, 1, 100)
        pol = make("LREQ")
        chosen = pol.select_read(hog + [light], ctx_for(dram, queues, rng))
        assert chosen is light

    def test_within_core_oldest(self):
        dram, queues, rng = make_ctx()
        a = add_read(queues, dram, 0, 0)
        b = add_read(queues, dram, 0, 2)
        pol = make("LREQ")
        assert pol.select_read([b, a], ctx_for(dram, queues, rng)) is a


class TestMe:
    def test_highest_me_core_wins(self):
        dram, queues, rng = make_ctx()
        lo = add_read(queues, dram, 0, 0)
        hi = add_read(queues, dram, 1, 2)
        pol = make("ME", me_values=[1.0, 100.0, 1.0, 1.0])
        assert pol.select_read([lo, hi], ctx_for(dram, queues, rng)) is hi

    def test_priority_is_fixed_regardless_of_pending(self):
        dram, queues, rng = make_ctx()
        hi_hog = [add_read(queues, dram, 1, 2 * i) for i in range(10)]
        lo = add_read(queues, dram, 0, 100)
        pol = make("ME", me_values=[1.0, 100.0, 1.0, 1.0])
        chosen = pol.select_read(hi_hog + [lo], ctx_for(dram, queues, rng))
        assert chosen.core_id == 1

    def test_me_values_must_match_cores(self):
        pol = make_policy("ME", me_values=[1.0, 2.0])
        with pytest.raises(ValueError):
            pol.setup(4, RngStream(0))


class TestMeLreq:
    def test_me_over_pending_tradeoff(self):
        dram, queues, rng = make_ctx()
        # core 0: ME 10 but 10 pending -> 1.0 ; core 1: ME 4, 1 pending -> 4.0
        hogs = [add_read(queues, dram, 0, 2 * i) for i in range(10)]
        light = add_read(queues, dram, 1, 100)
        pol = make("ME-LREQ", me_values=[10.0, 4.0, 1.0, 1.0])
        chosen = pol.select_read(hogs + [light], ctx_for(dram, queues, rng))
        assert chosen is light

    def test_huge_me_ratio_beats_pending(self):
        dram, queues, rng = make_ctx()
        hogs = [add_read(queues, dram, 0, 2 * i) for i in range(10)]
        light = add_read(queues, dram, 1, 100)
        # core 0 ME enormously higher: 1000/10 >> 1/1
        pol = make("ME-LREQ", me_values=[1000.0, 1.0, 1.0, 1.0])
        chosen = pol.select_read(hogs + [light], ctx_for(dram, queues, rng))
        assert chosen.core_id == 0

    def test_ideal_divider_variant(self):
        dram, queues, rng = make_ctx()
        a = add_read(queues, dram, 0, 0)
        b = add_read(queues, dram, 1, 2)
        pol = make("ME-LREQ", me_values=[5.0, 1.0, 1.0, 1.0], table_bits=None)
        assert pol.table is None
        assert pol.select_read([a, b], ctx_for(dram, queues, rng)) is a


class TestFixed:
    def test_order_respected(self):
        dram, queues, rng = make_ctx()
        r0 = add_read(queues, dram, 0, 0)
        r3 = add_read(queues, dram, 3, 2)
        pol = make("FIX-3210")
        assert pol.select_read([r0, r3], ctx_for(dram, queues, rng)) is r3
        pol2 = make("FIX-0123")
        assert pol2.select_read([r0, r3], ctx_for(dram, queues, rng)) is r0

    def test_must_be_permutation(self):
        pol = make_policy("FIX-012")
        with pytest.raises(ValueError):
            pol.setup(4, RngStream(0))

    def test_repeated_core_rejected(self):
        with pytest.raises(ValueError):
            make_policy("FIX-0011")


class TestRandomTieBreak:
    def test_ties_are_broken_across_cores(self):
        # two cores with identical pending counts under LREQ: over many
        # draws both must win sometimes (random tie-break, Section 3.2)
        dram, queues, rng = make_ctx()
        a = add_read(queues, dram, 0, 0)
        b = add_read(queues, dram, 1, 2)
        pol = make("LREQ")
        winners = {
            pol.select_read([a, b], ctx_for(dram, queues, rng)).core_id
            for _ in range(50)
        }
        assert winners == {0, 1}
