"""Arena harness: registry coverage, canonical ordering, byte stability.

The arena's contract is the same as every other harness in this repo:
the rendered table is a pure function of the cell set, byte-identical
across serial and ``--jobs N`` execution.  These tests run a tiny
one-mix arena once serially and once through the parallel planner and
compare the *strings*.
"""

from __future__ import annotations

import pytest

from repro.core.registry import registered_policies
from repro.experiments import ExperimentContext, format_arena, run_arena
from repro.experiments.arena import (
    ARENA_MIX_SETS,
    FIX_LABEL,
    arena_cells,
    arena_policies,
    concrete_policy,
)
from repro.experiments.parallel import merge_into, plan_cells, run_cells
from repro.workloads.mixes import workload_by_name

MIXES = ("2MEM-1",)
BUDGET = 1500
PROFILE_BUDGET = 1000
SEEDS = (1,)


def small_ctx() -> ExperimentContext:
    return ExperimentContext(
        inst_budget=BUDGET, seeds=SEEDS, profile_budget=PROFILE_BUDGET
    )


@pytest.fixture(scope="module")
def serial_rows():
    return run_arena(small_ctx(), mixes=MIXES)


class TestCoverage:
    def test_every_registered_policy_has_a_row(self, serial_rows):
        names = {r.policy for r in serial_rows}
        for policy in registered_policies():
            assert policy in names
        assert FIX_LABEL in names

    def test_rows_ranked_canonically(self, serial_rows):
        key = [(-r.weighted_speedup, r.policy) for r in serial_rows]
        assert key == sorted(key)

    def test_rows_carry_complexity_and_fingerprint(self, serial_rows):
        by_name = {r.policy: r for r in serial_rows}
        assert by_name["ME-LREQ"].table_bits == 2 * 64 * 10
        assert by_name["HF-RF"].state_bytes == 0.0
        assert all(len(r.fingerprint) == 12 for r in serial_rows)

    def test_mix_sets_resolve(self):
        assert ARENA_MIX_SETS["smoke"] == ("2MEM-1", "2MIX-1")
        assert len(ARENA_MIX_SETS["full"]) == 36

    def test_fix_label_resolves_to_descending_order(self):
        assert concrete_policy(FIX_LABEL, workload_by_name("2MEM-1")) == "FIX-10"
        assert concrete_policy(FIX_LABEL, workload_by_name("4MEM-1")) == "FIX-3210"
        assert concrete_policy("bliss", workload_by_name("4MEM-1")) == "BLISS"


class TestByteStability:
    def test_parallel_prewarm_is_byte_identical(self, serial_rows):
        serial_table = format_arena(serial_rows, MIXES)

        ctx = small_ctx()
        cells = plan_cells(ctx, arena=(MIXES, None))
        # Every (mix, policy, seed) eval cell plus the mix's single-core
        # baselines must be planned.
        evals = [c for c in cells if c.key.kind == "eval"]
        assert len(evals) == len(arena_policies()) * len(MIXES) * len(SEEDS)
        report = run_cells(cells, jobs=2)
        assert not report.failures, report.failure_report()
        merge_into(ctx, report)
        parallel_table = format_arena(run_arena(ctx, mixes=MIXES), MIXES)

        assert parallel_table == serial_table

    def test_restricted_field_plans_fewer_cells(self):
        ctx = small_ctx()
        pols = ("HF-RF", "BLISS")
        cells = plan_cells(ctx, arena=(MIXES, pols))
        evals = [c for c in cells if c.key.kind == "eval"]
        assert {c.key.policy for c in evals} == set(pols)

    def test_arena_cells_resolve_fix_per_mix(self):
        pairs = arena_cells(("2MEM-1", "4MEM-1"), (FIX_LABEL,))
        assert pairs == [("2MEM-1", "FIX-10"), ("4MEM-1", "FIX-3210")]


class TestPerMixDrillDown:
    """``repro arena --per-mix`` reuses the aggregate arena's cells and
    must obey the same byte-stability contract."""

    MIXES = ("2MEM-1", "2MIX-1")

    @pytest.fixture(scope="class")
    def per_mix_rows(self):
        from repro.experiments import run_arena_per_mix

        return run_arena_per_mix(small_ctx(), mixes=self.MIXES)

    def test_rows_grouped_and_ranked_within_mix(self, per_mix_rows):
        from repro.experiments.arena import arena_policies

        mixes_seen = [r.mix for r in per_mix_rows]
        # grouped: each mix's rows are contiguous, in requested order
        order = list(dict.fromkeys(mixes_seen))
        assert order == list(self.MIXES)
        for mix in self.MIXES:
            block = [r for r in per_mix_rows if r.mix == mix]
            assert len(block) == len(arena_policies())
            key = [(-r.smt_speedup, r.policy) for r in block]
            assert key == sorted(key)

    def test_fingerprints_are_per_mix(self, per_mix_rows):
        seen = {}
        for r in per_mix_rows:
            # the same policy must not carry the same fingerprint on two
            # different mixes (the digest covers the mix's own runs)
            assert seen.setdefault((r.policy, r.fingerprint), r.mix) == r.mix

    def test_parallel_prewarm_is_byte_identical(self, per_mix_rows):
        from repro.experiments import format_arena_per_mix, run_arena_per_mix

        serial_table = format_arena_per_mix(per_mix_rows)
        assert "drill-down" in serial_table

        ctx = small_ctx()
        cells = plan_cells(ctx, arena=(self.MIXES, None))
        report = run_cells(cells, jobs=2)
        assert not report.failures, report.failure_report()
        merge_into(ctx, report)
        parallel_table = format_arena_per_mix(
            run_arena_per_mix(ctx, mixes=self.MIXES)
        )

        assert parallel_table == serial_table
