"""Tests for JSON result serialisation."""

import json

import pytest

from repro.metrics.serialize import load_results, save_results, to_jsonable
from repro.sim.runner import CoreResult, RunResult
from repro.sim.sweep import SweepCell, SweepResult


def sample_run_result():
    core = CoreResult(
        app="swim", code="c", core_id=0, ipc=1.25, finish_cycle=1000,
        committed=2000, reads=50, avg_read_latency=250.0,
        bytes_total=6400, bw_gbps=2.0,
    )
    return RunResult(
        mix_name="2MEM-1", policy_name="HF-RF", per_core=(core,),
        end_cycle=1000, row_hit_rate=0.3, drain_entries=1,
    )


class TestToJsonable:
    def test_scalars_pass_through(self):
        assert to_jsonable(5) == 5
        assert to_jsonable(1.5) == 1.5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_dataclass_recursion(self):
        d = to_jsonable(sample_run_result())
        assert d["mix_name"] == "2MEM-1"
        assert d["per_core"][0]["app"] == "swim"
        json.dumps(d)  # fully JSON-compatible

    def test_tuple_becomes_list(self):
        assert to_jsonable((1, 2)) == [1, 2]

    def test_composite_dict_keys_stringified(self):
        d = to_jsonable({(4, "MEM"): 1.0})
        (key,) = d
        assert json.loads(key) == [4, "MEM"]

    def test_unserialisable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        p = tmp_path / "res.json"
        save_results(sample_run_result(), p, meta={"budget": 30000})
        results, meta = load_results(p)
        assert results["policy_name"] == "HF-RF"
        assert meta == {"budget": 30000}

    def test_sweep_results(self, tmp_path):
        res = SweepResult(
            cell=SweepCell("4MEM-1", "ME-LREQ", 1),
            smt_speedup=3.2, unfairness=1.3,
            avg_read_latency=350.0, per_core_ipc=(1.0, 0.9, 0.8, 0.7),
        )
        p = tmp_path / "sweep.json"
        save_results([res], p)
        results, _ = load_results(p)
        assert results[0]["cell"]["workload"] == "4MEM-1"
        assert results[0]["per_core_ipc"] == [1.0, 0.9, 0.8, 0.7]

    def test_wrong_format_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"something": "else"}')
        with pytest.raises(ValueError):
            load_results(p)

    def test_not_json_rejected(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text("not json at all")
        with pytest.raises(json.JSONDecodeError):
            load_results(p)
