#!/usr/bin/env python3
"""Telemetry overhead gate.

Runs the same workload three times — telemetry off, sampling telemetry
on, then request-span tracing on — and enforces the subsystem's
promises:

1. results are bit-identical with any capture enabled (telemetry and
   span tracing are pure observers);
2. sampling-telemetry wall-clock overhead stays under its budget
   (default 5 %, override with REPRO_OVERHEAD_BUDGET);
3. span-tracing overhead (1-in-64 sampling) stays under its own budget
   (default 10 %, override with REPRO_SPANS_OVERHEAD_BUDGET).

Exit status 0 on success, 1 on any violation, so CI can gate on it.

Run:  PYTHONPATH=src python scripts/check_overhead.py [--budget N]
"""

import argparse
import os
import sys
import time

from repro import Telemetry, run_multicore, workload_by_name


def timed_run(mix, policy, budget, seed, telemetry=None):
    t0 = time.perf_counter()
    result = run_multicore(
        mix, policy, inst_budget=budget, seed=seed, telemetry=telemetry
    )
    return result, time.perf_counter() - t0


def fingerprint(result):
    return (
        result.end_cycle,
        tuple(result.ipcs()),
        result.row_hit_rate,
        tuple(c.avg_read_latency for c in result.per_core),
        tuple(c.bw_gbps for c in result.per_core),
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="4MEM-1")
    ap.add_argument("--policy", default="HF-RF")
    ap.add_argument("--budget", type=int, default=30_000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--sample-every", type=int, default=2000)
    ap.add_argument("--repeats", type=int, default=3,
                    help="take the best of N timings to damp scheduler noise")
    ap.add_argument(
        "--max-overhead", type=float,
        default=float(os.environ.get("REPRO_OVERHEAD_BUDGET", "0.05")),
        help="allowed fractional slowdown with telemetry on (default 0.05)",
    )
    ap.add_argument("--span-sample", type=int, default=64,
                    help="span tracing rate for the third run (default 1-in-64)")
    ap.add_argument(
        "--max-spans-overhead", type=float,
        default=float(os.environ.get("REPRO_SPANS_OVERHEAD_BUDGET", "0.10")),
        help="allowed fractional slowdown with span tracing on (default 0.10)",
    )
    args = ap.parse_args()

    mix = workload_by_name(args.workload)
    base_times, tele_times, span_times = [], [], []
    base_fp = tele_fp = span_fp = None
    ticks = nspans = 0
    for _ in range(args.repeats):
        result, dt = timed_run(mix, args.policy, args.budget, args.seed)
        base_times.append(dt)
        base_fp = fingerprint(result)

        tm = Telemetry(sample_every=args.sample_every)
        result, dt = timed_run(
            mix, args.policy, args.budget, args.seed, telemetry=tm
        )
        tele_times.append(dt)
        tele_fp = fingerprint(result)
        ticks = len(tm.samples)

        tm = Telemetry(sample_every=args.sample_every,
                       capture_spans=True, span_sample=args.span_sample)
        result, dt = timed_run(
            mix, args.policy, args.budget, args.seed, telemetry=tm
        )
        span_times.append(dt)
        span_fp = fingerprint(result)
        nspans = len(tm.spans.completed)

    base, tele, span = min(base_times), min(tele_times), min(span_times)
    overhead = tele / base - 1.0
    span_overhead = span / base - 1.0
    print(f"workload {mix.name} / {args.policy} @ {args.budget} insts, "
          f"best of {args.repeats}:")
    print(f"  telemetry off : {base * 1e3:8.1f} ms")
    print(f"  telemetry on  : {tele * 1e3:8.1f} ms  ({ticks} samples)")
    print(f"  spans on      : {span * 1e3:8.1f} ms  "
          f"(1-in-{args.span_sample}, {nspans} spans)")
    print(f"  overhead      : {overhead:+8.2%}  (budget {args.max_overhead:.0%})")
    print(f"  span overhead : {span_overhead:+8.2%}  "
          f"(budget {args.max_spans_overhead:.0%})")

    ok = True
    if tele_fp != base_fp:
        print("FAIL: results differ with telemetry enabled")
        print(f"  off: {base_fp}")
        print(f"  on : {tele_fp}")
        ok = False
    else:
        print("  results bit-identical with telemetry on/off: OK")
    if span_fp != base_fp:
        print("FAIL: results differ with span tracing enabled")
        print(f"  off  : {base_fp}")
        print(f"  spans: {span_fp}")
        ok = False
    else:
        print("  results bit-identical with span tracing on/off: OK")
    if overhead > args.max_overhead:
        print(f"FAIL: overhead {overhead:.2%} exceeds budget "
              f"{args.max_overhead:.0%}")
        ok = False
    if span_overhead > args.max_spans_overhead:
        print(f"FAIL: span overhead {span_overhead:.2%} exceeds budget "
              f"{args.max_spans_overhead:.0%}")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
