#!/usr/bin/env python3
"""Telemetry overhead gate.

Runs the same workload four times — telemetry off, sampling telemetry
on, request-span tracing on, then fleet observability on — and enforces
the subsystem's promises:

1. results are bit-identical with any capture enabled (telemetry, span
   tracing and fleet observability are pure observers);
2. sampling-telemetry wall-clock overhead stays under its budget
   (default 5 %, override with REPRO_OVERHEAD_BUDGET);
3. span-tracing overhead (1-in-64 sampling) stays under its own budget
   (default 10 %, override with REPRO_SPANS_OVERHEAD_BUDGET);
4. fleet observability (worker-style trace recording + correlation env
   vars around the run) stays under its budget (default 5 %, override
   with REPRO_FLEET_OVERHEAD_BUDGET) — and the base leg doubles as the
   fleet-*disabled* bit-identity gate, since it runs with no fleet
   state at all.

Exit status 0 on success, 1 on any violation, so CI can gate on it.

Run:  PYTHONPATH=src python scripts/check_overhead.py [--budget N]
"""

import argparse
import os
import sys
import tempfile
import time

from repro import Telemetry, run_multicore, workload_by_name
from repro.telemetry.fleet import (
    ENV_RUN_ID,
    ENV_WORKER_ID,
    FleetTraceWriter,
    new_run_id,
)


def timed_run(mix, policy, budget, seed, telemetry=None):
    t0 = time.perf_counter()
    result = run_multicore(
        mix, policy, inst_budget=budget, seed=seed, telemetry=telemetry
    )
    return result, time.perf_counter() - t0


def timed_fleet_run(mix, policy, budget, seed, trace_dir):
    """One run instrumented the way a sweep worker instruments it: the
    correlation env vars exported and a fleet-trace cell slice recorded
    around the engine call."""
    run_id = new_run_id()
    path = os.path.join(trace_dir, f"fleet-{run_id}.jsonl")
    os.environ[ENV_RUN_ID] = run_id
    os.environ[ENV_WORKER_ID] = "overhead-w0"
    try:
        trace = FleetTraceWriter(path, role="worker", run_id=run_id,
                                 worker_id="overhead-w0")
        t0 = time.perf_counter()
        trace.event("cell overhead", "B", track="cells")
        result = run_multicore(mix, policy, inst_budget=budget, seed=seed)
        trace.event("cell overhead", "E", track="cells", status="done")
        dt = time.perf_counter() - t0
        trace.close()
    finally:
        os.environ.pop(ENV_RUN_ID, None)
        os.environ.pop(ENV_WORKER_ID, None)
    return result, dt


def fingerprint(result):
    return (
        result.end_cycle,
        tuple(result.ipcs()),
        result.row_hit_rate,
        tuple(c.avg_read_latency for c in result.per_core),
        tuple(c.bw_gbps for c in result.per_core),
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="4MEM-1")
    ap.add_argument("--policy", default="HF-RF")
    ap.add_argument("--budget", type=int, default=30_000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--sample-every", type=int, default=2000)
    ap.add_argument("--repeats", type=int, default=3,
                    help="take the best of N timings to damp scheduler noise")
    ap.add_argument(
        "--max-overhead", type=float,
        default=float(os.environ.get("REPRO_OVERHEAD_BUDGET", "0.05")),
        help="allowed fractional slowdown with telemetry on (default 0.05)",
    )
    ap.add_argument("--span-sample", type=int, default=64,
                    help="span tracing rate for the third run (default 1-in-64)")
    ap.add_argument(
        "--max-spans-overhead", type=float,
        default=float(os.environ.get("REPRO_SPANS_OVERHEAD_BUDGET", "0.10")),
        help="allowed fractional slowdown with span tracing on (default 0.10)",
    )
    ap.add_argument(
        "--max-fleet-overhead", type=float,
        default=float(os.environ.get("REPRO_FLEET_OVERHEAD_BUDGET", "0.05")),
        help="allowed fractional slowdown with fleet observability on "
             "(default 0.05)",
    )
    args = ap.parse_args()

    mix = workload_by_name(args.workload)
    base_times, tele_times, span_times, fleet_times = [], [], [], []
    base_fp = tele_fp = span_fp = fleet_fp = None
    ticks = nspans = 0
    with tempfile.TemporaryDirectory(prefix="repro-fleet-ovh-") as td:
        for _ in range(args.repeats):
            result, dt = timed_run(mix, args.policy, args.budget, args.seed)
            base_times.append(dt)
            base_fp = fingerprint(result)

            tm = Telemetry(sample_every=args.sample_every)
            result, dt = timed_run(
                mix, args.policy, args.budget, args.seed, telemetry=tm
            )
            tele_times.append(dt)
            tele_fp = fingerprint(result)
            ticks = len(tm.samples)

            tm = Telemetry(sample_every=args.sample_every,
                           capture_spans=True, span_sample=args.span_sample)
            result, dt = timed_run(
                mix, args.policy, args.budget, args.seed, telemetry=tm
            )
            span_times.append(dt)
            span_fp = fingerprint(result)
            nspans = len(tm.spans.completed)

            result, dt = timed_fleet_run(
                mix, args.policy, args.budget, args.seed, td
            )
            fleet_times.append(dt)
            fleet_fp = fingerprint(result)

    base, tele, span, fleet = (min(base_times), min(tele_times),
                               min(span_times), min(fleet_times))
    overhead = tele / base - 1.0
    span_overhead = span / base - 1.0
    fleet_overhead = fleet / base - 1.0
    print(f"workload {mix.name} / {args.policy} @ {args.budget} insts, "
          f"best of {args.repeats}:")
    print(f"  telemetry off : {base * 1e3:8.1f} ms")
    print(f"  telemetry on  : {tele * 1e3:8.1f} ms  ({ticks} samples)")
    print(f"  spans on      : {span * 1e3:8.1f} ms  "
          f"(1-in-{args.span_sample}, {nspans} spans)")
    print(f"  fleet obs on  : {fleet * 1e3:8.1f} ms")
    print(f"  overhead      : {overhead:+8.2%}  (budget {args.max_overhead:.0%})")
    print(f"  span overhead : {span_overhead:+8.2%}  "
          f"(budget {args.max_spans_overhead:.0%})")
    print(f"  fleet overhead: {fleet_overhead:+8.2%}  "
          f"(budget {args.max_fleet_overhead:.0%})")

    ok = True
    if tele_fp != base_fp:
        print("FAIL: results differ with telemetry enabled")
        print(f"  off: {base_fp}")
        print(f"  on : {tele_fp}")
        ok = False
    else:
        print("  results bit-identical with telemetry on/off: OK")
    if span_fp != base_fp:
        print("FAIL: results differ with span tracing enabled")
        print(f"  off  : {base_fp}")
        print(f"  spans: {span_fp}")
        ok = False
    else:
        print("  results bit-identical with span tracing on/off: OK")
    if fleet_fp != base_fp:
        print("FAIL: results differ with fleet observability enabled")
        print(f"  off  : {base_fp}")
        print(f"  fleet: {fleet_fp}")
        ok = False
    else:
        print("  results bit-identical with fleet observability on/off: OK")
    if overhead > args.max_overhead:
        print(f"FAIL: overhead {overhead:.2%} exceeds budget "
              f"{args.max_overhead:.0%}")
        ok = False
    if span_overhead > args.max_spans_overhead:
        print(f"FAIL: span overhead {span_overhead:.2%} exceeds budget "
              f"{args.max_spans_overhead:.0%}")
        ok = False
    if fleet_overhead > args.max_fleet_overhead:
        print(f"FAIL: fleet overhead {fleet_overhead:.2%} exceeds budget "
              f"{args.max_fleet_overhead:.0%}")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
