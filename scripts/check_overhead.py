#!/usr/bin/env python3
"""Telemetry overhead gate.

Runs the same workload twice — telemetry off, then on — and enforces the
subsystem's two promises:

1. results are bit-identical (telemetry is a pure observer);
2. enabled wall-clock overhead stays under the budget (default 5 %,
   override with REPRO_OVERHEAD_BUDGET).

Exit status 0 on success, 1 on any violation, so CI can gate on it.

Run:  PYTHONPATH=src python scripts/check_overhead.py [--budget N]
"""

import argparse
import os
import sys
import time

from repro import Telemetry, run_multicore, workload_by_name


def timed_run(mix, policy, budget, seed, telemetry=None):
    t0 = time.perf_counter()
    result = run_multicore(
        mix, policy, inst_budget=budget, seed=seed, telemetry=telemetry
    )
    return result, time.perf_counter() - t0


def fingerprint(result):
    return (
        result.end_cycle,
        tuple(result.ipcs()),
        result.row_hit_rate,
        tuple(c.avg_read_latency for c in result.per_core),
        tuple(c.bw_gbps for c in result.per_core),
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="4MEM-1")
    ap.add_argument("--policy", default="HF-RF")
    ap.add_argument("--budget", type=int, default=30_000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--sample-every", type=int, default=2000)
    ap.add_argument("--repeats", type=int, default=3,
                    help="take the best of N timings to damp scheduler noise")
    ap.add_argument(
        "--max-overhead", type=float,
        default=float(os.environ.get("REPRO_OVERHEAD_BUDGET", "0.05")),
        help="allowed fractional slowdown with telemetry on (default 0.05)",
    )
    args = ap.parse_args()

    mix = workload_by_name(args.workload)
    base_times, tele_times = [], []
    base_fp = tele_fp = None
    ticks = 0
    for _ in range(args.repeats):
        result, dt = timed_run(mix, args.policy, args.budget, args.seed)
        base_times.append(dt)
        base_fp = fingerprint(result)

        tm = Telemetry(sample_every=args.sample_every)
        result, dt = timed_run(
            mix, args.policy, args.budget, args.seed, telemetry=tm
        )
        tele_times.append(dt)
        tele_fp = fingerprint(result)
        ticks = len(tm.samples)

    base, tele = min(base_times), min(tele_times)
    overhead = tele / base - 1.0
    print(f"workload {mix.name} / {args.policy} @ {args.budget} insts, "
          f"best of {args.repeats}:")
    print(f"  telemetry off : {base * 1e3:8.1f} ms")
    print(f"  telemetry on  : {tele * 1e3:8.1f} ms  ({ticks} samples)")
    print(f"  overhead      : {overhead:+8.2%}  (budget {args.max_overhead:.0%})")

    ok = True
    if tele_fp != base_fp:
        print("FAIL: results differ with telemetry enabled")
        print(f"  off: {base_fp}")
        print(f"  on : {tele_fp}")
        ok = False
    else:
        print("  results bit-identical with telemetry on/off: OK")
    if overhead > args.max_overhead:
        print(f"FAIL: overhead {overhead:.2%} exceeds budget "
              f"{args.max_overhead:.0%}")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
