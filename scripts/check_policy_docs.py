#!/usr/bin/env python3
"""Docs-consistency gate: every registered policy is in the handbook.

Imports the policy registry and checks that every name returned by
``registered_policies()`` — plus the parameterised FIX family — has its
own ``##`` heading in docs/POLICIES.md.  The handbook is the arena's
companion document, so a policy that ships without a section there is a
documentation regression, not a style nit.

Exit status 0 on success, 1 listing the missing names, so CI can gate
on it.

Run:  PYTHONPATH=src python scripts/check_policy_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from repro.core.registry import registered_policies

HANDBOOK = Path(__file__).resolve().parent.parent / "docs" / "POLICIES.md"


def documented_names(text: str) -> set[str]:
    """Policy names claimed by ``##`` headings, markdown-escapes removed."""
    names: set[str] = set()
    for line in text.splitlines():
        m = re.match(r"##\s+(\S+)", line)
        if m:
            names.add(m.group(1).replace("\\", ""))
    return names


def main() -> int:
    if not HANDBOOK.exists():
        print(f"FAIL: {HANDBOOK} does not exist", file=sys.stderr)
        return 1
    headings = documented_names(HANDBOOK.read_text())

    required = list(registered_policies())
    missing = [name for name in required if name not in headings]
    # The FIX family is parameterised (FIX-3210, FIX-10, ...); the
    # handbook documents it once under a "FIX-<order>" heading.
    if not any(h.startswith("FIX-") for h in headings):
        missing.append("FIX-<order>")

    if missing:
        print(
            "FAIL: registered policies missing from docs/POLICIES.md: "
            + ", ".join(sorted(missing)),
            file=sys.stderr,
        )
        print(
            "Add a '## <NAME>' section per policy "
            "(see the handbook's conventions block).",
            file=sys.stderr,
        )
        return 1

    print(
        f"OK: all {len(required)} registered policies (+ FIX-<order>) "
        f"documented in {HANDBOOK.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
