#!/usr/bin/env python3
"""Simulator performance baseline: time the paper-figure smoke configs.

Times the Figure 2 / Figure 3 smoke configurations (the same shapes the
CI smoke job exercises) plus one telemetry-on and one span-tracing run,
and writes a machine-readable summary so regressions in simulator
throughput show up run-over-run.  Each entry records wall-clock seconds,
simulated cycles, memory requests served, and the two derived rates
(cycles/s and requests/s).

The output is an *artifact*, not a gate — absolute timings depend on the
host, so CI uploads the JSON instead of asserting on it.  Compare files
from the same machine class only.  ``--repeats N`` times each entry N
times and keeps the best (minimum) reading, which filters most scheduler
and frequency-scaling noise on shared hosts; each entry also records
``cpu_seconds`` (``time.process_time``), which is far less sensitive to
host load than wall clock and is the number to use for comparisons.

Naming convention (docs/PERFORMANCE.md): ad-hoc runs write
``BENCH_latest.json`` (gitignored, always the most recent local
reading); a baseline worth keeping is renamed to ``BENCH_PR<n>.json``
and committed — those files are immutable once landed.

``--profile [BASE]`` adds one extra cProfile'd pass of the primary run
config *after* the timed entries (so profiling never skews the
timings), writes ``BASE.pstats`` + ``BASE.folded`` (collapsed stacks
for flamegraph tools), and embeds the top hot functions in the
artifact under ``profile``.

Run:  PYTHONPATH=src python scripts/bench_suite.py \
          [--budget N] [--repeats N] [--out PATH] [--profile [BASE]]
"""

import argparse
import contextlib
import json
import os
import platform
import sys
import tempfile
import time

from repro import Telemetry, run_multicore, workload_by_name
from repro.config import SystemConfig
from repro.experiments import ExperimentContext, run_figure2, run_figure3
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import merge_into, plan_cells, run_cells
from repro.metrics.memory_efficiency import MeProfiler
from repro.sim.backend import ENV_VAR as BACKEND_ENV_VAR


@contextlib.contextmanager
def _forced_backend(name):
    """Pin REPRO_BACKEND for one entry (run_multicore resolves the env
    var on every call, so this reaches every cell the entry times)."""
    prev = os.environ.get(BACKEND_ENV_VAR)
    os.environ[BACKEND_ENV_VAR] = name
    try:
        yield
    finally:
        if prev is None:
            del os.environ[BACKEND_ENV_VAR]
        else:
            os.environ[BACKEND_ENV_VAR] = prev


def _timed(repeats, fn, *args, **kwargs):
    """Best-of-``repeats`` timing: (result, wall_seconds, cpu_seconds)."""
    best_wall = best_cpu = None
    out = None
    for _ in range(repeats):
        w0 = time.perf_counter()
        c0 = time.process_time()
        out = fn(*args, **kwargs)
        cpu = time.process_time() - c0
        wall = time.perf_counter() - w0
        if best_wall is None or wall < best_wall:
            best_wall = wall
        if best_cpu is None or cpu < best_cpu:
            best_cpu = cpu
    return out, best_wall, best_cpu


def _run_entry(name, mix_name, policy, budget, seed, repeats=1,
               telemetry=None, me_values=None):
    """Time one multicore run; report throughput from its DRAM traffic."""
    mix = workload_by_name(mix_name)
    result, dt, cpu = _timed(
        repeats, run_multicore, mix, policy, inst_budget=budget, seed=seed,
        me_values=me_values, telemetry=telemetry,
    )
    requests = sum(c.reads for c in result.per_core)
    return {
        "name": name,
        "kind": "run",
        "workload": mix_name,
        "policy": policy,
        "budget": budget,
        "seconds": round(dt, 4),
        "cpu_seconds": round(cpu, 4),
        "simulated_cycles": result.end_cycle,
        "requests": requests,
        "cycles_per_sec": round(result.end_cycle / dt) if dt else None,
        "requests_per_sec": round(requests / dt) if dt else None,
    }


def _figure_entry(name, fn, make_ctx, budget, repeats=1, **kwargs):
    # Fresh context per repeat: ExperimentContext caches profiles and run
    # results, so re-timing the same instance would measure cache lookups.
    rows, dt, cpu = _timed(repeats, lambda: fn(make_ctx(), **kwargs))
    return {
        "name": name,
        "kind": "figure",
        "budget": budget,
        "seconds": round(dt, 4),
        "cpu_seconds": round(cpu, 4),
        "cells": sum(len(r.outcomes) for r in rows),
    }


def _parallel_entry(name, make_ctx, budget, jobs):
    """Time the sharded prewarm + merged figure pass (cold, then cached).

    The cached reading exercises the resume path: every cell comes back
    from the on-disk store, so it measures cache+merge overhead alone.
    The entry records the cache stats line CI surfaces in the artifact.
    """
    timings = {}
    with tempfile.TemporaryDirectory() as td:
        for leg in ("cold", "cached"):
            cache = ResultCache(root=td, mode="rw")
            ctx = make_ctx()
            ctx.cache = cache
            t0 = time.perf_counter()
            c0 = time.process_time()
            cells = plan_cells(ctx, figure2=((2,), ("MEM",)))
            report = run_cells(cells, jobs=jobs, cache=cache)
            merge_into(ctx, report)
            rows = run_figure2(ctx, core_counts=(2,), groups=("MEM",))
            timings[leg] = {
                "seconds": round(time.perf_counter() - t0, 4),
                "cpu_seconds": round(time.process_time() - c0, 4),
                "cache": cache.stats.as_dict(),
                "cache_line": cache.stats.line(),
            }
            cells_done = sum(len(r.outcomes) for r in rows)
    return {
        "name": name,
        "kind": "parallel",
        "budget": budget,
        "jobs": jobs,
        "planned_cells": len(cells),
        "cells": cells_done,
        "seconds": timings["cold"]["seconds"],
        "cpu_seconds": timings["cold"]["cpu_seconds"],
        "cache": timings["cold"]["cache"],
        "cache_line": timings["cold"]["cache_line"],
        "cached_seconds": timings["cached"]["seconds"],
        "cached_cache_line": timings["cached"]["cache_line"],
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--budget", type=int, default=6000,
                    help="instructions per core for the smoke configs")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--repeats", type=int, default=1,
                    help="time each entry N times, keep the best reading")
    ap.add_argument("--jobs", type=int, default=2,
                    help="worker processes for the parallel-prewarm entry")
    ap.add_argument("--out", "--output", dest="out",
                    default="BENCH_latest.json",
                    help="result artifact (default: %(default)s — the "
                         "working-copy convention; committed baselines "
                         "are renamed BENCH_PR<n>.json, see "
                         "docs/PERFORMANCE.md)")
    ap.add_argument("--profile", nargs="?", const="BENCH_profile",
                    metavar="BASE",
                    help="after the timed entries, run one cProfile'd "
                         "pass of the primary config; writes "
                         "BASE.pstats + BASE.folded (default BASE: "
                         "%(const)s) and embeds the top functions in "
                         "the artifact")
    args = ap.parse_args()

    mix = workload_by_name("4MEM-1")
    me = MeProfiler(
        inst_budget=max(args.budget // 2, 3000), seed=args.seed
    ).me_values(mix)

    entries = [
        _run_entry("run-hf-rf", "4MEM-1", "HF-RF", args.budget, args.seed,
                   repeats=args.repeats),
        _run_entry("run-me-lreq", "4MEM-1", "ME-LREQ", args.budget,
                   args.seed, repeats=args.repeats, me_values=me),
        _run_entry("run-telemetry", "4MEM-1", "HF-RF", args.budget,
                   args.seed, repeats=args.repeats,
                   telemetry=Telemetry(sample_every=2000)),
        _run_entry("run-spans", "4MEM-1", "HF-RF", args.budget, args.seed,
                   repeats=args.repeats,
                   telemetry=Telemetry(capture_spans=True, span_sample=64)),
    ]
    # The figure harnesses profile + sweep policies; one smoke panel each
    # keeps the suite under a minute while covering the hot sweep paths.
    def make_ctx():
        return ExperimentContext(
            inst_budget=args.budget,
            seeds=(args.seed,),
            profile_budget=max(args.budget // 2, 3000),
            config=SystemConfig(),
        )

    entries.append(_figure_entry(
        "figure2-smoke", run_figure2, make_ctx, args.budget,
        repeats=args.repeats, core_counts=(2,), groups=("MEM",)
    ))
    # The same panel pinned to the object reference engine.  The unpinned
    # entry above resolves the backend like every other consumer (auto =
    # fast on the default config), so the pair is the in-artifact
    # fast-vs-object head-to-head; BENCH_PR7.json's cpu_seconds ratio is the
    # committed record of the speedup (docs/PERFORMANCE.md).
    with _forced_backend("object"):
        entries.append(_figure_entry(
            "figure2-smoke-object", run_figure2, make_ctx, args.budget,
            repeats=args.repeats, core_counts=(2,), groups=("MEM",)
        ))
    entries[-1]["backend"] = "object"
    entries[-2]["backend"] = os.environ.get(BACKEND_ENV_VAR, "auto")
    entries.append(_figure_entry(
        "figure3-smoke", run_figure3, make_ctx, args.budget,
        repeats=args.repeats, groups=("MEM",)
    ))
    entries.append(_parallel_entry(
        "figure2-parallel-prewarm", make_ctx, args.budget, args.jobs
    ))

    doc = {
        "suite": "bench_suite",
        "budget": args.budget,
        "seed": args.seed,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "entries": entries,
    }

    if args.profile:
        # Separate profiled pass *after* every timed entry: cProfile
        # perturbs timings, so it must never share a pass with them.
        from repro.telemetry.profiling import EngineProfiler

        with EngineProfiler(args.profile, top_n=15) as prof:
            run_multicore(mix, "HF-RF", inst_budget=args.budget,
                          seed=args.seed)
        doc["profile"] = {
            "config": {"workload": "4MEM-1", "policy": "HF-RF",
                       "budget": args.budget, "seed": args.seed},
            "top": prof.top,
            "pstats": prof.pstats_path,
            "folded": prof.folded_path,
        }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    width = max(len(e["name"]) for e in entries)
    for e in entries:
        rate = (f"  {e['requests_per_sec']:>8} req/s"
                if e.get("requests_per_sec") else "")
        print(f"{e['name']:<{width}}  {e['seconds']:>8.3f} s{rate}")
        if e.get("cache_line"):
            print(f"{'':<{width}}  cold   {e['cache_line']}")
            print(f"{'':<{width}}  cached {e['cached_cache_line']} "
                  f"({e['cached_seconds']:.3f} s)")
    if args.profile:
        print(f"profile pass (4MEM-1 / HF-RF @ {args.budget}):")
        print(prof.format_top(), end="")
        print(f"wrote {prof.pstats_path} and {prof.folded_path}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
