#!/usr/bin/env python3
"""Loopback distributed-sweep smoke: real processes, golden diff.

Starts ``repro serve`` plus N ``repro worker`` processes on 127.0.0.1
(separate OS processes — the same topology the two-terminal quickstart
in README.md describes), then verifies the two determinism contracts of
docs/DISTRIBUTED.md end to end:

1. **Golden fingerprints** — the four checked-in golden runs
   (``tests/golden/golden_stats.json``: budget 2500, warmup 2000,
   seed 7 on 4MEM-1) are executed via the coordinator and compared
   field by field through ``float.hex`` — results that crossed the
   wire must carry the exact bits of an in-process run.
2. **CLI byte-identity** — ``repro submit <addr> figure2`` must print
   byte-for-byte what the serial ``repro figure 2`` prints.

``--fleet-obs`` runs the same cluster with fleet observability enabled
(coordinator ``--telemetry`` + trace/metrics/Prometheus outputs, worker
fleet traces), so the golden and byte-identity legs double as the
*observability-enabled* bit-identity gate; after shutdown it asserts
the metrics JSONL and Prometheus snapshots are well-formed and
non-empty, and runs ``repro obs merge-trace`` over the per-process
traces, requiring coordinator lease slices and worker cell slices that
share one ``run_id`` in the merged Chrome trace.

Exits non-zero on any mismatch.  Used by the ``distributed-smoke`` and
``observability-smoke`` CI jobs; runnable locally with no arguments.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
GOLDEN_PATH = ROOT / "tests" / "golden" / "golden_stats.json"

sys.path.insert(0, str(ROOT / "src"))

from repro.config import SystemConfig  # noqa: E402
from repro.experiments.cells import (  # noqa: E402
    ME_FAMILY,
    Cell,
    eval_cell_key,
    profile_cell_key,
)
from repro.service.client import request_shutdown, submit_cells  # noqa: E402
from repro.workloads.mixes import workload_by_name  # noqa: E402

SERVING_RE = re.compile(r"serving on ([\d.]+):(\d+)")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    return env


def _cli(*argv: str) -> list[str]:
    return [sys.executable, "-m", "repro", *argv]


def start_cluster(store: str, n_workers: int, obs_dir: str | None = None):
    """``repro serve`` + workers as real subprocesses; returns addr.

    With ``obs_dir`` set, the whole cluster runs with fleet
    observability on: the coordinator records a fleet trace, metrics
    JSONL and a Prometheus snapshot there, and each worker records its
    own fleet trace.
    """
    serve_obs = []
    if obs_dir is not None:
        serve_obs = [
            "--telemetry",
            "--trace-out", os.path.join(obs_dir, "coord.fleet.jsonl"),
            "--metrics-out", os.path.join(obs_dir, "metrics.jsonl"),
            "--prometheus-out", os.path.join(obs_dir, "fleet.prom"),
            "--sample-every", "0.5",
        ]
    serve = subprocess.Popen(
        _cli("serve", "--port", "0", "--store", store, *serve_obs),
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=_env(), cwd=ROOT,
    )
    line = serve.stdout.readline()
    m = SERVING_RE.search(line)
    if not m:
        serve.kill()
        raise SystemExit(f"coordinator did not announce itself: {line!r}")
    addr = f"{m.group(1)}:{m.group(2)}"
    workers = [
        subprocess.Popen(
            _cli("worker", addr, "--id", f"smoke-w{i}",
                 "--connect-retries", "20",
                 *([] if obs_dir is None else
                   ["--trace-out",
                    os.path.join(obs_dir, f"w{i}.fleet.jsonl"),
                    "--sample-every", "0.5"])),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env=_env(), cwd=ROOT,
        )
        for i in range(n_workers)
    ]
    return serve, workers, addr


def golden_cells() -> list[Cell]:
    cfg = SystemConfig()
    mix = workload_by_name("4MEM-1")
    cells: list[Cell] = []
    for policy in ("HF-RF", "ME-LREQ", "RR", "LREQ"):
        key = eval_cell_key(mix.name, policy, 7, 2500, 2000, 256, cfg, 2000)
        deps = ()
        if policy in ME_FAMILY:
            deps = tuple(profile_cell_key(c, 7, 2000, cfg)
                         for c in mix.codes)
            cells.extend(Cell(key=d, config=cfg) for d in deps)
        cells.append(Cell(key=key, config=cfg, me_deps=deps))
    return cells


def check_golden(addr: str) -> None:
    golden = json.loads(GOLDEN_PATH.read_text())["runs"]
    report = submit_cells(addr, golden_cells())
    if report.failures:
        raise SystemExit(report.failure_report())
    by_policy = {k.policy: v for k, v in report.results.items()
                 if k.kind == "eval"}
    checked = 0
    for policy, want in golden.items():
        got = by_policy[policy]
        assert got.end_cycle == want["end_cycle"], policy
        assert got.row_hit_rate.hex() == want["row_hit_rate"], policy
        assert got.drain_entries == want["drain_entries"], policy
        for core, w in zip(got.per_core, want["per_core"]):
            assert core.ipc.hex() == w["ipc"], (policy, core.app)
            assert core.avg_read_latency.hex() == w["avg_read_latency"], \
                (policy, core.app)
            assert core.bw_gbps.hex() == w["bw_gbps"], (policy, core.app)
            checked += 1
    print(f"golden fingerprints: {len(golden)} runs, {checked} cores, "
          f"all float-hex exact")


def check_cli_byte_identity(addr: str, budget: int) -> None:
    common = ("--budget", str(budget), "--seeds", "7",
              "--cores", "2", "--groups", "MEM")
    serial = subprocess.run(
        _cli("figure", "2", *common),
        capture_output=True, text=True, env=_env(), cwd=ROOT, check=True,
    )
    distributed = subprocess.run(
        _cli("submit", addr, "figure2", *common),
        capture_output=True, text=True, env=_env(), cwd=ROOT, check=True,
    )
    if distributed.stdout != serial.stdout:
        sys.stderr.write("--- serial ---\n" + serial.stdout)
        sys.stderr.write("--- distributed ---\n" + distributed.stdout)
        raise SystemExit("repro submit output differs from repro figure 2")
    # Third cell: the struct-of-arrays engine through the same CLI path.
    # --backend fast must not move a single byte of figure2 output.
    fast = subprocess.run(
        _cli("figure", "2", *common, "--backend", "fast"),
        capture_output=True, text=True, env=_env(), cwd=ROOT, check=True,
    )
    if fast.stdout != serial.stdout:
        sys.stderr.write("--- object backend ---\n" + serial.stdout)
        sys.stderr.write("--- fast backend ---\n" + fast.stdout)
        raise SystemExit(
            "repro figure 2 --backend fast output differs from the "
            "object backend")
    print(f"CLI byte-identity: {len(serial.stdout)} bytes of figure2 "
          f"output identical (serial, distributed, and --backend fast)")


def check_fleet_artifacts(obs_dir: str, n_workers: int) -> None:
    """Post-shutdown fleet-observability assertions (--fleet-obs only)."""
    metrics_path = os.path.join(obs_dir, "metrics.jsonl")
    snaps = [json.loads(line)
             for line in Path(metrics_path).read_text().splitlines()]
    assert snaps, "metrics JSONL is empty"
    run_ids = {s["run_id"] for s in snaps}
    assert len(run_ids) == 1, f"metrics snapshots span runs: {run_ids}"
    final = snaps[-1]
    assert final["instruments"], "final metrics snapshot has no instruments"
    completed = final["instruments"].get("fleet.lease.completed", {})
    assert completed.get("value", 0) > 0, \
        f"no completed leases recorded: {completed}"

    prom = Path(os.path.join(obs_dir, "fleet.prom")).read_text()
    fleet_lines = [ln for ln in prom.splitlines()
                   if ln.startswith("repro_fleet_")]
    assert fleet_lines, "Prometheus snapshot has no repro_fleet_ series"
    for ln in fleet_lines:
        float(ln.rsplit(" ", 1)[1])  # every sample parses as a number

    traces = [os.path.join(obs_dir, "coord.fleet.jsonl")] + [
        os.path.join(obs_dir, f"w{i}.fleet.jsonl") for i in range(n_workers)]
    merged_path = os.path.join(obs_dir, "merged.trace.json")
    subprocess.run(
        _cli("obs", "merge-trace", *traces, "--out", merged_path),
        capture_output=True, text=True, env=_env(), cwd=ROOT, check=True,
    )
    merged = json.loads(Path(merged_path).read_text())
    events = merged["traceEvents"]
    leases = [e for e in events
              if e.get("ph") == "B" and e["name"].startswith("lease ")]
    cells = [e for e in events
             if e.get("ph") == "B" and e["name"].startswith("cell ")]
    assert leases, "merged trace has no coordinator lease slices"
    assert cells, "merged trace has no worker cell slices"
    merged_run = merged["otherData"]["run_id"]
    assert merged_run in run_ids, \
        f"merged-trace run {merged_run} != metrics run {run_ids}"
    print(f"fleet artifacts: {len(snaps)} metric snapshots, "
          f"{len(fleet_lines)} Prometheus series, merged trace has "
          f"{len(leases)} lease + {len(cells)} cell slices on run "
          f"{merged_run}")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--budget", type=int, default=2000,
                    help="budget for the CLI byte-identity leg")
    ap.add_argument("--fleet-obs", action="store_true",
                    help="enable fleet observability on the cluster and "
                         "assert its artifacts after shutdown")
    args = ap.parse_args(argv)

    t0 = time.time()
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as td:
        store = os.path.join(td, "store")
        obs_dir = None
        if args.fleet_obs:
            obs_dir = os.path.join(td, "obs")
            os.makedirs(obs_dir)
        serve, workers, addr = start_cluster(store, args.workers, obs_dir)
        try:
            print(f"cluster: coordinator {addr}, {len(workers)} workers, "
                  f"store {store}"
                  + (", fleet observability on" if obs_dir else ""))
            check_golden(addr)
            check_cli_byte_identity(addr, args.budget)
        finally:
            try:
                request_shutdown(addr)
            except (OSError, RuntimeError):
                serve.kill()
            for proc in workers:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
            try:
                serve.wait(timeout=30)
            except subprocess.TimeoutExpired:
                serve.kill()
        if obs_dir is not None:
            check_fleet_artifacts(obs_dir, args.workers)
    print(f"distributed smoke OK in {time.time() - t0:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
