#!/usr/bin/env python3
"""Regenerate every paper experiment and emit the EXPERIMENTS.md tables.

This is the record-keeping companion of the benchmark harness: it runs
Table 2 and Figures 2-5 (plus the ablations) at the documented budget and
prints a markdown report of paper-vs-measured values to stdout.

``--jobs N`` shards the underlying simulation cells across N worker
processes and merges them back deterministically, so the emitted tables
are byte-identical to a serial run (pass ``--stable-output`` to also
suppress the wall-time annotations when diffing).  Results are recorded
in an on-disk cache (``.repro-cache/`` by default); ``--resume`` reads
it back so an interrupted run completes only the missing cells, and
``--no-cache`` disables the disk entirely.

``--coordinator HOST:PORT`` executes the cells on a distributed sweep
service (``repro serve`` + ``repro worker``) instead of a local pool —
same bit-identical merge, see docs/DISTRIBUTED.md.

Usage:
    python scripts/run_all_experiments.py [--budget 30000] [--seeds 1 2 3]
        [--jobs N] [--coordinator HOST:PORT] [--resume] [--no-cache]
        [--cache-dir DIR] [--only table2 figure2 ...] [--stable-output]
        [--out EXPERIMENTS-data.md] [--skip-ablations] [--quick]
"""

import argparse
import sys
import time

from repro.experiments import (
    ExperimentContext,
    ablation_lookahead,
    ablation_page_policy,
    ablation_table_bits,
    ablation_write_drain,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table2,
)
from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.experiments.figure2 import average_gains
from repro.experiments.figure3 import spread
from repro.experiments.parallel import (
    default_jobs,
    merge_into,
    plan_cells,
    run_cells,
)
from repro.experiments.table2 import rank_correlation
from repro.telemetry.bus import TelemetryBus

POLICIES = ("HF-RF", "ME", "RR", "LREQ", "ME-LREQ")
SECTIONS = ("table2", "figure2", "figure3", "figure4", "figure5", "ablations")


def md_table(headers, rows):
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for r in rows:
        out.append("| " + " | ".join(str(x) for x in r) + " |")
    return "\n".join(out)


def _stamp(t0, stable):
    """Wall-time annotation, or nothing under ``--stable-output``."""
    return "" if stable else f" ({time.time()-t0:.0f}s)"


def section_table2(ctx, out, stable=False):
    t0 = time.time()
    rows = run_table2(ctx)
    out.append("## Table 2 — application class and memory efficiency\n")
    out.append(
        md_table(
            ["app", "code", "class", "paper ME", "measured ME", "IPC", "BW GB/s"],
            [
                (r.app, r.code, r.klass, f"{r.paper_me:.0f}",
                 f"{r.measured_me:.3f}", f"{r.measured_ipc:.2f}",
                 f"{r.measured_bw_gbps:.3f}")
                for r in sorted(rows, key=lambda x: x.code)
            ],
        )
    )
    rho = rank_correlation(rows)
    out.append(f"\nSpearman rank correlation vs the published ME values: "
               f"**{rho:.3f}**{_stamp(t0, stable)}\n")


def section_figure2(ctx, out, core_counts, groups, stable=False):
    t0 = time.time()
    rows = run_figure2(ctx, core_counts=core_counts, groups=groups)
    out.append("## Figure 2 — SMT speedup of the five policies\n")
    current = None
    for r in rows:
        key = (r.num_cores, r.group)
        if key != current:
            current = key
            out.append(f"\n### {r.num_cores}-core {r.group}\n")
            out.append("| workload | " + " | ".join(POLICIES) + " |")
            out.append("|" + "|".join("---" for _ in range(len(POLICIES) + 1)) + "|")
        out.append(
            f"| {r.workload} | "
            + " | ".join(f"{r.speedup(p):.3f}" for p in POLICIES)
            + " |"
        )
    out.append("\n### Average gain over HF-RF\n")
    gains = average_gains(rows)
    out.append("| cores | group | " + " | ".join(POLICIES[1:]) + " |")
    out.append("|" + "|".join("---" for _ in range(len(POLICIES) + 1)) + "|")
    seen = sorted({(n, g) for (n, g, _p) in gains})
    for n, g in seen:
        out.append(
            f"| {n} | {g} | "
            + " | ".join(f"{gains[(n, g, p)]:+.1%}" for p in POLICIES[1:])
            + " |"
        )
    if not stable:
        out.append(f"\n({time.time()-t0:.0f}s)\n")
    return rows


def section_figure3(ctx, out, stable=False):
    t0 = time.time()
    rows = run_figure3(ctx, groups=("MEM",))
    out.append("## Figure 3 — simple fixed-priority schemes (4-core MEM)\n")
    pols = ("HF-RF", "ME", "FIX-3210", "FIX-0123")
    out.append(
        md_table(
            ["workload"] + list(pols),
            [
                (r.workload, *(f"{r.speedup(p):.3f}" for p in pols))
                for r in rows
            ],
        )
    )
    for p in pols[1:]:
        best, worst = spread(rows, p)
        out.append(f"\n- {p}: best {best:+.1%}, worst {worst:+.1%} vs HF-RF")
    if not stable:
        out.append(f"\n({time.time()-t0:.0f}s)\n")


def section_figure4(ctx, out, stable=False):
    t0 = time.time()
    res = run_figure4(ctx)
    out.append("## Figure 4 — memory read latency (4-core MEM)\n")
    out.append("### Left: average read latency (cycles)\n")
    out.append(
        md_table(
            ["workload"] + list(POLICIES),
            [
                (wl, *(f"{by[p].avg_read_latency:.0f}" for p in POLICIES))
                for wl, by in res.left.items()
            ]
            + [("**average**", *(f"{res.avg_latency(p):.0f}" for p in POLICIES))],
        )
    )
    out.append("\n### Right: per-core read latency (cycles)\n")
    for wl, by in res.right.items():
        out.append(f"\n**{wl}**\n")
        out.append(
            md_table(
                ["policy", "core0", "core1", "core2", "core3", "max/min"],
                [
                    (p, *(f"{x:.0f}" for x in lats),
                     f"{res.latency_spread(wl, p):.2f}x")
                    for p, lats in by.items()
                ],
            )
        )
    if not stable:
        out.append(f"\n({time.time()-t0:.0f}s)\n")


def section_figure5(ctx, out, stable=False):
    t0 = time.time()
    res = run_figure5(ctx)
    out.append("## Figure 5 — unfairness (4-core MEM)\n")
    out.append(
        md_table(
            ["workload"] + list(POLICIES),
            [
                (wl, *(f"{by[p].unfairness:.2f}" for p in POLICIES))
                for wl, by in res.cells.items()
            ]
            + [("**average**", *(f"{res.avg_unfairness(p):.2f}" for p in POLICIES))],
        )
    )
    for base in ("HF-RF", "RR", "LREQ"):
        out.append(
            f"\n- ME-LREQ unfairness change vs {base}: "
            f"{-res.reduction_vs('ME-LREQ', base):+.1%} "
            f"(negative = fairer)"
        )
    if not stable:
        out.append(f"\n({time.time()-t0:.0f}s)\n")


def section_ablations(ctx, out, stable=False):
    t0 = time.time()
    out.append("## Ablations (extensions beyond the paper)\n")
    for title, res in (
        ("ME-LREQ priority-table geometry (4MEM-1, SMT speedup)",
         ablation_table_bits(ctx)),
        ("Page policy (HF-RF, 4MEM-1, SMT speedup)", ablation_page_policy(ctx)),
        ("Write-drain watermarks (HF-RF, 4MEM-1, SMT speedup)",
         ablation_write_drain(ctx)),
        ("Core-lookahead robustness (HF-RF, 4MEM-1, SMT speedup)",
         ablation_lookahead(ctx)),
    ):
        out.append(f"\n### {title}\n")
        out.append(md_table(["variant", "value"],
                            [(k, f"{v:.3f}") for k, v in res.items()]))
    if not stable:
        out.append(f"\n({time.time()-t0:.0f}s)\n")


def _make_cache(args):
    """Resolve the cache flags: None (--no-cache), rw (--resume) or write."""
    if args.no_cache:
        return None
    mode = "rw" if args.resume else "write"
    return ResultCache(root=args.cache_dir, mode=mode)


def _progress_bus():
    """A telemetry bus that narrates cell completions on stderr."""
    bus = TelemetryBus(retain=False)

    def show(ev):
        if ev.name != "experiment.cell":
            return
        a = ev.args
        print(f"  [{a['done']}/{a['total']}] {a['status']:<7} "
              f"{a['key']} ({a['seconds']}s)", file=sys.stderr)

    bus.subscribe(show)
    return bus


def prewarm(ctx, sections, args) -> None:
    """Plan + execute every cell in parallel, then merge into ``ctx``."""
    plan_kwargs = {
        "table2": "table2" in sections,
        "figure3": ("MEM",) if "figure3" in sections else None,
        "figure4": "figure4" in sections,
        "figure5": "figure5" in sections,
        "ablations": "ablations" in sections,
    }
    if args.quick:
        plan_kwargs["figure2"] = ((4,), ("MEM",))
    elif "figure2" in sections:
        plan_kwargs["figure2"] = ((2, 4, 8), ("MEM", "MIX"))
    cells = plan_cells(ctx, **plan_kwargs)
    if args.coordinator:
        from repro.service.client import submit_cells

        print(f"prewarm: {len(cells)} cells via coordinator "
              f"{args.coordinator}", file=sys.stderr)
        report = submit_cells(args.coordinator, cells, bus=_progress_bus())
    else:
        jobs = args.jobs if args.jobs > 0 else default_jobs()
        print(f"prewarm: {len(cells)} cells over {jobs} jobs",
              file=sys.stderr)
        report = run_cells(cells, jobs=jobs, cache=ctx.cache,
                           bus=_progress_bus())
    print(f"prewarm: {report.summary()}", file=sys.stderr)
    if report.failures:
        # One retry already happened per cell; anything still failing is
        # reported here and recomputed serially below (where a genuine
        # crash surfaces with a full traceback).
        print(report.failure_report(), file=sys.stderr)
    merge_into(ctx, report)


def _end_of_run_summary(args, cache) -> None:
    """Cache and store accounting, printed to stderr after the tables.

    Shows where results came from: the local ``.repro-cache/`` counters
    always, and — on a ``--coordinator`` run — the coordinator's
    lifetime stats plus its ResultStore hit/miss/verify counters (from
    the fleet metrics snapshot when ``repro serve --telemetry`` is on,
    from the basic status stats otherwise).
    """
    lines = ["== end-of-run summary =="]
    if cache is not None:
        lines.append(f"local {cache.stats.line()}  "
                     f"[{cache.root}, mode {cache.mode}]")
    else:
        lines.append("local cache: disabled (--no-cache)")
    if args.coordinator:
        from repro.service.client import coordinator_status

        try:
            doc = coordinator_status(args.coordinator)
        except (OSError, RuntimeError) as exc:
            lines.append(f"coordinator {args.coordinator}: "
                         f"status unavailable ({exc})")
        else:
            s = doc.get("stats", {})
            run = f" (run {doc['run_id']})" if doc.get("run_id") else ""
            lines.append(
                f"coordinator {args.coordinator}{run}: "
                f"{s.get('results', 0)} results, "
                f"{s.get('hits', 0)} store hits, "
                f"{s.get('sha_mismatch', 0)} corrupt payloads, "
                f"{s.get('expired', 0)} expired leases, "
                f"{s.get('failed_cells', 0)} failed cells")
            inst = (doc.get("fleet") or {}).get("instruments") or {}
            if inst:
                def val(name):
                    return inst.get(name, {}).get("value", 0)

                lines.append(
                    f"coordinator store: {val('fleet.store.hits')} hits, "
                    f"{val('fleet.store.misses')} misses, "
                    f"{val('fleet.store.verify_failures')} verify failures")
    print("\n".join(lines), file=sys.stderr)


def _main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--budget", type=int, default=30_000)
    ap.add_argument("--profile-budget", type=int, default=20_000)
    ap.add_argument("--warmup", type=int, default=None,
                    help="warmup instructions per core (default: harness)")
    ap.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    ap.add_argument("--out", help="write the markdown here as well as stdout")
    ap.add_argument("--skip-ablations", action="store_true")
    ap.add_argument("--quick", action="store_true",
                    help="4-core MEM Figure 2 panel only (smoke run)")
    ap.add_argument("--only", nargs="+", choices=SECTIONS, metavar="SECTION",
                    help=f"run a subset of sections: {', '.join(SECTIONS)}")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="shard simulation cells over N worker processes "
                         "(0 = one per CPU); output stays byte-identical")
    ap.add_argument("--coordinator", default=None, metavar="HOST:PORT",
                    help="run the cells on a distributed sweep coordinator "
                         "(repro serve) instead of a local pool; output "
                         "stays byte-identical (docs/DISTRIBUTED.md)")
    ap.add_argument("--resume", action="store_true",
                    help="reuse cached cell results (continue an "
                         "interrupted or incremental regeneration)")
    ap.add_argument("--no-cache", action="store_true",
                    help="do not read or write the on-disk result cache")
    ap.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                    help="result cache directory (default: %(default)s)")
    ap.add_argument("--stable-output", action="store_true",
                    help="omit wall-time annotations (byte-comparable runs)")
    args = ap.parse_args(argv)

    cache = _make_cache(args)
    ctx_kwargs = dict(
        inst_budget=args.budget,
        seeds=tuple(args.seeds),
        profile_budget=args.profile_budget,
        cache=cache,
    )
    if args.warmup is not None:
        ctx_kwargs["warmup_insts"] = args.warmup
    ctx = ExperimentContext(**ctx_kwargs)

    if args.quick:
        sections = ("figure2",)
    else:
        sections = tuple(s for s in SECTIONS if args.only is None
                         or s in args.only)
        if args.skip_ablations:
            sections = tuple(s for s in sections if s != "ablations")

    jobs = args.jobs if args.jobs > 0 else default_jobs()
    if jobs > 1 or args.coordinator:
        prewarm(ctx, sections, args)

    out: list[str] = []
    out.append(
        f"_Generated by scripts/run_all_experiments.py — budget "
        f"{args.budget} instructions/core, seeds {args.seeds}._\n"
    )
    t0 = time.time()
    stable = args.stable_output
    if args.quick:
        section_figure2(ctx, out, core_counts=(4,), groups=("MEM",),
                        stable=stable)
    else:
        if "table2" in sections:
            section_table2(ctx, out, stable=stable)
        if "figure2" in sections:
            section_figure2(ctx, out, core_counts=(2, 4, 8),
                            groups=("MEM", "MIX"), stable=stable)
        if "figure3" in sections:
            section_figure3(ctx, out, stable=stable)
        if "figure4" in sections:
            section_figure4(ctx, out, stable=stable)
        if "figure5" in sections:
            section_figure5(ctx, out, stable=stable)
        if "ablations" in sections:
            section_ablations(ctx, out, stable=stable)
    if not stable:
        out.append(f"\n_Total wall time: {time.time()-t0:.0f}s._")
    _end_of_run_summary(args, cache)
    text = "\n".join(out)
    print(text)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    return 0


def main(argv=None) -> int:
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("\ninterrupted — partial results remain in the cache; "
              "re-run with --resume to continue", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
