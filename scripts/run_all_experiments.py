#!/usr/bin/env python3
"""Regenerate every paper experiment and emit the EXPERIMENTS.md tables.

This is the record-keeping companion of the benchmark harness: it runs
Table 2 and Figures 2-5 (plus the ablations) at the documented budget and
prints a markdown report of paper-vs-measured values to stdout.

Usage:
    python scripts/run_all_experiments.py [--budget 30000] [--seeds 1 2 3]
        [--out EXPERIMENTS-data.md] [--skip-ablations] [--quick]
"""

import argparse
import sys
import time

from repro.experiments import (
    ExperimentContext,
    ablation_lookahead,
    ablation_page_policy,
    ablation_table_bits,
    ablation_write_drain,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table2,
)
from repro.experiments.figure2 import average_gains
from repro.experiments.figure3 import spread
from repro.experiments.harness import mean
from repro.experiments.table2 import rank_correlation

POLICIES = ("HF-RF", "ME", "RR", "LREQ", "ME-LREQ")


def md_table(headers, rows):
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for r in rows:
        out.append("| " + " | ".join(str(x) for x in r) + " |")
    return "\n".join(out)


def section_table2(ctx, out):
    t0 = time.time()
    rows = run_table2(ctx)
    out.append("## Table 2 — application class and memory efficiency\n")
    out.append(
        md_table(
            ["app", "code", "class", "paper ME", "measured ME", "IPC", "BW GB/s"],
            [
                (r.app, r.code, r.klass, f"{r.paper_me:.0f}",
                 f"{r.measured_me:.3f}", f"{r.measured_ipc:.2f}",
                 f"{r.measured_bw_gbps:.3f}")
                for r in sorted(rows, key=lambda x: x.code)
            ],
        )
    )
    rho = rank_correlation(rows)
    out.append(f"\nSpearman rank correlation vs the published ME values: "
               f"**{rho:.3f}** ({time.time()-t0:.0f}s)\n")


def section_figure2(ctx, out, core_counts, groups):
    t0 = time.time()
    rows = run_figure2(ctx, core_counts=core_counts, groups=groups)
    out.append("## Figure 2 — SMT speedup of the five policies\n")
    current = None
    for r in rows:
        key = (r.num_cores, r.group)
        if key != current:
            current = key
            out.append(f"\n### {r.num_cores}-core {r.group}\n")
            out.append("| workload | " + " | ".join(POLICIES) + " |")
            out.append("|" + "|".join("---" for _ in range(len(POLICIES) + 1)) + "|")
        out.append(
            f"| {r.workload} | "
            + " | ".join(f"{r.speedup(p):.3f}" for p in POLICIES)
            + " |"
        )
    out.append("\n### Average gain over HF-RF\n")
    gains = average_gains(rows)
    out.append("| cores | group | " + " | ".join(POLICIES[1:]) + " |")
    out.append("|" + "|".join("---" for _ in range(len(POLICIES) + 1)) + "|")
    seen = sorted({(n, g) for (n, g, _p) in gains})
    for n, g in seen:
        out.append(
            f"| {n} | {g} | "
            + " | ".join(f"{gains[(n, g, p)]:+.1%}" for p in POLICIES[1:])
            + " |"
        )
    out.append(f"\n({time.time()-t0:.0f}s)\n")
    return rows


def section_figure3(ctx, out):
    t0 = time.time()
    rows = run_figure3(ctx, groups=("MEM",))
    out.append("## Figure 3 — simple fixed-priority schemes (4-core MEM)\n")
    pols = ("HF-RF", "ME", "FIX-3210", "FIX-0123")
    out.append(
        md_table(
            ["workload"] + list(pols),
            [
                (r.workload, *(f"{r.speedup(p):.3f}" for p in pols))
                for r in rows
            ],
        )
    )
    for p in pols[1:]:
        best, worst = spread(rows, p)
        out.append(f"\n- {p}: best {best:+.1%}, worst {worst:+.1%} vs HF-RF")
    out.append(f"\n({time.time()-t0:.0f}s)\n")


def section_figure4(ctx, out):
    t0 = time.time()
    res = run_figure4(ctx)
    out.append("## Figure 4 — memory read latency (4-core MEM)\n")
    out.append("### Left: average read latency (cycles)\n")
    out.append(
        md_table(
            ["workload"] + list(POLICIES),
            [
                (wl, *(f"{by[p].avg_read_latency:.0f}" for p in POLICIES))
                for wl, by in res.left.items()
            ]
            + [("**average**", *(f"{res.avg_latency(p):.0f}" for p in POLICIES))],
        )
    )
    out.append("\n### Right: per-core read latency (cycles)\n")
    for wl, by in res.right.items():
        out.append(f"\n**{wl}**\n")
        out.append(
            md_table(
                ["policy", "core0", "core1", "core2", "core3", "max/min"],
                [
                    (p, *(f"{x:.0f}" for x in lats),
                     f"{res.latency_spread(wl, p):.2f}x")
                    for p, lats in by.items()
                ],
            )
        )
    out.append(f"\n({time.time()-t0:.0f}s)\n")


def section_figure5(ctx, out):
    t0 = time.time()
    res = run_figure5(ctx)
    out.append("## Figure 5 — unfairness (4-core MEM)\n")
    out.append(
        md_table(
            ["workload"] + list(POLICIES),
            [
                (wl, *(f"{by[p].unfairness:.2f}" for p in POLICIES))
                for wl, by in res.cells.items()
            ]
            + [("**average**", *(f"{res.avg_unfairness(p):.2f}" for p in POLICIES))],
        )
    )
    for base in ("HF-RF", "RR", "LREQ"):
        out.append(
            f"\n- ME-LREQ unfairness change vs {base}: "
            f"{-res.reduction_vs('ME-LREQ', base):+.1%} "
            f"(negative = fairer)"
        )
    out.append(f"\n({time.time()-t0:.0f}s)\n")


def section_ablations(ctx, out):
    t0 = time.time()
    out.append("## Ablations (extensions beyond the paper)\n")
    for title, res in (
        ("ME-LREQ priority-table geometry (4MEM-1, SMT speedup)",
         ablation_table_bits(ctx)),
        ("Page policy (HF-RF, 4MEM-1, SMT speedup)", ablation_page_policy(ctx)),
        ("Write-drain watermarks (HF-RF, 4MEM-1, SMT speedup)",
         ablation_write_drain(ctx)),
        ("Core-lookahead robustness (HF-RF, 4MEM-1, SMT speedup)",
         ablation_lookahead(ctx)),
    ):
        out.append(f"\n### {title}\n")
        out.append(md_table(["variant", "value"],
                            [(k, f"{v:.3f}") for k, v in res.items()]))
    out.append(f"\n({time.time()-t0:.0f}s)\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--budget", type=int, default=30_000)
    ap.add_argument("--profile-budget", type=int, default=20_000)
    ap.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    ap.add_argument("--out", help="write the markdown here as well as stdout")
    ap.add_argument("--skip-ablations", action="store_true")
    ap.add_argument("--quick", action="store_true",
                    help="4-core MEM Figure 2 panel only (smoke run)")
    args = ap.parse_args(argv)

    ctx = ExperimentContext(
        inst_budget=args.budget,
        seeds=tuple(args.seeds),
        profile_budget=args.profile_budget,
    )
    out: list[str] = []
    out.append(
        f"_Generated by scripts/run_all_experiments.py — budget "
        f"{args.budget} instructions/core, seeds {args.seeds}._\n"
    )
    t0 = time.time()
    if args.quick:
        section_figure2(ctx, out, core_counts=(4,), groups=("MEM",))
    else:
        section_table2(ctx, out)
        section_figure2(ctx, out, core_counts=(2, 4, 8), groups=("MEM", "MIX"))
        section_figure3(ctx, out)
        section_figure4(ctx, out)
        section_figure5(ctx, out)
        if not args.skip_ablations:
            section_ablations(ctx, out)
    out.append(f"\n_Total wall time: {time.time()-t0:.0f}s._")
    text = "\n".join(out)
    print(text)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
