#!/usr/bin/env python3
"""Docs-consistency gate: the cloud workload family is in the handbook.

Imports the cloud service/arrival/mix catalogues and checks that every
service code, every arrival model, and every registered cloud mix has
its own ``##``/``###`` heading (or, for mixes, at least a literal
mention) in docs/WORKLOADS.md.  A service or mix that ships without a
section there is a documentation regression, not a style nit.

Exit status 0 on success, 1 listing the missing names, so CI can gate
on it.

Run:  PYTHONPATH=src python scripts/check_workload_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from repro.workloads.cloud import ARRIVALS, CLOUD_MIXES, SERVICES

HANDBOOK = Path(__file__).resolve().parent.parent / "docs" / "WORKLOADS.md"


def documented_names(text: str) -> set[str]:
    """Names claimed by ``##``/``###`` headings, markdown-escapes removed."""
    names: set[str] = set()
    for line in text.splitlines():
        m = re.match(r"##+\s+(\S+)", line)
        if m:
            names.add(m.group(1).replace("\\", "").rstrip(":"))
    return names


def main() -> int:
    if not HANDBOOK.exists():
        print(f"FAIL: {HANDBOOK} does not exist", file=sys.stderr)
        return 1
    text = HANDBOOK.read_text()
    headings = documented_names(text)

    missing: list[str] = []
    for svc in SERVICES:
        if svc.code not in headings:
            missing.append(f"service {svc.code} ({svc.name})")
    for arrival in ARRIVALS:
        if arrival not in headings:
            missing.append(f"arrival model {arrival}")
    for mix in CLOUD_MIXES:
        if mix.name not in text:
            missing.append(f"mix {mix.name}")

    if missing:
        print(
            "FAIL: cloud workload entries missing from docs/WORKLOADS.md: "
            + ", ".join(sorted(missing)),
            file=sys.stderr,
        )
        print(
            "Add a '## <CODE>' section per service, a heading per arrival "
            "model, and list every registered CLD mix.",
            file=sys.stderr,
        )
        return 1

    print(
        f"OK: all {len(SERVICES)} services, {len(ARRIVALS)} arrival models "
        f"and {len(CLOUD_MIXES)} cloud mixes documented in {HANDBOOK.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
