"""Bench: extension study — paper policies vs contemporaneous schedulers.

Beyond the paper (step-5 work): ME-LREQ and LREQ side by side with fair
queueing (FQ, Nesbit et al.), stall-time fairness (STFM, Mutlu &
Moscibroda) and PAR-BS-style batching, plus the paper's proposed online-ME
variant — same workloads, same metrics.
"""

from conftest import run_once

from repro.experiments.extensions_study import (
    format_extension_study,
    run_extension_study,
)


def test_extension_study(benchmark, ctx):
    outcomes = run_once(benchmark, run_extension_study, ctx, num_cores=4)
    print()
    print(format_extension_study(outcomes))
    by_name = {o.policy: o for o in outcomes}
    assert set(by_name) == {
        "HF-RF", "LREQ", "ME-LREQ", "ME-LREQ-ONLINE", "FQ", "STFM", "BATCH",
    }
    for o in outcomes:
        assert 0 < o.avg_speedup <= 4
        assert o.avg_unfairness >= 1.0
    # the baseline's gain over itself is identically zero
    assert abs(by_name["HF-RF"].avg_gain_vs_baseline) < 1e-12
