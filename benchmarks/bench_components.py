"""Micro-benchmarks of the simulator substrates.

Unlike the figure benches (one-shot regenerations), these measure the hot
paths of the simulator itself with normal pytest-benchmark statistics:
cache lookups, address decoding, bank/channel timing, scheduling
decisions, and raw event-engine throughput.  They exist so performance
regressions in the substrate show up in CI — a pure-Python cycle-level
simulator lives or dies by these loops.
"""

from repro.config import DramTimingConfig, DramTopologyConfig, SystemConfig
from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest
from repro.core import make_policy
from repro.core.policy import SchedulingContext
from repro.dram.address import AddressMapper
from repro.dram.dram_system import DramSystem
from repro.cache.cache import SetAssocCache
from repro.sim.engine import EventEngine
from repro.util.rng import RngStream


def test_cache_lookup_throughput(benchmark):
    cache = SetAssocCache(SystemConfig().caches.l1d)
    addrs = [(i * 2654435761) % (1 << 24) for i in range(4096)]
    for a in addrs[::4]:
        cache.fill(a)

    def work():
        for a in addrs:
            cache.lookup(a)

    benchmark(work)


def test_address_decode_throughput(benchmark):
    mapper = AddressMapper(DramTopologyConfig(), 64)
    addrs = [i * 64 for i in range(4096)]
    benchmark(lambda: [mapper.decode(a) for a in addrs])


def test_channel_execute_throughput(benchmark):
    dram = DramSystem(DramTopologyConfig(), DramTimingConfig(), 64)
    coords = [dram.coord(i * 64) for i in range(1024)]
    state = {"now": 0}

    def work():
        for c in coords:
            dram.execute(c, state["now"], is_write=False, keep_open=False)
            state["now"] += 16

    benchmark(work)


def test_scheduling_decision_cost(benchmark):
    """Cost of one ME-LREQ decision over a full 64-entry queue."""
    dram = DramSystem(DramTopologyConfig(), DramTimingConfig(), 64)
    queues = RequestQueues(64, 8)
    for i in range(64):
        r = MemoryRequest(addr=i * 64 * 3, core_id=i % 8, is_write=False, arrival_cycle=0)
        r.coord = dram.coord(r.addr)
        queues.add(r)
    policy = make_policy("ME-LREQ", me_values=[float(i + 1) for i in range(8)])
    policy.setup(8, RngStream(0, "b"))
    ctx = SchedulingContext(0, 0, queues, dram, RngStream(1, "b"))
    cands = [r for r in queues.reads if r.coord.channel == 0]
    benchmark(lambda: policy.select_read(cands, ctx))


def test_event_engine_throughput(benchmark):
    def work():
        e = EventEngine()
        state = {"n": 0}

        def tick(now):
            state["n"] += 1
            if state["n"] < 10_000:
                e.schedule(now + 1, tick)

        e.schedule(0, tick)
        e.run()
        return state["n"]

    assert benchmark(work) == 10_000
