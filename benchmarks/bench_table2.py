"""Bench: regenerate paper Table 2 (application class + memory efficiency).

Profiles all 26 synthetic SPEC CPU2000 models on a single core and prints
the class / ME table alongside the published values, plus the Spearman
rank correlation between measured and published ME.
"""

from conftest import run_once

from repro.experiments.table2 import format_table2, rank_correlation, run_table2


def test_table2(benchmark, ctx):
    rows = run_once(benchmark, run_table2, ctx)
    print()
    print(format_table2(rows))
    # reproduction target: strong rank agreement with the published table
    assert rank_correlation(rows) > 0.8
    # class separation: every ILP app's ME above every... (not strictly -
    # facerec(M, 40) vs apsi(I, 36) overlap in the paper too); check the
    # group medians separate instead
    mem = sorted(r.measured_me for r in rows if r.klass == "MEM")
    ilp = sorted(r.measured_me for r in rows if r.klass == "ILP")
    assert mem[len(mem) // 2] < ilp[len(ilp) // 2]
