"""Bench: regenerate paper Figure 5 (unfairness of scheduling policies).

Unfairness = max/min slowdown over the 4-core MEM workloads.  The paper
finds ME-LREQ the fairest overall and fixed-ME the least fair of the
core-aware schemes (uneven fixed allocation).
"""

from conftest import run_once

from repro.experiments.figure5 import format_figure5, run_figure5


def test_figure5(benchmark, ctx):
    res = run_once(benchmark, run_figure5, ctx)
    print()
    print(format_figure5(res))
    for by_policy in res.cells.values():
        for o in by_policy.values():
            assert o.unfairness >= 1.0
    # dynamic ME-LREQ must be fairer than the fixed-ME scheme on average
    assert res.avg_unfairness("ME-LREQ") <= res.avg_unfairness("ME") * 1.05
