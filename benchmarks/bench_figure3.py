"""Bench: regenerate paper Figure 3 (fixed-priority schemes, 4 cores).

Compares HF-RF, ME, FIX-3210 and FIX-0123 on the 4-core workloads and
checks the paper's qualitative finding: arbitrary fixed orders are
erratic — their best-to-worst spread across workloads is wide — while the
ME-guided order stays within a narrower band.
"""

from conftest import run_once

from repro.experiments.figure3 import format_figure3, run_figure3, spread


def test_figure3(benchmark, ctx):
    rows = run_once(benchmark, run_figure3, ctx, groups=("MEM",))
    print()
    print(format_figure3(rows))
    for r in rows:
        for p in r.outcomes:
            assert r.speedup(p) > 0
    # erraticism: the FIX range across workloads (best minus worst gain)
    # should be at least as wide as ME's range
    fix_ranges = []
    for p in ("FIX-3210", "FIX-0123"):
        best, worst = spread(rows, p)
        fix_ranges.append(best - worst)
    me_best, me_worst = spread(rows, "ME")
    assert max(fix_ranges) >= (me_best - me_worst) * 0.5
