"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or figures.
Because a pure-Python cycle-level simulation of the full 100 M-instruction
evaluation is not laptop-friendly, the benches run a scaled-down budget by
default and honour two environment variables:

* ``REPRO_BENCH_BUDGET``  — instructions measured per core (default 8000);
* ``REPRO_BENCH_SEEDS``   — comma-separated seeds (default "1").

For the EXPERIMENTS.md record, the experiments were run at 30 k
instructions x 3 seeds (see that file); the benches print the same tables
at whatever scale they run.  Timings reported by pytest-benchmark measure
one full regeneration of the table/figure.
"""

import os

import pytest

from repro.experiments import ExperimentContext

DEFAULT_BUDGET = 8_000
DEFAULT_SEEDS = (1,)


def _env_budget() -> int:
    return int(os.environ.get("REPRO_BENCH_BUDGET", DEFAULT_BUDGET))


def _env_seeds() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SEEDS", "")
    if not raw:
        return DEFAULT_SEEDS
    return tuple(int(s) for s in raw.split(","))


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """One shared context per benchmark session (profiling runs cached)."""
    budget = _env_budget()
    return ExperimentContext(
        inst_budget=budget,
        seeds=_env_seeds(),
        profile_budget=max(budget // 2, 4_000),
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiment regenerations are long-running and deterministic; repeated
    rounds would only re-measure the same work, so every bench uses
    rounds=1/iterations=1.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
