"""Bench: regenerate paper Figure 2 (SMT speedup of five policies).

One bench per (core count, group) panel of the figure.  Each prints the
panel's speedup table and the group-average gains over HF-RF.  The paper's
shape: on MEM workloads the ranking trends ME <= HF-RF <= RR <= LREQ <=
ME-LREQ, differences growing with core count.

The default bench budget is small (see conftest); EXPERIMENTS.md records
the full-budget results.
"""

import pytest
from conftest import run_once

from repro.experiments.figure2 import average_gains, format_figure2, run_figure2


@pytest.mark.parametrize("cores", [2, 4])
@pytest.mark.parametrize("group", ["MEM", "MIX"])
def test_figure2_panel(benchmark, ctx, cores, group):
    rows = run_once(
        benchmark, run_figure2, ctx, core_counts=(cores,), groups=(group,)
    )
    print()
    print(format_figure2(rows))
    gains = average_gains(rows)
    # Structural checks only: every (workload, policy) cell produced a
    # finite positive speedup within loose physical bounds.  Statistical
    # claims (who wins, by how much) are made at record scale in
    # EXPERIMENTS.md, not at this smoke budget — single-seed small-budget
    # cells wobble by several percent and the solo baselines use different
    # trace streams than the per-core mix streams.
    assert len(rows) == 6
    for r in rows:
        assert set(r.outcomes) == set(POLICIES_CHECKED)
        for p in r.outcomes:
            assert 0 < r.speedup(p) <= cores * 1.5
    assert (cores, group, "ME-LREQ") in gains


POLICIES_CHECKED = ("HF-RF", "ME", "RR", "LREQ", "ME-LREQ")


def test_figure2_eight_core_mem(benchmark, ctx):
    """The paper's headline panel: 8-core memory-intensive workloads."""
    rows = run_once(benchmark, run_figure2, ctx, core_counts=(8,), groups=("MEM",))
    print()
    print(format_figure2(rows))
    for r in rows:
        for p in r.outcomes:
            assert 0 < r.speedup(p) <= 8 * 1.5
