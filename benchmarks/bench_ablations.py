"""Bench: ablations of the design choices DESIGN.md calls out.

Not part of the paper's evaluation — step-5 extension work quantifying:

* the priority-table geometry (ideal divider vs 10-bit log vs linear vs
  narrow tables);
* close-page vs open-page memory systems;
* the write-drain hysteresis watermarks;
* robustness to the simulator's core-lookahead fidelity knob.
"""

from conftest import run_once

from repro.experiments.ablations import (
    ablation_lookahead,
    ablation_online_phases,
    ablation_page_policy,
    ablation_table_bits,
    ablation_write_drain,
)


def _print(title, d):
    print(f"\n== {title} ==")
    for k, v in d.items():
        print(f"  {k:<16} SMT speedup {v:.3f}")


def test_ablation_table_bits(benchmark, ctx):
    res = run_once(benchmark, ablation_table_bits, ctx)
    _print("ME-LREQ priority-table geometry (4MEM-1)", res)
    assert set(res) == {
        "ideal-divider", "10-bit log", "10-bit linear", "6-bit log", "4-bit log",
    }
    # the paper's 10-bit table should track the ideal divider closely
    assert abs(res["10-bit log"] - res["ideal-divider"]) / res["ideal-divider"] < 0.10


def test_ablation_page_policy(benchmark, ctx):
    res = run_once(benchmark, ablation_page_policy, ctx)
    _print("page policy (HF-RF, 4MEM-1)", res)
    assert set(res) == {"closed", "open"}
    assert all(v > 0 for v in res.values())


def test_ablation_write_drain(benchmark, ctx):
    res = run_once(benchmark, ablation_write_drain, ctx)
    _print("write-drain watermarks (HF-RF, 4MEM-1)", res)
    assert len(res) == 4
    assert all(v > 0 for v in res.values())


def test_ablation_lookahead(benchmark, ctx):
    res = run_once(benchmark, ablation_lookahead, ctx)
    _print("core lookahead robustness (HF-RF, 4MEM-1)", res)
    vals = list(res.values())
    # a fidelity knob, not a result: spread must stay small
    assert max(vals) / min(vals) < 1.15


def test_ablation_online_phases(benchmark, ctx):
    res = run_once(benchmark, ablation_online_phases, ctx)
    _print("offline vs online ME-LREQ on phase-changing apps (4MEM-1)", res)
    assert set(res) == {"LREQ", "ME-LREQ offline", "ME-LREQ online"}
    assert all(v > 0 for v in res.values())


def test_ablation_prefetch(benchmark, ctx):
    from repro.experiments.ablations import ablation_prefetch

    res = run_once(benchmark, ablation_prefetch, ctx)
    _print("stream prefetching (HF-RF, 4MEM-1)", res)
    assert "off" in res
    assert all(v > 0 for v in res.values())
