"""Bench: regenerate paper Figure 4 (memory read latency).

Left panel: average read latency per policy over the 4-core MEM
workloads.  Right panel: per-core latencies for 4MEM-1 and 4MEM-5.
Checks the paper's qualitative findings: HF-RF's per-core latencies are
near-uniform, and a fixed ME priority produces the widest per-core spread
(starvation of the lowest-priority core).
"""

from conftest import run_once

from repro.experiments.figure4 import format_figure4, run_figure4


def test_figure4(benchmark, ctx):
    res = run_once(benchmark, run_figure4, ctx)
    print()
    print(format_figure4(res))
    # all latencies positive and plausible
    for by_policy in res.left.values():
        for o in by_policy.values():
            assert o.avg_read_latency > 50
    # HF-RF treats cores near-uniformly; ME spreads them the most
    for wl in res.right:
        hf_spread = res.latency_spread(wl, "HF-RF")
        me_spread = res.latency_spread(wl, "ME")
        assert hf_spread < 2.0, "HF-RF should serve cores nearly evenly"
        assert me_spread >= hf_spread * 0.8
