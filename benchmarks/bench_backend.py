"""Bench: fast (struct-of-arrays) engine vs the object reference engine.

One bench per backend on the same fixed-seed multicore run, so a single
``pytest benchmarks/bench_backend.py`` prints the head-to-head.  The two
engines are bit-identical by contract (tests/test_golden_stats.py pins
both against one golden file); this bench measures only how long each
takes to produce those identical statistics.

The committed history of the speedup lives in BENCH_PR7.json and
docs/PERFORMANCE.md; this file exists so a regression in either engine
shows up next to the substrate micro-benches in CI.
"""

import pytest
from conftest import run_once

from repro.config import SystemConfig
from repro.sim.backend import fast_supported
from repro.sim.runner import run_multicore
from repro.workloads.mixes import workload_by_name

BACKENDS = ("object", "fast")
MIX = "4MEM-1"
SEED = 7
WARMUP = 2000


def _run(backend: str, budget: int):
    mix = workload_by_name(MIX)
    return run_multicore(
        mix, "HF-RF", inst_budget=budget, seed=SEED,
        warmup_insts=WARMUP, backend=backend,
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_throughput(benchmark, ctx, backend):
    """One full multicore evaluation run per engine, identical inputs."""
    result = run_once(benchmark, _run, backend, ctx.inst_budget)
    assert result.end_cycle > 0
    assert all(c.ipc > 0 for c in result.per_core)


def test_backends_bit_identical(ctx):
    """The timing comparison above is only meaningful if the engines
    agree; re-assert the contract at this bench's budget (the golden
    suite pins it at its own)."""
    ok, reason = fast_supported(SystemConfig())
    assert ok, f"fast backend unsupported in default config: {reason}"
    a = _run("object", ctx.inst_budget)
    b = _run("fast", ctx.inst_budget)
    assert a.end_cycle == b.end_cycle
    assert a.row_hit_rate.hex() == b.row_hit_rate.hex()
    for x, y in zip(a.per_core, b.per_core):
        assert x.ipc.hex() == y.ipc.hex(), x.app
        assert x.avg_read_latency.hex() == y.avg_read_latency.hex(), x.app
        assert x.bytes_total == y.bytes_total, x.app
