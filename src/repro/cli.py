"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the paper's workflow:

* ``profile``   — single-core ME profiling of one or all applications
                  (Table 2 analogue);
* ``run``       — one multiprogrammed workload under one policy;
* ``figure``    — regenerate a paper figure (2, 3, 4 or 5);
* ``table2``    — regenerate Table 2;
* ``arena``     — rank every registered policy on speedup, fairness and
                  hardware cost over a mix set (docs/POLICIES.md);
* ``cloud``     — tail-latency / SLO table for the open-loop cloud
                  workload family (docs/WORKLOADS.md);
* ``workloads`` — list the Table 3 mixes and the cloud mixes;
* ``policies``  — list the registered scheduling policies.

Distributed sweeps (docs/DISTRIBUTED.md):

* ``serve``     — start the sweep coordinator (leases, retries, store);
* ``worker``    — attach a worker process to a coordinator;
* ``submit``    — run a figure/table sweep on a coordinator and render
                  it exactly as the serial command would (byte-identical).

Fleet observability (docs/OBSERVABILITY.md): ``serve``/``worker`` accept
``--telemetry``/``--trace-out`` to record fleet metrics and wall-clock
traces, ``submit --watch`` renders a live progress dashboard, ``obs
merge-trace`` stitches per-process traces into one Perfetto timeline,
and ``run``/``profile`` accept ``--profile`` to cProfile the engine.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.config import SystemConfig
from repro.core.registry import available_policies
from repro.experiments import (
    ExperimentContext,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table2,
)
from repro.experiments.figure2 import format_figure2
from repro.experiments.figure3 import format_figure3
from repro.experiments.figure4 import format_figure4
from repro.experiments.figure5 import format_figure5
from repro.experiments.table2 import format_table2
from repro.metrics.memory_efficiency import MeProfiler
from repro.metrics.speedup import smt_speedup, unfairness
from repro.sim.backend import BACKENDS, ENV_VAR as BACKEND_ENV_VAR
from repro.sim.runner import run_multicore
from repro.workloads.mixes import WORKLOAD_MIXES, workload_by_name
from repro.workloads.spec2000 import APPS, app_by_name

__all__ = ["main"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--budget", type=int, default=30_000,
                   help="instructions measured per core")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--backend", choices=BACKENDS, default=None,
                   help="simulation engine: 'fast' (struct-of-arrays lanes), "
                        "'object' (reference heap engine) or 'auto' (fast "
                        "when the config supports it; the default).  Stats "
                        "are bit-identical either way; sets REPRO_BACKEND "
                        "so spawned workers inherit the choice")


def _add_parallel(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("parallel execution (docs/PERFORMANCE.md)")
    g.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard simulation cells over N worker processes "
                        "(0 = one per CPU); output stays bit-identical")
    g.add_argument("--resume", action="store_true",
                   help="read/write the on-disk result cache")
    g.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache directory (default: .repro-cache)")


def _engine_profiler(args: argparse.Namespace):
    """``--profile [BASE]`` -> an EngineProfiler, or a no-op context."""
    import contextlib

    if getattr(args, "profile", None) is None:
        return contextlib.nullcontext(None)
    from repro.telemetry import EngineProfiler

    return EngineProfiler(args.profile)


def _report_profile(prof) -> None:
    if prof is None:
        return
    print()
    print(prof.format_top(), end="")
    print(f"profile: {prof.pstats_path} (pstats), "
          f"{prof.folded_path} (collapsed stacks)")


def _cmd_profile(args: argparse.Namespace) -> int:
    prof = MeProfiler(inst_budget=args.budget, seed=args.seed)
    apps = [app_by_name(args.app)] if args.app else list(APPS)
    with _engine_profiler(args) as eng:
        print(f"{'app':<9} {'class':<5} {'IPC':>6} {'BW GB/s':>8} {'ME':>10}")
        for app in apps:
            p = prof.profile(app)
            print(
                f"{p.app:<9} {app.klass:<5} {p.ipc:>6.2f} {p.bw_gbps:>8.3f} "
                f"{p.me:>10.3f}"
            )
    _report_profile(eng)
    return 0


def _make_telemetry(args: argparse.Namespace):
    """Build a Telemetry hub from CLI flags, or None when not requested."""
    spans = bool(args.spans or args.spans_out)
    wants = (
        args.telemetry
        or args.trace_out
        or args.telemetry_out
        or args.telemetry_csv
        or spans
    )
    if not wants:
        return None
    from repro.telemetry import Telemetry

    # The Chrome trace is far richer with the discrete event streams;
    # JSONL/CSV only need the sampled series.
    return Telemetry(
        sample_every=args.sample_every,
        capture_decisions=bool(args.trace_out),
        capture_commands=bool(args.trace_out and args.trace_commands),
        capture_spans=spans,
        span_sample=args.span_sample,
    )


def _export_telemetry(tm, args: argparse.Namespace) -> None:
    from repro.telemetry import (
        attribute,
        format_attribution,
        render_summary,
        write_chrome_trace,
        write_csv,
        write_jsonl,
        write_spans_jsonl,
    )

    print()
    print(render_summary(tm))
    if tm.spans is not None:
        print()
        if tm.spans.completed:
            print(format_attribution(attribute(tm, kind="read")))
        else:
            print("no request spans traced (run too short for the "
                  f"1-in-{tm.spans.sample_every} sample; try --span-sample 1)")
    if args.trace_out:
        n = write_chrome_trace(tm, args.trace_out)
        print(f"chrome trace: {args.trace_out} ({n} events; open in Perfetto)")
    if args.telemetry_out:
        n = write_jsonl(tm, args.telemetry_out)
        print(f"telemetry JSONL: {args.telemetry_out} ({n} lines)")
    if args.telemetry_csv:
        n = write_csv(tm, args.telemetry_csv)
        print(f"telemetry CSV: {args.telemetry_csv} ({n} rows)")
    if args.spans_out:
        n = write_spans_jsonl(tm, args.spans_out)
        print(f"span JSONL: {args.spans_out} ({n} lines)")


def _cmd_run(args: argparse.Namespace) -> int:
    mix = workload_by_name(args.workload)
    prof = MeProfiler(inst_budget=max(args.budget // 2, 5000), seed=args.seed)
    me = prof.me_values(mix)
    single = prof.single_ipcs(mix)
    tm = _make_telemetry(args)
    with _engine_profiler(args) as eng:
        result = run_multicore(
            mix, args.policy, inst_budget=args.budget, seed=args.seed,
            me_values=me, telemetry=tm,
        )
    print(f"workload {mix.name} under {result.policy_name}")
    for c, s in zip(result.per_core, single):
        print(
            f"  core{c.core_id} {c.app:<9} IPC={c.ipc:.3f} "
            f"(solo {s:.3f})  lat={c.avg_read_latency:6.0f}  "
            f"BW={c.bw_gbps:5.2f} GB/s"
        )
    print(f"SMT speedup = {smt_speedup(result.ipcs(), single):.3f}")
    print(f"unfairness  = {unfairness(result.ipcs(), single):.3f}")
    print(f"row-hit rate = {result.row_hit_rate:.1%}")
    if tm is not None:
        _export_telemetry(tm, args)
    _report_profile(eng)
    return 0


def _make_ctx(args: argparse.Namespace) -> ExperimentContext:
    ctx = ExperimentContext(
        inst_budget=args.budget,
        seeds=tuple(args.seeds),
        profile_budget=max(args.budget // 2, 5_000),
        config=SystemConfig(),
    )
    if getattr(args, "resume", False):
        from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache

        ctx.cache = ResultCache(root=args.cache_dir or DEFAULT_CACHE_DIR,
                                mode="rw")
    return ctx


def _prewarm(ctx: ExperimentContext, args: argparse.Namespace,
             **plan_kwargs) -> None:
    """Shard the section's cells over ``--jobs`` workers, merge back.

    The figure code below then runs entirely from the memo, emitting
    bit-identical output (the merge is ordered by cell key, never by
    completion order)."""
    from repro.experiments.parallel import (
        default_jobs,
        merge_into,
        plan_cells,
        run_cells,
    )

    jobs = args.jobs if args.jobs > 0 else default_jobs()
    if jobs <= 1 and ctx.cache is None:
        return
    report = run_cells(plan_cells(ctx, **plan_kwargs), jobs=jobs,
                       cache=ctx.cache)
    if report.failures:
        print(report.failure_report(), file=sys.stderr)
    merge_into(ctx, report)
    print(report.summary(), file=sys.stderr)


def _cmd_figure(args: argparse.Namespace) -> int:
    ctx = _make_ctx(args)
    plan_by_number = {
        2: {"figure2": (tuple(args.cores), tuple(args.groups))},
        3: {"figure3": tuple(args.groups)},
        4: {"figure4": True},
        5: {"figure5": True},
    }
    _prewarm(ctx, args, **plan_by_number[args.number])
    if args.number == 2:
        rows = run_figure2(
            ctx, core_counts=tuple(args.cores), groups=tuple(args.groups)
        )
        print(format_figure2(rows))
    elif args.number == 3:
        print(format_figure3(run_figure3(ctx, groups=tuple(args.groups))))
    elif args.number == 4:
        print(format_figure4(run_figure4(ctx)))
    elif args.number == 5:
        print(format_figure5(run_figure5(ctx)))
    else:  # pragma: no cover - argparse choices guard
        raise ValueError(f"no figure {args.number}")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    ctx = _make_ctx(args)
    _prewarm(ctx, args, table2=True)
    print(format_table2(run_table2(ctx)))
    return 0


def _arena_spec(args: argparse.Namespace):
    mixes = tuple(args.mixes)
    policies = (tuple(p.upper() for p in args.policies)
                if args.policies else None)
    return mixes, policies


def _cmd_arena(args: argparse.Namespace) -> int:
    from repro.experiments.arena import (
        arena_anatomy,
        format_arena,
        format_arena_per_mix,
        run_arena,
        run_arena_per_mix,
    )

    mixes, policies = _arena_spec(args)
    ctx = _make_ctx(args)
    _prewarm(ctx, args, arena=(mixes, policies))
    if args.per_mix:
        print(format_arena_per_mix(
            run_arena_per_mix(ctx, mixes=mixes, policies=policies)))
    else:
        print(format_arena(
            run_arena(ctx, mixes=mixes, policies=policies), mixes))
    if args.anatomy:
        print()
        print(arena_anatomy(ctx, mixes=mixes, policies=policies,
                            span_sample=args.span_sample))
    return 0


def _cmd_cloud(args: argparse.Namespace) -> int:
    from repro.experiments.cloud import format_cloud, run_cloud_table

    mixes = tuple(args.mixes)
    policies = (tuple(p.upper() for p in args.policies)
                if args.policies else None)
    ctx = _make_ctx(args)
    _prewarm(ctx, args, cloud=(mixes, policies))
    print(format_cloud(run_cloud_table(ctx, mixes=mixes, policies=policies)))
    return 0


# -- distributed sweep verbs (docs/DISTRIBUTED.md) ---------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.coordinator import Coordinator
    from repro.service.store import ResultStore
    from repro.telemetry.bus import TelemetryBus

    store = (None if args.no_store
             else ResultStore(root=args.store, mode="rw"))
    bus = TelemetryBus(retain=False)

    def narrate(ev):
        if ev.name == "service.cell" and not args.verbose:
            return
        detail = " ".join(f"{k}={v}" for k, v in sorted(ev.args.items()))
        print(f"  [{ev.name}] {detail}", file=sys.stderr)

    bus.subscribe(narrate)

    observer = None
    if (args.telemetry or args.trace_out or args.metrics_out
            or args.prometheus_out):
        from repro.telemetry.fleet import FleetObserver

        observer = FleetObserver(
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            prometheus_out=args.prometheus_out,
            snapshot_every=args.sample_every,
        )

    async def serve() -> Coordinator:
        coord = Coordinator(
            host=args.host, port=args.port, store=store,
            lease_seconds=args.lease, max_attempts=args.max_attempts,
            bus=bus, observer=observer,
        )
        await coord.start()
        print(f"serving on {coord.host}:{coord.port} "
              f"(fingerprint {coord.fingerprint}, "
              f"store {'off' if store is None else store.root}, "
              f"lease {args.lease:g}s, "
              f"max attempts {args.max_attempts}, "
              f"run {coord.run_id})", flush=True)
        try:
            await coord.wait_stopped()
        finally:
            await coord.stop()
            print(f"coordinator stopped: {coord.summary()}", file=sys.stderr)
        return coord

    asyncio.run(serve())
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.protocol import parse_addr
    from repro.service.store import ResultStore
    from repro.service.worker import run_worker

    host, port = parse_addr(args.coordinator)
    store = (ResultStore(root=args.store, mode="rw")
             if args.store else None)
    trace_out = args.trace_out
    if trace_out is None and args.telemetry:
        trace_out = f"fleet-worker-{args.id or os.getpid()}.jsonl"
    stats = asyncio.run(run_worker(
        host, port, worker_id=args.id, store=store,
        connect_retries=args.connect_retries,
        trace_out=trace_out,
        snapshot_seconds=args.sample_every if trace_out else None,
    ))
    print(f"worker done: {stats['executed']} executed, "
          f"{stats['hits']} store hits, {stats['failed']} failed")
    if trace_out:
        print(f"fleet trace: {trace_out}", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import merge_into, plan_cells
    from repro.service.client import (
        coordinator_status,
        request_shutdown,
        submit_cells,
    )
    from repro.telemetry.bus import TelemetryBus

    if args.stop:
        request_shutdown(args.coordinator)
        print("coordinator stopped", file=sys.stderr)
        return 0
    if args.status:
        doc = coordinator_status(args.coordinator)
        print(f"workers: {', '.join(doc['workers']) or '(none)'}")
        print(f"tasks:   {doc['tasks']}")
        print(f"stats:   {doc['stats']}")
        if doc.get("run_id"):
            print(f"run:     {doc['run_id']}")
        if doc.get("fleet"):
            from repro.telemetry.fleet import render_dashboard

            done = doc["tasks"].get("done", 0)
            total = sum(doc["tasks"].values())
            print(render_dashboard(doc, done, total))
        return 0

    ctx = _make_ctx(args)
    plan_by_section = {
        "table2": {"table2": True},
        "figure2": {"figure2": (tuple(args.cores), tuple(args.groups))},
        "figure3": {"figure3": tuple(args.groups)},
        "figure4": {"figure4": True},
        "figure5": {"figure5": True},
        "arena": {"arena": (tuple(args.mixes), None)},
        "cloud": {"cloud": (tuple(args.mixes), None)},
    }
    cells = plan_cells(ctx, **plan_by_section[args.section])

    bus = TelemetryBus(retain=False)

    def narrate(ev):
        if ev.name != "experiment.cell":
            return
        a = ev.args
        print(f"  [{a['done']}/{a['total']}] {a['status']:<7} {a['key']}",
              file=sys.stderr)

    bus.subscribe(narrate)
    trace_events: list[tuple[float, dict]] = []
    if args.trace_out or args.telemetry:
        import time as _time

        def record(ev):
            if ev.name == "experiment.cell":
                trace_events.append((_time.time(), dict(ev.args)))

        bus.subscribe(record)
    watch_seconds = args.sample_every if args.watch else None
    report = submit_cells(args.coordinator, cells, bus=bus,
                          watch_seconds=watch_seconds)
    if report.failures:
        print(report.failure_report(), file=sys.stderr)
    merge_into(ctx, report)
    print(report.summary(), file=sys.stderr)
    if report.run_id:
        print(f"run: {report.run_id}", file=sys.stderr)
    if args.trace_out and report.run_id:
        # Client-lane fleet trace: one instant per completed cell, so the
        # merged timeline shows when results landed back at the client.
        from repro.telemetry.fleet import FleetTraceWriter

        trace = FleetTraceWriter(args.trace_out, role="client",
                                 run_id=report.run_id)
        for t, a in trace_events:
            trace.event(f"cell {a['key'].split(':cfg=')[0]}", "i",
                        track="cells", t=t, status=a["status"],
                        done=a["done"], total=a["total"])
        trace.close(cells=len(trace_events))
        print(f"fleet trace: {args.trace_out}", file=sys.stderr)
    if args.telemetry:
        doc = coordinator_status(args.coordinator)
        if doc.get("fleet"):
            from repro.telemetry.fleet import render_dashboard

            print(render_dashboard(doc, len(report.results), len(cells)),
                  file=sys.stderr)

    if args.section == "table2":
        print(format_table2(run_table2(ctx)))
    elif args.section == "figure2":
        print(format_figure2(run_figure2(
            ctx, core_counts=tuple(args.cores), groups=tuple(args.groups))))
    elif args.section == "figure3":
        print(format_figure3(run_figure3(ctx, groups=tuple(args.groups))))
    elif args.section == "figure4":
        print(format_figure4(run_figure4(ctx)))
    elif args.section == "figure5":
        print(format_figure5(run_figure5(ctx)))
    elif args.section == "arena":
        from repro.experiments.arena import format_arena, run_arena

        mixes = tuple(args.mixes)
        print(format_arena(run_arena(ctx, mixes=mixes), mixes))
    elif args.section == "cloud":
        from repro.experiments.cloud import format_cloud, run_cloud_table

        print(format_cloud(run_cloud_table(ctx, mixes=tuple(args.mixes))))
    return 0


def _cmd_obs_merge(args: argparse.Namespace) -> int:
    from repro.telemetry.fleet import write_merged_trace

    doc = write_merged_trace(args.traces, args.out)
    other = doc["otherData"]
    n_events = sum(1 for e in doc["traceEvents"]
                   if e.get("ph") in ("B", "E", "i", "C"))
    print(f"run {other['run_id']}: merged {len(other['sources'])} traces, "
          f"{n_events} events -> {args.out}")
    for s in other["sources"]:
        label = s["role"] + (f" {s['worker_id']}" if s.get("worker_id")
                             else "")
        print(f"  pid {s['pid']}  {label:<24} {s['events']:>6} events  "
              f"{s['path']}")
    print("open in https://ui.perfetto.dev (lanes = processes, "
          "slices = leases/cells, gaps = idle)")
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    from repro.workloads.cloud import CLOUD_MIXES, service_by_code

    for m in WORKLOAD_MIXES:
        apps = ", ".join(a.name for a in m.apps())
        print(f"{m.name:<8} [{m.codes}] {apps}")
    for cm in CLOUD_MIXES:
        parts = ", ".join(
            service_by_code(c).name if c.isupper() else
            next(a.name for a in cm.batch_apps() if a.code == c)
            for c in cm.codes
        )
        print(f"{cm.name:<8} [{cm.codes}] {parts}")
    return 0


def _cmd_policies(_args: argparse.Namespace) -> int:
    for name in available_policies():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="ICPP'08 memory-access-scheduling reproduction",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    def add_engine_profile(p):
        p.add_argument("--profile", nargs="?", const="profile",
                       metavar="BASE",
                       help="cProfile the engine: write BASE.pstats and "
                            "BASE.folded (collapsed stacks) and print the "
                            "top functions by cumulative time "
                            "(default BASE: 'profile')")

    p = sub.add_parser("profile", help="single-core ME profiling")
    _add_common(p)
    p.add_argument("--app", help="benchmark name (default: all 26)")
    add_engine_profile(p)
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("run", help="run one workload under one policy")
    _add_common(p)
    p.add_argument("workload", help="Table 3 mix name, e.g. 4MEM-1")
    p.add_argument("policy", help="policy name, e.g. ME-LREQ")
    g = p.add_argument_group("telemetry (docs/OBSERVABILITY.md)")
    g.add_argument("--telemetry", action="store_true",
                   help="capture the sampled time series and print a summary")
    g.add_argument("--sample-every", type=_positive_int, default=2000,
                   metavar="CYCLES",
                   help="sampler epoch length in cycles (default 2000)")
    g.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace-event file (Perfetto-loadable); "
                        "implies --telemetry and decision capture")
    g.add_argument("--trace-commands", action="store_true",
                   help="with --trace-out, also capture per-DRAM-command events")
    g.add_argument("--telemetry-out", metavar="PATH",
                   help="write the telemetry stream as JSONL; implies --telemetry")
    g.add_argument("--telemetry-csv", metavar="PATH",
                   help="write the sampled series as CSV; implies --telemetry")
    g.add_argument("--spans", action="store_true",
                   help="trace sampled request lifecycles and print the "
                        "per-core latency-attribution table")
    g.add_argument("--span-sample", type=_positive_int, default=64, metavar="N",
                   help="trace every Nth request (default 64; 1 = all)")
    g.add_argument("--spans-out", metavar="PATH",
                   help="write traced spans + attribution as JSONL; "
                        "implies --spans")
    add_engine_profile(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    _add_common(p)
    p.add_argument("number", type=int, choices=(2, 3, 4, 5))
    p.add_argument("--cores", type=int, nargs="+", default=[4])
    p.add_argument("--groups", nargs="+", default=["MEM"])
    p.add_argument("--seeds", type=int, nargs="+", default=[1])
    _add_parallel(p)
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("table2", help="regenerate Table 2")
    _add_common(p)
    p.add_argument("--seeds", type=int, nargs="+", default=[1])
    _add_parallel(p)
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser(
        "arena",
        help="rank every registered policy on speedup, fairness and "
             "hardware cost (docs/POLICIES.md)")
    _add_common(p)
    p.add_argument("--mixes", nargs="+", default=["smoke"],
                   help="mix-set names (smoke, 2core, 4core, 8core, full) "
                        "and/or explicit Table 3 mix names "
                        "(default: smoke)")
    p.add_argument("--policies", nargs="+", default=None, metavar="NAME",
                   help="restrict the field (default: every registered "
                        "policy plus FIX-DESC)")
    p.add_argument("--seeds", type=int, nargs="+", default=[1])
    p.add_argument("--per-mix", action="store_true", dest="per_mix",
                   help="per-mix drill-down table (no averaging over "
                        "mixes) instead of the aggregate ranking")
    p.add_argument("--anatomy", action="store_true",
                   help="append the per-policy stall-attribution breakdown "
                        "on the first mix (rerun with span tracing)")
    p.add_argument("--span-sample", type=_positive_int, default=16,
                   metavar="N",
                   help="with --anatomy, trace every Nth request "
                        "(default 16)")
    _add_parallel(p)
    p.set_defaults(fn=_cmd_arena)

    p = sub.add_parser(
        "cloud",
        help="tail-latency / SLO table for the open-loop cloud workload "
             "family (docs/WORKLOADS.md)")
    _add_common(p)
    p.add_argument("--mixes", nargs="+", default=["smoke"],
                   help="cloud mix-set names (smoke, 2core, 4core, 8core, "
                        "full) and/or explicit cloud mix names "
                        "(default: smoke)")
    p.add_argument("--policies", nargs="+", default=None, metavar="NAME",
                   help="restrict the field (default: every registered "
                        "policy plus FIX-DESC)")
    p.add_argument("--seeds", type=int, nargs="+", default=[1])
    _add_parallel(p)
    p.set_defaults(fn=_cmd_cloud)

    p = sub.add_parser("workloads",
                       help="list Table 3 mixes and cloud mixes")
    p.set_defaults(fn=_cmd_workloads)

    p = sub.add_parser("policies", help="list scheduling policies")
    p.set_defaults(fn=_cmd_policies)

    p = sub.add_parser(
        "serve", help="start the distributed sweep coordinator")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1; see the security "
                        "note in docs/DISTRIBUTED.md before widening)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = pick a free one)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="content-addressed result store "
                        "(default: .repro-cache)")
    p.add_argument("--no-store", action="store_true",
                   help="run without a persistent result store")
    p.add_argument("--lease", type=float, default=60.0, metavar="SECONDS",
                   help="cell lease duration before a silent worker is "
                        "presumed dead (default 60)")
    p.add_argument("--max-attempts", type=int, default=3, metavar="N",
                   help="attempts per cell before it is reported failed")
    p.add_argument("--verbose", action="store_true",
                   help="also narrate per-cell service events")
    g = p.add_argument_group("fleet observability (docs/OBSERVABILITY.md)")
    g.add_argument("--telemetry", action="store_true",
                   help="collect fleet metrics (lease/queue/worker "
                        "counters) and serve them via status requests")
    g.add_argument("--trace-out", metavar="PATH",
                   help="record coordinator lease slices as a fleet trace "
                        "(JSONL; merge with 'repro obs merge-trace'); "
                        "implies --telemetry")
    g.add_argument("--metrics-out", metavar="PATH",
                   help="append periodic metrics snapshots as JSONL; "
                        "implies --telemetry")
    g.add_argument("--prometheus-out", metavar="PATH",
                   help="write the latest snapshot in Prometheus text "
                        "format (textfile-collector ready); implies "
                        "--telemetry")
    g.add_argument("--sample-every", type=float, default=5.0,
                   metavar="SECONDS",
                   help="metrics snapshot period (default 5)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("worker", help="attach a sweep worker")
    p.add_argument("coordinator", metavar="HOST:PORT")
    p.add_argument("--id", default=None, help="worker name (default: auto)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="local read-through result store (optional)")
    p.add_argument("--connect-retries", type=int, default=10, metavar="N",
                   help="retry the initial connection N times, 0.5s apart "
                        "(default 10 — lets the worker start first)")
    g = p.add_argument_group("fleet observability (docs/OBSERVABILITY.md)")
    g.add_argument("--telemetry", action="store_true",
                   help="record a fleet trace of executed cells "
                        "(default file: fleet-worker-<id>.jsonl)")
    g.add_argument("--trace-out", metavar="PATH",
                   help="fleet trace file (JSONL; merge with "
                        "'repro obs merge-trace'); implies --telemetry")
    g.add_argument("--sample-every", type=float, default=30.0,
                   metavar="SECONDS",
                   help="progress-snapshot period in the trace (default 30)")
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "submit",
        help="run a figure/table sweep on a coordinator, byte-identical "
             "to the serial command")
    p.add_argument("coordinator", metavar="HOST:PORT")
    p.add_argument("section", nargs="?", default="figure2",
                   choices=("table2", "figure2", "figure3", "figure4",
                            "figure5", "arena", "cloud"))
    _add_common(p)
    p.add_argument("--cores", type=int, nargs="+", default=[4])
    p.add_argument("--groups", nargs="+", default=["MEM"])
    p.add_argument("--mixes", nargs="+", default=["smoke"],
                   help="arena/cloud sections: mix-set and/or mix names")
    p.add_argument("--seeds", type=int, nargs="+", default=[1])
    p.add_argument("--status", action="store_true",
                   help="print the coordinator's status and exit")
    p.add_argument("--stop", action="store_true",
                   help="shut the coordinator down and exit")
    g = p.add_argument_group("fleet observability (docs/OBSERVABILITY.md)")
    g.add_argument("--watch", action="store_true",
                   help="live dashboard on stderr while the job runs "
                        "(progress bar + worker table; needs a coordinator "
                        "started with --telemetry for the worker table)")
    g.add_argument("--telemetry", action="store_true",
                   help="print the coordinator's fleet snapshot after the "
                        "job completes")
    g.add_argument("--trace-out", metavar="PATH",
                   help="record result arrivals as a client-lane fleet "
                        "trace (JSONL; merge with 'repro obs merge-trace')")
    g.add_argument("--sample-every", type=float, default=1.0,
                   metavar="SECONDS",
                   help="--watch refresh period (default 1)")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "obs", help="fleet observability utilities (docs/OBSERVABILITY.md)")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    m = obs_sub.add_parser(
        "merge-trace",
        help="stitch per-process fleet traces (coordinator + workers + "
             "client) into one Chrome/Perfetto timeline")
    m.add_argument("traces", nargs="+", metavar="TRACE",
                   help="fleet trace JSONL files from one run "
                        "(same run_id)")
    m.add_argument("--out", default="fleet.trace.json", metavar="PATH",
                   help="merged Chrome trace (default: %(default)s)")
    m.set_defaults(fn=_cmd_obs_merge)

    return ap


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "backend", None):
        # Through the environment rather than threading a parameter down
        # every experiment entry point: worker processes inherit it, and
        # MultiCoreSystem resolves the env var whenever backend=None.
        os.environ[BACKEND_ENV_VAR] = args.backend
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # Clean interactive interrupt: pools/connections wound down by the
        # handlers above; completed cells persist in the store, so a re-run
        # with --resume (or against the same coordinator) picks up there.
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
