"""Figure 2: SMT speedup of the five policies over Table 3's mixes.

The paper plots, for 2/4/8 cores and the MEM and MIX groups, the SMT
speedup of HF-RF, ME, RR, LREQ and ME-LREQ on every workload.  The shape
targets (paper Section 5.1):

* ranking on MEM workloads: ME < HF-RF < RR < LREQ < ME-LREQ (avg);
* ME-LREQ over HF-RF: small at 2 cores, ~10.7 % avg / 17.7 % max at
  4 cores, ~19.9 % avg / 21.4 % max at 8 cores;
* MIX workloads: smaller gains at 4 cores (~4 %), larger at 8 (~12.1 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import ExperimentContext, PolicyOutcome, mean
from repro.workloads.mixes import mixes_for

__all__ = ["POLICIES", "Figure2Row", "run_figure2", "figure2_cells",
           "format_figure2"]

#: the five schemes of Figure 2, in the paper's legend order
POLICIES: tuple[str, ...] = ("HF-RF", "ME", "RR", "LREQ", "ME-LREQ")


@dataclass(frozen=True)
class Figure2Row:
    """One workload's speedups under every policy."""

    workload: str
    num_cores: int
    group: str
    outcomes: dict[str, PolicyOutcome]

    def speedup(self, policy: str) -> float:
        return self.outcomes[policy.upper()].smt_speedup

    def gain(self, policy: str, baseline: str = "HF-RF") -> float:
        """Relative gain of ``policy`` over ``baseline`` on this workload."""
        return self.speedup(policy) / self.speedup(baseline) - 1.0


def run_figure2(
    ctx: ExperimentContext,
    core_counts: tuple[int, ...] = (2, 4, 8),
    groups: tuple[str, ...] = ("MEM", "MIX"),
    policies: tuple[str, ...] = POLICIES,
) -> list[Figure2Row]:
    """Regenerate Figure 2's data points."""
    rows: list[Figure2Row] = []
    for n in core_counts:
        for group in groups:
            for mix in mixes_for(n, group):
                outcomes = {p: ctx.outcome(mix, p) for p in policies}
                rows.append(
                    Figure2Row(
                        workload=mix.name,
                        num_cores=n,
                        group=group,
                        outcomes=outcomes,
                    )
                )
    return rows


def figure2_cells(
    core_counts: tuple[int, ...] = (2, 4, 8),
    groups: tuple[str, ...] = ("MEM", "MIX"),
    policies: tuple[str, ...] = POLICIES,
) -> list[tuple[str, str]]:
    """(workload, policy) pairs behind :func:`run_figure2`, in run order
    (the parallel planner crosses them with the context's seeds)."""
    return [
        (mix.name, p)
        for n in core_counts
        for group in groups
        for mix in mixes_for(n, group)
        for p in policies
    ]


def average_gains(
    rows: list[Figure2Row], policies: tuple[str, ...] = POLICIES
) -> dict[tuple[int, str, str], float]:
    """Group-average relative gains over HF-RF, keyed by
    ``(num_cores, group, policy)`` — the numbers Section 5.1 quotes."""
    out: dict[tuple[int, str, str], float] = {}
    keys = {(r.num_cores, r.group) for r in rows}
    for n, group in sorted(keys):
        subset = [r for r in rows if r.num_cores == n and r.group == group]
        for p in policies:
            out[(n, group, p)] = mean([r.gain(p) for r in subset])
    return out


def format_figure2(rows: list[Figure2Row]) -> str:
    """Render the figure as paper-style text tables."""
    if not rows:
        return "(no data)"
    policies = tuple(rows[0].outcomes)
    lines: list[str] = []
    header = "workload   " + "".join(f"{p:>10}" for p in policies)
    current = None
    for r in rows:
        key = (r.num_cores, r.group)
        if key != current:
            current = key
            lines.append(f"\n== {r.num_cores}-core {r.group} (SMT speedup) ==")
            lines.append(header)
        lines.append(
            f"{r.workload:<11}"
            + "".join(f"{r.speedup(p):>10.3f}" for p in policies)
        )
    if "HF-RF" in policies:
        lines.append("\n== average gain over HF-RF ==")
        for (n, group, p), g in sorted(average_gains(rows, policies).items()):
            if p != "HF-RF":
                lines.append(f"{n}-core {group:<4} {p:<8} {g:+7.1%}")
    return "\n".join(lines)
