"""Figure 5: fairness of the scheduling policies.

Unfairness = max slowdown / min slowdown across the concurrent
applications (Section 5.3, after Gabor et al. / Mutlu & Moscibroda); the
paper shows ME-LREQ achieving the *best* fairness of all policies on the
4-core MEM workloads (reducing unfairness vs HF-RF/RR/LREQ by 7.9 %,
7.6 % and 16.6 % on average) while the fixed ME order makes fairness
worse than HF-RF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.figure2 import POLICIES
from repro.experiments.harness import ExperimentContext, PolicyOutcome, mean
from repro.workloads.mixes import mixes_for

__all__ = ["Figure5Result", "run_figure5", "figure5_cells", "format_figure5"]


@dataclass(frozen=True)
class Figure5Result:
    #: workload -> policy -> outcome (unfairness field is the figure)
    cells: dict[str, dict[str, PolicyOutcome]]

    def avg_unfairness(self, policy: str) -> float:
        return mean([c[policy.upper()].unfairness for c in self.cells.values()])

    def reduction_vs(self, policy: str, baseline: str) -> float:
        """Average relative unfairness reduction of ``policy`` vs baseline
        (positive = fairer, the way the paper quotes it)."""
        return 1.0 - self.avg_unfairness(policy) / self.avg_unfairness(baseline)


def run_figure5(
    ctx: ExperimentContext,
    policies: tuple[str, ...] = POLICIES,
) -> Figure5Result:
    """Regenerate Figure 5 (4-core MEM workloads)."""
    cells = {
        mix.name: {p: ctx.outcome(mix, p) for p in policies}
        for mix in mixes_for(4, "MEM")
    }
    return Figure5Result(cells=cells)


def figure5_cells(
    policies: tuple[str, ...] = POLICIES,
) -> list[tuple[str, str]]:
    """(workload, policy) pairs behind :func:`run_figure5`."""
    return [(mix.name, p) for mix in mixes_for(4, "MEM") for p in policies]


def format_figure5(res: Figure5Result) -> str:
    policies = next(iter(res.cells.values())).keys()
    lines = ["== Figure 5: unfairness (max/min slowdown), 4-core MEM =="]
    lines.append("workload   " + "".join(f"{p:>10}" for p in policies))
    for wl, by_policy in res.cells.items():
        lines.append(
            f"{wl:<11}"
            + "".join(f"{by_policy[p].unfairness:>10.2f}" for p in policies)
        )
    lines.append(
        "average:   "
        + "".join(f"{res.avg_unfairness(p):>10.2f}" for p in policies)
    )
    if "ME-LREQ" in policies:
        for base in ("HF-RF", "RR", "LREQ"):
            if base in policies:
                lines.append(
                    f"ME-LREQ unfairness reduction vs {base}: "
                    f"{res.reduction_vs('ME-LREQ', base):+.1%}"
                )
    return "\n".join(lines)
