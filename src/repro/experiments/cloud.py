"""Cloud experiments: tail-latency / SLO tables over the cloud mixes.

This is the datacenter reframing of the paper's Figure 2-style
comparison ("Memory Controller Design Under Cloud Workloads",
arXiv:1611.10316): instead of asking which scheduler maximises weighted
speedup, :func:`run_cloud_table` asks which scheduler *protects tails*
— exact integer p50/p99/p999 read latencies and SLO-violation counts of
the open-loop service streams, next to the weighted speedup of the
co-running batch cores.

Every violating request is decomposed by the PR 2 span engine
(:func:`repro.telemetry.attribution.decompose`), so the table also
answers *which stall blew the tail*: the dominant component of the
violation-attributed cycles (``queue`` when the scheduler is the
bottleneck, ``stall`` when upstream structures saturate, ``drain`` when
write bursts block reads, ...).  The decomposition's conservation
invariant — components sum exactly, in integer cycles, to each
request's measured latency — is enforced per span and re-asserted by
the test suite.

Determinism contract (mirrors :mod:`repro.experiments.arena`): all
statistics are integers or float-hex-stable floats derived from seeded
runs, spans are aggregated in a sorted canonical order, and the
rendered table is byte-identical across backends, process counts and
platforms — pinned by ``tests/golden/golden_cloud.json``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.config import SystemConfig
from repro.core.registry import make_policy
from repro.metrics.speedup import smt_speedup
from repro.metrics.tails import TailStats, tail_stats
from repro.sim.runner import DEFAULT_WARMUP, CoreResult, _core_result
from repro.sim.system import MultiCoreSystem
from repro.telemetry.attribution import COMPONENTS, decompose, drain_windows
from repro.telemetry.hub import Telemetry
from repro.workloads.cloud import (
    CLOUD_MIXES,
    CloudMix,
    cloud_mix_by_name,
    cloud_system_config,
    make_cloud_trace,
    service_by_code,
)
from repro.workloads.synthetic import make_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import ExperimentContext

__all__ = [
    "CLOUD_MIX_SETS",
    "CloudResult",
    "CloudRow",
    "ServiceStats",
    "cloud_cells",
    "cloud_mixes_for",
    "format_cloud",
    "run_cloud",
    "run_cloud_table",
]

#: named mix sets accepted by ``repro cloud --mixes`` (explicit cloud mix
#: names are accepted alongside these)
CLOUD_MIX_SETS: dict[str, tuple[str, ...]] = {
    "smoke": ("2CLD-1",),
    "2core": ("2CLD-1", "2CLD-2"),
    "4core": ("4CLD-1", "4CLD-2"),
    "8core": ("8CLD-1",),
    "full": tuple(m.name for m in CLOUD_MIXES),
}


def cloud_mixes_for(names: Sequence[str]) -> tuple[CloudMix, ...]:
    """Resolve mix-set names and/or explicit cloud mix names, de-duplicated
    in first-appearance order."""
    out: list[CloudMix] = []
    seen: set[str] = set()
    for name in names:
        expanded = CLOUD_MIX_SETS.get(name.lower())
        mix_names = expanded if expanded is not None else (name,)
        for mn in mix_names:
            mix = cloud_mix_by_name(mn)
            if mix.name not in seen:
                seen.add(mix.name)
                out.append(mix)
    return tuple(out)


@dataclass(frozen=True)
class ServiceStats:
    """Exact per-service outcome of one cloud run (all integer cycles).

    ``latencies`` is the ascending-sorted multiset of completed request
    latencies; ``viol_components`` aggregates the seven-component stall
    decomposition over the *violating* requests only, aligned with
    :data:`repro.telemetry.attribution.COMPONENTS`, and sums exactly to
    ``viol_latency_sum`` (the conservation invariant, checked per span).
    """

    code: str
    name: str
    core_id: int
    slo: int
    latencies: tuple[int, ...]
    viol_count: int
    viol_latency_sum: int
    viol_components: tuple[int, ...]  # aligned with COMPONENTS

    @property
    def requests(self) -> int:
        return len(self.latencies)

    def tails(self) -> TailStats:
        return tail_stats(self.latencies)


@dataclass(frozen=True)
class CloudResult:
    """Outcome of one cloud co-run: services + batch cores."""

    mix_name: str
    policy_name: str
    services: tuple[ServiceStats, ...]  # in service-core order
    batch: tuple[CoreResult, ...]  # in batch-core order
    end_cycle: int
    row_hit_rate: float

    def all_latencies(self) -> list[int]:
        out: list[int] = []
        for s in self.services:
            out.extend(s.latencies)
        return out


def run_cloud(
    mix: CloudMix | str,
    policy,
    inst_budget: int,
    seed: int = 0,
    phase: str = "eval",
    config: SystemConfig | None = None,
    me_values: tuple[float, ...] | None = None,
    warmup_insts: int = DEFAULT_WARMUP,
    lookahead: int = 256,
    max_events: int | None = None,
    backend: str | None = None,
) -> CloudResult:
    """Run a cloud mix under ``policy`` on the datacenter-class machine.

    ``config`` is the *base* (desktop) configuration; the run derives the
    cloud machine via :func:`repro.workloads.cloud.cloud_system_config`.
    ``me_values`` are the memory-efficiency ranks of the *batch* cores
    only (batch-core order); service cores use their profiles' pinned
    ``me_value``.  Every request span is captured (span_sample=1) and
    every violating request is decomposed into the seven stall
    components with the exact-sum invariant enforced.
    """
    if isinstance(mix, str):
        mix = cloud_mix_by_name(mix)
    mix.validate()
    base = config or SystemConfig()
    cfg = cloud_system_config(base, mix.num_cores)
    if isinstance(policy, str):
        name = policy.upper()
        if name in ("ME", "ME-LREQ"):
            if me_values is None:
                raise ValueError(f"policy {name} requires me_values (batch cores)")
            policy = make_policy(name, me_values=_full_me_vector(mix, me_values))
        else:
            policy = make_policy(name)
    traces = []
    for i, c in enumerate(mix.codes):
        if c.isupper():
            traces.append(
                make_cloud_trace(
                    service_by_code(c), seed, phase,
                    core_id=i, issue_width=cfg.core.issue_width,
                )
            )
        else:
            traces.append(make_trace(mix.app_at(i), seed, phase, core_id=i))
    telemetry = Telemetry(sample_every=1 << 30, capture_spans=True, span_sample=1)
    system = MultiCoreSystem(
        cfg,
        policy,
        traces,
        inst_budget,
        warmup_insts=warmup_insts,
        seed=seed,
        lookahead=lookahead,
        telemetry=telemetry,
        backend=backend,
    )
    telemetry.meta.setdefault("run", {}).update(
        mix=mix.name, policy=policy.name, seed=seed, budget=inst_budget,
        config_hash=cfg.digest(),
    )
    system.run(max_events=max_events)

    collector = telemetry.spans
    t_cl = collector.timing.t_cl
    overhead = collector.overhead
    end = max((s.done for s in collector.completed), default=None)
    windows = drain_windows(telemetry, end_cycle=end)
    # canonical span order: sorted, not completion order, so aggregation
    # is invariant to backend-internal event sequencing
    by_core: dict[int, list] = {i: [] for i in mix.service_cores()}
    for span in collector.completed:
        if span.kind == "read" and span.core_id in by_core:
            by_core[span.core_id].append(span)
    services: list[ServiceStats] = []
    for core_id in mix.service_cores():
        profile = service_by_code(mix.codes[core_id])
        spans = sorted(
            by_core[core_id], key=lambda s: (s.first_attempt, s.arrival, s.done)
        )
        lats: list[int] = []
        viol_count = 0
        viol_sum = 0
        viol_parts = [0] * len(COMPONENTS)
        for span in spans:
            lat = span.latency
            lats.append(lat)
            if lat > profile.slo:
                # decompose raises unless the parts sum exactly to lat
                parts = decompose(
                    span, t_cl, overhead, windows.get(span.track, ())
                )
                viol_count += 1
                viol_sum += lat
                for j, comp in enumerate(COMPONENTS):
                    viol_parts[j] += parts[comp]
        services.append(
            ServiceStats(
                code=profile.code,
                name=profile.name,
                core_id=core_id,
                slo=profile.slo,
                latencies=tuple(sorted(lats)),
                viol_count=viol_count,
                viol_latency_sum=viol_sum,
                viol_components=tuple(viol_parts),
            )
        )
    batch = tuple(
        _core_result(system, i, mix.app_at(i)) for i in mix.batch_cores()
    )
    return CloudResult(
        mix_name=mix.name,
        policy_name=policy.name,
        services=tuple(services),
        batch=batch,
        end_cycle=system.end_cycle,
        row_hit_rate=system.dram.row_hit_rate(),
    )


def _full_me_vector(mix: CloudMix, batch_me: tuple[float, ...]) -> tuple[float, ...]:
    """Interleave pinned service ME ranks with the measured batch ranks
    into the full per-core vector the ME-family policies expect."""
    if len(batch_me) != len(mix.batch_cores()):
        raise ValueError(
            f"{mix.name} has {len(mix.batch_cores())} batch cores, "
            f"got {len(batch_me)} me_values"
        )
    it = iter(batch_me)
    out: list[float] = []
    for c in mix.codes:
        out.append(service_by_code(c).me_value if c.isupper() else next(it))
    return tuple(out)


# -- the tail-latency / SLO table --------------------------------------------------


@dataclass(frozen=True)
class CloudRow:
    """One (mix, policy) row of the cloud table, aggregated over seeds."""

    mix: str
    policy: str
    requests: int
    p50: int
    p99: int
    p999: int
    violations: int
    viol_pct: float
    top_stall: str  # dominant component of violation-attributed cycles
    batch_speedup: float  # weighted speedup of the batch cores (0 if none)
    fingerprint: str


def cloud_cells(
    mix_names: Sequence[str], policies: Sequence[str] | None = None
) -> list[tuple[str, str]]:
    """Enumerate the (mix name, concrete policy) pairs of a cloud table."""
    from repro.experiments.arena import arena_policies, concrete_policy

    pols = tuple(policies) if policies else arena_policies()
    out: list[tuple[str, str]] = []
    for mix in cloud_mixes_for(mix_names):
        for label in pols:
            out.append((mix.name, concrete_policy(label, mix)))
    return out


def run_cloud_table(
    ctx: "ExperimentContext",
    mixes: Sequence[str] = ("smoke",),
    policies: Sequence[str] | None = None,
) -> list[CloudRow]:
    """Race policies over cloud mixes; aggregate exact tails over seeds.

    Within each mix, rows rank by ascending p99 (the datacenter figure
    of merit), ties broken by policy name — a deterministic total order.
    """
    from repro.experiments.arena import arena_policies, concrete_policy

    pols = tuple(policies) if policies else arena_policies()
    resolved = cloud_mixes_for(mixes)
    rows: list[CloudRow] = []
    for mix in resolved:
        mix_rows: list[CloudRow] = []
        for label in pols:
            name = concrete_policy(label, mix)
            lats: list[int] = []
            violations = 0
            comp_totals = [0] * len(COMPONENTS)
            speedups: list[float] = []
            h = hashlib.sha256()
            for seed in ctx.seeds:
                res = ctx.cloud_run(mix, name, seed)
                h.update(f"{mix.name}:{name}:{seed}".encode())
                for svc in res.services:
                    lats.extend(svc.latencies)
                    violations += svc.viol_count
                    for j, v in enumerate(svc.viol_components):
                        comp_totals[j] += v
                    h.update(
                        f"|{svc.code}:{svc.requests}:{svc.viol_count}:"
                        f"{svc.viol_latency_sum}".encode()
                    )
                    for lat in svc.latencies:
                        h.update(f",{lat}".encode())
                for core in res.batch:
                    h.update(f"|b{core.core_id}:{core.ipc.hex()}".encode())
                if res.batch:
                    singles = ctx.batch_single_ipcs(mix.batch_apps(), seed)
                    speedups.append(
                        smt_speedup(tuple(c.ipc for c in res.batch), singles)
                    )
            tails = tail_stats(lats)
            if violations:
                top = max(
                    range(len(COMPONENTS)), key=lambda j: (comp_totals[j], -j)
                )
                top_stall = COMPONENTS[top]
            else:
                top_stall = "-"
            mix_rows.append(
                CloudRow(
                    mix=mix.name,
                    policy=name,
                    requests=tails.count,
                    p50=tails.p50,
                    p99=tails.p99,
                    p999=tails.p999,
                    violations=violations,
                    viol_pct=100.0 * violations / tails.count,
                    top_stall=top_stall,
                    batch_speedup=(
                        sum(speedups) / len(speedups) if speedups else 0.0
                    ),
                    fingerprint=h.hexdigest()[:12],
                )
            )
        mix_rows.sort(key=lambda r: (r.p99, r.policy))
        rows.extend(mix_rows)
    return rows


def format_cloud(rows: Sequence[CloudRow]) -> str:
    """Byte-stable fixed-width rendering of the cloud table."""
    lines = [
        "cloud tail-latency / SLO table (latencies in cycles; rank = p99)",
        "",
        f"{'#':>2}  {'mix':<8} {'policy':<10} {'reqs':>6} {'p50':>6} "
        f"{'p99':>6} {'p999':>6} {'viol':>6} {'viol%':>6} "
        f"{'top-stall':<9} {'bspeed':>7}  {'fingerprint':<12}",
    ]
    rank = 0
    last_mix: str | None = None
    for row in rows:
        if row.mix != last_mix:
            if last_mix is not None:
                lines.append("")
            last_mix = row.mix
            rank = 0
        rank += 1
        lines.append(
            f"{rank:>2}  {row.mix:<8} {row.policy:<10} {row.requests:>6} "
            f"{row.p50:>6} {row.p99:>6} {row.p999:>6} {row.violations:>6} "
            f"{row.viol_pct:>6.1f} {row.top_stall:<9} "
            f"{row.batch_speedup:>7.3f}  {row.fingerprint:<12}"
        )
    return "\n".join(line.rstrip() for line in lines)
