"""Simulation cells: the unit of work the parallel runner schedules.

Every number in the paper reproduction is a deterministic function of a
small tuple of inputs — the workload, the policy (plus its constructor
arguments), the seed, the instruction budgets, the warmup, the core
lookahead and the machine configuration.  A :class:`Cell` captures that
tuple explicitly so one simulation can be

* executed standalone in a worker process (:func:`execute_cell`),
* cached on disk under a stable key (:class:`CellKey`), and
* merged back into an :class:`~repro.experiments.harness.ExperimentContext`
  bit-identically to the serial code path.

Cell kinds mirror the three run shapes the experiment harnesses use:

``profile``
    one application alone, ``"profile"`` trace phase, at the profiling
    budget — produces the :class:`~repro.metrics.memory_efficiency.MeProfile`
    feeding ME / ME-LREQ and Table 2;
``single``
    one application alone, ``"eval"`` trace phase — the SMT-speedup
    denominator (:meth:`MeProfiler.single_core_ipc`);
``eval``
    one Table 3 mix under one registered policy — the body of
    :meth:`ExperimentContext.run`;
``custom``
    an ablation run: a policy with constructor arguments and/or a
    non-default configuration or lookahead — the body of
    :meth:`ExperimentContext.run_custom`;
``cloud``
    one cloud mix (open-loop services + batch cores) on the
    datacenter-class machine — the body of
    :meth:`ExperimentContext.cloud_run`.  The key's ``config_digest``
    names the *derived* cloud machine, so cloud cells never collide
    with eval cells run from the same base configuration.

Fault injection (tests only): set ``REPRO_PARALLEL_FAULT`` to a substring
of a cell key and the executor raises before simulating on the first
attempt; add ``REPRO_PARALLEL_FAULT_ALWAYS=1`` to fail retries too, or
``REPRO_PARALLEL_FAULT_KIND=exit`` to hard-kill the worker process
instead of raising (exercises the broken-pool fallback).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.config import SystemConfig

__all__ = [
    "ME_FAMILY",
    "CellKey",
    "Cell",
    "CellFault",
    "eval_cell_key",
    "profile_cell_key",
    "single_cell_key",
    "custom_cell_key",
    "cloud_cell_key",
    "policy_from_spec",
    "execute_cell",
]

#: policies whose construction consumes the profiled ME vector — their
#: results (and cache keys) therefore depend on the profiling budget.
ME_FAMILY = ("ME", "ME-LREQ")


@dataclass(frozen=True)
class CellKey:
    """Canonical identity of one simulation cell.

    Every field that can change the simulated statistics is part of the
    key; nothing else is.  ``profile_budget`` is 0 for cells whose result
    does not depend on profiling (non-ME policies, profile/single cells
    carry their budget in ``inst_budget``), so changing the profiling
    budget invalidates exactly the ME-dependent entries.
    """

    kind: str  # "profile" | "single" | "eval" | "custom" | "cloud"
    workload: str  # mix name, or the app code for profile/single cells
    policy: str  # canonical policy name ("" for profile/single cells)
    seed: int
    inst_budget: int
    warmup: int
    config_digest: str
    phase: str = "eval"  # trace phase for profile/single cells
    lookahead: int = 0  # 0 = not applicable (single-core cells)
    profile_budget: int = 0  # 0 = result independent of profiling
    policy_args: tuple = ()  # sorted (name, value) constructor args

    def canonical(self) -> dict:
        """JSON-stable dict of every identity field."""
        return {
            "kind": self.kind,
            "workload": self.workload,
            "policy": self.policy,
            "seed": self.seed,
            "inst_budget": self.inst_budget,
            "warmup": self.warmup,
            "config_digest": self.config_digest,
            "phase": self.phase,
            "lookahead": self.lookahead,
            "profile_budget": self.profile_budget,
            "policy_args": [list(kv) for kv in self.policy_args],
        }

    def key_str(self) -> str:
        """Human-readable stable identity (sort key, fault matching)."""
        args = ",".join(f"{k}={v}" for k, v in self.policy_args)
        pol = self.policy + (f"[{args}]" if args else "")
        return (
            f"{self.kind}:{self.workload}:{pol}:seed={self.seed}"
            f":b={self.inst_budget}:w={self.warmup}:la={self.lookahead}"
            f":pb={self.profile_budget}:ph={self.phase}"
            f":cfg={self.config_digest}"
        )

    def digest(self) -> str:
        """Stable hash naming this cell's on-disk cache entry."""
        blob = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:32]


def profile_cell_key(code: str, seed: int, profile_budget: int,
                     config: SystemConfig) -> CellKey:
    """ME-profiling run of one application (``"profile"`` phase).

    Mirrors :meth:`MeProfiler.profile`: single-core config, default
    warmup (the profiler never overrides it).
    """
    from repro.sim.runner import DEFAULT_WARMUP

    return CellKey(
        kind="profile", workload=code, policy="", seed=seed,
        inst_budget=profile_budget, warmup=DEFAULT_WARMUP,
        config_digest=config.with_cores(1).digest(), phase="profile",
    )


def single_cell_key(code: str, seed: int, profile_budget: int,
                    config: SystemConfig) -> CellKey:
    """Single-core evaluation run (the SMT-speedup denominator).

    Mirrors :meth:`MeProfiler.single_core_ipc`: runs at the *profiler's*
    budget on the ``"eval"`` phase.
    """
    from repro.sim.runner import DEFAULT_WARMUP

    return CellKey(
        kind="single", workload=code, policy="", seed=seed,
        inst_budget=profile_budget, warmup=DEFAULT_WARMUP,
        config_digest=config.with_cores(1).digest(), phase="eval",
    )


def eval_cell_key(mix_name: str, policy: str, seed: int, inst_budget: int,
                  warmup: int, lookahead: int, config: SystemConfig,
                  profile_budget: int) -> CellKey:
    """Multi-core evaluation run (the :meth:`ExperimentContext.run` body)."""
    policy = policy.upper()
    return CellKey(
        kind="eval", workload=mix_name, policy=policy, seed=seed,
        inst_budget=inst_budget, warmup=warmup,
        config_digest=config.digest(), lookahead=lookahead,
        profile_budget=profile_budget if policy in ME_FAMILY else 0,
    )


def custom_cell_key(mix_name: str, policy: str, policy_args: tuple,
                    seed: int, inst_budget: int, warmup: int,
                    lookahead: int, config: SystemConfig,
                    profile_budget: int,
                    me_config: SystemConfig | None = None) -> CellKey:
    """Ablation run: policy constructor args and/or config overrides.

    ``me_config`` is the configuration the ME profile was collected
    under when it differs from the run configuration (the page-policy
    ablation profiles on the baseline machine but runs on the variant).
    """
    policy = policy.upper()
    needs_me = policy in ME_FAMILY
    args = tuple(sorted(tuple(kv) for kv in policy_args))
    if needs_me and me_config is not None:
        me_digest = me_config.with_cores(1).digest()
        args = args + (("__me_config__", me_digest),)
    return CellKey(
        kind="custom", workload=mix_name, policy=policy, seed=seed,
        inst_budget=inst_budget, warmup=warmup,
        config_digest=config.digest(), lookahead=lookahead,
        profile_budget=profile_budget if needs_me else 0,
        policy_args=args,
    )


def cloud_cell_key(mix_name: str, policy: str, seed: int, inst_budget: int,
                   warmup: int, lookahead: int, config: SystemConfig,
                   profile_budget: int) -> CellKey:
    """Cloud co-run (the :meth:`ExperimentContext.cloud_run` body).

    ``config`` is the base machine; the digest is taken over the derived
    datacenter-class configuration.  ``profile_budget`` matters only for
    ME-family policies, whose *batch-core* ranks come from profiling
    (service cores carry pinned ranks in their profiles).
    """
    from repro.workloads.cloud import cloud_mix_by_name, cloud_system_config

    policy = policy.upper()
    mix = cloud_mix_by_name(mix_name)
    return CellKey(
        kind="cloud", workload=mix.name, policy=policy, seed=seed,
        inst_budget=inst_budget, warmup=warmup,
        config_digest=cloud_system_config(config, mix.num_cores).digest(),
        lookahead=lookahead,
        profile_budget=profile_budget if policy in ME_FAMILY else 0,
    )


@dataclass(frozen=True)
class Cell:
    """One schedulable simulation: identity plus execution payload.

    ``me_values`` is resolved by the scheduler from the profile cells the
    cell depends on (``me_deps``, one per core in mix order) before
    dispatch; a cell executed standalone with ``me_values=None`` and a
    ME-family policy profiles in-process (bit-identical — the profile is
    itself deterministic).
    """

    key: CellKey
    config: SystemConfig
    me_deps: tuple[CellKey, ...] = ()
    me_values: tuple[float, ...] | None = None
    policy_ctor_args: tuple = field(default=())

    def with_me_values(self, values: tuple[float, ...]) -> "Cell":
        return Cell(key=self.key, config=self.config, me_deps=self.me_deps,
                    me_values=values, policy_ctor_args=self.policy_ctor_args)


class CellFault(RuntimeError):
    """Raised by the test-only fault-injection hook."""


def _maybe_inject_fault(key: CellKey, attempt: int) -> None:
    pattern = os.environ.get("REPRO_PARALLEL_FAULT")
    if not pattern or pattern not in key.key_str():
        return
    always = bool(os.environ.get("REPRO_PARALLEL_FAULT_ALWAYS"))
    if attempt > 0 and not always:
        return
    if os.environ.get("REPRO_PARALLEL_FAULT_KIND") == "exit" and attempt == 0:
        # Hard-kill the worker (no exception crosses the pipe) to
        # exercise the broken-pool fallback.  Retries always raise so an
        # in-parent retry can never take the parent process down.
        os._exit(3)
    raise CellFault(f"injected fault for {key.key_str()} (attempt {attempt})")


def policy_from_spec(name: str, args: tuple,
                     me_values: tuple[float, ...] | None):
    """Build a policy from its canonical (name, ctor-args) spec."""
    from repro.core.registry import make_policy

    kwargs = {k: v for k, v in args if not k.startswith("__")}
    if name.upper() in ME_FAMILY:
        if me_values is None:
            raise ValueError(f"policy {name} requires me_values")
        return make_policy(name, me_values=me_values, **kwargs)
    return make_policy(name, **kwargs)


def execute_cell(cell: Cell, attempt: int = 0):
    """Run one cell standalone; returns its payload.

    * ``profile`` -> :class:`MeProfile`
    * ``single``  -> :class:`CoreResult`
    * ``eval`` / ``custom`` -> :class:`RunResult`
    * ``cloud``   -> :class:`~repro.experiments.cloud.CloudResult`

    Pure function of the cell (given a resolved ``me_values``): no
    telemetry, no shared state — safe to run in any process.
    """
    from repro.metrics.memory_efficiency import MeProfiler, memory_efficiency
    from repro.metrics.memory_efficiency import MeProfile
    from repro.sim.runner import run_multicore, run_single_core
    from repro.workloads.mixes import workload_by_name
    from repro.workloads.spec2000 import app_by_code

    key = cell.key
    _maybe_inject_fault(key, attempt)

    if key.kind == "profile":
        app = app_by_code(key.workload)
        res = run_single_core(
            app, key.inst_budget, seed=key.seed, phase="profile",
            config=cell.config,
        )
        return MeProfile(
            app=app.name, code=app.code, ipc=res.ipc, bw_gbps=res.bw_gbps,
            me=memory_efficiency(res.ipc, res.bw_gbps),
            avg_read_latency=res.avg_read_latency,
        )

    if key.kind == "single":
        app = app_by_code(key.workload)
        return run_single_core(
            app, key.inst_budget, seed=key.seed, phase="eval",
            config=cell.config,
        )

    if key.kind in ("eval", "custom"):
        mix = workload_by_name(key.workload)
        me = cell.me_values
        if me is None and key.policy in ME_FAMILY:
            # Standalone fallback: profile in-process, exactly as
            # MeProfiler would (deterministic, so still bit-identical).
            profiler = MeProfiler(
                key.profile_budget, seed=key.seed, config=cell.config
            )
            me = profiler.me_values(mix)
        policy = policy_from_spec(key.policy, cell.policy_ctor_args, me)
        return run_multicore(
            mix, policy, inst_budget=key.inst_budget, seed=key.seed,
            warmup_insts=key.warmup, config=cell.config,
            lookahead=key.lookahead,
        )

    if key.kind == "cloud":
        from repro.experiments.cloud import run_cloud
        from repro.workloads.cloud import cloud_mix_by_name

        mix = cloud_mix_by_name(key.workload)
        me = cell.me_values  # batch-core ME ranks (batch-core order)
        if me is None and key.policy in ME_FAMILY:
            profiler = MeProfiler(
                key.profile_budget, seed=key.seed, config=cell.config
            )
            me = tuple(profiler.profile(app).me for app in mix.batch_apps())
        return run_cloud(
            mix, key.policy, inst_budget=key.inst_budget, seed=key.seed,
            warmup_insts=key.warmup, config=cell.config,
            lookahead=key.lookahead, me_values=me,
        )

    raise ValueError(f"unknown cell kind {key.kind!r}")
