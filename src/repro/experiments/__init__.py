"""Experiment harnesses — one module per paper table/figure.

Every harness follows the paper's methodology end to end:

1. profile each application's memory efficiency on a single core
   (``"profile"`` trace phase — the 10 M-instruction SimPoint analogue);
2. measure each application's single-core IPC on the evaluation phase
   (the SMT-speedup denominator);
3. run the Table 3 multiprogrammed mixes under each policy and report the
   same rows/series the paper plots.

The shared :class:`~repro.experiments.harness.ExperimentContext` caches
profiling runs so a sweep touches each application once per seed, and
averages every (workload, policy) cell over ``seeds`` to damp the
short-run noise of the scaled-down instruction budgets.
"""

from repro.experiments.ablations import (
    ablation_lookahead,
    ablation_online_phases,
    ablation_page_policy,
    ablation_prefetch,
    ablation_split_controllers,
    ablation_table_bits,
    ablation_write_drain,
)
from repro.experiments.arena import (
    ARENA_MIX_SETS,
    ArenaMixRow,
    ArenaRow,
    arena_anatomy,
    format_arena,
    format_arena_per_mix,
    run_arena,
    run_arena_per_mix,
)
from repro.experiments.cache import CacheStats, ResultCache
from repro.experiments.cells import Cell, CellKey
from repro.experiments.cloud import (
    CLOUD_MIX_SETS,
    CloudResult,
    CloudRow,
    ServiceStats,
    format_cloud,
    run_cloud,
    run_cloud_table,
)
from repro.experiments.extensions_study import (
    format_extension_study,
    run_extension_study,
)
from repro.experiments.figure2 import Figure2Row, run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.harness import ExperimentContext, PolicyOutcome
from repro.experiments.parallel import (
    CellFailure,
    ParallelReport,
    default_jobs,
    merge_into,
    plan_cells,
    run_cells,
)
from repro.experiments.table2 import run_table2

__all__ = [
    "ARENA_MIX_SETS",
    "ArenaMixRow",
    "ArenaRow",
    "CLOUD_MIX_SETS",
    "CacheStats",
    "Cell",
    "CellFailure",
    "CellKey",
    "CloudResult",
    "CloudRow",
    "ExperimentContext",
    "Figure2Row",
    "ParallelReport",
    "PolicyOutcome",
    "ResultCache",
    "ServiceStats",
    "ablation_lookahead",
    "ablation_online_phases",
    "ablation_page_policy",
    "ablation_prefetch",
    "ablation_split_controllers",
    "ablation_table_bits",
    "ablation_write_drain",
    "arena_anatomy",
    "default_jobs",
    "format_arena",
    "format_arena_per_mix",
    "format_cloud",
    "format_extension_study",
    "run_arena",
    "run_arena_per_mix",
    "run_cloud",
    "run_cloud_table",
    "merge_into",
    "plan_cells",
    "run_cells",
    "run_extension_study",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_table2",
]
