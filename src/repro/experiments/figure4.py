"""Figure 4: memory read latency under the five policies.

Left part: average read latency of each 4-core MEM workload under HF-RF,
ME, RR, LREQ and ME-LREQ.  Right part: *per-core* average read latency for
4MEM-1 and 4MEM-5, showing that HF-RF serves every core with nearly the
same latency, RR keeps a narrow spread, a fixed ME order starves its
lowest-priority core (the paper's 289 vs 1042-cycle example), and ME-LREQ
avoids starvation because priorities move with the pending-read count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.figure2 import POLICIES
from repro.experiments.harness import ExperimentContext, PolicyOutcome, mean
from repro.workloads.mixes import mixes_for

__all__ = ["Figure4Result", "run_figure4", "figure4_cells", "format_figure4"]

#: the two workloads of the figure's right part
PER_CORE_WORKLOADS: tuple[str, ...] = ("4MEM-1", "4MEM-5")


@dataclass(frozen=True)
class Figure4Result:
    """Average latencies (left) and per-core latencies (right)."""

    #: workload -> policy -> seed-averaged outcome
    left: dict[str, dict[str, PolicyOutcome]]
    #: workload -> policy -> per-core latency tuple
    right: dict[str, dict[str, tuple[float, ...]]]

    def avg_latency(self, policy: str) -> float:
        """All-workload average read latency of one policy."""
        return mean(
            [o[policy.upper()].avg_read_latency for o in self.left.values()]
        )

    def latency_spread(self, workload: str, policy: str) -> float:
        """Max/min per-core latency ratio (starvation indicator)."""
        lats = self.right[workload][policy.upper()]
        return max(lats) / max(min(lats), 1e-9)


def run_figure4(
    ctx: ExperimentContext,
    policies: tuple[str, ...] = POLICIES,
) -> Figure4Result:
    """Regenerate both parts of Figure 4 (4-core MEM workloads)."""
    left: dict[str, dict[str, PolicyOutcome]] = {}
    right: dict[str, dict[str, tuple[float, ...]]] = {}
    for mix in mixes_for(4, "MEM"):
        left[mix.name] = {p: ctx.outcome(mix, p) for p in policies}
    for name in PER_CORE_WORKLOADS:
        right[name] = {
            p: left[name][p].per_core_latency for p in policies
        }
    return Figure4Result(left=left, right=right)


def figure4_cells(
    policies: tuple[str, ...] = POLICIES,
) -> list[tuple[str, str]]:
    """(workload, policy) pairs behind :func:`run_figure4` (the right
    part reuses the left part's runs, so this is the full set)."""
    return [(mix.name, p) for mix in mixes_for(4, "MEM") for p in policies]


def format_figure4(res: Figure4Result) -> str:
    policies = next(iter(res.left.values())).keys()
    lines = ["== Figure 4 (left): avg read latency, 4-core MEM (cycles) =="]
    lines.append("workload   " + "".join(f"{p:>10}" for p in policies))
    for wl, by_policy in res.left.items():
        lines.append(
            f"{wl:<11}"
            + "".join(f"{by_policy[p].avg_read_latency:>10.0f}" for p in policies)
        )
    lines.append("all-workload average:")
    lines.append(
        " " * 11 + "".join(f"{res.avg_latency(p):>10.0f}" for p in policies)
    )
    lines.append("\n== Figure 4 (right): per-core read latency (cycles) ==")
    for wl, by_policy in res.right.items():
        lines.append(f"-- {wl} --")
        for p, lats in by_policy.items():
            cores = " ".join(f"{x:7.0f}" for x in lats)
            lines.append(f"  {p:<8} {cores}   spread={res.latency_spread(wl, p):.2f}x")
    return "\n".join(lines)
