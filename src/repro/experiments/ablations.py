"""Ablations of the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation (step-5 extension work):

* ``ablation_table_bits`` — ME-LREQ with an ideal divider vs the paper's
  10-bit table vs aggressively narrow tables, and linear vs logarithmic
  encoding (the paper only says 'scaled approximately');
* ``ablation_page_policy`` — the close-page baseline vs an open-page
  memory system;
* ``ablation_write_drain`` — the 1/2 - 1/4 drain hysteresis vs tighter and
  looser watermarks;
* ``ablation_lookahead`` — simulator-fidelity knob: the bounded core
  lookahead should not change conclusions (a pure model-robustness check).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import SystemConfig
from repro.experiments.harness import ExperimentContext
from repro.metrics.speedup import smt_speedup
from repro.sim.runner import run_multicore
from repro.workloads.mixes import workload_by_name

__all__ = [
    "ablation_table_bits",
    "ablation_page_policy",
    "ablation_write_drain",
    "ablation_lookahead",
    "ablation_split_controllers",
    "ablation_online_phases",
    "ablation_prefetch",
    "ablation_cell_specs",
    "AblationSpec",
]

#: default workload of every single-workload ablation
ABLATION_WORKLOAD = "4MEM-1"

#: ME-LREQ priority-table geometries (label, table_bits, encoding)
TABLE_BITS_VARIANTS: tuple[tuple[str, int | None, str], ...] = (
    ("ideal-divider", None, "log"),
    ("10-bit log", 10, "log"),
    ("10-bit linear", 10, "linear"),
    ("6-bit log", 6, "log"),
    ("4-bit log", 4, "log"),
)

#: page-policy modes (paper baseline first)
PAGE_POLICIES: tuple[str, ...] = ("closed", "open")

#: write-drain hysteresis (high, low) watermarks
WRITE_DRAIN_WATERMARKS: tuple[tuple[int, int], ...] = (
    (32, 16), (48, 8), (16, 8), (56, 48),
)

#: core-lookahead robustness sweep
LOOKAHEADS: tuple[int, ...] = (64, 256, 1024)


def _page_policy_config(ctx: ExperimentContext, mode: str) -> SystemConfig:
    return replace(
        ctx.config, controller=replace(ctx.config.controller, page_policy=mode)
    )


def _write_drain_config(ctx: ExperimentContext, high: int, low: int) -> SystemConfig:
    return replace(
        ctx.config,
        controller=replace(
            ctx.config.controller, write_drain_high=high, write_drain_low=low
        ),
    )


def _custom_speedup(ctx: ExperimentContext, workload: str, policy: str,
                    seed: int, *, policy_args: tuple = (),
                    config=None, lookahead=None) -> float:
    mix = workload_by_name(workload)
    r = ctx.run_custom(
        mix, policy, seed,
        policy_args=policy_args, config=config, lookahead=lookahead,
    )
    return smt_speedup(r.ipcs(), ctx.single_ipcs(mix, seed))


def ablation_table_bits(
    ctx: ExperimentContext,
    workload: str = ABLATION_WORKLOAD,
    variants: tuple[tuple[str, int | None, str], ...] = TABLE_BITS_VARIANTS,
) -> dict[str, float]:
    """SMT speedup of ME-LREQ under different priority-table geometries."""
    out: dict[str, float] = {}
    for label, bits, encoding in variants:
        vals = [
            _custom_speedup(
                ctx, workload, "ME-LREQ", seed,
                policy_args=(("table_bits", bits),
                             ("table_encoding", encoding)),
            )
            for seed in ctx.seeds
        ]
        out[label] = sum(vals) / len(vals)
    return out


def ablation_page_policy(
    ctx: ExperimentContext, workload: str = ABLATION_WORKLOAD,
    policy: str = "HF-RF",
) -> dict[str, float]:
    """Close-page (paper baseline) vs open-page memory system."""
    out: dict[str, float] = {}
    for mode in PAGE_POLICIES:
        cfg = _page_policy_config(ctx, mode)
        vals = [
            _custom_speedup(ctx, workload, policy, seed, config=cfg)
            for seed in ctx.seeds
        ]
        out[mode] = sum(vals) / len(vals)
    return out


def ablation_write_drain(
    ctx: ExperimentContext,
    workload: str = ABLATION_WORKLOAD,
    policy: str = "HF-RF",
    watermarks: tuple[tuple[int, int], ...] = WRITE_DRAIN_WATERMARKS,
) -> dict[str, float]:
    """SMT speedup under different write-drain hysteresis watermarks."""
    out: dict[str, float] = {}
    for high, low in watermarks:
        cfg = _write_drain_config(ctx, high, low)
        vals = [
            _custom_speedup(ctx, workload, policy, seed, config=cfg)
            for seed in ctx.seeds
        ]
        out[f"high={high},low={low}"] = sum(vals) / len(vals)
    return out


def ablation_split_controllers(
    ctx: ExperimentContext,
    workload: str = "4MEM-1",
    policy: str = "LREQ",
) -> dict[str, float]:
    """Shared controller (the paper's Fig. 1) vs per-channel controllers.

    Per-channel controllers give LREQ-family policies *local* pending
    counts — a semantic change the paper's shared-buffer design avoids.
    """
    from repro.core.registry import make_policy
    from repro.metrics.speedup import smt_speedup as _speedup
    from repro.sim.system import MultiCoreSystem
    from repro.workloads.synthetic import make_trace

    mix = workload_by_name(workload)
    out: dict[str, float] = {}
    for kind in ("shared", "split"):
        vals = []
        for seed in ctx.seeds:
            traces = [
                make_trace(a, seed, "eval", i) for i, a in enumerate(mix.apps())
            ]
            sys_ = MultiCoreSystem(
                ctx.config.with_cores(mix.num_cores),
                make_policy(policy),
                traces,
                ctx.inst_budget,
                warmup_insts=ctx.warmup_insts,
                seed=seed,
                lookahead=ctx.lookahead,
                controller_kind=kind,
                policy_factory=(lambda p=policy: make_policy(p)) if kind == "split" else None,
            )
            sys_.run()
            ipcs = [c.ipc() for c in sys_.cores]
            vals.append(_speedup(ipcs, ctx.single_ipcs(mix, seed)))
        out[kind] = sum(vals) / len(vals)
    return out


def ablation_prefetch(
    ctx: ExperimentContext,
    workload: str = "4MEM-1",
    policy: str = "HF-RF",
    degrees: tuple[int, ...] = (0, 2, 4),
) -> dict[str, float]:
    """Stream prefetching under multiprogrammed memory scheduling.

    Degree 0 is the paper's configuration (no prefetcher).  Under
    contention, speculative fills compete with demand reads even though
    the controller serves them demand-first — this ablation quantifies
    whether the stream apps' latency hiding wins or the extra bandwidth
    pressure loses.
    """
    from repro.cache.prefetch import PrefetchConfig

    out: dict[str, float] = {}
    for degree in degrees:
        if degree == 0:
            cfg = ctx.config
            label = "off"
        else:
            cfg = replace(
                ctx.config, prefetch=PrefetchConfig(enabled=True, degree=degree)
            )
            label = f"degree={degree}"
        vals = []
        for seed in ctx.seeds:
            mix = workload_by_name(workload)
            r = run_multicore(
                mix, policy, inst_budget=ctx.inst_budget, seed=seed,
                warmup_insts=ctx.warmup_insts, config=cfg, lookahead=ctx.lookahead,
            )
            vals.append(smt_speedup(r.ipcs(), ctx.single_ipcs(mix, seed)))
        out[label] = sum(vals) / len(vals)
    return out


def ablation_online_phases(
    ctx: ExperimentContext,
    workload: str = "4MEM-1",
    phase_period: int = 3_000,
    window: int = 20_000,
) -> dict[str, float]:
    """Offline vs online ME-LREQ on *phase-changing* applications.

    The paper's offline profile is a long-run average; when applications
    alternate between memory-heavy and compute phases
    (``AppProfile.phase_period``), the online estimator (Section 3.1's
    future-work sketch) can track the change while the offline table
    cannot.  Returns seed-averaged SMT speedups for LREQ, offline
    ME-LREQ, and online ME-LREQ on the phased variant of ``workload``.
    """
    import dataclasses

    from repro.core.me_lreq import MeLreqPolicy, OnlineMeLreqPolicy
    from repro.core.registry import make_policy
    from repro.metrics.speedup import smt_speedup as _speedup
    from repro.sim.system import MultiCoreSystem
    from repro.workloads.synthetic import make_trace

    base_mix = workload_by_name(workload)
    phased_apps = [
        dataclasses.replace(a, phase_period=phase_period)
        for a in base_mix.apps()
    ]

    def run_with(policy_builder, seed):
        traces = [
            make_trace(a, seed, "eval", i) for i, a in enumerate(phased_apps)
        ]
        sys_ = MultiCoreSystem(
            ctx.config.with_cores(base_mix.num_cores),
            policy_builder(seed),
            traces,
            ctx.inst_budget,
            warmup_insts=ctx.warmup_insts,
            seed=seed,
            lookahead=ctx.lookahead,
        )
        sys_.run()
        ipcs = [c.ipc() for c in sys_.cores]
        # note: the speedup baseline uses the stationary single-core IPCs;
        # all three variants share it, so comparisons are unaffected
        return _speedup(ipcs, ctx.single_ipcs(base_mix, seed))

    out: dict[str, float] = {}
    variants = {
        "LREQ": lambda seed: make_policy("LREQ"),
        "ME-LREQ offline": lambda seed: MeLreqPolicy(
            ctx.me_values(base_mix, seed)
        ),
        "ME-LREQ online": lambda seed: OnlineMeLreqPolicy(window=window),
    }
    for label, builder in variants.items():
        vals = [run_with(builder, seed) for seed in ctx.seeds]
        out[label] = sum(vals) / len(vals)
    return out


def ablation_lookahead(
    ctx: ExperimentContext,
    workload: str = ABLATION_WORKLOAD,
    policy: str = "HF-RF",
    lookaheads: tuple[int, ...] = LOOKAHEADS,
) -> dict[int, float]:
    """Model-robustness: results should be stable in the core lookahead."""
    out: dict[int, float] = {}
    for la in lookaheads:
        vals = [
            _custom_speedup(ctx, workload, policy, seed, lookahead=la)
            for seed in ctx.seeds
        ]
        out[la] = sum(vals) / len(vals)
    return out


# -- cell enumeration (parallel runner) ------------------------------------------


@dataclass(frozen=True)
class AblationSpec:
    """One ablation simulation, in the shape ``plan_cells`` consumes."""

    workload: str
    policy: str
    policy_args: tuple
    seed: int
    config: SystemConfig | None = None  # None = the context's baseline
    lookahead: int | None = None  # None = the context's default


def ablation_cell_specs(
    ctx: ExperimentContext, workload: str = ABLATION_WORKLOAD
) -> list[AblationSpec]:
    """Every run behind the four standard-report ablations
    (:func:`ablation_table_bits`, :func:`ablation_page_policy`,
    :func:`ablation_write_drain`, :func:`ablation_lookahead` at their
    default variants — keep in sync with those defaults)."""
    specs: list[AblationSpec] = []
    for seed in ctx.seeds:
        for _label, bits, encoding in TABLE_BITS_VARIANTS:
            specs.append(AblationSpec(
                workload, "ME-LREQ",
                (("table_bits", bits), ("table_encoding", encoding)), seed,
            ))
        for mode in PAGE_POLICIES:
            specs.append(AblationSpec(
                workload, "HF-RF", (), seed,
                config=_page_policy_config(ctx, mode),
            ))
        for high, low in WRITE_DRAIN_WATERMARKS:
            specs.append(AblationSpec(
                workload, "HF-RF", (), seed,
                config=_write_drain_config(ctx, high, low),
            ))
        for la in LOOKAHEADS:
            specs.append(AblationSpec(workload, "HF-RF", (), seed,
                                      lookahead=la))
    return specs
