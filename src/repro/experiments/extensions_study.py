"""Extension study: the paper's policies vs contemporaneous schedulers.

Beyond the paper's own evaluation (step-5 work): put ME-LREQ next to the
fairness-oriented schedulers of its related-work section — fair queueing
(FQ), stall-time fairness (STFM), PAR-BS-style batching (BATCH) — plus the
online-ME variant the paper proposes as future work, all on the same
workloads and metrics, so the design space the paper argues within can be
inspected directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.me_lreq import OnlineMeLreqPolicy
from repro.core.registry import make_policy
from repro.experiments.harness import ExperimentContext, mean
from repro.metrics.speedup import smt_speedup, unfairness
from repro.sim.runner import run_multicore
from repro.workloads.mixes import mixes_for

__all__ = ["ExtensionOutcome", "run_extension_study", "format_extension_study"]

#: baseline + proposed + related-work extensions
EXT_POLICIES: tuple[str, ...] = (
    "HF-RF",
    "LREQ",
    "ME-LREQ",
    "ME-LREQ-ONLINE",
    "FQ",
    "STFM",
    "BATCH",
)


@dataclass(frozen=True)
class ExtensionOutcome:
    policy: str
    avg_speedup: float
    avg_gain_vs_baseline: float
    avg_unfairness: float


def _build_policy(name: str, ctx: ExperimentContext, mix, seed: int):
    if name == "ME-LREQ-ONLINE":
        return OnlineMeLreqPolicy(window=20_000)
    if name in ("ME", "ME-LREQ"):
        return make_policy(name, me_values=ctx.me_values(mix, seed))
    return make_policy(name)


def run_extension_study(
    ctx: ExperimentContext,
    num_cores: int = 4,
    group: str = "MEM",
    policies: tuple[str, ...] = EXT_POLICIES,
) -> list[ExtensionOutcome]:
    """Compare the extended policy set over one Table 3 group."""
    mixes = mixes_for(num_cores, group)
    speedups: dict[str, list[float]] = {p: [] for p in policies}
    unfairs: dict[str, list[float]] = {p: [] for p in policies}
    gains: dict[str, list[float]] = {p: [] for p in policies}
    for mix in mixes:
        for seed in ctx.seeds:
            single = ctx.single_ipcs(mix, seed)
            base = smt_speedup(ctx.run(mix, "HF-RF", seed).ipcs(), single)
            for p in policies:
                if p == "HF-RF":
                    r = ctx.run(mix, p, seed)
                else:
                    r = run_multicore(
                        mix,
                        _build_policy(p, ctx, mix, seed),
                        inst_budget=ctx.inst_budget,
                        seed=seed,
                        warmup_insts=ctx.warmup_insts,
                        config=ctx.config,
                        lookahead=ctx.lookahead,
                    )
                sp = smt_speedup(r.ipcs(), single)
                speedups[p].append(sp)
                unfairs[p].append(unfairness(r.ipcs(), single))
                gains[p].append(sp / base - 1)
    return [
        ExtensionOutcome(
            policy=p,
            avg_speedup=mean(speedups[p]),
            avg_gain_vs_baseline=mean(gains[p]),
            avg_unfairness=mean(unfairs[p]),
        )
        for p in policies
    ]


def format_extension_study(outcomes: list[ExtensionOutcome]) -> str:
    lines = ["== extension study: paper vs contemporaneous schedulers =="]
    lines.append(
        f"{'policy':<16} {'speedup':>8} {'vs HF-RF':>9} {'unfairness':>11}"
    )
    for o in outcomes:
        lines.append(
            f"{o.policy:<16} {o.avg_speedup:>8.3f} "
            f"{o.avg_gain_vs_baseline:>+8.1%} {o.avg_unfairness:>11.2f}"
        )
    return "\n".join(lines)
