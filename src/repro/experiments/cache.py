"""On-disk result cache for simulation cells (``.repro-cache/``).

Each completed :class:`~repro.experiments.cells.Cell` is stored as one
JSON file named by the cell key's digest.  Three safety properties:

* **Bit-exactness** — floats are serialised via ``float.hex()`` and
  restored with ``float.fromhex``, so a cache hit returns *exactly* the
  object the simulation produced (the golden-stats contract extends to
  cached results).
* **Code invalidation** — every entry records a fingerprint of the
  git-tracked simulator sources; entries written by a different revision
  of the code are silently treated as misses, never trusted.
* **Corruption detection** — the payload carries its own SHA-256; a
  truncated or bit-flipped entry fails verification, is counted in
  ``stats.corrupt`` and recomputed, never returned.

Writes are atomic (``os.replace`` of a temp file) so an interrupted run
leaves either a complete entry or none — which is what makes
``--resume`` safe.  On POSIX hosts every write additionally holds an
advisory ``flock`` on ``<dir>/.lock`` (:class:`DirLock`), so two
*concurrent invocations* sharing one cache directory serialise their
writes instead of racing on the same entry.

This module is the single implementation of the content-addressed
result format: the distributed sweep service
(:mod:`repro.service.store`) builds directly on the same keys,
fingerprint, payload codec and on-disk layout, so a directory written
by a local ``--jobs`` run is a warm store for a coordinator and vice
versa.

Cache *modes* separate the two read policies callers want:

* ``"rw"``    — read existing entries and write new ones (``--resume`` /
  incremental regeneration);
* ``"write"`` — record results but never read pre-existing entries (a
  fresh full regeneration that still leaves a resumable trail);
* ``"off"``   — inert (handy for threading one optional object through).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

try:  # POSIX only; Windows falls back to atomic-rename-only semantics
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.experiments.cells import CellKey
from repro.metrics.memory_efficiency import MeProfile
from repro.sim.runner import CoreResult, RunResult

__all__ = ["CacheStats", "DirLock", "ResultCache", "code_fingerprint",
           "encode_payload", "decode_payload", "payload_sha"]

DEFAULT_CACHE_DIR = ".repro-cache"

_FP_CACHE: dict[str, str] = {}


def code_fingerprint() -> str:
    """Fingerprint of the simulator sources, for cache invalidation.

    Uses ``git ls-files -s -- src`` (mode + blob hash per tracked file)
    when the package lives in a git checkout; falls back to hashing the
    installed package sources.  ``REPRO_CODE_FINGERPRINT`` overrides both
    (tests use it to simulate a code change).
    """
    override = os.environ.get("REPRO_CODE_FINGERPRINT")
    if override:
        return override
    hit = _FP_CACHE.get("fp")
    if hit is not None:
        return hit
    import repro

    pkg_dir = Path(repro.__file__).resolve().parent
    repo_root = pkg_dir.parent.parent  # src/repro -> repo root
    blob = b""
    try:
        out = subprocess.run(
            ["git", "-C", str(repo_root), "ls-files", "-s", "--", "src"],
            capture_output=True, timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            blob = out.stdout
    except (OSError, subprocess.SubprocessError):
        blob = b""
    if not blob:
        parts = []
        for p in sorted(pkg_dir.rglob("*.py")):
            parts.append(str(p.relative_to(pkg_dir)).encode())
            parts.append(hashlib.sha256(p.read_bytes()).digest())
        blob = b"\0".join(parts)
    fp = hashlib.sha256(blob).hexdigest()[:16]
    _FP_CACHE["fp"] = fp
    return fp


# -- payload codec (exact) -------------------------------------------------------


def _f(x: float) -> str:
    return float(x).hex()


def _uf(s: str) -> float:
    return float.fromhex(s)


def _enc_core(c: CoreResult) -> dict:
    return {
        "app": c.app, "code": c.code, "core_id": c.core_id,
        "ipc": _f(c.ipc), "finish_cycle": c.finish_cycle,
        "committed": c.committed, "reads": c.reads,
        "avg_read_latency": _f(c.avg_read_latency),
        "bytes_total": c.bytes_total, "bw_gbps": _f(c.bw_gbps),
    }


def _dec_core(d: dict) -> CoreResult:
    return CoreResult(
        app=d["app"], code=d["code"], core_id=d["core_id"],
        ipc=_uf(d["ipc"]), finish_cycle=d["finish_cycle"],
        committed=d["committed"], reads=d["reads"],
        avg_read_latency=_uf(d["avg_read_latency"]),
        bytes_total=d["bytes_total"], bw_gbps=_uf(d["bw_gbps"]),
    )


def _enc_service(s) -> dict:
    return {
        "code": s.code, "name": s.name, "core_id": s.core_id, "slo": s.slo,
        "latencies": list(s.latencies), "viol_count": s.viol_count,
        "viol_latency_sum": s.viol_latency_sum,
        "viol_components": list(s.viol_components),
    }


def _dec_service(d: dict):
    from repro.experiments.cloud import ServiceStats

    return ServiceStats(
        code=d["code"], name=d["name"], core_id=d["core_id"], slo=d["slo"],
        latencies=tuple(d["latencies"]), viol_count=d["viol_count"],
        viol_latency_sum=d["viol_latency_sum"],
        viol_components=tuple(d["viol_components"]),
    )


def encode_payload(obj) -> dict:
    """Serialise a cell result to a JSON-safe dict (floats exact)."""
    from repro.experiments.cloud import CloudResult

    if isinstance(obj, CloudResult):
        return {
            "type": "CloudResult",
            "mix_name": obj.mix_name, "policy_name": obj.policy_name,
            "services": [_enc_service(s) for s in obj.services],
            "batch": [_enc_core(c) for c in obj.batch],
            "end_cycle": obj.end_cycle,
            "row_hit_rate": _f(obj.row_hit_rate),
        }
    if isinstance(obj, MeProfile):
        return {"type": "MeProfile", "app": obj.app, "code": obj.code,
                "ipc": _f(obj.ipc), "bw_gbps": _f(obj.bw_gbps),
                "me": _f(obj.me),
                "avg_read_latency": _f(obj.avg_read_latency)}
    if isinstance(obj, CoreResult):
        return {"type": "CoreResult", **_enc_core(obj)}
    if isinstance(obj, RunResult):
        return {
            "type": "RunResult",
            "mix_name": obj.mix_name, "policy_name": obj.policy_name,
            "per_core": [_enc_core(c) for c in obj.per_core],
            "end_cycle": obj.end_cycle,
            "row_hit_rate": _f(obj.row_hit_rate),
            "drain_entries": obj.drain_entries,
        }
    raise TypeError(f"cannot cache payload of type {type(obj).__name__}")


def decode_payload(doc: dict):
    kind = doc.get("type")
    if kind == "MeProfile":
        return MeProfile(app=doc["app"], code=doc["code"],
                         ipc=_uf(doc["ipc"]), bw_gbps=_uf(doc["bw_gbps"]),
                         me=_uf(doc["me"]),
                         avg_read_latency=_uf(doc["avg_read_latency"]))
    if kind == "CoreResult":
        return _dec_core(doc)
    if kind == "RunResult":
        return RunResult(
            mix_name=doc["mix_name"], policy_name=doc["policy_name"],
            per_core=tuple(_dec_core(c) for c in doc["per_core"]),
            end_cycle=doc["end_cycle"],
            row_hit_rate=_uf(doc["row_hit_rate"]),
            drain_entries=doc["drain_entries"],
        )
    if kind == "CloudResult":
        from repro.experiments.cloud import CloudResult

        return CloudResult(
            mix_name=doc["mix_name"], policy_name=doc["policy_name"],
            services=tuple(_dec_service(s) for s in doc["services"]),
            batch=tuple(_dec_core(c) for c in doc["batch"]),
            end_cycle=doc["end_cycle"],
            row_hit_rate=_uf(doc["row_hit_rate"]),
        )
    raise ValueError(f"unknown cached payload type {kind!r}")


def payload_sha(payload: dict) -> str:
    """SHA-256 of the canonical JSON rendering of an encoded payload.

    The wire protocol and the on-disk entries both carry this digest, so
    a payload can be verified end to end without decoding it.
    """
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# -- locking ---------------------------------------------------------------------


class DirLock:
    """Advisory inter-process lock serialising writers of one directory.

    Two concurrent ``run_all_experiments.py --jobs`` invocations (or a
    coordinator plus a local run) sharing one cache directory take this
    lock around each entry write, so the temp-file + ``os.replace``
    sequence of different processes never interleaves on one entry.
    Readers never take the lock — ``os.replace`` keeps reads atomic.

    Implemented with ``flock`` on ``<dir>/.lock``; on platforms without
    ``fcntl`` the lock degrades to a no-op (rename atomicity still
    holds).
    """

    LOCK_NAME = ".lock"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @contextmanager
    def held(self):
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.root / self.LOCK_NAME, os.O_CREAT | os.O_RDWR,
                     0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)


# -- the cache -------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    stale: int = 0  # entries from a different code fingerprint

    def line(self) -> str:
        return (f"cache: {self.hits} hits, {self.misses} misses, "
                f"{self.writes} writes, {self.corrupt} corrupt, "
                f"{self.stale} stale")

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "corrupt": self.corrupt,
                "stale": self.stale}


class ResultCache:
    """Content-addressed store of cell results under one directory."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR,
                 mode: str = "rw", fingerprint: str | None = None) -> None:
        if mode not in ("rw", "write", "off"):
            raise ValueError(f"unknown cache mode {mode!r}")
        self.root = Path(root)
        self.mode = mode
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()
        self._lock = DirLock(self.root)

    def _path(self, key: CellKey) -> Path:
        return self.root / f"{key.digest()}.json"

    def get(self, key: CellKey):
        """Return the cached payload for ``key``, or None.

        Only ``"rw"`` mode reads; every miss (absent, stale revision,
        corrupted) is counted and returns None.
        """
        if self.mode != "rw":
            return None
        path = self._path(key)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        try:
            if doc.get("fingerprint") != self.fingerprint:
                self.stats.stale += 1
                self.stats.misses += 1
                return None
            if doc.get("key") != key.canonical():
                self.stats.corrupt += 1
                self.stats.misses += 1
                return None
            payload = doc["payload"]
            if payload_sha(payload) != doc.get("sha"):
                self.stats.corrupt += 1
                self.stats.misses += 1
                return None
            result = decode_payload(payload)
        except (KeyError, TypeError, ValueError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: CellKey, result) -> None:
        """Store one result atomically (no-op in ``"off"`` mode)."""
        self.put_payload(key, encode_payload(result))

    def put_payload(self, key: CellKey, payload: dict) -> None:
        """Store an already-encoded payload atomically, under the lock.

        This is the write path shared with the sweep service: the
        coordinator stores verified wire payloads without a decode /
        re-encode round trip.  The directory lock serialises writers
        from *different invocations* sharing the directory; the temp
        file is pid-suffixed so same-host writers never collide even on
        platforms where the lock is a no-op.
        """
        if self.mode == "off":
            return
        doc = {
            "v": 1,
            "fingerprint": self.fingerprint,
            "key": key.canonical(),
            "key_str": key.key_str(),
            "sha": payload_sha(payload),
            "payload": payload,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with self._lock.held():
            tmp.write_text(json.dumps(doc, sort_keys=True) + "\n")
            os.replace(tmp, path)
        self.stats.writes += 1
