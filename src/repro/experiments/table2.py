"""Table 2: per-application class and memory-efficiency values.

The paper profiles each SPEC CPU2000 application on a single core
(10 M-instruction SimPoint) and reports its MEM/ILP class and memory
efficiency (Eq. 1).  This harness regenerates the table from our synthetic
application models; the *absolute* values differ from the paper's (the
synthetic substrate has its own units and the published values depend on
the authors' exact slices) — the class split and the rank ordering are the
reproduction targets, and the ``rank_correlation`` helper quantifies the
latter against the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import ExperimentContext
from repro.workloads.spec2000 import APPS, AppProfile

__all__ = ["Table2Row", "run_table2", "rank_correlation", "format_table2"]


@dataclass(frozen=True)
class Table2Row:
    app: str
    code: str
    klass: str
    paper_me: float
    measured_me: float
    measured_ipc: float
    measured_bw_gbps: float


def run_table2(ctx: ExperimentContext, seed: int | None = None) -> list[Table2Row]:
    """Profile all 26 applications and build the table."""
    prof = ctx.profiler(seed if seed is not None else ctx.seeds[0])
    rows = []
    for app in APPS:
        p = prof.profile(app)
        rows.append(
            Table2Row(
                app=app.name,
                code=app.code,
                klass=app.klass,
                paper_me=app.paper_me,
                measured_me=p.me,
                measured_ipc=p.ipc,
                measured_bw_gbps=p.bw_gbps,
            )
        )
    return rows


def rank_correlation(rows: list[Table2Row]) -> float:
    """Spearman rank correlation between paper and measured ME values.

    Computed directly (no scipy dependency in the library path); ties get
    average ranks.
    """
    def ranks(values: list[float]) -> list[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        r = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
                j += 1
            avg = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                r[order[k]] = avg
            i = j + 1
        return r

    paper = ranks([row.paper_me for row in rows])
    measured = ranks([row.measured_me for row in rows])
    n = len(rows)
    mp = sum(paper) / n
    mm = sum(measured) / n
    cov = sum((p - mp) * (m - mm) for p, m in zip(paper, measured))
    vp = sum((p - mp) ** 2 for p in paper)
    vm = sum((m - mm) ** 2 for m in measured)
    if vp == 0 or vm == 0:
        return 0.0
    return cov / (vp * vm) ** 0.5


def format_table2(rows: list[Table2Row]) -> str:
    lines = ["== Table 2: application class and memory efficiency =="]
    lines.append(
        f"{'app':<9} {'code':<4} {'class':<5} {'paper ME':>9} "
        f"{'ME':>9} {'IPC':>6} {'BW GB/s':>8}"
    )
    for r in sorted(rows, key=lambda x: x.code):
        lines.append(
            f"{r.app:<9} {r.code:<4} {r.klass:<5} {r.paper_me:>9.0f} "
            f"{r.measured_me:>9.3f} {r.measured_ipc:>6.2f} "
            f"{r.measured_bw_gbps:>8.3f}"
        )
    lines.append(f"Spearman rank correlation vs paper: {rank_correlation(rows):.3f}")
    return "\n".join(lines)
