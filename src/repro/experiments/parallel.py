"""Parallel sharded experiment runner with a bit-identical merge.

A full regeneration of the paper's figures is embarrassingly parallel:
every simulation cell is a pure function of ``(config, workload, policy,
seed)``.  This module

1. **plans** the exact cell set behind the figure/table harnesses
   (:func:`plan_cells` — eval cells plus the profile / single-core cells
   their outcomes need),
2. **shards** the cells across ``jobs`` worker processes
   (:func:`run_cells` — with an on-disk :class:`ResultCache`
   read-through, one retry per crashed cell, and a broken-pool fallback
   that finishes the round serially instead of hanging), and
3. **merges** the results into an :class:`ExperimentContext`
   (:func:`merge_into` — insertion in canonical cell-key order, never
   completion order).

After the merge, the serial harness code (``run_figure2`` …) runs
unchanged and finds every simulation memoised, so the emitted tables are
*bit-identical* to a serial run by construction: the same code computes
every derived number from the same per-cell results.

Scheduling runs in two rounds — single-core cells (profiles and
speedup baselines) first, then multi-core cells — because ME-family
policies consume the profiled ME vector; the scheduler resolves those
values from round one and ships them with the cell, so workers never
re-profile.

Progress: pass a :class:`~repro.telemetry.bus.TelemetryBus` and every
cell completion emits an ``experiment.cell`` instant event (key, status
``hit``/``run``/``retried``, seconds); a final ``experiment.cache``
event carries the hit/miss statistics.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.experiments.cache import CacheStats, ResultCache
from repro.experiments.cells import (
    ME_FAMILY,
    Cell,
    CellKey,
    cloud_cell_key,
    custom_cell_key,
    eval_cell_key,
    execute_cell,
    profile_cell_key,
    single_cell_key,
)
from repro.telemetry.bus import TelemetryBus
from repro.workloads.mixes import workload_by_name
from repro.workloads.spec2000 import APPS

__all__ = ["CellFailure", "ParallelReport", "plan_cells", "run_cells",
           "merge_into", "default_jobs"]


def default_jobs() -> int:
    """``--jobs 0`` resolution: one worker per available CPU."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CellFailure:
    """One cell that failed after its retry (or lost a dependency)."""

    key_str: str
    error: str
    attempts: int


@dataclass
class ParallelReport:
    """Outcome of one :func:`run_cells` invocation."""

    results: dict[CellKey, object] = field(default_factory=dict)
    failures: list[CellFailure] = field(default_factory=list)
    retried: list[str] = field(default_factory=list)
    cache_stats: CacheStats = field(default_factory=CacheStats)
    executed: int = 0
    cache_hits: int = 0
    seconds: float = 0.0
    pool_broken: bool = False
    #: fleet-run correlation id (minted per run_cells invocation, or the
    #: coordinator's id when the report came over the wire)
    run_id: str | None = None

    def summary(self) -> str:
        parts = [
            f"{len(self.results)} cells in {self.seconds:.1f}s",
            f"{self.executed} simulated",
            f"{self.cache_hits} cache hits",
        ]
        if self.retried:
            parts.append(f"{len(self.retried)} retried")
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        if self.pool_broken:
            parts.append("pool broke (finished serially)")
        return ", ".join(parts)

    def failure_report(self) -> str:
        lines = ["parallel runner failures:"]
        for f in self.failures:
            lines.append(f"  {f.key_str}  ({f.attempts} attempts): {f.error}")
        return "\n".join(lines)


# -- planning --------------------------------------------------------------------


def _profile_cell(ctx, code: str, seed: int) -> Cell:
    return Cell(key=profile_cell_key(code, seed, ctx.profile_budget,
                                     ctx.config),
                config=ctx.config)


def _single_cell(ctx, code: str, seed: int) -> Cell:
    return Cell(key=single_cell_key(code, seed, ctx.profile_budget,
                                    ctx.config),
                config=ctx.config)


def _eval_cell(ctx, mix_name: str, policy: str, seed: int) -> Cell:
    mix = workload_by_name(mix_name)
    key = eval_cell_key(mix.name, policy, seed, ctx.inst_budget,
                        ctx.warmup_insts, ctx.lookahead, ctx.config,
                        ctx.profile_budget)
    deps = ()
    if key.policy in ME_FAMILY:
        deps = tuple(
            profile_cell_key(code, seed, ctx.profile_budget, ctx.config)
            for code in mix.codes
        )
    return Cell(key=key, config=ctx.config, me_deps=deps)


def _cloud_cell(ctx, mix_name: str, policy: str, seed: int) -> Cell:
    from repro.workloads.cloud import cloud_mix_by_name

    mix = cloud_mix_by_name(mix_name)
    key = cloud_cell_key(mix.name, policy, seed, ctx.inst_budget,
                         ctx.warmup_insts, ctx.lookahead, ctx.config,
                         ctx.profile_budget)
    deps = ()
    if key.policy in ME_FAMILY:
        # Batch cores only: service cores carry pinned ME ranks.
        deps = tuple(
            profile_cell_key(app.code, seed, ctx.profile_budget, ctx.config)
            for app in mix.batch_apps()
        )
    return Cell(key=key, config=ctx.config, me_deps=deps)


def _custom_cell(ctx, spec) -> Cell:
    """Build the cell for one ablation spec (see ``ablation_cell_specs``)."""
    mix = workload_by_name(spec.workload)
    config = spec.config if spec.config is not None else ctx.config
    lookahead = spec.lookahead if spec.lookahead is not None else ctx.lookahead
    key = custom_cell_key(
        mix.name, spec.policy, spec.policy_args, spec.seed,
        ctx.inst_budget, ctx.warmup_insts, lookahead, config,
        ctx.profile_budget,
        me_config=ctx.config if config is not ctx.config else None,
    )
    deps = ()
    if key.policy in ME_FAMILY:
        # ME profiles always come from the context's baseline machine.
        deps = tuple(
            profile_cell_key(code, spec.seed, ctx.profile_budget, ctx.config)
            for code in mix.codes
        )
    return Cell(key=key, config=config, me_deps=deps,
                policy_ctor_args=tuple(spec.policy_args))


def plan_cells(
    ctx,
    *,
    table2: bool = False,
    figure2: tuple[tuple[int, ...], tuple[str, ...]] | None = None,
    figure3: tuple[str, ...] | None = None,
    figure4: bool = False,
    figure5: bool = False,
    ablations: bool = False,
    arena: tuple[tuple[str, ...], tuple[str, ...] | None] | None = None,
    cloud: tuple[tuple[str, ...], tuple[str, ...] | None] | None = None,
) -> list[Cell]:
    """Enumerate every cell the requested sections will consume.

    Mirrors the figure harnesses exactly (each module exports its own
    ``*_cells`` enumerator); deduplicates across sections the same way
    the context memo would.  ``arena`` is ``(mix_names, policies)`` with
    ``policies=None`` meaning the full registry — matching
    :func:`repro.experiments.arena.run_arena`; ``cloud`` has the same
    shape over cloud mix-set names — matching
    :func:`repro.experiments.cloud.run_cloud_table`.
    """
    from repro.experiments.ablations import ablation_cell_specs
    from repro.experiments.arena import arena_cells
    from repro.experiments.figure2 import figure2_cells
    from repro.experiments.figure3 import figure3_cells
    from repro.experiments.figure4 import figure4_cells
    from repro.experiments.figure5 import figure5_cells

    cells: dict[CellKey, Cell] = {}

    def add(cell: Cell) -> None:
        cells.setdefault(cell.key, cell)

    def add_pairs(pairs) -> None:
        for mix_name, policy in pairs:
            mix = workload_by_name(mix_name)
            for seed in ctx.seeds:
                cell = _eval_cell(ctx, mix_name, policy, seed)
                add(cell)
                for dep in cell.me_deps:
                    add(Cell(key=dep, config=ctx.config))
                # outcome() always needs the single-core baselines
                for code in sorted(set(mix.codes)):
                    add(_single_cell(ctx, code, seed))

    if table2:
        for app in APPS:
            add(_profile_cell(ctx, app.code, ctx.seeds[0]))
    if figure2 is not None:
        core_counts, groups = figure2
        add_pairs(figure2_cells(core_counts=core_counts, groups=groups))
    if figure3 is not None:
        add_pairs(figure3_cells(groups=figure3))
    if figure4:
        add_pairs(figure4_cells())
    if figure5:
        add_pairs(figure5_cells())
    if arena is not None:
        mix_names, policies = arena
        add_pairs(arena_cells(mix_names, policies))
    if cloud is not None:
        from repro.experiments.cloud import cloud_cells
        from repro.workloads.cloud import cloud_mix_by_name

        mix_names, policies = cloud
        for mix_name, policy in cloud_cells(mix_names, policies):
            mix = cloud_mix_by_name(mix_name)
            for seed in ctx.seeds:
                cell = _cloud_cell(ctx, mix_name, policy, seed)
                add(cell)
                for dep in cell.me_deps:
                    add(Cell(key=dep, config=ctx.config))
                # the table's batch-speedup column needs the baselines
                for app in mix.batch_apps():
                    add(_single_cell(ctx, app.code, seed))
    if ablations:
        for spec in ablation_cell_specs(ctx):
            cell = _custom_cell(ctx, spec)
            add(cell)
            for dep in cell.me_deps:
                add(Cell(key=dep, config=ctx.config))
            mix = workload_by_name(spec.workload)
            for code in sorted(set(mix.codes)):
                add(_single_cell(ctx, code, spec.seed))
    return sorted(cells.values(), key=lambda c: c.key.key_str())


# -- execution -------------------------------------------------------------------


def _timed_execute(cell: Cell, attempt: int):
    t0 = time.perf_counter()
    payload = execute_cell(cell, attempt)
    return payload, time.perf_counter() - t0


class _Progress:
    """Counts completions and forwards them to the telemetry bus."""

    def __init__(self, bus: TelemetryBus | None, total: int) -> None:
        self.bus = bus
        self.total = total
        self.done = 0

    def emit(self, key: CellKey, status: str, seconds: float) -> None:
        self.done += 1
        if self.bus is not None:
            self.bus.emit(
                "experiment.cell", "instant", cycle=self.done,
                track="experiments", key=key.key_str(), status=status,
                seconds=round(seconds, 4), done=self.done, total=self.total,
            )


def _run_round_serial(cells, progress, failures, retried, results,
                      attempt0: int = 0):
    """Execute cells in-parent, in key order, with one retry each."""
    executed = 0
    for cell in cells:
        try:
            payload, dt = _timed_execute(cell, attempt0)
            status = "retried" if attempt0 > 0 else "run"
        except Exception:
            try:
                payload, dt = _timed_execute(cell, 1)
                status = "retried"
            except Exception as exc:
                failures.append(CellFailure(cell.key.key_str(), repr(exc), 2))
                progress.emit(cell.key, "failed", 0.0)
                continue
        if status == "retried":
            retried.append(cell.key.key_str())
        results[cell.key] = payload
        executed += 1
        progress.emit(cell.key, status, dt)
    return executed


def _run_round_pool(cells, jobs, progress, failures, retried, results):
    """Execute one round on a process pool; returns (executed, broken).

    Worker exceptions are collected and the cell retried once in the
    parent; a broken pool (hard worker crash) aborts the pool and the
    unfinished cells run serially — a clear report, never a hung pool.
    """
    executed = 0
    broken = False
    pending_retry: list[Cell] = []
    unfinished: list[Cell] = list(cells)
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(cells)))
    try:
        futures = {pool.submit(_timed_execute, c, 0): c for c in cells}
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for fut in done:
                cell = futures[fut]
                try:
                    payload, dt = fut.result()
                except BrokenProcessPool:
                    raise
                except Exception:
                    pending_retry.append(cell)
                    continue
                results[cell.key] = payload
                unfinished.remove(cell)
                executed += 1
                progress.emit(cell.key, "run", dt)
        pool.shutdown(wait=True)
    except BrokenProcessPool:
        pool.shutdown(wait=False, cancel_futures=True)
        broken = True
        # Everything not yet merged (including would-be retries) runs
        # serially in the parent; that is their one retry.
        leftovers = [c for c in unfinished if c not in pending_retry]
        executed += _run_round_serial(
            pending_retry + leftovers, progress, failures, retried, results,
            attempt0=1,
        )
        return executed, broken
    except (KeyboardInterrupt, SystemExit):
        # Ctrl-C: release the pool without waiting for in-flight cells
        # (the workers share our process group and die on the same
        # SIGINT) and let the caller flush its partial report — never a
        # hung pool, never a traceback dump from inside the executor.
        pool.shutdown(wait=False, cancel_futures=True)
        raise

    for cell in pending_retry:
        try:
            payload, dt = _timed_execute(cell, 1)
        except Exception as exc:
            failures.append(CellFailure(cell.key.key_str(), repr(exc), 2))
            progress.emit(cell.key, "failed", 0.0)
            continue
        results[cell.key] = payload
        retried.append(cell.key.key_str())
        executed += 1
        progress.emit(cell.key, "retried", dt)
    return executed, broken


def run_cells(
    cells,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    bus: TelemetryBus | None = None,
) -> ParallelReport:
    """Execute every cell, fanning out over ``jobs`` worker processes.

    Deterministic by construction: the returned ``results`` mapping is
    ordered by canonical cell key regardless of completion order, cache
    hits return bit-exact payloads, and ME vectors are resolved from the
    profile round so workers reproduce the serial numbers exactly.
    """
    from repro.telemetry.fleet import ENV_RUN_ID, new_run_id

    t0 = time.perf_counter()
    unique: dict[CellKey, Cell] = {}
    for cell in cells:
        unique.setdefault(cell.key, cell)
    ordered = sorted(unique.values(), key=lambda c: c.key.key_str())

    report = ParallelReport()
    # Correlation id for this sweep: pool children inherit the parent's
    # environment at fork/spawn time, so setting it before any pool is
    # created stamps every exporter artifact (run_metadata "fleet"
    # section) written by any process of this run.  An id inherited from
    # an enclosing fleet context wins — we are then part of *that* run.
    inherited = os.environ.get(ENV_RUN_ID)
    report.run_id = inherited or new_run_id()
    if inherited is None:
        os.environ[ENV_RUN_ID] = report.run_id
    results: dict[CellKey, object] = {}
    progress = _Progress(bus, total=len(ordered))

    rounds = (
        [c for c in ordered if c.key.kind in ("profile", "single")],
        [c for c in ordered if c.key.kind in ("eval", "custom", "cloud")],
    )
    try:
        for round_cells in rounds:
            todo: list[Cell] = []
            for cell in round_cells:
                hit = cache.get(cell.key) if cache is not None else None
                if hit is not None:
                    results[cell.key] = hit
                    report.cache_hits += 1
                    progress.emit(cell.key, "hit", 0.0)
                else:
                    todo.append(cell)

            ready: list[Cell] = []
            for cell in todo:
                if cell.key.policy in ME_FAMILY and cell.me_values is None:
                    try:
                        me = tuple(results[dep].me for dep in cell.me_deps)
                    except KeyError:
                        report.failures.append(CellFailure(
                            cell.key.key_str(),
                            "dependency failed: missing ME profile", 0,
                        ))
                        progress.emit(cell.key, "failed", 0.0)
                        continue
                    cell = cell.with_me_values(me)
                ready.append(cell)

            before = dict(results)
            if not ready:
                pass
            elif jobs <= 1 or len(ready) == 1:
                report.executed += _run_round_serial(
                    ready, progress, report.failures, report.retried, results
                )
            else:
                executed, broken = _run_round_pool(
                    ready, jobs, progress, report.failures, report.retried,
                    results,
                )
                report.executed += executed
                report.pool_broken = report.pool_broken or broken
            if cache is not None:
                for cell in ready:
                    if cell.key not in before and cell.key in results:
                        cache.put(cell.key, results[cell.key])
    finally:
        if inherited is None:
            os.environ.pop(ENV_RUN_ID, None)

    report.results = dict(
        sorted(results.items(), key=lambda kv: kv[0].key_str())
    )
    report.seconds = time.perf_counter() - t0
    if cache is not None:
        report.cache_stats = cache.stats
    if bus is not None:
        bus.emit("experiment.cache", "instant", cycle=progress.done,
                 track="experiments", **report.cache_stats.as_dict())
    return report


# -- merging ---------------------------------------------------------------------


def merge_into(ctx, report: ParallelReport) -> int:
    """Install cell results into a context's memo layers.

    Iterates in canonical key order (already how ``report.results`` is
    ordered) — merge order is a function of the cell set, never of
    completion timing.  Returns the number of entries installed.
    Cells whose budgets/config do not match the context are rejected:
    a memo must never hold a result the context would not itself compute.
    """
    installed = 0
    cfg_digest = ctx.config.digest()
    single_digest = ctx.config.with_cores(1).digest()
    for key, payload in report.results.items():
        if key.kind in ("profile", "single"):
            if (key.inst_budget != ctx.profile_budget
                    or key.config_digest != single_digest):
                raise ValueError(
                    f"cell {key.key_str()} does not match context "
                    f"(profile_budget={ctx.profile_budget})"
                )
            prof = ctx.profiler(key.seed)
            if key.kind == "profile":
                prof.preload_profile(payload)
            else:
                prof.preload_single(key.workload, payload)
        elif key.kind == "eval":
            if (key.inst_budget != ctx.inst_budget
                    or key.warmup != ctx.warmup_insts
                    or key.lookahead != ctx.lookahead
                    or key.config_digest != cfg_digest
                    or (key.policy in ME_FAMILY
                        and key.profile_budget != ctx.profile_budget)):
                raise ValueError(
                    f"cell {key.key_str()} does not match context"
                )
            ctx.preload_run(key.workload, key.policy, key.seed, payload)
        elif key.kind == "custom":
            if (key.inst_budget != ctx.inst_budget
                    or key.warmup != ctx.warmup_insts
                    or (key.policy in ME_FAMILY
                        and key.profile_budget != ctx.profile_budget)):
                raise ValueError(
                    f"cell {key.key_str()} does not match context"
                )
            ctx.preload_custom(key, payload)
        elif key.kind == "cloud":
            from repro.workloads.cloud import cloud_mix_by_name, cloud_system_config

            mix = cloud_mix_by_name(key.workload)
            expected = cloud_system_config(ctx.config, mix.num_cores).digest()
            if (key.inst_budget != ctx.inst_budget
                    or key.warmup != ctx.warmup_insts
                    or key.lookahead != ctx.lookahead
                    or key.config_digest != expected
                    or (key.policy in ME_FAMILY
                        and key.profile_budget != ctx.profile_budget)):
                raise ValueError(
                    f"cell {key.key_str()} does not match context"
                )
            ctx.preload_cloud(key.workload, key.policy, key.seed, payload)
        else:
            raise ValueError(f"unknown cell kind {key.kind!r}")
        installed += 1
    return installed
