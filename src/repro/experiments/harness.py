"""Shared experiment machinery.

:class:`ExperimentContext` owns the knobs every experiment shares — the
instruction budget, warmup, seeds and system configuration — plus caches:
one :class:`~repro.metrics.memory_efficiency.MeProfiler` per seed, and a
memo of evaluation runs keyed by ``(workload, policy, seed)`` so that
experiments which share cells (e.g. Figure 2's speedups and Figure 4's
latencies over the same runs) never simulate twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.config import SystemConfig
from repro.core.policy import SchedulingPolicy
from repro.core.registry import make_policy
from repro.metrics.memory_efficiency import MeProfiler
from repro.metrics.speedup import smt_speedup, unfairness
from repro.sim.runner import DEFAULT_WARMUP, RunResult, run_multicore
from repro.workloads.mixes import Mix, workload_by_name

__all__ = ["ExperimentContext", "PolicyOutcome", "mean"]


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input — a silent 0 would read as
    a real experimental result)."""
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)


@dataclass(frozen=True)
class PolicyOutcome:
    """One (workload, policy) cell, averaged over the context's seeds."""

    workload: str
    policy: str
    smt_speedup: float
    unfairness: float
    avg_read_latency: float
    per_core_latency: tuple[float, ...]
    per_core_ipc: tuple[float, ...]

    def gain_over(self, baseline: "PolicyOutcome") -> float:
        """Relative SMT-speedup gain vs a baseline outcome (paper's %)."""
        return self.smt_speedup / baseline.smt_speedup - 1.0


@dataclass
class ExperimentContext:
    """Budget/seed/config bundle with run caching.

    Parameters
    ----------
    inst_budget:
        Instructions measured per core (the 100 M-instruction SimPoint
        analogue, scaled down; DESIGN.md §2).
    warmup_insts:
        Warmup before measurement (covers the trace prologue).
    seeds:
        Every cell is averaged over these seeds; more seeds = less noise.
    profile_budget:
        Budget for ME-profiling runs (the paper uses a *shorter* slice for
        profiling than for evaluation: 10 M vs 100 M).
    """

    inst_budget: int = 30_000
    warmup_insts: int = DEFAULT_WARMUP
    seeds: tuple[int, ...] = (1, 2)
    profile_budget: int = 15_000
    config: SystemConfig = field(default_factory=SystemConfig)
    lookahead: int = 256

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("need at least one seed")
        self._profilers: dict[int, MeProfiler] = {}
        self._runs: dict[tuple[str, str, int], RunResult] = {}

    # -- profiling --------------------------------------------------------------

    def profiler(self, seed: int) -> MeProfiler:
        prof = self._profilers.get(seed)
        if prof is None:
            prof = MeProfiler(self.profile_budget, seed=seed, config=self.config)
            self._profilers[seed] = prof
        return prof

    def me_values(self, mix: Mix, seed: int) -> tuple[float, ...]:
        return self.profiler(seed).me_values(mix)

    def single_ipcs(self, mix: Mix, seed: int) -> tuple[float, ...]:
        return self.profiler(seed).single_ipcs(mix)

    # -- evaluation runs -----------------------------------------------------------

    def _make_policy(self, name: str, mix: Mix, seed: int) -> SchedulingPolicy:
        key = name.upper()
        if key in ("ME", "ME-LREQ"):
            return make_policy(key, me_values=self.me_values(mix, seed))
        return make_policy(key)

    def run(self, workload: str | Mix, policy: str, seed: int) -> RunResult:
        """One evaluation run (cached)."""
        mix = workload_by_name(workload) if isinstance(workload, str) else workload
        key = (mix.name, policy.upper(), seed)
        hit = self._runs.get(key)
        if hit is not None:
            return hit
        result = run_multicore(
            mix,
            self._make_policy(policy, mix, seed),
            inst_budget=self.inst_budget,
            seed=seed,
            warmup_insts=self.warmup_insts,
            config=self.config,
            lookahead=self.lookahead,
        )
        self._runs[key] = result
        return result

    def outcome(self, workload: str | Mix, policy: str) -> PolicyOutcome:
        """Seed-averaged metrics for one (workload, policy) cell."""
        mix = workload_by_name(workload) if isinstance(workload, str) else workload
        speedups: list[float] = []
        unfairs: list[float] = []
        lats: list[float] = []
        core_lats = [0.0] * mix.num_cores
        core_ipcs = [0.0] * mix.num_cores
        for seed in self.seeds:
            r = self.run(mix, policy, seed)
            single = self.single_ipcs(mix, seed)
            speedups.append(smt_speedup(r.ipcs(), single))
            unfairs.append(unfairness(r.ipcs(), single))
            lats.append(r.avg_read_latency())
            for i, c in enumerate(r.per_core):
                core_lats[i] += c.avg_read_latency / len(self.seeds)
                core_ipcs[i] += c.ipc / len(self.seeds)
        return PolicyOutcome(
            workload=mix.name,
            policy=policy.upper(),
            smt_speedup=mean(speedups),
            unfairness=mean(unfairs),
            avg_read_latency=mean(lats),
            per_core_latency=tuple(core_lats),
            per_core_ipc=tuple(core_ipcs),
        )
