"""Shared experiment machinery.

:class:`ExperimentContext` owns the knobs every experiment shares — the
instruction budget, warmup, seeds and system configuration — plus caches:
one :class:`~repro.metrics.memory_efficiency.MeProfiler` per seed, and a
memo of evaluation runs keyed by ``(workload, policy, seed)`` so that
experiments which share cells (e.g. Figure 2's speedups and Figure 4's
latencies over the same runs) never simulate twice.

The in-memory memo is a **read-through layer** over an optional on-disk
:class:`~repro.experiments.cache.ResultCache`: attach one and every
evaluation / profiling / single-core run first consults the cache (keys
include every run determinant — seed, budgets, warmup, lookahead, config
digest, policy constructor arguments — see
:mod:`repro.experiments.cells`), falling back to simulation and writing
the result back.  The parallel runner
(:mod:`repro.experiments.parallel`) pre-warms both layers so the serial
harness code emits bit-identical tables at full speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.config import SystemConfig
from repro.core.policy import SchedulingPolicy
from repro.core.registry import make_policy
from repro.experiments.cells import (
    CellKey,
    cloud_cell_key,
    custom_cell_key,
    eval_cell_key,
    policy_from_spec,
    profile_cell_key,
    single_cell_key,
)
from repro.metrics.memory_efficiency import MeProfiler
from repro.metrics.speedup import smt_speedup, unfairness
from repro.sim.runner import DEFAULT_WARMUP, RunResult, run_multicore
from repro.workloads.mixes import Mix, workload_by_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.cache import ResultCache

__all__ = ["ExperimentContext", "PolicyOutcome", "mean"]


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input — a silent 0 would read as
    a real experimental result)."""
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)


@dataclass(frozen=True)
class PolicyOutcome:
    """One (workload, policy) cell, averaged over the context's seeds."""

    workload: str
    policy: str
    smt_speedup: float
    unfairness: float
    avg_read_latency: float
    per_core_latency: tuple[float, ...]
    per_core_ipc: tuple[float, ...]

    def gain_over(self, baseline: "PolicyOutcome") -> float:
        """Relative SMT-speedup gain vs a baseline outcome (paper's %)."""
        return self.smt_speedup / baseline.smt_speedup - 1.0


@dataclass
class ExperimentContext:
    """Budget/seed/config bundle with run caching.

    Parameters
    ----------
    inst_budget:
        Instructions measured per core (the 100 M-instruction SimPoint
        analogue, scaled down; DESIGN.md §2).
    warmup_insts:
        Warmup before measurement (covers the trace prologue).
    seeds:
        Every cell is averaged over these seeds; more seeds = less noise.
    profile_budget:
        Budget for ME-profiling runs (the paper uses a *shorter* slice for
        profiling than for evaluation: 10 M vs 100 M).
    """

    inst_budget: int = 30_000
    warmup_insts: int = DEFAULT_WARMUP
    seeds: tuple[int, ...] = (1, 2)
    profile_budget: int = 15_000
    config: SystemConfig = field(default_factory=SystemConfig)
    lookahead: int = 256
    cache: "ResultCache | None" = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("need at least one seed")
        self._profilers: dict[int, MeProfiler] = {}
        self._runs: dict[tuple[str, str, int], RunResult] = {}
        self._custom_runs: dict[CellKey, RunResult] = {}
        self._cloud_runs: dict[tuple[str, str, int], object] = {}

    # -- profiling --------------------------------------------------------------

    def profiler(self, seed: int) -> MeProfiler:
        prof = self._profilers.get(seed)
        if prof is None:
            prof = MeProfiler(self.profile_budget, seed=seed, config=self.config)
            self._profilers[seed] = prof
        return prof

    def me_values(self, mix: Mix, seed: int) -> tuple[float, ...]:
        prof = self.profiler(seed)
        if self.cache is not None:
            for app in mix.apps():
                if prof.has_profile(app.code):
                    continue
                key = profile_cell_key(
                    app.code, seed, self.profile_budget, self.config
                )
                hit = self.cache.get(key)
                if hit is not None:
                    prof.preload_profile(hit)
                else:
                    self.cache.put(key, prof.profile(app))
        return prof.me_values(mix)

    def single_ipcs(self, mix: Mix, seed: int) -> tuple[float, ...]:
        prof = self.profiler(seed)
        if self.cache is not None:
            for app in mix.apps():
                if prof.has_single(app.code):
                    continue
                key = single_cell_key(
                    app.code, seed, self.profile_budget, self.config
                )
                hit = self.cache.get(key)
                if hit is not None:
                    prof.preload_single(app.code, hit)
                else:
                    self.cache.put(key, prof.single_core_result(app))
        return prof.single_ipcs(mix)

    def batch_me(self, apps, seed: int) -> tuple[float, ...]:
        """ME ranks for a list of batch applications (cloud batch cores),
        read-through to the disk cache like :meth:`me_values`."""
        prof = self.profiler(seed)
        if self.cache is not None:
            for app in apps:
                if prof.has_profile(app.code):
                    continue
                key = profile_cell_key(
                    app.code, seed, self.profile_budget, self.config
                )
                hit = self.cache.get(key)
                if hit is not None:
                    prof.preload_profile(hit)
                else:
                    self.cache.put(key, prof.profile(app))
        return tuple(prof.profile(app).me for app in apps)

    def batch_single_ipcs(self, apps, seed: int) -> tuple[float, ...]:
        """Single-core eval IPCs for a list of batch applications (the
        cloud table's speedup denominator), cache read-through like
        :meth:`single_ipcs`."""
        prof = self.profiler(seed)
        if self.cache is not None:
            for app in apps:
                if prof.has_single(app.code):
                    continue
                key = single_cell_key(
                    app.code, seed, self.profile_budget, self.config
                )
                hit = self.cache.get(key)
                if hit is not None:
                    prof.preload_single(app.code, hit)
                else:
                    self.cache.put(key, prof.single_core_result(app))
        return tuple(prof.single_core_ipc(app) for app in apps)

    # -- evaluation runs -----------------------------------------------------------

    def _make_policy(self, name: str, mix: Mix, seed: int) -> SchedulingPolicy:
        key = name.upper()
        if key in ("ME", "ME-LREQ"):
            return make_policy(key, me_values=self.me_values(mix, seed))
        return make_policy(key)

    def _eval_key(self, mix_name: str, policy: str, seed: int) -> CellKey:
        return eval_cell_key(
            mix_name, policy, seed, self.inst_budget, self.warmup_insts,
            self.lookahead, self.config, self.profile_budget,
        )

    def run(self, workload: str | Mix, policy: str, seed: int) -> RunResult:
        """One evaluation run (memoised; read-through to the disk cache)."""
        mix = workload_by_name(workload) if isinstance(workload, str) else workload
        key = (mix.name, policy.upper(), seed)
        hit = self._runs.get(key)
        if hit is not None:
            return hit
        cell_key = None
        if self.cache is not None:
            cell_key = self._eval_key(mix.name, policy, seed)
            cached = self.cache.get(cell_key)
            if cached is not None:
                self._runs[key] = cached
                return cached
        result = run_multicore(
            mix,
            self._make_policy(policy, mix, seed),
            inst_budget=self.inst_budget,
            seed=seed,
            warmup_insts=self.warmup_insts,
            config=self.config,
            lookahead=self.lookahead,
        )
        if cell_key is not None:
            self.cache.put(cell_key, result)
        self._runs[key] = result
        return result

    def run_custom(
        self,
        workload: str | Mix,
        policy: str,
        seed: int,
        *,
        policy_args: tuple = (),
        config: SystemConfig | None = None,
        lookahead: int | None = None,
    ) -> RunResult:
        """An ablation run: ``policy`` with constructor arguments and/or a
        non-default config or lookahead (memoised and disk-cached like
        :meth:`run`; ME-family policies profile on the *context's*
        baseline machine, matching the paper's offline methodology)."""
        mix = workload_by_name(workload) if isinstance(workload, str) else workload
        cfg = config if config is not None else self.config
        la = lookahead if lookahead is not None else self.lookahead
        cell_key = custom_cell_key(
            mix.name, policy, policy_args, seed, self.inst_budget,
            self.warmup_insts, la, cfg, self.profile_budget,
            me_config=self.config if cfg is not self.config else None,
        )
        hit = self._custom_runs.get(cell_key)
        if hit is not None:
            return hit
        if self.cache is not None:
            cached = self.cache.get(cell_key)
            if cached is not None:
                self._custom_runs[cell_key] = cached
                return cached
        name = policy.upper()
        me = self.me_values(mix, seed) if name in ("ME", "ME-LREQ") else None
        result = run_multicore(
            mix,
            policy_from_spec(name, tuple(policy_args), me),
            inst_budget=self.inst_budget,
            seed=seed,
            warmup_insts=self.warmup_insts,
            config=cfg,
            lookahead=la,
        )
        if self.cache is not None:
            self.cache.put(cell_key, result)
        self._custom_runs[cell_key] = result
        return result

    def _cloud_key(self, mix_name: str, policy: str, seed: int) -> CellKey:
        return cloud_cell_key(
            mix_name, policy, seed, self.inst_budget, self.warmup_insts,
            self.lookahead, self.config, self.profile_budget,
        )

    def cloud_run(self, workload, policy: str, seed: int):
        """One cloud co-run (memoised; read-through to the disk cache).

        ``workload`` is a cloud mix name or :class:`CloudMix`; returns a
        :class:`~repro.experiments.cloud.CloudResult`.
        """
        from repro.experiments.cloud import run_cloud
        from repro.workloads.cloud import cloud_mix_by_name

        mix = (
            cloud_mix_by_name(workload) if isinstance(workload, str) else workload
        )
        key = (mix.name, policy.upper(), seed)
        hit = self._cloud_runs.get(key)
        if hit is not None:
            return hit
        cell_key = None
        if self.cache is not None:
            cell_key = self._cloud_key(mix.name, policy, seed)
            cached = self.cache.get(cell_key)
            if cached is not None:
                self._cloud_runs[key] = cached
                return cached
        me = None
        if policy.upper() in ("ME", "ME-LREQ"):
            me = self.batch_me(mix.batch_apps(), seed)
        result = run_cloud(
            mix,
            policy,
            inst_budget=self.inst_budget,
            seed=seed,
            warmup_insts=self.warmup_insts,
            config=self.config,
            lookahead=self.lookahead,
            me_values=me,
        )
        if cell_key is not None:
            self.cache.put(cell_key, result)
        self._cloud_runs[key] = result
        return result

    # -- memo preloading (parallel runner) ------------------------------------------

    def preload_run(self, mix_name: str, policy: str, seed: int,
                    result: RunResult) -> None:
        """Install one evaluation result (must match what :meth:`run`
        would compute — the parallel runner keys cells on every
        determinant to guarantee it)."""
        self._runs.setdefault((mix_name, policy.upper(), seed), result)

    def preload_custom(self, cell_key: CellKey, result: RunResult) -> None:
        """Install one ablation result under its full cell key."""
        self._custom_runs.setdefault(cell_key, result)

    def preload_cloud(self, mix_name: str, policy: str, seed: int,
                      result) -> None:
        """Install one cloud co-run result (parallel runner merge)."""
        self._cloud_runs.setdefault((mix_name, policy.upper(), seed), result)

    def outcome(self, workload: str | Mix, policy: str) -> PolicyOutcome:
        """Seed-averaged metrics for one (workload, policy) cell."""
        mix = workload_by_name(workload) if isinstance(workload, str) else workload
        speedups: list[float] = []
        unfairs: list[float] = []
        lats: list[float] = []
        core_lats = [0.0] * mix.num_cores
        core_ipcs = [0.0] * mix.num_cores
        for seed in self.seeds:
            r = self.run(mix, policy, seed)
            single = self.single_ipcs(mix, seed)
            speedups.append(smt_speedup(r.ipcs(), single))
            unfairs.append(unfairness(r.ipcs(), single))
            lats.append(r.avg_read_latency())
            for i, c in enumerate(r.per_core):
                core_lats[i] += c.avg_read_latency / len(self.seeds)
                core_ipcs[i] += c.ipc / len(self.seeds)
        return PolicyOutcome(
            workload=mix.name,
            policy=policy.upper(),
            smt_speedup=mean(speedups),
            unfairness=mean(unfairs),
            avg_read_latency=mean(lats),
            per_core_latency=tuple(core_lats),
            per_core_ipc=tuple(core_ipcs),
        )
