"""The policy arena: every registered scheduler, ranked on one table.

The paper compares five schemes on three axes — throughput (SMT
speedup), fairness (per-core latency spread) and hardware cost (the
Fig. 1 table) — but only ever two axes at a time, and only for its own
policies.  The arena closes the loop for the whole registry: every
registered policy (plus a descending fixed-priority entry) runs over a
chosen Table 3 mix set, and one canonical table reports

* **weighted speedup** — mean Snavely SMT speedup over the mixes
  (:func:`repro.metrics.speedup.smt_speedup`), the ranking column;
* **unfairness** — mean max/min-slowdown ratio, and **max slowdown** —
  the single worst per-core slowdown observed anywhere in the sweep
  (the starvation axis that sank ME in Figure 4);
* **hardware complexity** — priority-table bits and per-core /
  total state from each policy's
  :meth:`~repro.core.policy.SchedulingPolicy.describe_hardware` sheet;
* **fingerprint** — a short digest over the float-hex per-core IPCs and
  latencies of every (mix, seed) run, so any behavioural drift in any
  policy shows up as a one-line table diff (the golden-stats idea,
  extended to the whole registry).

Determinism contract: rows are computed from seed-averaged
:class:`~repro.experiments.harness.ExperimentContext` memo entries and
sorted by (speedup desc, name asc); floats render at fixed precision and
fingerprints hash float *hex* — so the rendered table is byte-identical
across serial, ``--jobs N`` and distributed execution (the runners
pre-warm the same memo the serial path reads).

Latency anatomy: :func:`arena_anatomy` reruns one mix per policy with
request-span tracing and renders the PR 2 stall-attribution breakdown
(:mod:`repro.telemetry.attribution`) — where each policy's latency
actually goes (queueing vs bank vs bus vs drain).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.registry import policy_complexity, registered_policies
from repro.experiments.harness import ExperimentContext, mean
from repro.metrics.speedup import slowdowns
from repro.workloads.mixes import Mix, mixes_for, workload_by_name

__all__ = [
    "ARENA_MIX_SETS",
    "ArenaMixRow",
    "ArenaRow",
    "arena_anatomy",
    "arena_cells",
    "arena_mixes",
    "arena_policies",
    "concrete_policy",
    "format_arena",
    "format_arena_per_mix",
    "run_arena",
    "run_arena_per_mix",
]

#: named mix sets the CLI accepts; "smoke" is the CI-sized pair
ARENA_MIX_SETS: dict[str, tuple[str, ...]] = {
    "smoke": ("2MEM-1", "2MIX-1"),
    "2core": tuple(m.name for m in mixes_for(2)),
    "4core": tuple(m.name for m in mixes_for(4)),
    "8core": tuple(m.name for m in mixes_for(8)),
    "full": tuple(m.name for m in mixes_for(2))
    + tuple(m.name for m in mixes_for(4))
    + tuple(m.name for m in mixes_for(8)),
}

#: arena label of the fixed-priority entrant (resolved per mix to the
#: descending order, e.g. FIX-10 on 2 cores, FIX-3210 on 4)
FIX_LABEL = "FIX-DESC"


def arena_policies() -> tuple[str, ...]:
    """Every concrete registry name plus the fixed-priority entrant."""
    return tuple(registered_policies()) + (FIX_LABEL,)


def arena_mixes(names: tuple[str, ...]) -> tuple[Mix, ...]:
    """Resolve mix-set names and/or explicit mix names to Mix objects."""
    out: list[Mix] = []
    for name in names:
        if name.lower() in ARENA_MIX_SETS:
            out.extend(workload_by_name(m) for m in ARENA_MIX_SETS[name.lower()])
        else:
            out.append(workload_by_name(name))
    return tuple(out)


def concrete_policy(label: str, mix: Mix) -> str:
    """Resolve an arena label to the registry/make_policy name for a mix.

    ``FIX-DESC`` becomes the descending permutation sized to the mix
    (core N-1 highest); every other label is already concrete.
    """
    if label.upper() == FIX_LABEL:
        return "FIX-" + "".join(str(c) for c in range(mix.num_cores - 1, -1, -1))
    return label.upper()


def arena_cells(
    mixes: tuple[str, ...], policies: tuple[str, ...] | None = None
) -> list[tuple[str, str]]:
    """(workload, policy) pairs behind :func:`run_arena`, in run order —
    the enumerator :func:`repro.experiments.parallel.plan_cells` shards
    (FIX labels resolved to their per-mix concrete names)."""
    pols = policies if policies is not None else arena_policies()
    return [
        (mix.name, concrete_policy(p, mix))
        for mix in arena_mixes(mixes)
        for p in pols
    ]


@dataclass(frozen=True)
class ArenaRow:
    """One policy's aggregate scores over the arena's mix set."""

    policy: str
    weighted_speedup: float  # mean SMT speedup over mixes (rank column)
    unfairness: float  # mean max/min slowdown over mixes
    max_slowdown: float  # worst per-core slowdown anywhere in the sweep
    avg_read_latency: float  # mean of per-mix average read latencies
    table_bits: int  # priority-table SRAM
    state_bytes: float  # total added state at the set's max core count
    fingerprint: str  # digest over float-hex per-core results


def run_arena(
    ctx: ExperimentContext,
    mixes: tuple[str, ...] = ("smoke",),
    policies: tuple[str, ...] | None = None,
) -> list[ArenaRow]:
    """Score every policy over the mix set; rows ranked best-first.

    Ranking is by weighted speedup descending, name ascending on ties —
    a total, deterministic order.
    """
    pols = policies if policies is not None else arena_policies()
    resolved = arena_mixes(mixes)
    if not resolved:
        raise ValueError("arena needs at least one mix")
    max_cores = max(m.num_cores for m in resolved)
    rows: list[ArenaRow] = []
    for label in pols:
        speedups: list[float] = []
        unfairs: list[float] = []
        lats: list[float] = []
        worst = 0.0
        digest = hashlib.sha256()
        for mix in resolved:
            name = concrete_policy(label, mix)
            out = ctx.outcome(mix, name)
            speedups.append(out.smt_speedup)
            unfairs.append(out.unfairness)
            lats.append(out.avg_read_latency)
            for seed in ctx.seeds:
                r = ctx.run(mix, name, seed)
                single = ctx.single_ipcs(mix, seed)
                worst = max(worst, max(slowdowns(r.ipcs(), single)))
                digest.update(f"{mix.name}:{seed}".encode())
                for core in r.per_core:
                    digest.update(core.ipc.hex().encode())
                    digest.update(core.avg_read_latency.hex().encode())
        cost = policy_complexity(
            "FIX" if label.upper() == FIX_LABEL else label, max_cores
        )
        rows.append(
            ArenaRow(
                policy=label.upper(),
                weighted_speedup=mean(speedups),
                unfairness=mean(unfairs),
                max_slowdown=worst,
                avg_read_latency=mean(lats),
                table_bits=cost.priority_table_bits,
                state_bytes=cost.total_bytes(max_cores),
                fingerprint=digest.hexdigest()[:12],
            )
        )
    rows.sort(key=lambda r: (-r.weighted_speedup, r.policy))
    return rows


def format_arena(rows: list[ArenaRow], mixes: tuple[str, ...] = ()) -> str:
    """Render the canonical ranking table (byte-stable)."""
    if not rows:
        return "(no data)"
    lines: list[str] = []
    if mixes:
        lines.append(f"== policy arena ({', '.join(mixes)}) ==")
    else:
        lines.append("== policy arena ==")
    lines.append(
        f"{'#':>2} {'policy':<15} {'wspeedup':>9} {'unfair':>7} "
        f"{'maxslow':>8} {'avg lat':>8} {'tbl bits':>8} {'state B':>8} "
        f"{'fingerprint':>12}"
    )
    for i, r in enumerate(rows, 1):
        lines.append(
            f"{i:>2} {r.policy:<15} {r.weighted_speedup:>9.3f} "
            f"{r.unfairness:>7.2f} {r.max_slowdown:>8.2f} "
            f"{r.avg_read_latency:>8.1f} {r.table_bits:>8d} "
            f"{r.state_bytes:>8.1f} {r.fingerprint:>12}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ArenaMixRow:
    """One policy's scores on one mix (the per-mix drill-down)."""

    mix: str
    policy: str
    smt_speedup: float  # seed-averaged Snavely speedup on this mix
    unfairness: float  # seed-averaged max/min-slowdown ratio
    max_slowdown: float  # worst per-core slowdown over this mix's seeds
    avg_read_latency: float  # seed-averaged mean read latency
    fingerprint: str  # digest over this mix's float-hex per-core results


def run_arena_per_mix(
    ctx: ExperimentContext,
    mixes: tuple[str, ...] = ("smoke",),
    policies: tuple[str, ...] | None = None,
) -> list[ArenaMixRow]:
    """The per-mix drill-down behind ``repro arena --per-mix``.

    Same cells as :func:`run_arena` (the planner/caches are shared), but
    nothing is averaged over mixes: each (mix, policy) pair gets its own
    row, ranked within the mix by speedup descending, name ascending —
    the table that shows *where* a policy's average comes from.
    """
    pols = policies if policies is not None else arena_policies()
    resolved = arena_mixes(mixes)
    if not resolved:
        raise ValueError("arena needs at least one mix")
    rows: list[ArenaMixRow] = []
    for mix in resolved:
        mix_rows: list[ArenaMixRow] = []
        for label in pols:
            name = concrete_policy(label, mix)
            out = ctx.outcome(mix, name)
            worst = 0.0
            digest = hashlib.sha256()
            for seed in ctx.seeds:
                r = ctx.run(mix, name, seed)
                single = ctx.single_ipcs(mix, seed)
                worst = max(worst, max(slowdowns(r.ipcs(), single)))
                digest.update(f"{mix.name}:{seed}".encode())
                for core in r.per_core:
                    digest.update(core.ipc.hex().encode())
                    digest.update(core.avg_read_latency.hex().encode())
            mix_rows.append(
                ArenaMixRow(
                    mix=mix.name,
                    policy=label.upper(),
                    smt_speedup=out.smt_speedup,
                    unfairness=out.unfairness,
                    max_slowdown=worst,
                    avg_read_latency=out.avg_read_latency,
                    fingerprint=digest.hexdigest()[:12],
                )
            )
        mix_rows.sort(key=lambda r: (-r.smt_speedup, r.policy))
        rows.extend(mix_rows)
    return rows


def format_arena_per_mix(rows: list[ArenaMixRow]) -> str:
    """Render the per-mix drill-down (byte-stable, grouped by mix)."""
    if not rows:
        return "(no data)"
    lines = [
        "== policy arena: per-mix drill-down ==",
        f"{'#':>2} {'mix':<8} {'policy':<15} {'speedup':>8} {'unfair':>7} "
        f"{'maxslow':>8} {'avg lat':>8} {'fingerprint':>12}",
    ]
    rank = 0
    last_mix: str | None = None
    for r in rows:
        if r.mix != last_mix:
            if last_mix is not None:
                lines.append("")
            last_mix = r.mix
            rank = 0
        rank += 1
        lines.append(
            f"{rank:>2} {r.mix:<8} {r.policy:<15} {r.smt_speedup:>8.3f} "
            f"{r.unfairness:>7.2f} {r.max_slowdown:>8.2f} "
            f"{r.avg_read_latency:>8.1f} {r.fingerprint:>12}"
        )
    return "\n".join(lines)


def arena_anatomy(
    ctx: ExperimentContext,
    mixes: tuple[str, ...] = ("smoke",),
    policies: tuple[str, ...] | None = None,
    span_sample: int = 16,
) -> str:
    """Per-policy latency anatomy on the mix set's first mix.

    Reruns the first mix once per policy with request-span tracing and
    renders the stall-attribution breakdown under each policy heading.
    These runs are outside the memo/cache (they carry telemetry), so the
    anatomy is an optional appendix, not part of the ranking contract.
    """
    from repro.sim.runner import run_multicore
    from repro.telemetry import Telemetry
    from repro.telemetry.attribution import attribute, format_attribution

    pols = policies if policies is not None else arena_policies()
    mix = arena_mixes(mixes)[0]
    seed = ctx.seeds[0]
    blocks: list[str] = [f"== latency anatomy ({mix.name}, seed {seed}) =="]
    for label in pols:
        name = concrete_policy(label, mix)
        hub = Telemetry(capture_spans=True, span_sample=span_sample)
        me = (
            ctx.me_values(mix, seed)
            if name in ("ME", "ME-LREQ")
            else None
        )
        run_multicore(
            mix,
            name,
            inst_budget=ctx.inst_budget,
            seed=seed,
            me_values=me,
            warmup_insts=ctx.warmup_insts,
            config=ctx.config,
            lookahead=ctx.lookahead,
            telemetry=hub,
        )
        report = attribute(hub, kind="read")
        blocks.append(f"\n-- {label.upper()} --")
        blocks.append(format_attribution(report))
    return "\n".join(blocks)
