"""Figure 3: simple fixed-priority schemes vs ME on the four-core system.

The paper compares HF-RF, ME, FIX-3210 and FIX-0123 on the 4-core
workloads to show that *which* fixed order you pick matters enormously —
4MEM-1 gains 2.8 % under FIX-0123 but loses 13.8 % under FIX-3210, and
4MEM-6 loses 18 % — while the ME-guided order behaves consistently.  The
conclusion: fixed priorities need the memory-efficiency information, and
good performance additionally needs the run-time (LREQ) term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import ExperimentContext, PolicyOutcome
from repro.workloads.mixes import mixes_for

__all__ = ["FIG3_POLICIES", "Figure3Row", "run_figure3", "figure3_cells",
           "format_figure3"]

FIG3_POLICIES: tuple[str, ...] = ("HF-RF", "ME", "FIX-3210", "FIX-0123")


@dataclass(frozen=True)
class Figure3Row:
    workload: str
    outcomes: dict[str, PolicyOutcome]

    def speedup(self, policy: str) -> float:
        return self.outcomes[policy.upper()].smt_speedup

    def gain(self, policy: str) -> float:
        return self.speedup(policy) / self.speedup("HF-RF") - 1.0


def run_figure3(
    ctx: ExperimentContext,
    groups: tuple[str, ...] = ("MEM", "MIX"),
) -> list[Figure3Row]:
    """Regenerate Figure 3 (4-core platform only, as in the paper)."""
    rows = []
    for group in groups:
        for mix in mixes_for(4, group):
            outcomes = {p: ctx.outcome(mix, p) for p in FIG3_POLICIES}
            rows.append(Figure3Row(workload=mix.name, outcomes=outcomes))
    return rows


def figure3_cells(
    groups: tuple[str, ...] = ("MEM", "MIX"),
) -> list[tuple[str, str]]:
    """(workload, policy) pairs behind :func:`run_figure3`."""
    return [
        (mix.name, p)
        for group in groups
        for mix in mixes_for(4, group)
        for p in FIG3_POLICIES
    ]


def spread(rows: list[Figure3Row], policy: str) -> tuple[float, float]:
    """(best, worst) gain of a fixed scheme across workloads — the
    'noticeable but unpredictable' range the paper highlights."""
    gains = [r.gain(policy) for r in rows]
    return max(gains), min(gains)


def format_figure3(rows: list[Figure3Row]) -> str:
    lines = ["== 4-core fixed-priority comparison (SMT speedup) =="]
    lines.append("workload   " + "".join(f"{p:>10}" for p in FIG3_POLICIES))
    for r in rows:
        lines.append(
            f"{r.workload:<11}"
            + "".join(f"{r.speedup(p):>10.3f}" for p in FIG3_POLICIES)
        )
    for p in FIG3_POLICIES[1:]:
        best, worst = spread(rows, p)
        lines.append(f"{p}: best {best:+.1%}, worst {worst:+.1%} vs HF-RF")
    return "\n".join(lines)
