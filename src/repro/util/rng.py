"""Deterministic random-number streams.

The simulator is fully deterministic given an experiment seed.  Each
component (one trace generator per core, the controller's tie-breaker, ...)
gets its own independent stream derived from ``(root_seed, *labels)`` so that
adding a component or reordering draws in one component never perturbs
another.  This mirrors the paper's methodology of using *different SimPoints*
for profiling and evaluation: we use different derived streams.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = ["derive_seed", "RngStream"]


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a stable 63-bit child seed from ``root_seed`` and labels.

    Uses SHA-256 over a canonical encoding, so the result is stable across
    Python processes and versions (unlike ``hash()``).

    >>> derive_seed(1, "core", 0) == derive_seed(1, "core", 0)
    True
    >>> derive_seed(1, "core", 0) != derive_seed(1, "core", 1)
    True
    """
    payload = repr((int(root_seed),) + tuple(str(x) for x in labels)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


class RngStream:
    """A labelled, reproducible random stream.

    Thin wrapper over :class:`numpy.random.Generator` adding convenience
    draws used by the trace generators, plus cheap child-stream spawning.

    Parameters
    ----------
    root_seed:
        The experiment root seed.
    labels:
        Arbitrary hashable labels identifying this stream (component path).
    """

    __slots__ = ("root_seed", "labels", "_gen")

    def __init__(self, root_seed: int, *labels: object) -> None:
        self.root_seed = int(root_seed)
        self.labels = tuple(labels)
        self._gen = np.random.default_rng(derive_seed(root_seed, *labels))

    def child(self, *labels: object) -> "RngStream":
        """Spawn an independent stream labelled beneath this one."""
        return RngStream(self.root_seed, *self.labels, *labels)

    # -- draws -------------------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return float(self._gen.random())

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high) — numpy ``integers`` semantics."""
        return int(self._gen.integers(low, high))

    def geometric(self, p: float) -> int:
        """Geometric draw (number of trials to first success, >= 1)."""
        return int(self._gen.geometric(min(max(p, 1e-12), 1.0)))

    def choice(self, seq: Sequence, p: Iterable[float] | None = None):
        """Pick one element of ``seq`` (optionally weighted)."""
        idx = self._gen.choice(len(seq), p=None if p is None else list(p))
        return seq[int(idx)]

    def choice_index(self, weights: Sequence[float]) -> int:
        """Pick an index weighted by ``weights`` (need not be normalised)."""
        w = np.asarray(weights, dtype=float)
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must have positive sum")
        return int(self._gen.choice(len(w), p=w / total))

    def shuffle(self, seq: list) -> None:
        """In-place Fisher–Yates shuffle."""
        self._gen.shuffle(seq)

    def uniform_floats(self, n: int) -> np.ndarray:
        """Vector of ``n`` uniforms — for batch trace generation."""
        return self._gen.random(n)

    def generator(self) -> np.random.Generator:
        """Expose the underlying numpy generator for vectorised use."""
        return self._gen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.root_seed}, labels={self.labels!r})"
