"""Unit conversions between wall-clock quantities and CPU cycles.

The whole simulator runs in a single clock domain: CPU cycles at the
paper's 3.2 GHz core clock (Table 1).  DDR2 timing parameters given in
nanoseconds are converted once, at configuration time, with
:func:`ns_to_cycles`; bandwidth is reported in GB/s exactly as the paper's
memory-efficiency definition (Eq. 1) requires.
"""

from __future__ import annotations

__all__ = [
    "CPU_FREQ_HZ",
    "ns_to_cycles",
    "seconds",
    "bytes_per_sec_to_gbps",
    "gbps",
]

#: Core clock from Table 1 of the paper.
CPU_FREQ_HZ: float = 3.2e9


def ns_to_cycles(ns: float, freq_hz: float = CPU_FREQ_HZ) -> int:
    """Convert nanoseconds to an integral number of CPU cycles (ceil).

    Rounding up is the conservative hardware choice: a DRAM timing
    constraint may never be violated by rounding.

    >>> ns_to_cycles(12.5)   # tRP/tRCD/CL at 3.2 GHz
    40
    >>> ns_to_cycles(15.0)   # controller overhead
    48
    """
    if ns < 0:
        raise ValueError(f"negative duration: {ns} ns")
    cycles = ns * freq_hz / 1e9
    whole = int(cycles)
    return whole if cycles == whole else whole + 1


def seconds(cycles: int, freq_hz: float = CPU_FREQ_HZ) -> float:
    """Convert a cycle count to seconds."""
    if cycles < 0:
        raise ValueError(f"negative cycle count: {cycles}")
    return cycles / freq_hz


def bytes_per_sec_to_gbps(bytes_per_sec: float) -> float:
    """Bytes/second to GB/s (decimal gigabytes, as in '12.8GB/s/channel')."""
    return bytes_per_sec / 1e9


def gbps(total_bytes: float, cycles: int, freq_hz: float = CPU_FREQ_HZ) -> float:
    """Average bandwidth in GB/s of ``total_bytes`` moved over ``cycles``.

    This is the ``BW_single[i]`` term of the paper's Eq. 1.
    Returns 0.0 for an empty interval.
    """
    if cycles <= 0:
        return 0.0
    return bytes_per_sec_to_gbps(total_bytes / seconds(cycles, freq_hz))
