"""Fixed-point quantisation helpers for the hardware priority table.

The paper's ME-LREQ implementation (its Figure 1) stores *pre-computed,
scaled* priorities in a small SRAM table — ``N cores x 64 pending levels x
10 bits`` — because real memory controllers cannot afford dividers in the
scheduling path.  These helpers model that quantisation so the simulated
policy sees exactly what the hardware would see, including rounding and
saturation artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FixedPointCodec", "quantize_ratio"]


@dataclass(frozen=True)
class FixedPointCodec:
    """Encode non-negative reals into ``bits``-wide unsigned integers.

    The codec is defined by the largest representable value ``max_value``;
    encoding maps ``[0, max_value]`` linearly onto ``[0, 2**bits - 1]`` with
    round-to-nearest and saturation above ``max_value``.

    Parameters
    ----------
    bits:
        Entry width in bits (the paper uses 10).
    max_value:
        The real value that maps to the all-ones code.
    """

    bits: int
    max_value: float

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        if not self.max_value > 0:
            raise ValueError(f"max_value must be > 0, got {self.max_value}")

    @property
    def levels(self) -> int:
        """Number of representable codes (``2**bits``)."""
        return 1 << self.bits

    @property
    def scale(self) -> float:
        """Real-value step per code."""
        return self.max_value / (self.levels - 1)

    def encode(self, value: float) -> int:
        """Quantise ``value`` to a code, saturating at the top code.

        Negative inputs are clamped to zero (priorities are non-negative).
        """
        if value <= 0:
            return 0
        code = round(value / self.scale)
        return min(code, self.levels - 1)

    def decode(self, code: int) -> float:
        """Return the real value represented by ``code``."""
        if not 0 <= code < self.levels:
            raise ValueError(f"code {code} out of range for {self.bits}-bit codec")
        return code * self.scale


def quantize_ratio(numer: float, denom: float, codec: FixedPointCodec) -> int:
    """Quantise ``numer / denom`` with the given codec.

    A zero (or negative) denominator yields the top code: in the controller
    this case never reaches the table (cores with zero pending reads are
    skipped), but property tests exercise it and saturation is the safe
    hardware behaviour.
    """
    if denom <= 0:
        return codec.levels - 1
    return codec.encode(numer / denom)
