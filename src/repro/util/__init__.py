"""Small shared utilities: deterministic RNG streams, fixed-point helpers,
and unit conversions between wall-clock time and CPU cycles.

Everything in the simulator that needs randomness draws from a
:class:`~repro.util.rng.RngStream` derived from a single experiment seed, so
every run is exactly reproducible.
"""

from repro.util.fixedpoint import FixedPointCodec, quantize_ratio
from repro.util.rng import RngStream, derive_seed
from repro.util.units import (
    CPU_FREQ_HZ,
    bytes_per_sec_to_gbps,
    gbps,
    ns_to_cycles,
    seconds,
)

__all__ = [
    "CPU_FREQ_HZ",
    "FixedPointCodec",
    "RngStream",
    "bytes_per_sec_to_gbps",
    "derive_seed",
    "gbps",
    "ns_to_cycles",
    "quantize_ratio",
    "seconds",
]
