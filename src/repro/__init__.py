"""repro — reproduction of *Memory Access Scheduling Schemes for Systems
with Multi-Core Processors* (Zheng, Lin, Zhang, Zhu; ICPP 2008).

The package provides, from scratch, everything the paper's evaluation
needs: a trace-driven multi-core model, a DDR2 memory system, a
policy-driven memory controller, the ME-LREQ scheduling scheme and every
baseline it is compared against, synthetic SPEC CPU2000-like workloads,
and experiment harnesses for each table and figure.

Quick start::

    from repro import run_multicore, workload_by_name, MeProfiler

    mix = workload_by_name("4MEM-1")
    prof = MeProfiler(inst_budget=20_000)
    me = prof.me_values(mix)
    result = run_multicore(mix, "ME-LREQ", inst_budget=30_000, me_values=me)
    print(result.policy_name, [f"{c.ipc:.2f}" for c in result.per_core])

See DESIGN.md for the architecture and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.cache.prefetch import PrefetchConfig
from repro.config import (
    CacheConfig,
    CacheHierarchyConfig,
    ControllerConfig,
    CoreConfig,
    DramTimingConfig,
    DramTopologyConfig,
    SystemConfig,
)
from repro.core import (
    MeLreqPolicy,
    OnlineMeLreqPolicy,
    PriorityTable,
    SchedulingPolicy,
    available_policies,
    make_policy,
)
from repro.metrics import MeProfiler, memory_efficiency, smt_speedup, unfairness
from repro.sim import (
    CoreResult,
    MultiCoreSystem,
    RunResult,
    run_multicore,
    run_single_core,
)
from repro.telemetry import Telemetry
from repro.workloads import (
    APPS,
    WORKLOAD_MIXES,
    app_by_code,
    app_by_name,
    mixes_for,
    workload_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "APPS",
    "CacheConfig",
    "CacheHierarchyConfig",
    "ControllerConfig",
    "CoreConfig",
    "CoreResult",
    "DramTimingConfig",
    "DramTopologyConfig",
    "MeLreqPolicy",
    "MeProfiler",
    "MultiCoreSystem",
    "OnlineMeLreqPolicy",
    "PrefetchConfig",
    "PriorityTable",
    "RunResult",
    "SchedulingPolicy",
    "SystemConfig",
    "WORKLOAD_MIXES",
    "app_by_code",
    "app_by_name",
    "available_policies",
    "make_policy",
    "memory_efficiency",
    "mixes_for",
    "run_multicore",
    "run_single_core",
    "smt_speedup",
    "unfairness",
    "workload_by_name",
]
