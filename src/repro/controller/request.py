"""Memory request record.

One :class:`MemoryRequest` represents a full cache-line read or write moving
between the last-level cache and DRAM.  Requests are created by the cache
hierarchy (L2 misses and dirty writebacks) and consumed by the memory
controller; completion is reported back through an optional callback.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dram.address import DramCoord

__all__ = ["MemoryRequest"]


class MemoryRequest:
    """A line-granularity DRAM read or write.

    Attributes
    ----------
    addr:
        Line-aligned physical byte address.
    coord:
        Decoded DRAM coordinate (channel/bank/row/col), filled by the
        controller at enqueue time.  Assigning it also mirrors ``bank``
        and ``row`` into plain slots: the scheduler's candidate scans
        touch those two fields for every queued request at every
        scheduling point, and the direct slot read saves the ``coord``
        indirection on that path.
    core_id:
        Originating core — the identity every core-aware policy keys on.
    is_write:
        ``True`` for writebacks, ``False`` for demand/line-fill reads.
    is_prefetch:
        Line fill issued speculatively by the stream prefetcher; served
        only when no demand read wants the channel, and excluded from the
        per-core pending-read counters the policies consult.
    arrival_cycle:
        Cycle the request entered the controller buffer.
    seq:
        Controller-assigned monotone sequence number; the age tie-breaker
        that realises FCFS order.
    on_complete:
        Callback ``fn(request, done_cycle)`` invoked when read data is
        returned to the core side (reads only; writes complete silently).
    """

    __slots__ = (
        "addr",
        "_coord",
        "bank",
        "row",
        "core_id",
        "is_write",
        "is_prefetch",
        "arrival_cycle",
        "seq",
        "on_complete",
        "issue_cycle",
        "done_cycle",
        "row_hit",
        "span",
    )

    def __init__(
        self,
        addr: int,
        core_id: int,
        is_write: bool,
        arrival_cycle: int,
        on_complete: Optional[Callable[["MemoryRequest", int], None]] = None,
        is_prefetch: bool = False,
    ) -> None:
        self.addr = addr
        self.core_id = core_id
        self.is_write = is_write
        self.is_prefetch = is_prefetch
        self.arrival_cycle = arrival_cycle
        self.on_complete = on_complete
        self._coord: DramCoord | None = None
        self.bank: int = -1
        self.row: int = -1
        self.seq: int = -1
        #: filled by the controller when the transaction is committed
        self.issue_cycle: int = -1
        self.done_cycle: int = -1
        self.row_hit: bool = False
        #: lifecycle span when this request was sampled for tracing
        #: (:mod:`repro.telemetry.spans`), else None
        self.span = None

    @property
    def coord(self) -> DramCoord | None:
        return self._coord

    @coord.setter
    def coord(self, c: DramCoord | None) -> None:
        self._coord = c
        if c is not None:
            self.bank = c.bank
            self.row = c.row

    @property
    def latency(self) -> int:
        """Arrival-to-data latency in cycles (valid once completed)."""
        if self.done_cycle < 0:
            raise ValueError("request has not completed")
        return self.done_cycle - self.arrival_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"MemoryRequest({kind} core={self.core_id} addr={self.addr:#x} "
            f"t={self.arrival_cycle})"
        )
