"""Scheduling-decision logging and analysis.

A policy's aggregate effect (Figure 2's speedups) often needs explaining
at the level of individual decisions: who won each burst slot, was it a
row hit, how many candidates were passed over, what were the pending
counts.  :class:`DecisionLog` wraps a controller's policy to capture
exactly that, with summaries for service share, hit-chain structure and
win-by-priority-vs-age attribution.

Attach before running::

    log = DecisionLog.attach(system.controller)
    system.run()
    print(log.summary(num_cores=4))

When a :class:`~repro.telemetry.hub.Telemetry` hub is supplied, every
decision is additionally published on the hub's event bus (one
``"decision"`` instant per burst slot, on the winning channel's track),
so decisions land in the same exported trace as drain windows and the
sampled series.  Passing ``telemetry=`` changes where records *also* go,
never what this class's own API returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = ["Decision", "DecisionLog"]


@dataclass(frozen=True)
class Decision:
    """One committed scheduling decision."""

    cycle: int
    channel: int
    core_id: int
    is_write: bool
    row_hit: bool
    num_candidates: int
    #: per-core pending read counts at decision time
    pending_reads: tuple[int, ...]
    #: True when an older request of another core was passed over
    overtook_older: bool


class DecisionLog:
    """Captures every policy selection made by one controller."""

    def __init__(self) -> None:
        self.decisions: list[Decision] = []

    # -- attachment -----------------------------------------------------------

    @classmethod
    def attach(
        cls,
        controller,
        telemetry: "Telemetry | None" = None,
        track: str | None = None,
    ) -> "DecisionLog":
        """Wrap ``controller``'s policy so selections are recorded.

        With ``telemetry`` given, each decision is also emitted on the
        shared telemetry bus as a ``"decision"`` instant event.  The bus
        track defaults to ``ch{decision.channel}``; pass ``track`` to
        override it (split sub-controllers see every coordinate re-homed
        to channel 0, so they need an explicit per-channel track).
        """
        log = cls()
        policy = controller.policy
        orig_read = policy.select_read
        orig_write = policy.select_write
        bus = telemetry.bus if telemetry is not None else None

        def wrap(orig, is_write):
            def select(candidates, ctx):
                chosen = orig(candidates, ctx)
                # Reordering is judged against the whole same-kind queue of
                # this channel, not just the candidates the policy saw —
                # the controller's hit-first/bank-ready filters themselves
                # reorder, and that belongs in the metric.
                queue = ctx.queues.writes if is_write else ctx.queues.reads
                overtook = any(
                    r.seq < chosen.seq
                    and r.coord.channel == ctx.channel
                    and r.arrival_cycle <= ctx.now
                    for r in queue
                )
                d = Decision(
                    cycle=ctx.now,
                    channel=ctx.channel,
                    core_id=chosen.core_id,
                    is_write=is_write,
                    row_hit=ctx.is_row_hit(chosen),
                    num_candidates=len(candidates),
                    pending_reads=tuple(ctx.queues.pending_reads),
                    overtook_older=overtook,
                )
                log.decisions.append(d)
                if bus is not None:
                    bus.emit(
                        "decision",
                        "instant",
                        d.cycle,
                        track if track is not None else f"ch{d.channel}",
                        core=d.core_id,
                        write=d.is_write,
                        hit=d.row_hit,
                        candidates=d.num_candidates,
                        overtook=d.overtook_older,
                    )
                return chosen

            return select

        policy.select_read = wrap(orig_read, False)
        policy.select_write = wrap(orig_write, True)
        return log

    # -- analyses ---------------------------------------------------------------

    def service_share(self, num_cores: int) -> tuple[float, ...]:
        """Fraction of decisions won by each core."""
        if not self.decisions:
            return tuple(0.0 for _ in range(num_cores))
        counts = [0] * num_cores
        for d in self.decisions:
            counts[d.core_id] += 1
        total = len(self.decisions)
        return tuple(c / total for c in counts)

    def reorder_rate(self) -> float:
        """Fraction of decisions that passed over an older request — how
        far the policy departs from FCFS."""
        if not self.decisions:
            return 0.0
        return sum(d.overtook_older for d in self.decisions) / len(self.decisions)

    def hit_rate(self) -> float:
        """Row-hit fraction among logged decisions."""
        if not self.decisions:
            return 0.0
        return sum(d.row_hit for d in self.decisions) / len(self.decisions)

    def mean_run_length(self) -> float:
        """Average length of consecutive same-core service runs per
        channel — the 'serve one core continuously' structure the paper's
        Section 1 discusses."""
        runs = 0
        total = 0
        last_core: dict[int, int] = {}
        for d in self.decisions:
            if last_core.get(d.channel) != d.core_id:
                runs += 1
                last_core[d.channel] = d.core_id
            total += 1
        return total / runs if runs else 0.0

    def summary(self, num_cores: int) -> str:
        """One-screen text summary."""
        share = self.service_share(num_cores)
        lines = [
            f"decisions logged: {len(self.decisions)}",
            f"reorder rate (vs FCFS): {self.reorder_rate():.1%}",
            f"row-hit decisions:      {self.hit_rate():.1%}",
            f"mean same-core run:     {self.mean_run_length():.2f}",
            "service share: "
            + " ".join(f"core{i}={s:.1%}" for i, s in enumerate(share)),
        ]
        return "\n".join(lines)
