"""Controller request queues with per-core occupancy counters.

The paper's controller (Section 3.2) keeps a read queue and a write queue
inside one shared ``buffer_entries``-deep buffer, plus, per core, counters
of outstanding read and write requests.  Those counters are exactly what
LREQ and ME-LREQ consult, so they are maintained here, incrementally, rather
than recomputed by scanning.

Queues are small (64 entries), so plain lists with linear scans at
scheduling time are both simple and fast enough; profiling on the benchmark
workloads showed the scheduler scan is not the simulation bottleneck.
"""

from __future__ import annotations

from typing import Iterable

from repro.controller.request import MemoryRequest

__all__ = ["RequestQueues"]


class RequestQueues:
    """Shared read/write request buffer with per-core counters."""

    __slots__ = (
        "capacity",
        "num_cores",
        "reads",
        "writes",
        "pending_reads",
        "pending_writes",
        "_next_seq",
    )

    def __init__(self, capacity: int, num_cores: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.capacity = capacity
        self.num_cores = num_cores
        self.reads: list[MemoryRequest] = []
        self.writes: list[MemoryRequest] = []
        #: outstanding read/write request counts per core (queue occupancy)
        self.pending_reads = [0] * num_cores
        self.pending_writes = [0] * num_cores
        self._next_seq = 0

    # -- capacity ------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self.reads) + len(self.writes)

    @property
    def is_full(self) -> bool:
        return self.occupancy >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - self.occupancy

    # -- mutation ------------------------------------------------------------

    def add(self, req: MemoryRequest) -> None:
        """Insert ``req``, assigning its age sequence number.

        Raises
        ------
        OverflowError
            If the buffer is full — callers must check :attr:`is_full`
            first and apply back-pressure to the core.
        """
        if self.is_full:
            raise OverflowError("controller buffer full")
        if not 0 <= req.core_id < self.num_cores:
            raise ValueError(f"core_id {req.core_id} out of range")
        req.seq = self._next_seq
        self._next_seq += 1
        if req.is_write:
            self.writes.append(req)
            self.pending_writes[req.core_id] += 1
        else:
            self.reads.append(req)
            # Prefetches ride the read queue but are invisible to the
            # pending-read counters LREQ/ME-LREQ consult (the paper's
            # counters track demand reads).
            if not req.is_prefetch:
                self.pending_reads[req.core_id] += 1

    def remove(self, req: MemoryRequest) -> None:
        """Remove a scheduled request and release its counter."""
        if req.is_write:
            self.writes.remove(req)
            self.pending_writes[req.core_id] -= 1
        else:
            self.reads.remove(req)
            if not req.is_prefetch:
                self.pending_reads[req.core_id] -= 1

    # -- views ---------------------------------------------------------------

    def reads_for_channel(self, channel: int) -> list[MemoryRequest]:
        """Pending reads whose line maps to ``channel`` (age order)."""
        return [r for r in self.reads if r.coord.channel == channel]

    def writes_for_channel(self, channel: int) -> list[MemoryRequest]:
        """Pending writes whose line maps to ``channel`` (age order)."""
        return [w for w in self.writes if w.coord.channel == channel]

    def any_for_bank(self, channel: int, bank: int, row: int) -> bool:
        """Is any queued request (read or write) targeting this open row?

        This is the controller-managed page-policy query: keep the row open
        iff a queued hit exists.
        """
        for r in self.reads:
            c = r.coord
            if c.channel == channel and c.bank == bank and c.row == row:
                return True
        for w in self.writes:
            c = w.coord
            if c.channel == channel and c.bank == bank and c.row == row:
                return True
        return False

    def cores_with_reads(self) -> Iterable[int]:
        """Core ids that currently have at least one pending read."""
        return (i for i, n in enumerate(self.pending_reads) if n > 0)

    def __len__(self) -> int:
        return self.occupancy
