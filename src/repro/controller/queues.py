"""Controller request queues with per-core occupancy counters.

The paper's controller (Section 3.2) keeps a read queue and a write queue
inside one shared ``buffer_entries``-deep buffer, plus, per core, counters
of outstanding read and write requests.  Those counters are exactly what
LREQ and ME-LREQ consult, so they are maintained here, incrementally, rather
than recomputed by scanning.

Queues are small (64 entries), so plain lists with linear scans at
scheduling time are both simple and fast enough; profiling on the benchmark
workloads showed the scheduler scan is not the simulation bottleneck.
"""

from __future__ import annotations

from typing import Iterable

from repro.controller.request import MemoryRequest

__all__ = ["RequestQueues"]


class RequestQueues:
    """Shared read/write request buffer with per-core counters."""

    __slots__ = (
        "capacity",
        "num_cores",
        "reads",
        "writes",
        "reads_by_ch",
        "writes_by_ch",
        "pending_reads",
        "pending_writes",
        "occupancy",
        "_next_seq",
    )

    def __init__(self, capacity: int, num_cores: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.capacity = capacity
        self.num_cores = num_cores
        self.reads: list[MemoryRequest] = []
        self.writes: list[MemoryRequest] = []
        #: per-channel views of the two queues, maintained incrementally in
        #: age order (grown on demand as channels appear).  The scheduler
        #: consults one channel per scheduling point, so these spare it a
        #: full-buffer scan each time.  Treat as read-only outside this
        #: class; requests without a resolved ``coord`` are not indexed.
        self.reads_by_ch: list[list[MemoryRequest]] = []
        self.writes_by_ch: list[list[MemoryRequest]] = []
        #: outstanding read/write request counts per core (queue occupancy)
        self.pending_reads = [0] * num_cores
        self.pending_writes = [0] * num_cores
        #: total buffered requests — a plain counter, not a property: the
        #: full/space test runs on every access retry and must be O(1)
        self.occupancy = 0
        self._next_seq = 0

    # -- capacity ------------------------------------------------------------

    @property
    def is_full(self) -> bool:
        return self.occupancy >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - self.occupancy

    # -- mutation ------------------------------------------------------------

    def add(self, req: MemoryRequest) -> None:
        """Insert ``req``, assigning its age sequence number.

        Raises
        ------
        OverflowError
            If the buffer is full — callers must check :attr:`is_full`
            first and apply back-pressure to the core.
        """
        if self.occupancy >= self.capacity:
            raise OverflowError("controller buffer full")
        if not 0 <= req.core_id < self.num_cores:
            raise ValueError(f"core_id {req.core_id} out of range")
        req.seq = self._next_seq
        self._next_seq += 1
        self.occupancy += 1
        if req.is_write:
            self.writes.append(req)
            self.pending_writes[req.core_id] += 1
        else:
            self.reads.append(req)
            # Prefetches ride the read queue but are invisible to the
            # pending-read counters LREQ/ME-LREQ consult (the paper's
            # counters track demand reads).
            if not req.is_prefetch:
                self.pending_reads[req.core_id] += 1
        coord = req.coord
        if coord is not None:
            by_ch = self.writes_by_ch if req.is_write else self.reads_by_ch
            ch = coord.channel
            while len(by_ch) <= ch:
                by_ch.append([])
            by_ch[ch].append(req)

    def remove(self, req: MemoryRequest) -> None:
        """Remove a scheduled request and release its counter."""
        self.occupancy -= 1
        if req.is_write:
            self.writes.remove(req)
            self.pending_writes[req.core_id] -= 1
        else:
            self.reads.remove(req)
            if not req.is_prefetch:
                self.pending_reads[req.core_id] -= 1
        coord = req.coord
        if coord is not None:
            by_ch = self.writes_by_ch if req.is_write else self.reads_by_ch
            by_ch[coord.channel].remove(req)

    # -- views ---------------------------------------------------------------

    def reads_for_channel(self, channel: int) -> list[MemoryRequest]:
        """Pending reads whose line maps to ``channel`` (age order)."""
        by_ch = self.reads_by_ch
        return list(by_ch[channel]) if channel < len(by_ch) else []

    def writes_for_channel(self, channel: int) -> list[MemoryRequest]:
        """Pending writes whose line maps to ``channel`` (age order)."""
        by_ch = self.writes_by_ch
        return list(by_ch[channel]) if channel < len(by_ch) else []

    def any_for_bank(self, channel: int, bank: int, row: int) -> bool:
        """Is any queued request (read or write) targeting this open row?

        This is the controller-managed page-policy query: keep the row open
        iff a queued hit exists.
        """
        if channel < len(self.reads_by_ch):
            for r in self.reads_by_ch[channel]:
                if r.bank == bank and r.row == row:
                    return True
        if channel < len(self.writes_by_ch):
            for w in self.writes_by_ch[channel]:
                if w.bank == bank and w.row == row:
                    return True
        return False

    def cores_with_reads(self) -> Iterable[int]:
        """Core ids that currently have at least one pending read."""
        return (i for i, n in enumerate(self.pending_reads) if n > 0)

    def __len__(self) -> int:
        return self.occupancy
