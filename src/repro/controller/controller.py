"""The memory controller: per-channel scheduling, write drain, statistics.

This is the component the paper modifies.  Responsibilities:

* accept line requests from the cache hierarchy into the shared buffer
  (back-pressure when the 64-entry buffer is full);
* at each per-channel scheduling point, choose the next transaction via the
  active :class:`~repro.core.policy.SchedulingPolicy` — reads normally,
  writes when the drain hysteresis is engaged (write queue above half the
  buffer, drain until a quarter; Section 3.2/4.1) or opportunistically when
  a channel has no pending reads;
* decide the page policy per transaction (close-page default: keep the row
  open only while another queued request targets it);
* add the fixed controller overhead (15 ns) to every read's return path and
  deliver completions back to the cores through the event engine.

Scheduling cadence: one transaction is committed per channel per burst
slot — the next decision point is the previous burst's data-start cycle, so
bank preparation (ACT/PRE) overlaps data transfer, giving bank-level
parallelism without letting the scheduler commit far into the future.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.config import ControllerConfig
from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest
from repro.core.policy import SchedulingContext, SchedulingPolicy
from repro.dram.dram_system import DramSystem
from repro.util.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EventEngine
    from repro.telemetry.hub import Telemetry

__all__ = ["ControllerStats", "MemoryController"]


def _min_opt(a: int | None, b: int | None) -> int | None:
    """Minimum of two optional cycles."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a < b else b


class ControllerStats:
    """Per-core and global memory-traffic statistics."""

    __slots__ = (
        "read_count",
        "read_latency_sum",
        "read_latency_max",
        "bytes_read",
        "bytes_written",
        "write_count",
        "prefetch_count",
        "read_row_hits",
        "drain_entries",
    )

    def __init__(self, num_cores: int) -> None:
        self.read_count = [0] * num_cores
        self.read_latency_sum = [0] * num_cores
        self.read_latency_max = [0] * num_cores
        self.bytes_read = [0] * num_cores
        self.bytes_written = [0] * num_cores
        self.write_count = [0] * num_cores
        #: speculative line fills served (kept out of the demand read
        #: latency statistics, but counted in bandwidth)
        self.prefetch_count = [0] * num_cores
        self.read_row_hits = 0
        self.drain_entries = 0

    def avg_read_latency(self, core_id: int | None = None) -> float:
        """Average read latency in cycles, per core or overall."""
        if core_id is None:
            n = sum(self.read_count)
            s = sum(self.read_latency_sum)
        else:
            n = self.read_count[core_id]
            s = self.read_latency_sum[core_id]
        return s / n if n else 0.0

    def total_bytes(self, core_id: int) -> int:
        """All DRAM bytes moved on behalf of ``core_id`` (reads + writes)."""
        return self.bytes_read[core_id] + self.bytes_written[core_id]


class MemoryController:
    """Policy-driven DDR2 memory controller."""

    def __init__(
        self,
        config: ControllerConfig,
        dram: DramSystem,
        policy: SchedulingPolicy,
        num_cores: int,
        engine: "EventEngine",
        rng: RngStream,
        line_bytes: int = 64,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        config.validate()
        self.config = config
        self.dram = dram
        self.policy = policy
        self.num_cores = num_cores
        self.engine = engine
        self.rng = rng
        self.line_bytes = line_bytes
        self.queues = RequestQueues(config.buffer_entries, num_cores)
        self.stats = ControllerStats(num_cores)
        self.drain_mode = False
        #: telemetry hub; drain-mode transitions publish spans on its bus
        #: (None in normal runs — the guard is only evaluated on the rare
        #: hysteresis transitions, never per request)
        self.telemetry = telemetry
        #: bus track drain spans render on (split controllers override so
        #: per-channel spans don't collide on one track)
        self.telemetry_track = "controller"
        #: request-lifecycle span collector (None unless the hub captures
        #: spans; the per-commit guard is one attribute test)
        self.spans = telemetry.spans if telemetry is not None else None
        self.refresh = None
        if config.refresh_enabled:
            from repro.dram.refresh import RefreshScheduler

            self.refresh = RefreshScheduler(len(dram.channels))
        #: callbacks waiting for a free buffer slot (stalled cores)
        self._space_waiters: list[Callable[[int], None]] = []
        #: per-channel flag: a scheduler event is already queued
        self._sched_pending = [False] * len(dram.channels)
        #: bank-ready eligibility horizon offset (see _bank_ready_filter)
        self._ready_horizon = 2 * dram.timing.t_burst
        policy.setup(num_cores, rng.child("policy"))
        #: reusable scheduling context — one per controller, mutated at
        #: each scheduling point instead of allocated (policies only read
        #: it during the select call; nothing retains it).  queues/dram/rng
        #: never change and ``hits_prefiltered`` is a property of the
        #: bound policy, so only ``now``/``channel`` vary.
        self._ctx = SchedulingContext(
            0, 0, self.queues, self.dram, self.rng,
            hits_prefiltered=policy.hit_first_global,
        )

    # -- request intake --------------------------------------------------------

    def can_accept(self) -> bool:
        """Whether the shared buffer has a free slot."""
        q = self.queues
        return q.occupancy < q.capacity

    def enqueue(self, req: MemoryRequest, now: int) -> bool:
        """Accept ``req`` into the buffer; returns ``False`` when full.

        On ``False`` the caller must stall and register via
        :meth:`wait_for_space` to be re-woken.
        """
        queues = self.queues
        if queues.occupancy >= queues.capacity:
            return False
        coord = self.dram.coord(req.addr)
        req.coord = coord
        req.arrival_cycle = now
        self.queues.add(req)
        self._update_drain_mode(now)
        self._kick_channel(coord.channel, now)
        return True

    def wait_for_space(self, callback: Callable[[int], None]) -> None:
        """Register a one-shot callback for the next freed buffer slot."""
        self._space_waiters.append(callback)

    # -- scheduling ------------------------------------------------------------

    def _update_drain_mode(self, now: int) -> None:
        nw = len(self.queues.writes)
        if not self.drain_mode and nw >= self.config.write_drain_high:
            self.drain_mode = True
            self.stats.drain_entries += 1
            if self.telemetry is not None:
                self.telemetry.bus.emit(
                    "write_drain", "begin", now, self.telemetry_track, writes=nw
                )
        elif self.drain_mode and nw <= self.config.write_drain_low:
            self.drain_mode = False
            if self.telemetry is not None:
                self.telemetry.bus.emit(
                    "write_drain", "end", now, self.telemetry_track, writes=nw
                )

    def _kick_channel(self, channel: int, now: int) -> None:
        """Ensure a scheduler event is queued for ``channel``."""
        if self._sched_pending[channel]:
            return
        self._sched_pending[channel] = True
        # Inlined Channel.earliest_issue — this runs once per enqueue AND
        # once per commit, so the method call is worth flattening.
        busy = self.dram.channels[channel].busy_until
        self.engine.schedule(
            busy if busy > now else now, self._on_schedule_point, channel
        )

    def _on_schedule_point(self, now: int, channel: int) -> None:
        self._sched_pending[channel] = False
        self._schedule_one(channel, now)

    def _candidates(
        self, channel: int, now: int
    ) -> tuple[list[MemoryRequest], bool, int | None]:
        """Schedulable candidates for a channel.

        Returns ``(candidates, is_write, next_arrival)``.  Requests whose
        ``arrival_cycle`` lies in the future are invisible — cores running
        inside their bounded fetch lookahead may enqueue future-dated
        requests, and serving one early would break causality.
        ``next_arrival`` is the earliest such future arrival (to re-arm the
        scheduler) or ``None``.
        """
        self._update_drain_mode(now)
        # One pass per queue: partition by kind *and* apply the bank-ready
        # eligibility filter (see :meth:`_bank_ready_filter` for its
        # rationale) in the same loop.  ``*_wake`` carries the earliest
        # cycle a bank-busy request of that kind becomes eligible; it only
        # matters when the corresponding ready list comes back empty —
        # exactly the contract the two-pass version had.
        banks = self.dram.channels[channel].banks
        # One ready-cycle snapshot per scheduling point: list indexing in
        # the per-request loops below is much cheaper than the
        # ``banks[i].ready_cycle`` attribute chase (bank state cannot
        # change between here and the commit this call leads to).
        ready_by_bank = [b.ready_cycle for b in banks]
        horizon = now + self._ready_horizon
        demand: list[MemoryRequest] = []
        prefetch: list[MemoryRequest] = []
        writes: list[MemoryRequest] = []
        d_wake: int | None = None
        p_wake: int | None = None
        w_wake: int | None = None
        future: int | None = None
        qs = self.queues
        rbc = qs.reads_by_ch
        wbc = qs.writes_by_ch
        any_demand = any_prefetch = any_write = False
        for r in rbc[channel] if channel < len(rbc) else ():
            arrival = r.arrival_cycle
            if arrival <= now:
                t = ready_by_bank[r.bank]
                if r.is_prefetch:
                    any_prefetch = True
                    if t <= horizon:
                        prefetch.append(r)
                    elif p_wake is None or t < p_wake:
                        p_wake = t
                else:
                    any_demand = True
                    if t <= horizon:
                        demand.append(r)
                    elif d_wake is None or t < d_wake:
                        d_wake = t
            elif future is None or arrival < future:
                future = arrival
        for w in wbc[channel] if channel < len(wbc) else ():
            arrival = w.arrival_cycle
            if arrival <= now:
                any_write = True
                t = ready_by_bank[w.bank]
                if t <= horizon:
                    writes.append(w)
                elif w_wake is None or t < w_wake:
                    w_wake = t
            elif future is None or arrival < future:
                future = arrival
        if self.drain_mode and any_write:
            # Drain: writes take precedence until the low watermark.
            return writes, True, _min_opt(future, None if writes else w_wake)
        wake_all: int | None = None
        if any_demand:
            if demand:
                return demand, False, future
            wake_all = d_wake
        # Demand-first over prefetches: speculative fills only use slots no
        # demand read can.
        if any_prefetch:
            if prefetch:
                return prefetch, False, _min_opt(future, wake_all)
            wake_all = _min_opt(wake_all, p_wake)
        # Idle-channel opportunism: writes proceed when no read wants the
        # channel ('writes are scheduled after read requests').
        return writes, True, _min_opt(
            future, _min_opt(wake_all, None if writes else w_wake)
        )

    def _bank_ready_filter(
        self, channel: int, candidates: list[MemoryRequest], now: int
    ) -> tuple[list[MemoryRequest], int | None]:
        """Keep only requests whose bank can start work soon.

        The data bus serialises bursts in commit order, so committing a
        transaction to a still-busy bank would wedge the bus behind it
        (head-of-line blocking a real command scheduler never suffers).
        Requests on busy banks are therefore *ineligible*; the second
        element of the result is the earliest cycle one of them becomes
        eligible, so the scheduler can re-arm instead of starving them.
        """
        if not candidates:
            return candidates, None
        banks = self.dram.channels[channel].banks
        horizon = now + 2 * self.dram.timing.t_burst
        ready: list[MemoryRequest] = []
        wake: int | None = None
        for r in candidates:
            t = banks[r.bank].ready_cycle
            if t <= horizon:
                ready.append(r)
            elif wake is None or t < wake:
                wake = t
        return ready, (None if ready else wake)

    def _schedule_one(self, channel: int, now: int) -> None:
        if self.refresh is not None:
            usable = self.refresh.advance(channel, self.dram.channels[channel], now)
            if usable > now:
                self._kick_channel(channel, usable)
                return
        candidates, is_write, next_arrival = self._candidates(channel, now)
        if not candidates:
            if next_arrival is not None:
                self._kick_channel(channel, next_arrival)
            return  # idle; next enqueue will kick us
        ctx = self._ctx
        ctx.now = now
        ctx.channel = channel
        if ctx.hits_prefiltered and len(candidates) > 1:
            # The paper's command-level rule: row-buffer hits beat misses
            # regardless of core priority (Sections 3.2 / 4.1).  Row state
            # is probed directly on the channel's bank array — every
            # candidate is on this channel by construction.
            open_rows = [b.open_row for b in self.dram.channels[channel].banks]
            hits = [
                r for r in candidates if open_rows[r.bank] == r.row
            ]
            if hits:
                candidates = hits
        if is_write:
            req = self.policy.select_write(candidates, ctx)
        else:
            req = self.policy.select_read(candidates, ctx)
        self._commit(req, channel, now)
        # More work? Re-arm at the channel's next issue opportunity.
        if self.queues.occupancy:
            self._kick_channel(channel, now)

    def _commit(self, req: MemoryRequest, channel: int, now: int) -> None:
        coord = req.coord
        self.queues.remove(req)
        keep_open = self._keep_open_after(coord)
        timing = self.dram.execute(
            coord, now, is_write=req.is_write, keep_open=keep_open
        )
        req.issue_cycle = now
        req.row_hit = timing.row_hit
        core = req.core_id
        st = self.stats
        if req.is_write:
            req.done_cycle = timing.data_end
            st.write_count[core] += 1
            st.bytes_written[core] += self.line_bytes
        elif req.is_prefetch:
            # Speculative fill: bandwidth is real, but it is not a demand
            # read — keep it out of the latency statistics.
            req.done_cycle = timing.data_end + self.config.overhead
            st.prefetch_count[core] += 1
            st.bytes_read[core] += self.line_bytes
            if req.on_complete is not None:
                self.engine.schedule(req.done_cycle, self._deliver, req)
        else:
            # Reads pay the controller overhead on the return path.
            req.done_cycle = timing.data_end + self.config.overhead
            st.read_count[core] += 1
            lat = req.done_cycle - req.arrival_cycle
            st.read_latency_sum[core] += lat
            if lat > st.read_latency_max[core]:
                st.read_latency_max[core] = lat
            st.bytes_read[core] += self.line_bytes
            if timing.row_hit:
                st.read_row_hits += 1
            if req.on_complete is not None:
                self.engine.schedule(req.done_cycle, self._deliver, req)
        span = req.span
        if span is not None:
            # Observation only: copy the resolved stamps onto the span.
            span.arrival = req.arrival_cycle
            span.pick = now
            span.track = self.telemetry_track
            span.channel = self.dram.channels[channel].index
            span.bank = coord.bank
            span.row = coord.row
            span.bank_start = timing.start_cycle
            span.cas = timing.cas_cycle
            span.data_start = timing.data_start
            span.data_end = timing.data_end
            span.done = req.done_cycle
            span.row_hit = timing.row_hit
            span.conflict = timing.conflict
            self.spans.finish(span)
        self._notify_space(now)

    def _keep_open_after(self, coord) -> bool:
        """Page-policy decision for the row being accessed.

        Closed (paper default): keep the row latched only while another
        queued request would hit it.  Open: always keep it latched.
        """
        if self.config.page_policy == "open":
            return True
        return self.queues.any_for_bank(coord.channel, coord.bank, coord.row)

    def _deliver(self, now: int, req: MemoryRequest) -> None:
        req.on_complete(req, now)
        self.policy.on_read_complete(req.core_id, self.line_bytes, now)

    def _notify_space(self, now: int) -> None:
        if not self._space_waiters:
            return
        waiters, self._space_waiters = self._space_waiters, []
        for cb in waiters:
            cb(now)

    # -- introspection -----------------------------------------------------------

    @property
    def pending_reads_total(self) -> int:
        return len(self.queues.reads)

    @property
    def pending_writes_total(self) -> int:
        return len(self.queues.writes)
