"""Per-channel split memory controllers (architectural variant).

The paper models one controller with a 64-entry buffer shared by both
logic channels (Figure 1).  A common alternative — used by the fine-grain
multi-channel schedulers its related work cites — gives every channel its
own controller with a private buffer and private per-core counters.  That
changes policy semantics subtly: LREQ/ME-LREQ then rank cores by their
pending count *on that channel* rather than globally.

:class:`SplitControllerGroup` wraps one
:class:`~repro.controller.controller.MemoryController` per logic channel
behind the same interface the cache hierarchy uses (``can_accept`` /
``enqueue`` / ``wait_for_space`` / ``stats``), so it can be dropped into
:class:`~repro.sim.system.MultiCoreSystem` by swapping the controller —
see ``ablation: split controllers`` in the experiments.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from repro.config import ControllerConfig
from repro.controller.controller import ControllerStats, MemoryController
from repro.controller.request import MemoryRequest
from repro.core.policy import SchedulingPolicy
from repro.dram.dram_system import DramSystem
from repro.util.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EventEngine

__all__ = ["SplitControllerGroup"]


class _ChannelView:
    """A single-channel facade over the shared DRAM system.

    Each sub-controller believes it owns a one-channel DRAM: requests it
    sees all map to its channel, and ``channels[0]`` resolves to that
    channel of the real system.
    """

    __slots__ = ("_dram", "_channel")

    def __init__(self, dram: DramSystem, channel: int) -> None:
        self._dram = dram
        self._channel = channel

    @property
    def channels(self):
        return [self._dram.channels[self._channel]]

    @property
    def timing(self):
        return self._dram.timing

    def coord(self, addr: int):
        coord = self._dram.coord(addr)
        # re-home onto the view's only channel index (0)
        return replace(coord, channel=0)

    def is_row_hit(self, coord) -> bool:
        return self._dram.channels[self._channel].is_row_hit(coord.bank, coord.row)

    def execute(self, coord, now, *, is_write, keep_open):
        return self._dram.channels[self._channel].execute(
            coord.bank, coord.row, now, is_write=is_write, keep_open=keep_open
        )


class SplitControllerGroup:
    """N independent per-channel controllers behind one facade."""

    def __init__(
        self,
        config: ControllerConfig,
        dram: DramSystem,
        policies: list[SchedulingPolicy],
        num_cores: int,
        engine: "EventEngine",
        rng: RngStream,
        line_bytes: int = 64,
        telemetry=None,
    ) -> None:
        n = len(dram.channels)
        if len(policies) != n:
            raise ValueError(
                f"need one policy instance per channel ({n}), got {len(policies)}"
            )
        # Split the shared buffer evenly; keep the drain hysteresis ratios.
        per = max(config.buffer_entries // n, 2)
        sub_cfg = replace(
            config,
            buffer_entries=per,
            write_drain_high=max(per // 2, 1),
            write_drain_low=max(per // 4, 0),
        )
        self.dram = dram
        self.num_cores = num_cores
        self.line_bytes = line_bytes
        self.controllers = [
            MemoryController(
                sub_cfg,
                _ChannelView(dram, ch),
                policies[ch],
                num_cores,
                engine,
                rng.child("split", ch),
                line_bytes=line_bytes,
                telemetry=telemetry,
            )
            for ch in range(n)
        ]
        for ch, c in enumerate(self.controllers):
            c.telemetry_track = f"controller-ch{ch}"

    # -- hierarchy-facing interface ------------------------------------------

    def _route(self, addr: int) -> MemoryController:
        return self.controllers[self.dram.mapper.channel_of(addr)]

    def can_accept(self, addr: int | None = None) -> bool:
        """Whether a request to ``addr`` (or any channel) can be accepted.

        Without an address the answer is conservative: every channel must
        have room, because the caller has not told us where the line goes.
        """
        if addr is None:
            return all(c.can_accept() for c in self.controllers)
        return self._route(addr).can_accept()

    def enqueue(self, req: MemoryRequest, now: int) -> bool:
        return self._route(req.addr).enqueue(req, now)

    def wait_for_space(self, callback: Callable[[int], None]) -> None:
        # One-shot semantics like the base controller: fire once, on the
        # first sub-controller that frees a slot.
        fired = [False]

        def once(now: int) -> None:
            if not fired[0]:
                fired[0] = True
                callback(now)

        for c in self.controllers:
            c.wait_for_space(once)

    # -- aggregated statistics -------------------------------------------------

    @property
    def stats(self) -> ControllerStats:
        """Merged per-core statistics across the sub-controllers."""
        merged = ControllerStats(self.num_cores)
        for c in self.controllers:
            s = c.stats
            for i in range(self.num_cores):
                merged.read_count[i] += s.read_count[i]
                merged.read_latency_sum[i] += s.read_latency_sum[i]
                merged.read_latency_max[i] = max(
                    merged.read_latency_max[i], s.read_latency_max[i]
                )
                merged.bytes_read[i] += s.bytes_read[i]
                merged.bytes_written[i] += s.bytes_written[i]
                merged.write_count[i] += s.write_count[i]
            merged.read_row_hits += s.read_row_hits
            merged.drain_entries += s.drain_entries
        return merged

    @property
    def refresh(self):
        return None

    @property
    def queues(self):
        raise AttributeError(
            "SplitControllerGroup has per-channel queues; "
            "use .controllers[ch].queues"
        )
