"""Memory-controller substrate.

Implements the paper's controller organisation (Section 3.2 / Figure 1): a
shared request buffer split into a read queue and a write queue, per-core
outstanding-request counters, read-bypass-write with a write-drain
hysteresis (drain above half the buffer, stop below a quarter), and a
per-logic-channel scheduling point that consults a pluggable
:class:`~repro.core.policy.SchedulingPolicy`.
"""

from repro.controller.controller import MemoryController
from repro.controller.queues import RequestQueues
from repro.controller.request import MemoryRequest

__all__ = ["MemoryController", "MemoryRequest", "RequestQueues"]
