"""Fast-backend memory controller: one fused frame per scheduling point.

The object controller spends a scheduling point in a chain of calls —
``_on_schedule_point → _schedule_one → _candidates → policy → _commit →
DramSystem.execute → Channel.execute → Bank.commit`` — plus a
``ready_cycle`` snapshot listcomp and a :class:`TransactionTiming`
allocation per committed transaction.  :class:`FastMemoryController`
fuses the entire point into one method reading the struct-of-arrays bank
state of :class:`repro.dram.fast.FastChannel` directly, and routes its
two event shapes through the :class:`repro.sim.fast.FastEngine` lanes
(``kick``/``complete``) instead of the heap.

Every observable decision is transcribed from the object path, in the
same order, including:

* the drain-mode hysteresis (telemetry transitions included);
* the single-pass candidate partition with the bank-ready horizon filter
  and future-arrival invisibility (wake merging via ``_min_opt``);
* drain writes > demand reads > prefetches > idle writes precedence;
* the global hit-first prefilter and the late-bound policy ``select_*``
  call (so :class:`~repro.controller.decision_log.DecisionLog` wrappers
  attach unchanged);
* queue removal *before* the keep-open probe, stats/latency accounting,
  span stamping, the DRAM observer hook, space-waiter wakeups, and the
  re-arm kick.

The RNG draw sequence is untouched (draws happen inside the policy), so
stats are bit-identical to the object backend — the golden fingerprint
suite enforces this for every policy.

Not supported (the backend resolver falls back to the object engine):
refresh scheduling, which mutates :class:`~repro.dram.bank.Bank` objects
directly, and split per-channel controller groups.
"""

from __future__ import annotations

from repro.controller.controller import MemoryController, _min_opt
from repro.core.policy import SchedulingPolicy
from repro.dram.channel import TransactionTiming

__all__ = ["FastMemoryController"]


class FastMemoryController(MemoryController):
    """Policy-driven controller fused onto struct-of-arrays DRAM state."""

    def __init__(
        self,
        config,
        dram,
        policy,
        num_cores,
        engine,
        rng,
        line_bytes: int = 64,
        telemetry=None,
    ) -> None:
        super().__init__(
            config,
            dram,
            policy,
            num_cores,
            engine,
            rng,
            line_bytes=line_bytes,
            telemetry=telemetry,
        )
        if self.refresh is not None:
            raise ValueError(
                "fast backend does not support refresh scheduling; "
                "use backend='object'"
            )
        #: FastChannel array — scheduling reads its SoA state directly
        self._channels = dram.channels
        t = dram.timing
        self._t_rp = t.t_rp
        self._t_rcd = t.t_rcd
        self._t_cl = t.t_cl
        self._t_burst = t.t_burst
        self._t_wr = t.t_wr
        self._t_rrd = t.t_rrd
        self._t_faw = t.t_faw
        self._act_tracking = bool(t.t_rrd or t.t_faw)
        self._drain_high = config.write_drain_high
        self._drain_low = config.write_drain_low
        self._overhead = config.overhead
        self._open_page = config.page_policy == "open"
        # Address decode inlined into enqueue: the mapper memoises decoded
        # lines, so the common case is one dict probe.
        mapper = dram.mapper
        self._off_bits = mapper._off_bits
        self._decode_cache = mapper._decode_cache
        # Completion-side policy notification: the base
        # ``on_read_complete`` is a documented no-op, so skip the call
        # entirely unless the bound policy overrides it (online-ME does).
        self._on_read_complete = policy.on_read_complete
        self._notify_read = (
            getattr(policy.on_read_complete, "__func__", None)
            is not SchedulingPolicy.on_read_complete
        )
        # Pre-grow the per-channel queue views so the hot enqueue/commit
        # paths can index them unconditionally.
        nch = len(dram.channels)
        for by_ch in (self.queues.reads_by_ch, self.queues.writes_by_ch):
            while len(by_ch) < nch:
                by_ch.append([])
        engine.attach_channels(
            len(dram.channels), self._fast_point, self._fast_deliver
        )

    # -- request intake --------------------------------------------------------

    def enqueue(self, req, now: int) -> bool:
        """Fused twin of :meth:`MemoryController.enqueue`.

        Inlines the address decode (memo probe), ``RequestQueues.add``
        (capacity already checked here; core ids come from the hierarchy
        and are trusted), the drain-mode no-transition fast path and the
        decision-slot kick.  Keep in sync with the object path — every
        observable effect happens in the same order.
        """
        qs = self.queues
        if qs.occupancy >= qs.capacity:
            return False
        addr = req.addr
        coord = self._decode_cache.get(addr >> self._off_bits)
        if coord is None:
            coord = self.dram.coord(addr)
        req._coord = coord
        req.bank = coord.bank
        req.row = coord.row
        req.arrival_cycle = now
        # -- inlined RequestQueues.add --
        req.seq = qs._next_seq
        qs._next_seq += 1
        qs.occupancy += 1
        ch = coord.channel
        if req.is_write:
            qs.writes.append(req)
            qs.pending_writes[req.core_id] += 1
            qs.writes_by_ch[ch].append(req)
        else:
            qs.reads.append(req)
            if not req.is_prefetch:
                qs.pending_reads[req.core_id] += 1
            qs.reads_by_ch[ch].append(req)
        # -- drain-mode hysteresis (fast path; shared method on transition) --
        nw = len(qs.writes)
        if self.drain_mode:
            if nw <= self._drain_low:
                self._update_drain_mode(now)
        elif nw >= self._drain_high:
            self._update_drain_mode(now)
        # -- inlined _kick_channel + FastEngine.kick --
        if not self._sched_pending[ch]:
            self._sched_pending[ch] = True
            eng = self.engine
            busy = self._channels[ch].busy_until
            eng._dec_cycle[ch] = busy if busy > now else now
            eng._dec_seq[ch] = eng._seq
            eng._seq += 1
        return True

    # -- scheduling ------------------------------------------------------------

    def _kick_channel(self, channel: int, now: int) -> None:
        """Arm the engine's decision slot for ``channel`` (deduped)."""
        if self._sched_pending[channel]:
            return
        self._sched_pending[channel] = True
        busy = self._channels[channel].busy_until
        self.engine.kick(channel, busy if busy > now else now)

    def _fast_deliver(self, now: int, req) -> None:
        """Completion-lane dispatch: twin of the object ``_deliver``."""
        req.on_complete(req, now)
        if self._notify_read:
            self._on_read_complete(req.core_id, self.line_bytes, now)

    def _fast_point(self, now: int, channel: int) -> None:
        """One scheduling point, start to finish, in a single frame."""
        self._sched_pending[channel] = False
        ch = self._channels[channel]
        qs = self.queues
        # Drain-mode hysteresis: inline the no-transition fast path, defer
        # to the shared method (stats + telemetry emit) on a transition.
        nw = len(qs.writes)
        if self.drain_mode:
            if nw <= self._drain_low:
                self._update_drain_mode(now)
        elif nw >= self._drain_high:
            self._update_drain_mode(now)
        # -- candidates: lazy partition over the SoA ready array ---------
        # ``next_arrival`` is only consumed on the empty-candidates path,
        # so the common case — an eligible request exists at the
        # precedence level that wins — scans exactly one queue view and
        # skips the wake/future bookkeeping consumers entirely.  The
        # decision tree is MemoryController._candidates', case-split on
        # drain mode; beyond-horizon wake minima (``*_wake``) are ``None``
        # exactly when that kind has no arrived-but-ineligible request,
        # which is what the object path's conditional guards reduce to.
        ready_by_bank = ch.ready
        horizon = now + self._ready_horizon
        rbc = qs.reads_by_ch
        wbc = qs.writes_by_ch
        is_write = False
        candidates = None
        writes = ()
        w_wake = None
        future = None
        if self.drain_mode:
            writes = []
            any_write = False
            for w in wbc[channel]:
                arrival = w.arrival_cycle
                if arrival <= now:
                    any_write = True
                    t = ready_by_bank[w.bank]
                    if t <= horizon:
                        writes.append(w)
                    elif w_wake is None or t < w_wake:
                        w_wake = t
                elif future is None or arrival < future:
                    future = arrival
            if any_write:
                if writes:
                    candidates = writes
                    is_write = True
                else:
                    # Drain wants a write but none is bank-ready: the
                    # re-arm horizon spans *both* queues' future arrivals.
                    for r in rbc[channel]:
                        arrival = r.arrival_cycle
                        if arrival > now and (
                            future is None or arrival < future
                        ):
                            future = arrival
                    next_arrival = _min_opt(future, w_wake)
                    if next_arrival is not None:
                        self._kick_channel(channel, next_arrival)
                    return
        if candidates is None:
            demand = []
            prefetch = []
            d_wake = None
            p_wake = None
            r_future = None
            for r in rbc[channel]:
                arrival = r.arrival_cycle
                if arrival <= now:
                    t = ready_by_bank[r.bank]
                    if r.is_prefetch:
                        if t <= horizon:
                            prefetch.append(r)
                        elif p_wake is None or t < p_wake:
                            p_wake = t
                    elif t <= horizon:
                        demand.append(r)
                    elif d_wake is None or t < d_wake:
                        d_wake = t
                elif r_future is None or arrival < r_future:
                    r_future = arrival
            if demand:
                candidates = demand
            elif prefetch:
                candidates = prefetch
            else:
                if not self.drain_mode:
                    # Writes as last resort: only now is the write view
                    # scanned on the non-drain path.
                    writes = []
                    future = r_future
                    for w in wbc[channel]:
                        arrival = w.arrival_cycle
                        if arrival <= now:
                            t = ready_by_bank[w.bank]
                            if t <= horizon:
                                writes.append(w)
                            elif w_wake is None or t < w_wake:
                                w_wake = t
                        elif future is None or arrival < future:
                            future = arrival
                else:
                    # Drain scan above found no arrived write; it already
                    # holds the write-queue future and writes == [].
                    future = _min_opt(future, r_future)
                if writes:
                    candidates = writes
                    is_write = True
                else:
                    next_arrival = _min_opt(
                        future, _min_opt(_min_opt(d_wake, p_wake), w_wake)
                    )
                    if next_arrival is not None:
                        self._kick_channel(channel, next_arrival)
                    return
        # -- policy selection --
        ctx = self._ctx
        ctx.now = now
        ctx.channel = channel
        if ctx.hits_prefiltered and len(candidates) > 1:
            open_row = ch.open_row
            hits = [r for r in candidates if open_row[r.bank] == r.row]
            if hits:
                candidates = hits
        if is_write:
            req = self.policy.select_write(candidates, ctx)
        else:
            req = self.policy.select_read(candidates, ctx)
        # -- commit: fused _commit + Channel.execute + Bank.commit --
        bank = req.bank
        row = req.row
        core = req.core_id
        is_write_req = req.is_write
        # Inlined RequestQueues.remove (keep in sync): the request came
        # from this channel's view, so the per-channel list is known.
        qs.occupancy -= 1
        if is_write_req:
            qs.writes.remove(req)
            qs.pending_writes[core] -= 1
            wbc[channel].remove(req)
        else:
            qs.reads.remove(req)
            if not req.is_prefetch:
                qs.pending_reads[core] -= 1
            rbc[channel].remove(req)
        if self._open_page:
            keep_open = True
        else:
            # Inlined RequestQueues.any_for_bank over the channel views.
            keep_open = False
            for r in rbc[channel]:
                if r.bank == bank and r.row == row:
                    keep_open = True
                    break
            if not keep_open:
                for w in wbc[channel]:
                    if w.bank == bank and w.row == row:
                        keep_open = True
                        break
        rc = ready_by_bank[bank]
        start = now if now > rc else rc
        bank_start = start
        open_row = ch.open_row
        hit = open_row[bank] == row
        conflict = False
        if hit:
            cas = start
        else:
            if open_row[bank] != -1:
                start += self._t_rp
                ch.confs[bank] += 1
                conflict = True
            act = start
            if self._act_tracking:
                act_times = ch._act_times
                if self._t_rrd and act_times:
                    t = act_times[-1] + self._t_rrd
                    if t > act:
                        act = t
                if self._t_faw and len(act_times) == 4:
                    t = act_times[0] + self._t_faw
                    if t > act:
                        act = t
                act_times.append(act)
            cas = act + self._t_rcd
        data_start = cas + self._t_cl
        if data_start < ch.bus_free_cycle:
            data_start = ch.bus_free_cycle
        data_end = data_start + self._t_burst
        ch.bus_free_cycle = data_end
        ch.busy_until = now + self._t_burst
        if hit:
            ch.hits[bank] += 1
        else:
            ch.acts[bank] += 1
        recovery = self._t_wr if is_write_req else 0
        if keep_open:
            open_row[bank] = row
            ready_by_bank[bank] = data_end + recovery
        else:
            open_row[bank] = -1
            ready_by_bank[bank] = data_end + recovery + self._t_rp
        ch.transactions += 1
        if is_write_req:
            ch.writes += 1
        ch.data_cycles += data_end - data_start
        dram = self.dram
        if dram.observer is not None:
            timing = TransactionTiming(
                cas_cycle=cas,
                data_start=data_start,
                data_end=data_end,
                row_hit=hit,
                start_cycle=bank_start,
                conflict=conflict,
            )
            dram.observer(req.coord, timing, is_write_req, keep_open, conflict)
        req.issue_cycle = now
        req.row_hit = hit
        st = self.stats
        if is_write_req:
            req.done_cycle = data_end
            st.write_count[core] += 1
            st.bytes_written[core] += self.line_bytes
        elif req.is_prefetch:
            done = data_end + self._overhead
            req.done_cycle = done
            st.prefetch_count[core] += 1
            st.bytes_read[core] += self.line_bytes
            if req.on_complete is not None:
                self.engine.complete(channel, done, req)
        else:
            done = data_end + self._overhead
            req.done_cycle = done
            st.read_count[core] += 1
            lat = done - req.arrival_cycle
            st.read_latency_sum[core] += lat
            if lat > st.read_latency_max[core]:
                st.read_latency_max[core] = lat
            st.bytes_read[core] += self.line_bytes
            if hit:
                st.read_row_hits += 1
            if req.on_complete is not None:
                self.engine.complete(channel, done, req)
        span = req.span
        if span is not None:
            coord = req.coord
            span.arrival = req.arrival_cycle
            span.pick = now
            span.track = self.telemetry_track
            span.channel = ch.index
            span.bank = coord.bank
            span.row = coord.row
            span.bank_start = bank_start
            span.cas = cas
            span.data_start = data_start
            span.data_end = data_end
            span.done = req.done_cycle
            span.row_hit = hit
            span.conflict = conflict
            self.spans.finish(span)
        if self._space_waiters:
            waiters, self._space_waiters = self._space_waiters, []
            for cb in waiters:
                cb(now)
        # More work? Re-arm at the channel's next issue opportunity
        # (inlined _kick_channel + FastEngine.kick).
        if qs.occupancy and not self._sched_pending[channel]:
            self._sched_pending[channel] = True
            eng = self.engine
            busy = ch.busy_until
            eng._dec_cycle[channel] = busy if busy > now else now
            eng._dec_seq[channel] = eng._seq
            eng._seq += 1
