"""Per-application parameters for the 26 SPEC CPU2000 models (paper Table 2).

Each entry carries the paper's metadata — the single-letter workload code,
the MEM/ILP class, and the published memory-efficiency value — plus the
synthetic-stream knobs we derived from them:

* ``mpki`` (L2 misses per kilo-instruction) is set inversely to the paper's
  ME value (high memory efficiency == few misses per instruction), scaled
  so the memory-intensive codes genuinely stress the 25.6 GB/s of the
  simulated memory system at 4–8 cores;
* ``seq_frac`` reflects the known access character of the benchmark
  (streaming FP codes high, pointer chasers like ``mcf``/``vpr`` low);
* ``burst_mean`` models memory-level parallelism (``art``/``mcf`` famously
  bursty, integer codes mostly serial misses).

The absolute profiled ME values of the reproduction differ from the
paper's (different units/testbed); what is preserved — and what the
experiments depend on — is the class split and the rank order.
EXPERIMENTS.md records measured-vs-paper values.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AppProfile", "APPS", "app_by_code", "app_by_name"]


@dataclass(frozen=True)
class AppProfile:
    """Synthetic model of one SPEC CPU2000 application."""

    name: str
    code: str  # single letter, as in Table 2
    klass: str  # "MEM" or "ILP"
    paper_me: float  # the ME value published in Table 2
    mpki: float  # target L2 misses per kilo-instruction
    seq_frac: float = 0.5  # fraction of misses that stream sequentially
    burst_mean: float = 3.0  # mean misses per burst (MLP proxy)
    #: concurrent array streams (a miss burst round-robins across them)
    n_streams: int = 4
    #: line stride per stream step; 32 lines = 2 KB keeps a stream inside
    #: one (channel, bank), walking consecutive row columns -> row-buffer
    #: locality, the property Hit-First exploits (paper Section 1)
    stride_lines: int = 32
    mem_ratio: float = 0.30  # memory instructions per instruction
    store_frac: float = 0.25  # fraction of memory ops that are stores
    hot_kb: int = 16  # L1-resident working set
    l2_set_kb: int = 48  # L2-resident working set
    l2_frac: float = 0.10  # fraction of ops hitting the L2-resident set
    #: phase behaviour (extension; 0 = stationary, the calibrated default).
    #: With a period set, the app alternates every ``phase_period`` memory
    #: ops between its nominal miss rate and ``mpki * phase_mpki_scale`` --
    #: the 'changes of running phases' the paper's online-ME sketch targets.
    phase_period: int = 0
    phase_mpki_scale: float = 0.1

    def validate(self) -> None:
        if self.klass not in ("MEM", "ILP"):
            raise ValueError(f"{self.name}: class must be MEM or ILP")
        if len(self.code) != 1 or not self.code.islower():
            raise ValueError(f"{self.name}: code must be one lowercase letter")
        if not 0 < self.mem_ratio < 1:
            raise ValueError(f"{self.name}: mem_ratio must be in (0,1)")
        if not 0 <= self.seq_frac <= 1:
            raise ValueError(f"{self.name}: seq_frac must be in [0,1]")
        if not 0 <= self.store_frac <= 1:
            raise ValueError(f"{self.name}: store_frac must be in [0,1]")
        if not 0 <= self.l2_frac <= 1:
            raise ValueError(f"{self.name}: l2_frac must be in [0,1]")
        if self.mpki < 0:
            raise ValueError(f"{self.name}: mpki must be >= 0")
        if self.burst_mean < 1:
            raise ValueError(f"{self.name}: burst_mean must be >= 1")
        if self.n_streams < 1:
            raise ValueError(f"{self.name}: n_streams must be >= 1")
        if self.stride_lines < 1:
            raise ValueError(f"{self.name}: stride_lines must be >= 1")
        if self.mpki > self.mem_ratio * 1000:
            raise ValueError(f"{self.name}: more misses than memory ops")
        if self.phase_period < 0:
            raise ValueError(f"{self.name}: phase_period must be >= 0")
        if self.phase_mpki_scale < 0:
            raise ValueError(f"{self.name}: phase_mpki_scale must be >= 0")


def _m(name, code, me, mpki, seq, burst, **kw) -> AppProfile:
    return AppProfile(
        name=name, code=code, klass="MEM", paper_me=me,
        mpki=mpki, seq_frac=seq, burst_mean=burst, **kw,
    )


def _i(name, code, me, mpki, seq, burst, **kw) -> AppProfile:
    kw.setdefault("l2_set_kb", 64)
    kw.setdefault("l2_frac", 0.15)
    return AppProfile(
        name=name, code=code, klass="ILP", paper_me=me,
        mpki=mpki, seq_frac=seq, burst_mean=burst, **kw,
    )


#: Table 2, in code order a..z.
APPS: tuple[AppProfile, ...] = (
    _i("gzip", "a", 192, 0.28, 0.5, 2.0),
    _m("wupwise", "b", 15, 5.0, 0.90, 2.0),
    _m("swim", "c", 2, 30.0, 0.95, 12.0, store_frac=0.40),
    _m("mgrid", "d", 4, 17.0, 0.90, 6.0),
    _m("applu", "e", 1, 45.0, 0.90, 12.0, store_frac=0.35),
    _m("vpr", "f", 27, 3.3, 0.20, 1.5),
    _m("gcc", "g", 22, 4.0, 0.40, 2.0),
    _i("mesa", "h", 78, 0.60, 0.60, 2.0),
    _m("galgel", "i", 8, 9.5, 0.60, 5.0, l2_frac=0.15),
    _m("art", "j", 20, 4.4, 0.30, 8.0),
    _m("mcf", "k", 1, 50.0, 0.05, 12.0, store_frac=0.10),
    _m("equake", "l", 2, 32.0, 0.50, 9.0),
    _i("crafty", "m", 222, 0.24, 0.30, 1.5, l2_frac=0.25),
    _m("facerec", "n", 40, 2.2, 0.80, 2.0),
    _i("ammp", "o", 280, 0.20, 0.40, 2.0),
    _m("lucas", "p", 1, 48.0, 0.85, 12.0, store_frac=0.30),
    _m("fma3d", "q", 4, 16.0, 0.70, 5.0),
    _i("parser", "r", 38, 1.2, 0.30, 2.0),
    _i("sixtrack", "s", 80, 0.55, 0.60, 2.0),
    _i("eon", "t", 16276, 0.005, 0.50, 1.0),
    _i("perlbmk", "u", 2923, 0.02, 0.40, 1.0),
    _m("gap", "v", 7, 10.0, 0.50, 4.0),
    _i("vortex", "w", 51, 0.90, 0.40, 2.0),
    _i("bzip2", "x", 216, 0.25, 0.60, 2.0),
    _i("twolf", "y", 951, 0.06, 0.20, 1.5),
    _i("apsi", "z", 36, 1.25, 0.60, 2.0),
)

_BY_CODE = {app.code: app for app in APPS}
_BY_NAME = {app.name: app for app in APPS}


def app_by_code(code: str) -> AppProfile:
    """Look up an application by its Table 2 single-letter code.

    >>> app_by_code("c").name
    'swim'
    """
    try:
        return _BY_CODE[code]
    except KeyError:
        raise KeyError(f"unknown application code {code!r}") from None


def app_by_name(name: str) -> AppProfile:
    """Look up an application by benchmark name (e.g. ``'mcf'``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}") from None
