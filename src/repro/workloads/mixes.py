"""The paper's Table 3 workload mixes, transcribed verbatim.

Each mix names the applications (by Table 2 code) assigned to cores
0..n-1 in order.  Two transcription caveats, preserved as-published:

* duplicates occur in the 8-core mixes (e.g. ``8MEM-2 = npqvbdfv`` runs
  ``gap`` twice) — each instance gets its own core, address space and
  trace stream;
* ``8MEM-6`` (``bygicipa``) contains the ILP codes ``y`` and ``a`` in the
  source text; we keep the published string (the scan may be imperfect)
  and note it in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.spec2000 import AppProfile, app_by_code

__all__ = ["Mix", "WORKLOAD_MIXES", "mixes_for", "workload_by_name"]


@dataclass(frozen=True)
class Mix:
    """One multiprogrammed workload."""

    name: str  # e.g. "4MEM-1"
    codes: str  # application codes, one per core, e.g. "bcde"

    @property
    def num_cores(self) -> int:
        return len(self.codes)

    @property
    def group(self) -> str:
        """'MEM' or 'MIX'."""
        return "MEM" if "MEM" in self.name else "MIX"

    def apps(self) -> tuple[AppProfile, ...]:
        """The application profiles, in core order."""
        return tuple(app_by_code(c) for c in self.codes)

    def validate(self) -> None:
        for c in self.codes:
            app_by_code(c)  # raises on bad codes


def _table3() -> tuple[Mix, ...]:
    data = {
        # 2-core
        "2MEM-1": "bc", "2MEM-2": "de", "2MEM-3": "fj",
        "2MEM-4": "kl", "2MEM-5": "np", "2MEM-6": "qv",
        "2MIX-1": "ab", "2MIX-2": "cr", "2MIX-3": "hd",
        "2MIX-4": "ez", "2MIX-5": "mf", "2MIX-6": "oj",
        # 4-core
        "4MEM-1": "bcde", "4MEM-2": "fgij", "4MEM-3": "npqv",
        "4MEM-4": "bdkl", "4MEM-5": "qvce", "4MEM-6": "cjkq",
        "4MIX-1": "arbc", "4MIX-2": "hzde", "4MIX-3": "mofj",
        "4MIX-4": "stkl", "4MIX-5": "uxnp", "4MIX-6": "ywqv",
        # 8-core
        "8MEM-1": "bcdefjkl", "8MEM-2": "npqvbdfv", "8MEM-3": "gicecjkq",
        "8MEM-4": "bcdenpqv", "8MEM-5": "qvcefjkl", "8MEM-6": "bygicipa",
        "8MIX-1": "arhzbcde", "8MIX-2": "mostfjkl", "8MIX-3": "uxywnpqv",
        "8MIX-4": "armobcfj", "8MIX-5": "uxhznpde", "8MIX-6": "stywayfk",
    }
    return tuple(Mix(name, codes) for name, codes in data.items())


#: Table 3 in full.
WORKLOAD_MIXES: tuple[Mix, ...] = _table3()

_BY_NAME = {m.name: m for m in WORKLOAD_MIXES}


def workload_by_name(name: str) -> Mix:
    """Fetch one mix, e.g. ``workload_by_name('4MEM-1')``."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}") from None


def mixes_for(num_cores: int, group: str | None = None) -> tuple[Mix, ...]:
    """All Table 3 mixes with ``num_cores`` cores, optionally one group.

    >>> [m.name for m in mixes_for(4, "MEM")][:2]
    ['4MEM-1', '4MEM-2']
    """
    out = [m for m in WORKLOAD_MIXES if m.num_cores == num_cores]
    if group is not None:
        g = group.upper()
        if g not in ("MEM", "MIX"):
            raise ValueError("group must be 'MEM' or 'MIX'")
        out = [m for m in out if m.group == g]
    return tuple(out)
