"""Workload substrate: synthetic SPEC CPU2000-like applications and the
paper's workload mixes.

We do not have SPEC CPU2000 binaries or SimPoint traces (DESIGN.md §2), so
each of the 26 benchmarks in the paper's Table 2 is modelled as a
parameterised stochastic reference stream
(:class:`~repro.workloads.synthetic.SyntheticApp`) whose knobs — L2 misses
per kilo-instruction, spatial/row locality, miss burstiness (memory-level
parallelism), store fraction — are set per application
(:mod:`repro.workloads.spec2000`) so that the profiled class (MEM vs ILP)
and memory-efficiency rank order match the paper's Table 2.

:mod:`repro.workloads.mixes` transcribes Table 3's multiprogrammed mixes
verbatim.
"""

from repro.workloads.builder import custom_mix, random_mix, random_workload_suite
from repro.workloads.cloud import (
    CLOUD_MIXES,
    SERVICES,
    CloudMix,
    CloudStream,
    ServiceProfile,
    cloud_mix_by_name,
    cloud_system_config,
    is_cloud_codes,
    make_cloud_trace,
    service_by_code,
)
from repro.workloads.mixes import WORKLOAD_MIXES, Mix, mixes_for, workload_by_name
from repro.workloads.spec2000 import APPS, AppProfile, app_by_code, app_by_name
from repro.workloads.synthetic import SyntheticApp, make_trace

__all__ = [
    "APPS",
    "AppProfile",
    "CLOUD_MIXES",
    "CloudMix",
    "CloudStream",
    "Mix",
    "SERVICES",
    "ServiceProfile",
    "SyntheticApp",
    "WORKLOAD_MIXES",
    "app_by_code",
    "app_by_name",
    "cloud_mix_by_name",
    "cloud_system_config",
    "custom_mix",
    "is_cloud_codes",
    "make_cloud_trace",
    "make_trace",
    "mixes_for",
    "random_mix",
    "random_workload_suite",
    "service_by_code",
    "workload_by_name",
]
