"""Cloud workload family: open-loop, latency-critical request streams.

The SPEC-style synthetic applications in :mod:`repro.workloads.synthetic`
are *closed-loop*: the next memory reference is issued only after the
program makes progress, so a congested memory system throttles its own
offered load.  Datacenter services are the opposite — requests arrive
from the outside world on their own clock (open loop), keep arriving
while the memory system is backed up, and each one carries an SLO
deadline ("Memory Controller Design Under Cloud Workloads",
arXiv:1611.10316).  This module models that regime on top of the
existing trace-driven cores:

* a :class:`ServiceProfile` describes one latency-critical service — its
  arrival process, mean inter-arrival time and SLO deadline (cycles);
* :class:`CloudStream` turns a profile into a :class:`~repro.cpu.trace
  .TraceSource`: each request is one demand read of a *fresh* line from
  a huge private region (guaranteed L1/L2 miss → one DRAM request), and
  the inter-arrival time Δ is encoded as ``Δ·issue_width − 1`` plain
  instructions of gap, so an unstalled core issues requests exactly Δ
  cycles apart while the arrival clock keeps running at full fetch rate;
* a :class:`CloudMix` co-schedules service cores (uppercase codes)
  against the existing batch/analytics applications (lowercase codes).

Arrival processes (all exact-integer, all driven by labelled
:class:`~repro.util.rng.RngStream` draws — no wall clock anywhere):

``poisson``
    the discrete Poisson process: i.i.d. geometric inter-arrival gaps
    with mean ``mean_gap`` cycles (geometric is the discrete-time
    exponential, so counts per window are binomially ≈ Poisson);
``bursty``
    a two-state Markov-modulated process (calm/burst): gaps are
    geometric with mean ``calm_gap`` or ``burst_gap`` and the state
    dwells for a geometric number of *requests* with mean ``dwell``;
``diurnal``
    a Poisson process whose mean gap is scaled by a repeating integer
    load curve stepped by *arrival* time — the classic day/night load
    shape compressed to simulation scale.

Open-loop fidelity note: the cloud machine configuration
(:func:`cloud_system_config`) is a datacenter-class part — a deeper ROB
and shared resources (L2 MSHR pool, controller buffer) that *scale with
core count*.  On the paper's desktop part the 64-entry shared L2 MSHR
pool equals exactly two cores' worth of per-core MSHRs, so two streaming
batch cores can pin it for an entire run and a sparse-access service
core starves indefinitely (its measured "tail" becomes the run length —
a simulator artifact, not a queueing effect).  With the pool scaled,
backpressure binds at the DRAM controller, whose stalls are
span-stamped (:meth:`~repro.telemetry.spans.SpanCollector.note_blocked`),
so a request's measured latency *includes* the backlog wait, exactly
like a queueing delay in a real open-loop load generator — and the tail
is decided by the memory scheduler under study, not by an upstream
structural accident.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import SystemConfig
from repro.cpu.trace import MemOp
from repro.util.rng import RngStream
from repro.workloads.spec2000 import AppProfile, app_by_code
from repro.workloads.synthetic import CORE_ADDR_STRIDE, LINE

__all__ = [
    "ARRIVALS",
    "CLOUD_BUFFER_PER_CORE",
    "CLOUD_L2_MSHRS_PER_CORE",
    "CLOUD_MIXES",
    "CLOUD_REGION_LINES",
    "CLOUD_ROB_SIZE",
    "CloudMix",
    "CloudStream",
    "SERVICES",
    "ServiceProfile",
    "cloud_mix_by_name",
    "cloud_system_config",
    "is_cloud_codes",
    "make_cloud_trace",
    "service_by_code",
]

#: recognised arrival processes
ARRIVALS = ("poisson", "bursty", "diurnal")

#: request lines are drawn uniformly from this many lines (1 GiB) — far
#: beyond any cache, so every request is a compulsory DRAM read
CLOUD_REGION_LINES = 1 << 24

#: line-number base of the request region inside a core's address space
#: (disjoint from the synthetic apps' hot/stream/chase regions)
_CLOUD_BASE_LINE = 5 << 30

#: reorder-buffer size of the cloud machine: deep enough that arrival
#: generation is rarely throttled by a full ROB (whose stall would be
#: invisible to request spans); saturation then binds at the span-stamped
#: MSHR / controller-buffer resources instead
CLOUD_ROB_SIZE = 512

#: shared L2 MSHRs per core on the cloud machine (the desktop part's 64
#: total equals just two cores' worth of per-core MSHRs — see the module
#: docstring for the starvation pathology that causes)
CLOUD_L2_MSHRS_PER_CORE = 32

#: controller buffer entries per core on the cloud machine (floored at
#: the desktop part's 64 so small mixes keep the paper's queue depth)
CLOUD_BUFFER_PER_CORE = 16


@dataclass(frozen=True)
class ServiceProfile:
    """One latency-critical service: arrival process + SLO deadline.

    ``code`` is a single UPPERCASE letter — a namespace deliberately
    disjoint from the lowercase batch-application codes of Table 2, so a
    mix's code string spells out its open/closed-loop composition.
    """

    code: str
    name: str
    arrival: str  # "poisson" | "bursty" | "diurnal"
    mean_gap: int  # mean inter-arrival gap, cycles (poisson / diurnal base)
    slo: int  # SLO deadline, cycles (violated when latency > slo)
    calm_gap: int = 0  # bursty only: mean gap in the calm state
    burst_gap: int = 0  # bursty only: mean gap in the burst state
    dwell: int = 0  # bursty only: mean requests per state dwell
    curve: tuple[int, ...] = ()  # diurnal only: gap multipliers
    curve_step: int = 0  # diurnal only: cycles per curve bucket
    me_value: float = 1.0  # pinned ME rank for ME-family policies

    def validate(self) -> None:
        if len(self.code) != 1 or not self.code.isupper():
            raise ValueError(f"service code must be one uppercase letter: {self.code!r}")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.slo < 1:
            raise ValueError("slo must be >= 1 cycle")
        if self.arrival in ("poisson", "diurnal") and self.mean_gap < 1:
            raise ValueError("mean_gap must be >= 1 cycle")
        if self.arrival == "bursty":
            if self.calm_gap < 1 or self.burst_gap < 1 or self.dwell < 1:
                raise ValueError("bursty needs calm_gap/burst_gap/dwell >= 1")
            if self.burst_gap > self.calm_gap:
                raise ValueError("burst_gap must not exceed calm_gap")
        if self.arrival == "diurnal":
            if not self.curve or self.curve_step < 1:
                raise ValueError("diurnal needs a curve and curve_step >= 1")
            if any(m < 1 for m in self.curve):
                raise ValueError("curve multipliers must be >= 1")


#: the service catalogue (rates and SLOs calibrated against the DDR2
#: timing model: an uncontended read is ~150–160 cycles end to end, and
#: under the calibrated co-runs the 2-core mixes meet their SLOs, the
#: 4-core mixes show moderate policy-sensitive violation rates, and the
#: 8-core mix collapses — three distinct operating regimes)
SERVICES: tuple[ServiceProfile, ...] = (
    ServiceProfile(
        code="S", name="search", arrival="poisson", mean_gap=48, slo=800,
    ),
    ServiceProfile(
        code="K", name="kvstore", arrival="poisson", mean_gap=24, slo=650,
    ),
    ServiceProfile(
        code="B", name="burst-rpc", arrival="bursty", mean_gap=0, slo=700,
        calm_gap=64, burst_gap=6, dwell=32,
    ),
    ServiceProfile(
        code="D", name="diurnal-feed", arrival="diurnal", mean_gap=32, slo=900,
        curve=(4, 2, 1, 1, 2, 3), curve_step=2048,
    ),
)

_SERVICE_BY_CODE = {s.code: s for s in SERVICES}


def service_by_code(code: str) -> ServiceProfile:
    """Look up one service profile by its uppercase code letter."""
    try:
        return _SERVICE_BY_CODE[code]
    except KeyError:
        raise KeyError(
            f"unknown service code {code!r}; available: "
            + "".join(sorted(_SERVICE_BY_CODE))
        ) from None


def is_cloud_codes(codes: str) -> bool:
    """True when a code string contains at least one (uppercase) service."""
    return any(c.isupper() for c in codes)


# -- arrival processes -------------------------------------------------------------


def arrival_gaps(profile: ServiceProfile, rng: RngStream):
    """Infinite iterator of integer inter-arrival gaps Δ >= 1 (cycles).

    Every draw comes from ``rng`` in a fixed order, so the gap trace is a
    pure function of the stream's labels — identical across runs,
    backends and processes.
    """
    if profile.arrival == "poisson":
        p = 1.0 / profile.mean_gap
        while True:
            yield rng.geometric(p)
    elif profile.arrival == "bursty":
        p_state = 1.0 / profile.dwell
        p_calm = 1.0 / profile.calm_gap
        p_burst = 1.0 / profile.burst_gap
        calm = True
        while True:
            remaining = rng.geometric(p_state)  # requests until state flip
            p_gap = p_calm if calm else p_burst
            for _ in range(remaining):
                yield rng.geometric(p_gap)
            calm = not calm
    elif profile.arrival == "diurnal":
        t = 0  # cumulative arrival time, cycles
        curve = profile.curve
        step = profile.curve_step
        while True:
            m = curve[(t // step) % len(curve)]
            gap = rng.geometric(1.0 / (profile.mean_gap * m))
            t += gap
            yield gap
    else:  # pragma: no cover - validate() rejects this earlier
        raise ValueError(f"unknown arrival process {profile.arrival!r}")


# -- the open-loop trace source ---------------------------------------------------


class CloudStream:
    """Open-loop request stream as a :class:`~repro.cpu.trace.TraceSource`.

    Each :meth:`next_op` emits one demand read of a uniformly random
    fresh line, preceded by ``Δ·issue_width − 1`` plain instructions —
    the gap encoding that makes an unstalled ``issue_width``-wide core
    issue requests exactly Δ cycles apart.  Loads never block fetch in
    the core model (they block *commit*), so the arrival clock keeps
    ticking while earlier requests queue — the open-loop property.
    """

    __slots__ = (
        "profile",
        "base_addr",
        "issue_width",
        "requests_emitted",
        "_gaps",
        "_addr_rng",
    )

    def __init__(
        self,
        profile: ServiceProfile,
        rng: RngStream,
        base_addr: int = 0,
        issue_width: int = 4,
    ) -> None:
        profile.validate()
        if issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        self.profile = profile
        self.base_addr = base_addr
        self.issue_width = issue_width
        self.requests_emitted = 0
        self._gaps = arrival_gaps(profile, rng.child("gap"))
        self._addr_rng = rng.child("addr")

    def next_op(self) -> MemOp:
        delta = next(self._gaps)
        line = _CLOUD_BASE_LINE + self._addr_rng.randint(0, CLOUD_REGION_LINES)
        self.requests_emitted += 1
        return MemOp(delta * self.issue_width - 1, self.base_addr + line * LINE, False)


def make_cloud_trace(
    service: ServiceProfile,
    seed: int,
    phase: str = "eval",
    core_id: int = 0,
    issue_width: int = 4,
) -> CloudStream:
    """Build the open-loop stream for one service on one core.

    The RNG labels mirror :func:`repro.workloads.synthetic.make_trace`:
    ``(seed, "cloud", code, phase, core_id)`` — independent per phase and
    per core, stable across processes.
    """
    rng = RngStream(seed, "cloud", service.code, phase, core_id)
    return CloudStream(
        service, rng,
        base_addr=(core_id + 1) * CORE_ADDR_STRIDE,
        issue_width=issue_width,
    )


# -- mixes -------------------------------------------------------------------------


@dataclass(frozen=True)
class CloudMix:
    """A co-run of open-loop services and closed-loop batch applications.

    ``codes[i]`` names what core ``i`` runs: an UPPERCASE service code or
    a lowercase Table 2 application code.
    """

    name: str
    codes: str

    @property
    def num_cores(self) -> int:
        return len(self.codes)

    @property
    def group(self) -> str:
        return "CLOUD"

    def service_cores(self) -> tuple[int, ...]:
        return tuple(i for i, c in enumerate(self.codes) if c.isupper())

    def batch_cores(self) -> tuple[int, ...]:
        return tuple(i for i, c in enumerate(self.codes) if not c.isupper())

    def services(self) -> list[ServiceProfile]:
        """Service profiles in service-core order."""
        return [service_by_code(self.codes[i]) for i in self.service_cores()]

    def batch_apps(self) -> list[AppProfile]:
        """Batch application profiles in batch-core order."""
        return [app_by_code(self.codes[i]) for i in self.batch_cores()]

    def app_at(self, core_id: int) -> AppProfile:
        """The batch application profile running on one (batch) core."""
        return app_by_code(self.codes[core_id])

    def validate(self) -> None:
        if not self.codes:
            raise ValueError("cloud mix needs at least one core")
        if not self.service_cores():
            raise ValueError(f"cloud mix {self.name} has no service core")
        for c in self.codes:
            if c.isupper():
                service_by_code(c)
            else:
                app_by_code(c)


#: the named cloud mixes: every arrival model appears, co-run against
#: Table 2 batch applications at 2/4/8 cores
CLOUD_MIXES: tuple[CloudMix, ...] = (
    CloudMix(name="2CLD-1", codes="Kb"),
    CloudMix(name="2CLD-2", codes="Bc"),
    CloudMix(name="4CLD-1", codes="SKhz"),
    CloudMix(name="4CLD-2", codes="BDdz"),
    CloudMix(name="8CLD-1", codes="SKBDhzbc"),
)

_CLOUD_BY_NAME = {m.name.upper(): m for m in CLOUD_MIXES}


def cloud_mix_by_name(name: str) -> CloudMix:
    """Look up a named cloud mix (case-insensitive)."""
    try:
        return _CLOUD_BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown cloud mix {name!r}; available: "
            + ", ".join(m.name for m in CLOUD_MIXES)
        ) from None


# -- machine configuration ---------------------------------------------------------


def cloud_system_config(base: SystemConfig, num_cores: int) -> SystemConfig:
    """The cloud machine: ``base`` sized to the mix, datacenter-class.

    Three deltas against the paper's desktop part, all scaling with the
    mix so contention lands on the scheduler rather than on upstream
    structural limits (see the module docstring):

    * ROB deepened to :data:`CLOUD_ROB_SIZE` (open-loop fidelity);
    * shared L2 MSHR pool scaled to
      :data:`CLOUD_L2_MSHRS_PER_CORE` ``× num_cores`` — the desktop 64
      equals two streaming cores' demand and starves sparse cores;
    * controller buffer scaled to
      :data:`CLOUD_BUFFER_PER_CORE` ``× num_cores``, floored at the
      desktop 64 — identical up to 4 cores, deeper at 8.

    DRAM timing and cache geometry are inherited from ``base``, so batch
    cores behave comparably to the closed-loop experiments.  The deltas
    change the config digest — cloud cells never collide with eval cells
    in the result cache.
    """
    cfg = base.with_cores(num_cores)
    return replace(
        cfg,
        core=replace(cfg.core, rob_size=CLOUD_ROB_SIZE),
        caches=replace(
            cfg.caches,
            l2=replace(cfg.caches.l2, mshrs=CLOUD_L2_MSHRS_PER_CORE * num_cores),
        ),
        controller=replace(
            cfg.controller,
            buffer_entries=max(
                base.controller.buffer_entries, CLOUD_BUFFER_PER_CORE * num_cores
            ),
        ),
    )
