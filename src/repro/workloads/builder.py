"""Workload construction utilities.

Table 3's mixes were 'constructed randomly' from the classified
applications (paper Section 4.2); this module provides the same
construction procedure so studies can extend beyond the published 36
mixes: random MEM-only mixes, random MIX mixes (half memory-intensive,
half compute-intensive, like 4MIX-2 = hzde), and fully custom mixes from
explicit codes.
"""

from __future__ import annotations

from repro.util.rng import RngStream
from repro.workloads.mixes import Mix
from repro.workloads.spec2000 import APPS, app_by_code

__all__ = ["custom_mix", "random_mix", "random_workload_suite"]

_MEM_CODES = "".join(sorted(a.code for a in APPS if a.klass == "MEM"))
_ILP_CODES = "".join(sorted(a.code for a in APPS if a.klass == "ILP"))


def custom_mix(codes: str, name: str | None = None):
    """Build a mix from explicit application codes.

    Lowercase codes are the closed-loop Table 2 batch applications;
    any UPPERCASE code marks an open-loop cloud service
    (:mod:`repro.workloads.cloud`) and the result is a
    :class:`~repro.workloads.cloud.CloudMix` co-run instead.

    >>> custom_mix("kc").apps()[0].name
    'mcf'
    >>> custom_mix("Kb").group
    'CLOUD'
    """
    from repro.workloads.cloud import CloudMix, is_cloud_codes

    n = len(codes)
    if is_cloud_codes(codes):
        cloud = CloudMix(name=name or f"{n}CUSTOM-{codes}", codes=codes)
        cloud.validate()  # validates every service and batch code
        return cloud
    for c in codes:
        app_by_code(c)  # validate early
    mix = Mix(name=name or f"{n}CUSTOM-{codes}", codes=codes)
    mix.validate()
    return mix


def random_mix(
    num_cores: int,
    group: str,
    seed: int,
    index: int = 1,
    allow_duplicates: bool = True,
) -> Mix:
    """Randomly construct one mix, following the paper's recipe.

    ``group='MEM'`` draws all applications from the memory-intensive
    class; ``group='MIX'`` draws half MEM, half ILP (ILP first, as in the
    published MIX workloads ``arbc``, ``hzde``...).  The paper's own
    8-core mixes contain duplicates, so duplicates are allowed by default.
    """
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")
    g = group.upper()
    if g not in ("MEM", "MIX"):
        raise ValueError("group must be 'MEM' or 'MIX'")
    rng = RngStream(seed, "mix", g, num_cores, index)

    def draw(pool: str, k: int) -> list[str]:
        if allow_duplicates:
            return [pool[rng.randint(0, len(pool))] for _ in range(k)]
        if k > len(pool):
            raise ValueError(f"cannot draw {k} distinct apps from {len(pool)}")
        chosen: list[str] = []
        remaining = list(pool)
        for _ in range(k):
            pick = remaining.pop(rng.randint(0, len(remaining)))
            chosen.append(pick)
        return chosen

    if g == "MEM":
        codes = draw(_MEM_CODES, num_cores)
    else:
        ilp = draw(_ILP_CODES, num_cores // 2)
        mem = draw(_MEM_CODES, num_cores - num_cores // 2)
        codes = ilp + mem
    mix = Mix(name=f"{num_cores}{g}-R{index}", codes="".join(codes))
    mix.validate()
    return mix


def random_workload_suite(
    num_cores: int, seed: int, mixes_per_group: int = 6
) -> tuple[Mix, ...]:
    """A full Table 3-style group: N MEM mixes + N MIX mixes."""
    if mixes_per_group < 1:
        raise ValueError("mixes_per_group must be >= 1")
    out: list[Mix] = []
    for group in ("MEM", "MIX"):
        for i in range(1, mixes_per_group + 1):
            out.append(random_mix(num_cores, group, seed, index=i))
    return tuple(out)
