"""Synthetic application reference streams.

Each application is a stochastic generator of :class:`~repro.cpu.trace.MemOp`
records built from three reference components:

* **miss stream** — references guaranteed (or overwhelmingly likely) to
  miss the 4 MB L2.  Streaming codes (``swim``/``applu``...) walk
  ``n_streams`` concurrent array streams, each advancing by
  ``stride_lines`` (2 KB default): under the cache-line-interleaved
  address map one stream stays inside a single (channel, bank) and visits
  consecutive row columns, so a burst served core-continuously produces
  DRAM row-buffer hits — the spatial locality the paper's Section 1
  says core-aware scheduling can exploit.  Pointer chasers (``mcf``) draw
  *random* fresh lines instead (no row locality).  Misses arrive in
  bursts whose mean length models the application's memory-level
  parallelism; a burst round-robins across the streams.
* **L2-resident set** — a region larger than L1 but comfortably inside the
  L2; references here are L1 misses / L2 hits.
* **hot set** — a small region that lives in L1.

The per-application knobs (:class:`~repro.workloads.spec2000.AppProfile`)
control the blend.  Determinism: every stream derives from the experiment
seed plus the application code and a *phase* label, so profiling and
evaluation use different, reproducible instruction slices — the analogue of
the paper's distinct SimPoints for profiling vs evaluation.

Address-space layout: each core's generator gets a disjoint base address
(bits well above any cache/DRAM index), so multiprogrammed applications
never share lines but do contend for L2 sets, channels, banks and rows,
exactly like the paper's setup.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

from repro.cpu.trace import MemOp
from repro.util.rng import RngStream
from repro.workloads.spec2000 import AppProfile

__all__ = ["SyntheticApp", "ReplayTrace", "make_trace", "clear_trace_cache"]

#: separation between per-core address spaces (1 TiB apart)
CORE_ADDR_STRIDE = 1 << 40

#: size of the region random (pointer-chase) misses are drawn from; huge
#: relative to the 4 MB L2 (65536 lines) so reuse is negligible
CHASE_REGION_LINES = 1 << 24  # 1 GiB worth of lines

#: number of distinct regions the sequential stream may jump between
STREAM_REGIONS = 1 << 18

#: a sequential stream jumps to a fresh region after this many lines, so
#: one stream cannot monopolise a row forever
STREAM_RUN_LINES = 4096

LINE = 64

# Disjoint line-index bases for the four reference components, all far
# below CORE_ADDR_STRIDE so per-core spaces stay disjoint too.
_HOT_BASE_LINE = 1 << 30
_L2SET_BASE_LINE = 2 << 30
_CHASE_BASE_LINE = 3 << 30
_STREAM_BASE_LINE = 4 << 30

#: per-instance random placement span for the resident regions, in lines.
#: Without it every core's hot/L2 sets would alias onto identical cache
#: sets (core address spaces differ only in very high bits) and the shared
#: L2 would thrash structurally at 4+ cores.
_PLACEMENT_SPAN = 1 << 16


class SyntheticApp:
    """Infinite reference stream for one application on one core.

    Implements the :class:`~repro.cpu.trace.TraceSource` protocol.

    Parameters
    ----------
    profile:
        The application's parameters (see :mod:`repro.workloads.spec2000`).
    rng:
        Deterministic stream; callers derive it from
        ``(seed, app_code, phase, core_id)``.
    base_addr:
        Start of this instance's private address space.
    """

    __slots__ = (
        "profile",
        "rng",
        "base_addr",
        "_gap_p",
        "_burst_start_p",
        "_burst_cont_p",
        "_streams",
        "_stream_idx",
        "_burst_left",
        "_hot_lines",
        "_l2_lines",
        "_hot_base",
        "_l2_base",
        "_prologue_left",
        "_phase_scale",
        "ops_generated",
        "_grandom",
        "_gints",
        "_ggeom",
        "_gap_pc",
        "_burst_len_pc",
        "_store_frac",
        "_l2_frac",
        "_phase_period",
        "_prologue_gaps",
    )

    def __init__(self, profile: AppProfile, rng: RngStream, base_addr: int = 0) -> None:
        if base_addr < 0:
            raise ValueError("base_addr must be >= 0")
        self.profile = profile
        self.rng = rng
        self.base_addr = base_addr
        p = profile
        # Mean gap between memory ops: (1 - mem_ratio)/mem_ratio plain
        # instructions per memory instruction.
        mean_gap = (1.0 - p.mem_ratio) / p.mem_ratio
        self._gap_p = 1.0 / (1.0 + mean_gap)
        # Miss bursts: expected misses per kilo-instruction is p.mpki; each
        # burst carries ~burst_mean misses, ops per kinst is mem_ratio*1000.
        ops_per_kinst = p.mem_ratio * 1000.0
        bursts_per_kinst = p.mpki / max(p.burst_mean, 1.0)
        self._burst_start_p = min(bursts_per_kinst / ops_per_kinst, 1.0)
        # Geometric continuation keeps the mean burst length at burst_mean.
        self._burst_cont_p = 1.0 - 1.0 / max(p.burst_mean, 1.0)
        # Bound numpy-generator methods and pre-clamped geometric
        # parameters for the per-op draw loop: the draws below are the
        # inlined bodies of RngStream.random/randint/geometric (keep in
        # sync with util/rng.py) — same generator, same argument values,
        # so the draw sequence is bit-identical, minus a wrapper frame per
        # draw.  int()/bool() conversions are kept so gaps, addresses and
        # flags stay plain Python objects.
        g = rng.generator()
        self._grandom = g.random
        self._gints = g.integers
        self._ggeom = g.geometric
        self._gap_pc = min(max(self._gap_p, 1e-12), 1.0)
        self._burst_len_pc = min(max(1.0 - self._burst_cont_p, 1e-12), 1.0)
        # Per-op profile constants, flattened off the frozen dataclass.
        self._store_frac = p.store_frac
        self._l2_frac = p.l2_frac
        self._phase_period = p.phase_period
        # Concurrent strided array streams: [line_cursor, accesses_left].
        self._streams: list[list[int]] = [[0, 0] for _ in range(p.n_streams)]
        self._stream_idx = 0
        self._burst_left = 0
        # Hot and L2-resident sets as fixed line pools.
        hot_count = max(p.hot_kb * 1024 // LINE, 1)
        l2_count = max(p.l2_set_kb * 1024 // LINE, 1)
        self._hot_lines = hot_count
        self._l2_lines = l2_count
        # Random placement of the resident regions (cache-set diversity
        # across program instances).
        self._hot_base = _HOT_BASE_LINE + self.rng.randint(0, _PLACEMENT_SPAN)
        self._l2_base = _L2SET_BASE_LINE + self.rng.randint(0, _PLACEMENT_SPAN)
        # Initialisation prologue: touch every resident line once so the
        # caches warm deterministically inside the measurement warmup
        # window (models program initialisation; without it, 'resident'
        # sets would leak cold misses through the whole run and swamp the
        # per-application mpki targets).
        self._prologue_left = hot_count + l2_count
        self._prologue_gaps: list[int] | None = None
        self._phase_scale = 1.0
        self.ops_generated = 0
        for s in self._streams:
            self._reseat_stream(s)

    # -- address components ------------------------------------------------------

    def _reseat_stream(self, stream: list[int]) -> None:
        """Point one array stream at a fresh region of fresh lines.

        The random sub-stride offset picks the (channel, bank) the stream
        will live in — without it every stream would start at line 0 of
        its region and alias onto channel 0 / bank 0.
        """
        region = int(self._gints(0, STREAM_REGIONS))
        offset = int(self._gints(0, min(self.profile.stride_lines, STREAM_RUN_LINES)))
        stream[0] = _STREAM_BASE_LINE + region * STREAM_RUN_LINES + offset
        stream[1] = max(STREAM_RUN_LINES // self.profile.stride_lines, 1)

    def _miss_addr(self) -> int:
        """A line expected to miss the L2 (strided-stream or random)."""
        if self._grandom() < self.profile.seq_frac:
            # Round-robin across the concurrent array streams; each stream
            # advances by stride_lines (same bank, next row column).
            stream = self._streams[self._stream_idx]
            self._stream_idx = (self._stream_idx + 1) % len(self._streams)
            if stream[1] <= 0:
                self._reseat_stream(stream)
            line = stream[0]
            stream[0] += self.profile.stride_lines
            stream[1] -= 1
        else:
            line = _CHASE_BASE_LINE + int(self._gints(0, CHASE_REGION_LINES))
        return self.base_addr + line * LINE

    def _hot_addr(self) -> int:
        """A reference into the L1-resident hot set."""
        line = self._hot_base + int(self._gints(0, self._hot_lines))
        return self.base_addr + line * LINE

    def _l2_addr(self) -> int:
        """A reference into the L2-resident (L1-missing) set."""
        line = self._l2_base + int(self._gints(0, self._l2_lines))
        return self.base_addr + line * LINE

    # -- TraceSource ---------------------------------------------------------------

    def _prologue_op(self) -> MemOp:
        """One initialisation touch: hot set first, then the L2 set."""
        gaps = self._prologue_gaps
        if gaps is None:
            # The prologue's draws are consecutive (nothing else touches
            # the generator until it ends), and a vectorized geometric
            # draw is element-wise stream-identical to the scalar loop —
            # one numpy call replaces thousands (golden tests pin the
            # equivalence).
            gaps = self._prologue_gaps = self._ggeom(
                self._gap_pc, self._prologue_left
            ).tolist()
        idx = (self._hot_lines + self._l2_lines) - self._prologue_left
        self._prologue_left -= 1
        if idx < self._hot_lines:
            line = self._hot_base + idx
        else:
            line = self._l2_base + (idx - self._hot_lines)
        gap = gaps[idx] - 1
        self.ops_generated += 1
        return MemOp(gap, self.base_addr + line * LINE, False)

    def _phase_tick(self) -> None:
        """Alternate the miss-rate scale between program phases.

        With ``phase_period`` ops per phase, even phases run at the
        nominal mpki and odd phases at ``mpki * phase_mpki_scale`` — the
        runtime behaviour change the online-ME extension is meant to
        track (stationary by default: period 0).
        """
        p = self.profile
        if p.phase_period <= 0:
            return
        phase = (self.ops_generated // p.phase_period) & 1
        self._phase_scale = 1.0 if phase == 0 else p.phase_mpki_scale

    def next_op(self) -> MemOp:
        """Generate the next memory operation (never ``None``: infinite)."""
        if self._prologue_left > 0:
            return self._prologue_op()
        if self._phase_period > 0:  # stationary profiles skip the call
            self._phase_tick()
        if self._burst_left > 0:
            # Inside a miss burst: tight gaps keep the misses within one
            # ROB window so they overlap (that is what MLP means here).
            self._burst_left -= 1
            gap = int(self._ggeom(0.5)) - 1  # mean 1
            addr = self._miss_addr()
            is_write = bool(self._grandom() < self._store_frac)
            self.ops_generated += 1
            return MemOp(gap, addr, is_write)
        gap = int(self._ggeom(self._gap_pc)) - 1
        roll = self._grandom()
        if roll < self._burst_start_p * self._phase_scale:
            # Start a new miss burst; this op is its first miss.
            length = int(self._ggeom(self._burst_len_pc))
            self._burst_left = length - 1
            addr = self._miss_addr()
        elif roll < self._burst_start_p + self._l2_frac:
            addr = self._l2_addr()
        else:
            addr = self._hot_addr()
        is_write = bool(self._grandom() < self._store_frac)
        self.ops_generated += 1
        return MemOp(gap, addr, is_write)


def _raw_trace(
    profile: AppProfile, seed: int, phase: str, core_id: int
) -> SyntheticApp:
    """Build a fresh live generator (no caching)."""
    rng = RngStream(seed, "app", profile.code, phase, core_id)
    return SyntheticApp(profile, rng, base_addr=(core_id + 1) * CORE_ADDR_STRIDE)


# -- trace replay cache ----------------------------------------------------------
#
# Experiments re-simulate the *same* reference streams many times: a policy
# sweep runs every policy over identical (mix, seed) traces, and profiling
# vs evaluation re-derive per-core streams across runs.  Generating a
# stream is RNG-bound (numpy draws are ~20% of simulation wall time), so
# regenerating it per run is pure waste.  ``make_trace`` therefore records
# the MemOps of each distinct stream the first time it is generated and
# replays the recording on subsequent requests for the same
# ``(profile, seed, phase, core_id)``.  Replayed ops are the *same*
# ``MemOp`` values in the same order, so every simulated statistic is
# bit-identical to regeneration (MemOp is immutable).
#
# Bounds: at most ``_CACHE_MAX_STREAMS`` streams are retained (LRU), and
# each recording stops at ``_STREAM_OP_CAP`` ops — a consumer running past
# the cap falls back to live generation (taking over the positioned
# generator when it is first past the end, or regenerating and
# fast-forwarding otherwise).  Set ``REPRO_TRACE_CACHE=0`` to disable.

#: max recorded ops per stream (~20 MB at the cap; typical runs use a few
#: tens of thousands of ops per core)
_STREAM_OP_CAP = 1 << 18

#: max distinct streams kept (LRU) — a sweep touches cores × apps of the
#: active mix per phase, far below this
_CACHE_MAX_STREAMS = 32

_trace_cache: "OrderedDict[tuple, _RecordedStream]" = OrderedDict()

#: guards cache lookup/insert/eviction (threaded in-process workers);
#: recording extension has its own per-stream lock
_trace_cache_lock = threading.Lock()


class _RecordedStream:
    """Shared recording of one deterministic stream.

    ``ops`` is the recorded prefix; ``source`` is the live generator
    positioned exactly at ``len(ops)``, or ``None`` once a consumer past
    the cap has taken it over.
    """

    __slots__ = ("ops", "source", "app", "lock")

    def __init__(self, app: SyntheticApp) -> None:
        self.ops: list[MemOp] = []
        self.source: SyntheticApp | None = app
        #: kept (even after detach) for attribute passthrough
        self.app = app
        #: serialises frontier extension: in-process distributed workers
        #: replay the same stream from multiple threads, and an unlocked
        #: generator pull would hand interleaved ops to the wrong cursors
        self.lock = threading.Lock()


class ReplayTrace:
    """TraceSource replaying a shared :class:`_RecordedStream`.

    Multiple replayers may consume the same recording concurrently
    (each keeps its own cursor); whichever reaches the frontier first
    extends the recording from the live generator.
    """

    __slots__ = ("_rec", "_key", "_pos", "_tail")

    def __init__(self, rec: _RecordedStream, key: tuple) -> None:
        self._rec = rec
        self._key = key
        self._pos = 0
        #: private live generator once this consumer outran the recording
        self._tail: SyntheticApp | None = None

    def next_op(self) -> MemOp:
        tail = self._tail
        if tail is not None:
            return tail.next_op()
        pos = self._pos
        rec = self._rec
        ops = rec.ops
        if pos < len(ops):
            self._pos = pos + 1
            return ops[pos]
        with rec.lock:
            # Re-check under the lock: another consumer thread may have
            # extended the recording past this cursor while we waited.
            if pos < len(ops):
                self._pos = pos + 1
                return ops[pos]
            src = rec.source
            if src is not None and pos < _STREAM_OP_CAP:
                op = src.next_op()
                ops.append(op)
                self._pos = pos + 1
                return op
            if src is not None:
                # Recording is full and this consumer sits exactly at the
                # frontier: take exclusive ownership of the positioned
                # generator and go live.
                rec.source = None
                self._tail = src
                return src.next_op()
        # The generator was taken by another consumer: rebuild one and
        # fast-forward to this cursor (one-time O(pos) cost, cap-bounded
        # recordings make this path rare).
        tail = _raw_trace(*self._key)
        for _ in range(pos):
            tail.next_op()
        self._tail = tail
        return tail.next_op()

    # -- direct-indexing fast path ------------------------------------------
    #
    # A hot consumer (TraceCore) may bypass next_op() while its cursor is
    # inside the recording: read (ops, pos) once via replay_state(), index
    # ``ops`` directly (its identity is stable; other consumers may extend
    # it in place), and keep a private cursor.  Before any fallback
    # next_op() call it must write the cursor back with sync_pos() and
    # re-read it from replay_state() after — next_op() advances the cursor
    # while the recording is still being extended.  Past the cap the
    # cursor freezes >= len(ops), so the index check fails forever and
    # every pull flows through next_op() again.

    def replay_state(self) -> tuple[list[MemOp], int]:
        """The shared recording and this consumer's cursor."""
        return self._rec.ops, self._pos

    def sync_pos(self, pos: int) -> None:
        """Write back a direct-indexing consumer's cursor."""
        self._pos = pos

    def pull(self, pos: int) -> tuple[MemOp, int]:
        """Fused ``sync_pos`` + ``next_op`` + cursor read-back.

        One method call instead of three on the generation-frontier path,
        which runs once per op on the *first* simulation of each stream.
        """
        self._pos = pos
        op = self.next_op()
        return op, self._pos

    # Attribute passthrough (profile, _hot_lines, ...) so a ReplayTrace is
    # a drop-in for the SyntheticApp it wraps in tests and diagnostics.
    def __getattr__(self, name: str):
        return getattr(self._rec.app, name)


def clear_trace_cache() -> None:
    """Drop all recorded streams (frees memory; determinism unaffected)."""
    _trace_cache.clear()


def make_trace(
    profile: AppProfile,
    seed: int,
    phase: str,
    core_id: int = 0,
) -> "SyntheticApp | ReplayTrace":
    """Build the reference stream for ``profile`` on ``core_id``.

    ``phase`` separates instruction slices: profiling runs use
    ``"profile"``, evaluation runs use ``"eval"`` — different derived RNG
    streams, mirroring the paper's use of different SimPoints.

    Identical ``(profile, seed, phase, core_id)`` requests share a
    recorded stream (see the trace replay cache above); the returned ops
    are bit-identical to a fresh generator's either way.
    """
    if os.environ.get("REPRO_TRACE_CACHE", "1") == "0":
        return _raw_trace(profile, seed, phase, core_id)
    key = (profile, seed, phase, core_id)
    with _trace_cache_lock:
        rec = _trace_cache.get(key)
        if rec is None:
            rec = _RecordedStream(_raw_trace(profile, seed, phase, core_id))
            _trace_cache[key] = rec
            if len(_trace_cache) > _CACHE_MAX_STREAMS:
                _trace_cache.popitem(last=False)
        else:
            _trace_cache.move_to_end(key)
    return ReplayTrace(rec, key)
