"""Per-request lifecycle spans.

One :class:`RequestSpan` follows a sampled memory request through every
stage of its life — core issue, structural stall, controller enqueue,
scheduler pick, bank preparation (ACT/PRE), data-bus transfer, and the
return path — stamping the cycle of each transition.  The stamps are
pure observations: the hooks that fill them (in
:mod:`repro.cache.hierarchy`, :mod:`repro.cpu.core_model`,
:mod:`repro.controller.controller` and the
:class:`~repro.dram.channel.TransactionTiming` the channel resolves)
read simulator state but never change it, so a run with spans enabled is
bit-identical to one without.

Sampling is deterministic: the :class:`SpanCollector` traces every
``sample_every``-th request it is offered (a plain counter, no RNG), so
the *set* of traced requests is reproducible across runs and policies.
``sample_every=1`` traces everything.

The post-run decomposition of a span into additive latency components —
with the conservation invariant that components sum exactly to the
end-to-end latency — lives in :mod:`repro.telemetry.attribution`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import DramTimingConfig

__all__ = ["RequestSpan", "SpanCollector"]


class RequestSpan:
    """Cycle stamps for one traced memory request.

    Stage timeline (cycles, all stamped by observation hooks)::

        first_attempt   core first tried to issue the access (== arrival
                        unless a structural stall blocked the front end)
        arrival         request entered the controller buffer (this is
                        also the cycle the MSHR entry was allocated —
                        allocation and enqueue are atomic in this model)
        pick            the scheduler committed the request
        bank_start      earliest cycle its bank could start work
                        (pick .. bank_start = bank busy with prior work)
        cas             the column command issued (bank_start .. cas =
                        row activation: tRCD, plus tRP on a conflict,
                        plus any tRRD/tFAW throttle)
        data_start      first cycle of the data burst (cas + tCL ..
                        data_start = waiting for the shared data bus)
        data_end        last cycle of the data burst
        done            data delivered core-side (data_end + controller
                        overhead for reads; == data_end for writes)
    """

    __slots__ = (
        "core_id",
        "addr",
        "kind",
        "first_attempt",
        "arrival",
        "pick",
        "bank_start",
        "cas",
        "data_start",
        "data_end",
        "done",
        "row_hit",
        "conflict",
        "channel",
        "bank",
        "row",
        "track",
        "merged_waiters",
    )

    def __init__(self, core_id: int, addr: int, kind: str, cycle: int) -> None:
        self.core_id = core_id
        self.addr = addr
        #: "read" | "write" | "prefetch"
        self.kind = kind
        self.first_attempt = cycle
        self.arrival = cycle
        self.pick = -1
        self.bank_start = -1
        self.cas = -1
        self.data_start = -1
        self.data_end = -1
        self.done = -1
        self.row_hit = False
        self.conflict = False
        self.channel = -1
        self.bank = -1
        self.row = -1
        #: bus track of the owning controller ("controller" or
        #: "controller-chN"), for matching write-drain windows
        self.track = "controller"
        #: later same-line misses that merged onto this in-flight request
        self.merged_waiters = 0

    @property
    def complete(self) -> bool:
        return self.done >= 0

    @property
    def latency(self) -> int:
        """End-to-end cycles from first issue attempt to data delivery."""
        return self.done - self.first_attempt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestSpan({self.kind} core={self.core_id} addr={self.addr:#x} "
            f"{self.first_attempt}->{self.done})"
        )


class SpanCollector:
    """Deterministic 1-in-N request tracer attached to a Telemetry hub.

    The collector is handed to every producer at system-assembly time
    (:class:`~repro.sim.system.MultiCoreSystem` wires it); producers call
    it only from already-slow paths (miss handling, structural stalls,
    transaction commit), never from per-cycle code.
    """

    __slots__ = (
        "sample_every",
        "max_spans",
        "timing",
        "overhead",
        "completed",
        "dropped",
        "offered",
        "_count",
        "_blocked",
        "_inflight",
    )

    def __init__(self, sample_every: int = 64, max_spans: int = 200_000) -> None:
        if sample_every < 1:
            raise ValueError("span sample_every must be >= 1")
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.sample_every = sample_every
        #: retention cap; spans past it are counted in ``dropped``
        self.max_spans = max_spans
        #: DRAM timing of the run (attribution needs tCL); wired by the system
        self.timing: "DramTimingConfig | None" = None
        #: controller return-path overhead in cycles; wired by the system
        self.overhead = 0
        self.completed: list[RequestSpan] = []
        self.dropped = 0
        #: requests offered for sampling (traced = offered // sample_every)
        self.offered = 0
        self._count = 0
        #: core_id -> (cycle, line) of the oldest unresolved structural stall
        self._blocked: dict[int, tuple[int, int]] = {}
        #: (core_id, line) -> in-flight traced read span, for merge counting
        self._inflight: dict[tuple[int, int], RequestSpan] = {}

    # -- producer-facing hooks ---------------------------------------------------

    def note_blocked(self, core_id: int, cycle: int, line: int) -> None:
        """A core's access to ``line`` hit a structural stall at ``cycle``.

        Only the first stall per (core, line) is kept: retries of the same
        blocked access must not advance the stamp.
        """
        prev = self._blocked.get(core_id)
        if prev is None or prev[1] != line:
            self._blocked[core_id] = (cycle, line)

    def start_request(
        self, core_id: int, line: int, kind: str, cycle: int
    ) -> RequestSpan | None:
        """Offer a newly created request for tracing.

        Returns a span for every ``sample_every``-th offer, else ``None``.
        A demand read consumes any pending structural-stall stamp for its
        core either way, so a stale stamp can never leak onto a later
        request (writebacks and prefetches are not core-issued and leave
        the stamp alone).
        """
        blocked = self._blocked.pop(core_id, None) if kind == "read" else None
        self.offered += 1
        self._count += 1
        if self._count < self.sample_every:
            return None
        self._count = 0
        if len(self.completed) >= self.max_spans:
            self.dropped += 1
            return None
        span = RequestSpan(core_id, line, kind, cycle)
        if blocked is not None and blocked[1] == line:
            span.first_attempt = blocked[0]
        if kind != "write":
            # Reads and prefetches own an MSHR entry until the fill
            # returns; later misses can merge onto them.
            self._inflight[(core_id, line)] = span
        return span

    def note_merge(self, core_id: int, line: int, _now: int) -> None:
        """A later miss merged onto an in-flight line of ``core_id``."""
        span = self._inflight.get((core_id, line))
        if span is not None:
            span.merged_waiters += 1

    def finish(self, span: RequestSpan) -> None:
        """Record a span whose request just committed (all stamps set).

        The in-flight registration survives until :meth:`end_inflight` —
        misses may still merge onto the line between the transaction
        commit and the fill delivery.
        """
        self.completed.append(span)

    def end_inflight(self, core_id: int, line: int) -> None:
        """The fill for (core, line) delivered; stop accepting merges."""
        self._inflight.pop((core_id, line), None)

    # -- queries -------------------------------------------------------------------

    def per_core(self, num_cores: int | None = None) -> dict[int, list[RequestSpan]]:
        """Completed spans grouped by originating core."""
        out: dict[int, list[RequestSpan]] = {}
        if num_cores is not None:
            for i in range(num_cores):
                out[i] = []
        for s in self.completed:
            out.setdefault(s.core_id, []).append(s)
        return out

    def __len__(self) -> int:
        return len(self.completed)
