"""The shared event sink every instrumentation producer emits through.

Discrete happenings — a write-drain window opening, one scheduling
decision, one reconstructed DRAM command — are pushed onto one
:class:`TelemetryBus` as :class:`TraceEvent` records.  The decision log
and command log publish here (keeping their own public query APIs), the
write-drain hysteresis publishes here, and the exporters in
:mod:`repro.telemetry.export` consume the single resulting stream; that
is what lets one Chrome trace show scheduling decisions *over* the drain
windows they landed in.

Events carry a ``track`` (the Perfetto thread they render on: the
controller, one channel, one core) and a ``kind``:

* ``"instant"`` — a point event;
* ``"begin"`` / ``"end"`` — a span (matched per name+track in order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["TraceEvent", "TelemetryBus"]

_KINDS = ("instant", "begin", "end")


@dataclass(frozen=True)
class TraceEvent:
    """One discrete instrumentation event."""

    name: str
    kind: str  # "instant" | "begin" | "end"
    cycle: int
    track: str
    args: dict = field(default_factory=dict)


class TelemetryBus:
    """Append-only event stream with optional live subscribers.

    Subscribers (``fn(event)``) see every event as it is emitted —
    streaming exporters hook in here — while the retained list serves
    post-run export and analysis.  ``retain=False`` turns the bus into a
    pure pipe for runs too long to buffer.
    """

    __slots__ = ("events", "retain", "_subscribers")

    def __init__(self, retain: bool = True) -> None:
        self.events: list[TraceEvent] = []
        self.retain = retain
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        self._subscribers.append(fn)

    def emit(
        self, name: str, kind: str, cycle: int, track: str, **args
    ) -> None:
        """Publish one event to every consumer."""
        if kind not in _KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        ev = TraceEvent(name=name, kind=kind, cycle=cycle, track=track, args=args)
        if self.retain:
            self.events.append(ev)
        for fn in self._subscribers:
            fn(ev)

    # -- queries ---------------------------------------------------------------

    def named(self, name: str) -> list[TraceEvent]:
        """All retained events with the given name, in emit order."""
        return [e for e in self.events if e.name == name]

    def spans(self, name: str, end_cycle: int | None = None) -> list[tuple[int, int, str]]:
        """Matched (begin_cycle, end_cycle, track) pairs for ``name``.

        A span still open at the end of the stream is closed at
        ``end_cycle`` when given, else dropped.
        """
        open_at: dict[str, int] = {}
        out: list[tuple[int, int, str]] = []
        for e in self.events:
            if e.name != name:
                continue
            if e.kind == "begin":
                open_at[e.track] = e.cycle
            elif e.kind == "end" and e.track in open_at:
                out.append((open_at.pop(e.track), e.cycle, e.track))
        if end_cycle is not None:
            for track, start in sorted(open_at.items()):
                out.append((start, end_cycle, track))
        return out

    def __len__(self) -> int:
        return len(self.events)
