"""Trace export: JSONL, CSV, and Chrome trace-event (Perfetto) formats.

Three consumers, three formats:

* :func:`write_jsonl` — one self-describing JSON object per line (header,
  then samples, then events, then a registry footer); the format scripts
  and notebooks should parse (:func:`read_jsonl` round-trips it).
* :func:`write_csv` — the sampled time series flattened to columns for
  spreadsheet / pandas consumption.
* :func:`write_chrome_trace` — the Trace Event Format JSON that
  ``chrome://tracing`` and https://ui.perfetto.dev load directly: sampled
  series become counter tracks, bus spans become duration slices, bus
  instants become instant events, each on its own named thread.

Timestamps: the simulator runs in CPU cycles; trace-event ``ts`` is in
microseconds, so cycles are divided by ``cycles_per_us`` (default: the
paper's 3.2 GHz clock, 3200 cycles/µs).  Wall-clock in Perfetto therefore
reads as *simulated* time.
"""

from __future__ import annotations

import csv
import json
import os
import subprocess
from datetime import datetime, timezone
from typing import TYPE_CHECKING, Any

from repro.metrics.serialize import to_jsonable
from repro.util.units import CPU_FREQ_HZ

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry
    from repro.telemetry.spans import RequestSpan

__all__ = [
    "FORMAT",
    "run_metadata",
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "write_chrome_trace",
    "write_spans_jsonl",
]

#: format marker on the JSONL header line
FORMAT = "repro-telemetry-v1"

#: default cycle -> microsecond conversion (3.2 GHz core clock)
DEFAULT_CYCLES_PER_US = CPU_FREQ_HZ / 1e6


# -- run metadata ----------------------------------------------------------------


def _git_rev() -> str | None:
    """Current git revision of the working tree, or None outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - env
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_metadata(telemetry: "Telemetry") -> dict:
    """Self-describing header every exporter embeds.

    Carries the format marker, export wall-clock time, the git revision
    the artifact was produced from, and the run description the runner
    stashed in ``telemetry.meta`` (policy, mix/app, seed, budget and the
    config hash).  When the process runs inside a fleet (the distributed
    service or the parallel runner set ``REPRO_RUN_ID`` /
    ``REPRO_WORKER_ID`` / ``REPRO_CELL_ID``), a ``fleet`` section names
    the run/worker/cell this trace belongs to, so ``repro obs
    merge-trace`` and humans can correlate per-process artifacts.
    """
    doc = {
        "format": FORMAT,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "sample_every": telemetry.sample_every,
        "meta": to_jsonable(telemetry.meta),
    }
    from repro.telemetry.fleet import fleet_ids

    ids = fleet_ids()
    if ids:
        doc["fleet"] = ids
    return doc


# -- JSONL ----------------------------------------------------------------------


def write_jsonl(telemetry: "Telemetry", path: str | os.PathLike) -> int:
    """Write the whole hub as line-delimited JSON; returns lines written."""
    n = 0
    with open(path, "w") as f:
        header = {"type": "header"}
        header.update(run_metadata(telemetry))
        f.write(json.dumps(header) + "\n")
        n += 1
        for s in telemetry.samples:
            rec = {"type": "sample"}
            rec.update(to_jsonable(s))
            f.write(json.dumps(rec) + "\n")
            n += 1
        for e in telemetry.bus.events:
            rec = {"type": "event"}
            rec.update(to_jsonable(e))
            f.write(json.dumps(rec) + "\n")
            n += 1
        for rec in _span_records(telemetry):
            f.write(json.dumps(rec) + "\n")
            n += 1
        f.write(
            json.dumps({"type": "registry", "instruments": telemetry.registry.snapshot()})
            + "\n"
        )
        n += 1
    return n


def _span_records(telemetry: "Telemetry") -> list[dict]:
    """Completed request spans as JSONL records, with their attribution."""
    collector = telemetry.spans
    if collector is None or not collector.completed:
        return []
    from repro.telemetry.attribution import decompose, drain_windows

    t_cl = collector.timing.t_cl
    end = max(s.done for s in collector.completed)
    windows = drain_windows(telemetry, end_cycle=end)
    out = []
    for s in collector.completed:
        rec = {
            "type": "span",
            "core": s.core_id,
            "addr": s.addr,
            "kind": s.kind,
            "first_attempt": s.first_attempt,
            "arrival": s.arrival,
            "pick": s.pick,
            "bank_start": s.bank_start,
            "cas": s.cas,
            "data_start": s.data_start,
            "data_end": s.data_end,
            "done": s.done,
            "latency": s.latency,
            "channel": s.channel,
            "bank": s.bank,
            "row": s.row,
            "row_hit": s.row_hit,
            "conflict": s.conflict,
            "merged_waiters": s.merged_waiters,
            "components": decompose(
                s, t_cl, collector.overhead, windows.get(s.track, ())
            ),
        }
        out.append(rec)
    return out


def read_jsonl(path: str | os.PathLike) -> dict[str, Any]:
    """Parse a :func:`write_jsonl` file.

    Returns ``{"header": ..., "samples": [...], "events": [...],
    "spans": [...], "registry": {...}}`` with samples/events/spans as
    plain dicts.  Raises ``ValueError`` for files this library did not
    write.
    """
    out: dict[str, Any] = {
        "header": None, "samples": [], "events": [], "spans": [], "registry": {},
    }
    with open(path) as f:
        for lineno, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.pop("type", None)
            if lineno == 0:
                if kind != "header" or rec.get("format") != FORMAT:
                    raise ValueError(f"{path}: not a {FORMAT} file")
                out["header"] = rec
            elif kind == "sample":
                out["samples"].append(rec)
            elif kind == "event":
                out["events"].append(rec)
            elif kind == "span":
                out["spans"].append(rec)
            elif kind == "registry":
                out["registry"] = rec.get("instruments", {})
            else:
                raise ValueError(f"{path}:{lineno + 1}: unknown record type {kind!r}")
    if out["header"] is None:
        raise ValueError(f"{path}: empty telemetry file")
    return out


# -- CSV ------------------------------------------------------------------------


def write_csv(telemetry: "Telemetry", path: str | os.PathLike) -> int:
    """Flatten the sampled series to CSV; returns data rows written.

    The file opens with ``#``-prefixed comment lines carrying the run
    metadata (:func:`run_metadata`); pandas reads it with
    ``pd.read_csv(path, comment='#')``.
    """
    samples = telemetry.samples
    with open(path, "w", newline="") as f:
        meta = run_metadata(telemetry)
        run = meta.pop("meta", {}).get("run", {})
        for key, value in {**meta, **run}.items():
            f.write(f"# {key}: {value}\n")
        w = csv.writer(f)
        if not samples:
            w.writerow(["cycle", "span"])
            return 0
        nch = len(samples[0].channels)
        ncore = len(samples[0].cores)
        header = ["cycle", "span", "read_queue", "write_queue", "drain_mode",
                  "events", "clamped_events"]
        for i in range(nch):
            header += [
                f"ch{i}_bytes", f"ch{i}_bw_gbps", f"ch{i}_bus_util",
                f"ch{i}_row_hit_rate", f"ch{i}_reads", f"ch{i}_writes",
            ]
        for i in range(ncore):
            header += [
                f"core{i}_committed", f"core{i}_ipc", f"core{i}_pending_reads",
                f"core{i}_mshr", f"core{i}_rob", f"core{i}_stall_frac",
            ]
        w.writerow(header)
        for s in samples:
            row: list = [s.cycle, s.span, s.read_queue, s.write_queue,
                         int(s.drain_mode), s.events, s.clamped_events]
            for c in s.channels:
                row += [c.bytes, f"{c.bw_gbps:.6g}", f"{c.bus_util:.6g}",
                        f"{c.row_hit_rate:.6g}", c.reads, c.writes]
            for c in s.cores:
                row += [c.committed, f"{c.ipc:.6g}", c.pending_reads,
                        c.mshr_occupancy, c.rob_occupancy,
                        f"{c.rob_stall_frac:.6g}"]
            w.writerow(row)
    return len(samples)


# -- Chrome trace-event format --------------------------------------------------

#: fixed thread ids: controller first, then channels, then cores
_TID_CONTROLLER = 0


def _track_tids(telemetry: "Telemetry") -> dict[str, int]:
    """Stable track-name -> tid mapping covering samples and bus events."""
    tids: dict[str, int] = {"controller": _TID_CONTROLLER}
    if telemetry.samples:
        first = telemetry.samples[0]
        for c in first.channels:
            tids.setdefault(f"ch{c.index}", len(tids))
        for c in first.cores:
            tids.setdefault(f"core{c.index}", len(tids))
    for e in telemetry.bus.events:
        tids.setdefault(e.track, len(tids))
    return tids


def write_chrome_trace(
    telemetry: "Telemetry",
    path: str | os.PathLike,
    cycles_per_us: float = DEFAULT_CYCLES_PER_US,
) -> int:
    """Write a Chrome Trace Event Format file; returns events written.

    Open the result in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    if cycles_per_us <= 0:
        raise ValueError("cycles_per_us must be positive")
    pid = 1
    tids = _track_tids(telemetry)

    def ts(cycle: int) -> float:
        return cycle / cycles_per_us

    events: list[dict] = [
        {"ph": "M", "pid": pid, "name": "process_name",
         "args": {"name": "repro-sim"}},
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
             "args": {"name": track}}
        )

    for s in telemetry.samples:
        t = ts(s.cycle)
        events.append(
            {"ph": "C", "pid": pid, "tid": _TID_CONTROLLER, "ts": t,
             "name": "queue depth",
             "args": {"reads": s.read_queue, "writes": s.write_queue}}
        )
        for c in s.channels:
            tid = tids[f"ch{c.index}"]
            events.append(
                {"ph": "C", "pid": pid, "tid": tid, "ts": t,
                 "name": f"ch{c.index} bandwidth (GB/s)",
                 "args": {"GB/s": round(c.bw_gbps, 4)}}
            )
            events.append(
                {"ph": "C", "pid": pid, "tid": tid, "ts": t,
                 "name": f"ch{c.index} bus util",
                 "args": {"util": round(c.bus_util, 4),
                          "row_hit": round(c.row_hit_rate, 4)}}
            )
        for c in s.cores:
            tid = tids[f"core{c.index}"]
            events.append(
                {"ph": "C", "pid": pid, "tid": tid, "ts": t,
                 "name": f"core{c.index} IPC",
                 "args": {"ipc": round(c.ipc, 4)}}
            )
            events.append(
                {"ph": "C", "pid": pid, "tid": tid, "ts": t,
                 "name": f"core{c.index} memory",
                 "args": {"pending_reads": c.pending_reads,
                          "mshr": c.mshr_occupancy,
                          "stall_frac": round(c.rob_stall_frac, 4)}}
            )

    ph_map = {"begin": "B", "end": "E", "instant": "i"}
    for e in telemetry.bus.events:
        rec = {
            "ph": ph_map[e.kind],
            "pid": pid,
            "tid": tids[e.track],
            "ts": ts(e.cycle),
            "name": e.name,
            "cat": "sim",
        }
        if e.kind == "instant":
            rec["s"] = "t"  # thread-scoped instant
        if e.args:
            rec["args"] = to_jsonable(e.args)
        events.append(rec)

    events += _span_slices(telemetry, pid, tids, ts)

    meta = run_metadata(telemetry)
    meta["cycles_per_us"] = cycles_per_us
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": meta,
    }
    with open(path, "w") as f:
        json.dump(doc, f)
        f.write("\n")
    return len(events)


#: inner phase boundaries of a span slice, in timeline order
_SPAN_PHASES = (
    ("stall", "first_attempt", "arrival"),
    ("queue", "arrival", "pick"),
    ("bank", "pick", "bank_start"),
    ("row", "bank_start", "cas"),
    ("xfer", "cas", "data_end"),
    ("return", "data_end", "done"),
)


def _span_slices(telemetry: "Telemetry", pid: int, tids: dict[str, int], ts) -> list[dict]:
    """Duration slices for traced request spans, one track per core.

    Concurrent spans of one core spill onto extra lanes (``core0 req``,
    ``core0 req.2``, ...): each span takes the first lane whose previous
    occupant ended at or before the span begins, so slices on a lane
    never overlap and Perfetto renders each as its own row.  Inside the
    outer request slice, the non-empty lifecycle phases nest as
    sequential sub-slices.
    """
    collector = telemetry.spans
    if collector is None or not collector.completed:
        return []
    out: list[dict] = []
    for core_id, spans in sorted(collector.per_core().items()):
        spans = sorted(spans, key=lambda s: (s.first_attempt, s.done))
        lanes: list[int] = []  # per lane: end cycle of its last span
        lane_tids: list[int] = []
        for s in spans:
            for lane, busy_until in enumerate(lanes):
                if busy_until <= s.first_attempt:
                    break
            else:
                lane = len(lanes)
                lanes.append(0)
                name = f"core{core_id} req" + (f".{lane + 1}" if lane else "")
                lane_tids.append(len(tids))
                tids[name] = lane_tids[lane]
                out.append(
                    {"ph": "M", "pid": pid, "tid": lane_tids[lane],
                     "name": "thread_name", "args": {"name": name}}
                )
            lanes[lane] = s.done
            tid = lane_tids[lane]
            label = f"{s.kind} ch{s.channel} bank{s.bank}"
            out.append(
                {"ph": "B", "pid": pid, "tid": tid, "ts": ts(s.first_attempt),
                 "name": label, "cat": "span",
                 "args": {"addr": hex(s.addr), "latency_cycles": s.latency,
                          "row": s.row, "row_hit": s.row_hit,
                          "conflict": s.conflict,
                          "merged_waiters": s.merged_waiters}}
            )
            for phase, b_attr, e_attr in _SPAN_PHASES:
                b, e = getattr(s, b_attr), getattr(s, e_attr)
                if e <= b:
                    continue  # empty phase: skip the zero-width slice
                out.append(
                    {"ph": "B", "pid": pid, "tid": tid, "ts": ts(b),
                     "name": phase, "cat": "span"}
                )
                out.append(
                    {"ph": "E", "pid": pid, "tid": tid, "ts": ts(e),
                     "cat": "span"}
                )
            out.append(
                {"ph": "E", "pid": pid, "tid": tid, "ts": ts(s.done),
                 "cat": "span"}
            )
    return out


def write_spans_jsonl(telemetry: "Telemetry", path: str | os.PathLike) -> int:
    """Write only the traced spans (plus header) as JSONL; returns lines.

    The slim artifact behind ``--spans-out``: one record per traced
    request with every lifecycle stamp and its attribution components,
    without the sampled time series.
    """
    n = 0
    with open(path, "w") as f:
        header = {"type": "header"}
        header.update(run_metadata(telemetry))
        if telemetry.spans is not None:
            header["span_sample_every"] = telemetry.spans.sample_every
            header["spans_offered"] = telemetry.spans.offered
            header["spans_dropped"] = telemetry.spans.dropped
        f.write(json.dumps(header) + "\n")
        n += 1
        for rec in _span_records(telemetry):
            f.write(json.dumps(rec) + "\n")
            n += 1
    return n
