"""Trace export: JSONL, CSV, and Chrome trace-event (Perfetto) formats.

Three consumers, three formats:

* :func:`write_jsonl` — one self-describing JSON object per line (header,
  then samples, then events, then a registry footer); the format scripts
  and notebooks should parse (:func:`read_jsonl` round-trips it).
* :func:`write_csv` — the sampled time series flattened to columns for
  spreadsheet / pandas consumption.
* :func:`write_chrome_trace` — the Trace Event Format JSON that
  ``chrome://tracing`` and https://ui.perfetto.dev load directly: sampled
  series become counter tracks, bus spans become duration slices, bus
  instants become instant events, each on its own named thread.

Timestamps: the simulator runs in CPU cycles; trace-event ``ts`` is in
microseconds, so cycles are divided by ``cycles_per_us`` (default: the
paper's 3.2 GHz clock, 3200 cycles/µs).  Wall-clock in Perfetto therefore
reads as *simulated* time.
"""

from __future__ import annotations

import csv
import json
import os
from typing import TYPE_CHECKING, Any

from repro.metrics.serialize import to_jsonable
from repro.util.units import CPU_FREQ_HZ

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = [
    "FORMAT",
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "write_chrome_trace",
]

#: format marker on the JSONL header line
FORMAT = "repro-telemetry-v1"

#: default cycle -> microsecond conversion (3.2 GHz core clock)
DEFAULT_CYCLES_PER_US = CPU_FREQ_HZ / 1e6


# -- JSONL ----------------------------------------------------------------------


def write_jsonl(telemetry: "Telemetry", path: str | os.PathLike) -> int:
    """Write the whole hub as line-delimited JSON; returns lines written."""
    n = 0
    with open(path, "w") as f:
        header = {
            "type": "header",
            "format": FORMAT,
            "sample_every": telemetry.sample_every,
            "meta": to_jsonable(telemetry.meta),
        }
        f.write(json.dumps(header) + "\n")
        n += 1
        for s in telemetry.samples:
            rec = {"type": "sample"}
            rec.update(to_jsonable(s))
            f.write(json.dumps(rec) + "\n")
            n += 1
        for e in telemetry.bus.events:
            rec = {"type": "event"}
            rec.update(to_jsonable(e))
            f.write(json.dumps(rec) + "\n")
            n += 1
        f.write(
            json.dumps({"type": "registry", "instruments": telemetry.registry.snapshot()})
            + "\n"
        )
        n += 1
    return n


def read_jsonl(path: str | os.PathLike) -> dict[str, Any]:
    """Parse a :func:`write_jsonl` file.

    Returns ``{"header": ..., "samples": [...], "events": [...],
    "registry": {...}}`` with samples/events as plain dicts.  Raises
    ``ValueError`` for files this library did not write.
    """
    out: dict[str, Any] = {"header": None, "samples": [], "events": [], "registry": {}}
    with open(path) as f:
        for lineno, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.pop("type", None)
            if lineno == 0:
                if kind != "header" or rec.get("format") != FORMAT:
                    raise ValueError(f"{path}: not a {FORMAT} file")
                out["header"] = rec
            elif kind == "sample":
                out["samples"].append(rec)
            elif kind == "event":
                out["events"].append(rec)
            elif kind == "registry":
                out["registry"] = rec.get("instruments", {})
            else:
                raise ValueError(f"{path}:{lineno + 1}: unknown record type {kind!r}")
    if out["header"] is None:
        raise ValueError(f"{path}: empty telemetry file")
    return out


# -- CSV ------------------------------------------------------------------------


def write_csv(telemetry: "Telemetry", path: str | os.PathLike) -> int:
    """Flatten the sampled series to CSV; returns data rows written."""
    samples = telemetry.samples
    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        if not samples:
            w.writerow(["cycle", "span"])
            return 0
        nch = len(samples[0].channels)
        ncore = len(samples[0].cores)
        header = ["cycle", "span", "read_queue", "write_queue", "drain_mode",
                  "events", "clamped_events"]
        for i in range(nch):
            header += [
                f"ch{i}_bytes", f"ch{i}_bw_gbps", f"ch{i}_bus_util",
                f"ch{i}_row_hit_rate", f"ch{i}_reads", f"ch{i}_writes",
            ]
        for i in range(ncore):
            header += [
                f"core{i}_committed", f"core{i}_ipc", f"core{i}_pending_reads",
                f"core{i}_mshr", f"core{i}_rob", f"core{i}_stall_frac",
            ]
        w.writerow(header)
        for s in samples:
            row: list = [s.cycle, s.span, s.read_queue, s.write_queue,
                         int(s.drain_mode), s.events, s.clamped_events]
            for c in s.channels:
                row += [c.bytes, f"{c.bw_gbps:.6g}", f"{c.bus_util:.6g}",
                        f"{c.row_hit_rate:.6g}", c.reads, c.writes]
            for c in s.cores:
                row += [c.committed, f"{c.ipc:.6g}", c.pending_reads,
                        c.mshr_occupancy, c.rob_occupancy,
                        f"{c.rob_stall_frac:.6g}"]
            w.writerow(row)
    return len(samples)


# -- Chrome trace-event format --------------------------------------------------

#: fixed thread ids: controller first, then channels, then cores
_TID_CONTROLLER = 0


def _track_tids(telemetry: "Telemetry") -> dict[str, int]:
    """Stable track-name -> tid mapping covering samples and bus events."""
    tids: dict[str, int] = {"controller": _TID_CONTROLLER}
    if telemetry.samples:
        first = telemetry.samples[0]
        for c in first.channels:
            tids.setdefault(f"ch{c.index}", len(tids))
        for c in first.cores:
            tids.setdefault(f"core{c.index}", len(tids))
    for e in telemetry.bus.events:
        tids.setdefault(e.track, len(tids))
    return tids


def write_chrome_trace(
    telemetry: "Telemetry",
    path: str | os.PathLike,
    cycles_per_us: float = DEFAULT_CYCLES_PER_US,
) -> int:
    """Write a Chrome Trace Event Format file; returns events written.

    Open the result in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    if cycles_per_us <= 0:
        raise ValueError("cycles_per_us must be positive")
    pid = 1
    tids = _track_tids(telemetry)

    def ts(cycle: int) -> float:
        return cycle / cycles_per_us

    events: list[dict] = [
        {"ph": "M", "pid": pid, "name": "process_name",
         "args": {"name": "repro-sim"}},
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
             "args": {"name": track}}
        )

    for s in telemetry.samples:
        t = ts(s.cycle)
        events.append(
            {"ph": "C", "pid": pid, "tid": _TID_CONTROLLER, "ts": t,
             "name": "queue depth",
             "args": {"reads": s.read_queue, "writes": s.write_queue}}
        )
        for c in s.channels:
            tid = tids[f"ch{c.index}"]
            events.append(
                {"ph": "C", "pid": pid, "tid": tid, "ts": t,
                 "name": f"ch{c.index} bandwidth (GB/s)",
                 "args": {"GB/s": round(c.bw_gbps, 4)}}
            )
            events.append(
                {"ph": "C", "pid": pid, "tid": tid, "ts": t,
                 "name": f"ch{c.index} bus util",
                 "args": {"util": round(c.bus_util, 4),
                          "row_hit": round(c.row_hit_rate, 4)}}
            )
        for c in s.cores:
            tid = tids[f"core{c.index}"]
            events.append(
                {"ph": "C", "pid": pid, "tid": tid, "ts": t,
                 "name": f"core{c.index} IPC",
                 "args": {"ipc": round(c.ipc, 4)}}
            )
            events.append(
                {"ph": "C", "pid": pid, "tid": tid, "ts": t,
                 "name": f"core{c.index} memory",
                 "args": {"pending_reads": c.pending_reads,
                          "mshr": c.mshr_occupancy,
                          "stall_frac": round(c.rob_stall_frac, 4)}}
            )

    ph_map = {"begin": "B", "end": "E", "instant": "i"}
    for e in telemetry.bus.events:
        rec = {
            "ph": ph_map[e.kind],
            "pid": pid,
            "tid": tids[e.track],
            "ts": ts(e.cycle),
            "name": e.name,
            "cat": "sim",
        }
        if e.kind == "instant":
            rec["s"] = "t"  # thread-scoped instant
        if e.args:
            rec["args"] = to_jsonable(e.args)
        events.append(rec)

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": FORMAT,
            "sample_every": telemetry.sample_every,
            "cycles_per_us": cycles_per_us,
            "meta": to_jsonable(telemetry.meta),
        },
    }
    with open(path, "w") as f:
        json.dump(doc, f)
        f.write("\n")
    return len(events)
