"""Stall-attribution: decompose request spans into additive latency parts.

Each completed :class:`~repro.telemetry.spans.RequestSpan` is split into
seven components, in cycles:

* ``stall``    — structural stall before the request existed (MSHR file
  or controller buffer full; the front end retried until a slot freed);
* ``queue``    — waiting in the controller buffer for the scheduler to
  pick it, excluding write-drain windows;
* ``drain``    — the part of the buffer wait that overlapped an engaged
  write-drain window on the request's controller (reads are blocked
  behind the draining writes then);
* ``bank``     — picked, but the bank was still busy with earlier work;
* ``row``      — row preparation: tRCD on a closed bank, tRP + tRCD on a
  row conflict, plus any tRRD/tFAW activation throttle (0 on a row hit);
* ``bus``      — CAS done, waiting for the shared data bus;
* ``service``  — intrinsic DRAM service: CAS latency + burst transfer,
  plus the controller's fixed return-path overhead for reads.

**Conservation invariant**: the components of a span sum *exactly* (in
integer cycles) to its end-to-end latency ``done - first_attempt``.
:func:`decompose` raises ``ValueError`` if they do not — the invariant
is what makes the breakdown trustworthy as an optimization target.

:func:`attribute` runs the pass over a whole hub and aggregates per
core; :func:`format_attribution` renders the paper-style table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry
    from repro.telemetry.spans import RequestSpan

__all__ = [
    "COMPONENTS",
    "decompose",
    "drain_windows",
    "CoreBreakdown",
    "AttributionReport",
    "attribute",
    "format_attribution",
]

#: component names, in timeline order
COMPONENTS = ("stall", "queue", "drain", "bank", "row", "bus", "service")


def _overlap(begin: int, end: int, windows: Sequence[tuple[int, int]]) -> int:
    """Total cycles of [begin, end) covered by the (sorted) windows."""
    total = 0
    for w0, w1 in windows:
        if w1 <= begin:
            continue
        if w0 >= end:
            break
        total += min(end, w1) - max(begin, w0)
    return total


def decompose(
    span: "RequestSpan",
    t_cl: int,
    overhead: int = 0,
    windows: Sequence[tuple[int, int]] = (),
) -> dict[str, int]:
    """Split one completed span into its additive latency components.

    ``t_cl`` is the DRAM CAS latency, ``overhead`` the controller
    return-path cycles (applied to reads and prefetches only — exactly
    mirroring how the controller stamps ``done``), ``windows`` the
    sorted write-drain (begin, end) intervals of the span's controller.
    """
    if not span.complete:
        raise ValueError(f"span not complete: {span!r}")
    stall = span.arrival - span.first_attempt
    drain = _overlap(span.arrival, span.pick, windows)
    queue = (span.pick - span.arrival) - drain
    bank = span.bank_start - span.pick
    row = span.cas - span.bank_start
    bus = span.data_start - (span.cas + t_cl)
    service = t_cl + (span.data_end - span.data_start)
    if span.kind != "write":
        service += overhead
    parts = {
        "stall": stall,
        "queue": queue,
        "drain": drain,
        "bank": bank,
        "row": row,
        "bus": bus,
        "service": service,
    }
    total = sum(parts.values())
    if total != span.latency or min(parts.values()) < 0:
        raise ValueError(
            f"attribution conservation violated for {span!r}: "
            f"components {parts} sum to {total}, latency {span.latency}"
        )
    return parts


def drain_windows(
    telemetry: "Telemetry", end_cycle: int | None = None
) -> dict[str, list[tuple[int, int]]]:
    """Write-drain windows per controller track, from the event bus."""
    out: dict[str, list[tuple[int, int]]] = {}
    spans = telemetry.bus.spans("write_drain", end_cycle=end_cycle)
    for begin, end, track in spans:
        out.setdefault(track, []).append((begin, end))
    for windows in out.values():
        windows.sort()
    return out


@dataclass
class CoreBreakdown:
    """Aggregated latency components for one core."""

    core_id: int
    requests: int = 0
    latency_sum: int = 0
    components: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in COMPONENTS}
    )

    def add(self, parts: dict[str, int], latency: int) -> None:
        self.requests += 1
        self.latency_sum += latency
        for k, v in parts.items():
            self.components[k] += v

    @property
    def avg_latency(self) -> float:
        return self.latency_sum / self.requests if self.requests else 0.0

    def share(self, component: str) -> float:
        """Fraction of this core's total latency spent in ``component``."""
        if self.latency_sum == 0:
            return 0.0
        return self.components[component] / self.latency_sum

    def queue_share(self) -> float:
        """Combined buffered-wait share (queue + drain): the contention
        signal core-aware policies reshape."""
        return self.share("queue") + self.share("drain")


@dataclass
class AttributionReport:
    """Whole-run attribution: one :class:`CoreBreakdown` per core."""

    policy: str
    kind: str
    cores: dict[int, CoreBreakdown]
    spans_seen: int
    spans_used: int

    def core(self, core_id: int) -> CoreBreakdown:
        return self.cores[core_id]

    def totals(self) -> dict[str, int]:
        out = {c: 0 for c in COMPONENTS}
        for b in self.cores.values():
            for k, v in b.components.items():
                out[k] += v
        return out


def attribute(
    telemetry: "Telemetry",
    kind: str = "read",
    spans: Iterable["RequestSpan"] | None = None,
) -> AttributionReport:
    """Run the attribution pass over a hub's collected spans.

    ``kind`` filters which request kinds aggregate ("read" by default —
    the demand-latency decomposition; pass ``"all"`` for everything).
    Every span is still *decomposed* (so the conservation invariant is
    checked run-wide), only aggregation is filtered.
    """
    collector = telemetry.spans
    if collector is None:
        raise ValueError("telemetry hub has no span collector (capture_spans)")
    if collector.timing is None:
        raise ValueError("span collector was never wired to a system")
    t_cl = collector.timing.t_cl
    overhead = collector.overhead
    source = collector.completed if spans is None else list(spans)
    end = max((s.done for s in source), default=None)
    windows = drain_windows(telemetry, end_cycle=end)
    cores: dict[int, CoreBreakdown] = {}
    used = 0
    for span in source:
        parts = decompose(
            span, t_cl, overhead, windows.get(span.track, ())
        )
        if kind != "all" and span.kind != kind:
            continue
        used += 1
        cores.setdefault(span.core_id, CoreBreakdown(span.core_id)).add(
            parts, span.latency
        )
    policy = str(telemetry.meta.get("run", {}).get("policy", "?"))
    return AttributionReport(
        policy=policy,
        kind=kind,
        cores=dict(sorted(cores.items())),
        spans_seen=len(source),
        spans_used=used,
    )


def format_attribution(report: AttributionReport) -> str:
    """Per-core latency-breakdown table (shares of end-to-end latency)."""
    lines = [
        f"latency attribution ({report.kind} requests, policy "
        f"{report.policy}, {report.spans_used}/{report.spans_seen} spans):",
        f"{'core':<5} {'reqs':>6} {'avg lat':>8} "
        + " ".join(f"{c:>8}" for c in COMPONENTS),
    ]
    for b in report.cores.values():
        lines.append(
            f"{b.core_id:<5} {b.requests:>6} {b.avg_latency:>8.1f} "
            + " ".join(f"{b.share(c):>8.1%}" for c in COMPONENTS)
        )
    if not report.cores:
        lines.append("  (no spans collected)")
    return "\n".join(lines)
