"""Periodic time-series sampling of a running simulation.

The :class:`Sampler` rides the :class:`~repro.sim.engine.EventEngine`:
every ``sample_every`` cycles it snapshots cheap cumulative counters the
components already maintain (channel transaction/byte/burst counts, core
commit and stall accumulators, queue occupancies) and appends one
:class:`Sample` of *epoch deltas* to the owning
:class:`~repro.telemetry.hub.Telemetry`.  Reading existing counters at
epoch boundaries — instead of instrumenting every event — is what keeps
the subsystem's overhead a fraction of a percent even when enabled, and
exactly zero when disabled (no tick events are ever scheduled).

Sampler ticks are strictly read-only observers: they mutate no simulator
state, so a run produces bit-identical results with sampling on or off
(the telemetry test suite locks this in).

Epoch boundaries: ticks fire at ``E, 2E, 3E, ...``; the engine stops the
moment the last core crosses its budget, and :meth:`Sampler.finalize`
then emits one trailing partial epoch covering ``(last_tick, end]`` so
the series always accounts for the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.units import gbps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = ["ChannelSample", "CoreSample", "Sample", "Sampler"]


@dataclass(frozen=True)
class ChannelSample:
    """One logic channel over one epoch."""

    index: int
    #: DRAM bytes moved this epoch (reads + writes + prefetches)
    bytes: int
    bw_gbps: float
    #: fraction of the epoch the data bus spent bursting
    bus_util: float
    #: row-buffer hit fraction among this epoch's transactions
    row_hit_rate: float
    reads: int
    writes: int


@dataclass(frozen=True)
class CoreSample:
    """One core over one epoch."""

    index: int
    #: instructions committed this epoch
    committed: int
    ipc: float
    #: demand reads waiting in the controller buffer (instantaneous)
    pending_reads: int
    #: outstanding line misses in this core's MSHR file (instantaneous)
    mshr_occupancy: int
    #: instructions in flight between fetch and commit (instantaneous)
    rob_occupancy: int
    #: fraction of the epoch commit sat stalled under a head load
    rob_stall_frac: float


@dataclass(frozen=True)
class Sample:
    """One telemetry epoch: per-channel and per-core deltas plus queue state."""

    #: cycle the epoch ended (the tick cycle, or run end for the tail)
    cycle: int
    #: epoch length in cycles (== sample_every except for the final tail)
    span: int
    channels: tuple[ChannelSample, ...]
    cores: tuple[CoreSample, ...]
    #: controller read-queue depth at the tick (instantaneous)
    read_queue: int
    #: controller write-queue depth at the tick (instantaneous)
    write_queue: int
    #: whether the write-drain hysteresis was engaged at the tick
    drain_mode: bool
    #: engine events processed during the epoch
    events: int
    #: past-cycle schedules clamped during the epoch
    clamped_events: int


def _controllers(controller) -> list:
    """The flat list of real controllers behind ``controller``.

    Handles both the paper's shared controller and the split per-channel
    ablation (:class:`~repro.controller.split.SplitControllerGroup`).
    """
    sub = getattr(controller, "controllers", None)
    return list(sub) if sub is not None else [controller]


class Sampler:
    """Epoch-boundary snapshotter for one :class:`MultiCoreSystem`."""

    def __init__(self, telemetry: "Telemetry", system) -> None:
        self.telemetry = telemetry
        self.system = system
        self.every = telemetry.sample_every
        if self.every < 1:
            raise ValueError("sample_every must be >= 1")
        #: tick events actually executed (== samples taken at boundaries)
        self.ticks = 0
        self._last_cycle = 0
        self._finalized = False
        # Previous cumulative counter values, for delta computation.
        nch = len(system.dram.channels)
        ncore = system.config.num_cores
        self._ch_tx = [0] * nch
        self._ch_hits = [0] * nch
        self._ch_data_cycles = [0] * nch
        self._ch_writes = [0] * nch
        self._core_committed = [0] * ncore
        self._core_stall_q = [0] * ncore
        self._events = 0
        self._clamped = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Arm the first tick (call once, before the system runs)."""
        self.system.engine.schedule(self.every, self._tick)

    def _tick(self, now: int) -> None:
        self.ticks += 1
        self._take(now)
        if not self.system.all_finished:
            self.system.engine.schedule(now + self.every, self._tick)

    def finalize(self, end_cycle: int | None = None) -> None:
        """Emit the trailing partial epoch after the run stops."""
        if self._finalized:
            return
        self._finalized = True
        end = end_cycle if end_cycle is not None else self.system.engine.now
        if end > self._last_cycle:
            self._take(end)

    # -- snapshotting -------------------------------------------------------------

    def _take(self, now: int) -> None:
        system = self.system
        span = now - self._last_cycle
        if span <= 0:
            return
        line_bytes = system.config.line_bytes

        channels = []
        for i, ch in enumerate(system.dram.channels):
            d_tx = ch.transactions - self._ch_tx[i]
            d_hits = ch.total_row_hits - self._ch_hits[i]
            d_data = ch.data_cycles - self._ch_data_cycles[i]
            d_wr = ch.writes - self._ch_writes[i]
            self._ch_tx[i] = ch.transactions
            self._ch_hits[i] = ch.total_row_hits
            self._ch_data_cycles[i] = ch.data_cycles
            self._ch_writes[i] = ch.writes
            nbytes = d_tx * line_bytes
            channels.append(
                ChannelSample(
                    index=i,
                    bytes=nbytes,
                    bw_gbps=gbps(nbytes, span),
                    bus_util=min(d_data / span, 1.0),
                    row_hit_rate=d_hits / d_tx if d_tx else 0.0,
                    reads=d_tx - d_wr,
                    writes=d_wr,
                )
            )

        pending_reads = [0] * system.config.num_cores
        read_q = write_q = 0
        drain = False
        for c in _controllers(system.controller):
            q = c.queues
            read_q += len(q.reads)
            write_q += len(q.writes)
            drain = drain or c.drain_mode
            for core_id, n in enumerate(q.pending_reads):
                pending_reads[core_id] += n

        Q = system.config.core.issue_width
        cores = []
        for i, core in enumerate(system.cores):
            d_committed = core.committed - self._core_committed[i]
            d_stall = core.stall_q - self._core_stall_q[i]
            self._core_committed[i] = core.committed
            self._core_stall_q[i] = core.stall_q
            cores.append(
                CoreSample(
                    index=i,
                    committed=d_committed,
                    ipc=d_committed / span,
                    pending_reads=pending_reads[i],
                    mshr_occupancy=system.hierarchy.mshrs[i].occupancy,
                    rob_occupancy=core.fetched - core.committed,
                    rob_stall_frac=min(d_stall / (Q * span), 1.0),
                )
            )

        engine = system.engine
        d_events = engine.events_processed - self._events
        d_clamped = engine.clamped_events - self._clamped
        self._events = engine.events_processed
        self._clamped = engine.clamped_events

        self._last_cycle = now
        self.telemetry.samples.append(
            Sample(
                cycle=now,
                span=span,
                channels=tuple(channels),
                cores=tuple(cores),
                read_queue=read_q,
                write_queue=write_q,
                drain_mode=drain,
                events=d_events,
                clamped_events=d_clamped,
            )
        )
