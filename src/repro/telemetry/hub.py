"""The per-run telemetry hub: registry + event bus + sampled series.

One :class:`Telemetry` instance accompanies one simulation run.  Pass it
to :class:`~repro.sim.system.MultiCoreSystem` (or the
:func:`~repro.sim.runner.run_multicore` helpers, or the CLI's
``--telemetry`` flag) and after the run it holds three views of what
happened:

* ``registry`` — named counters/gauges/histograms components updated;
* ``bus``      — the discrete event stream (drain windows, decisions,
  commands) every producer shares;
* ``samples``  — the periodic time series the
  :class:`~repro.telemetry.sampler.Sampler` took.

Exporters in :mod:`repro.telemetry.export` turn a hub into JSONL, CSV or
a Chrome/Perfetto trace;
:func:`repro.telemetry.report.render_summary` renders it for a terminal.

When no hub is attached the simulator schedules no sampler ticks and
emits no events — disabled telemetry is the absence of work, not work
that is discarded.
"""

from __future__ import annotations

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.registry import TelemetryRegistry
from repro.telemetry.sampler import Sample

__all__ = ["Telemetry"]


class Telemetry:
    """Everything observed about one run.

    Parameters
    ----------
    sample_every:
        Sampler epoch length in CPU cycles.
    capture_decisions / capture_commands:
        Opt-in high-volume streams: per-decision and per-DRAM-command
        events on the bus.  The periodic series does not need them; the
        Chrome trace is far richer with them.
    capture_spans / span_sample:
        Opt-in per-request lifecycle tracing
        (:mod:`repro.telemetry.spans`): every ``span_sample``-th memory
        request carries a stage-stamped span record, decomposable into
        additive latency components by
        :func:`repro.telemetry.attribution.attribute`.  ``span_sample=1``
        traces every request.
    retain_events:
        ``False`` turns the bus into a pure pipe for streaming consumers.
    """

    def __init__(
        self,
        sample_every: int = 1000,
        capture_decisions: bool = False,
        capture_commands: bool = False,
        capture_spans: bool = False,
        span_sample: int = 64,
        retain_events: bool = True,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.capture_decisions = capture_decisions
        self.capture_commands = capture_commands
        self.registry = TelemetryRegistry(enabled=True)
        self.bus = TelemetryBus(retain=retain_events)
        self.samples: list[Sample] = []
        #: request-lifecycle span collector, or None when not capturing
        self.spans = None
        if capture_spans:
            from repro.telemetry.spans import SpanCollector

            self.spans = SpanCollector(sample_every=span_sample)
        #: free-form run description exporters embed (policy, mix, seed...)
        self.meta: dict = {}

    # -- convenience -------------------------------------------------------------

    @property
    def end_cycle(self) -> int:
        """Last sampled cycle (0 before any sample)."""
        return self.samples[-1].cycle if self.samples else 0

    def series(self, picker) -> list[tuple[int, float]]:
        """Extract ``(cycle, value)`` pairs via ``picker(sample)``."""
        return [(s.cycle, picker(s)) for s in self.samples]

    def totals(self) -> dict:
        """Whole-run aggregates of the sampled series."""
        if not self.samples:
            return {}
        cycles = sum(s.span for s in self.samples)
        nch = len(self.samples[0].channels)
        ncore = len(self.samples[0].cores)
        ch_bytes = [0] * nch
        ch_tx = [0] * nch
        ch_hits = 0.0
        tx_total = 0
        for s in self.samples:
            for c in s.channels:
                ch_bytes[c.index] += c.bytes
                tx = c.reads + c.writes
                ch_tx[c.index] += tx
                ch_hits += c.row_hit_rate * tx
                tx_total += tx
        committed = [0] * ncore
        for s in self.samples:
            for c in s.cores:
                committed[c.index] += c.committed
        return {
            "cycles": cycles,
            "channel_bytes": ch_bytes,
            "channel_transactions": ch_tx,
            "row_hit_rate": ch_hits / tx_total if tx_total else 0.0,
            "committed": committed,
            "events": sum(s.events for s in self.samples),
            "clamped_events": sum(s.clamped_events for s in self.samples),
        }
