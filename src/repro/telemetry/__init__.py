"""repro.telemetry — unified, low-overhead instrumentation & trace export.

One :class:`Telemetry` hub per run collects three complementary views:

* a registry of named counters / gauges / histograms
  (:mod:`repro.telemetry.registry`) with no-op stubs when disabled;
* a shared event bus (:mod:`repro.telemetry.bus`) the decision log,
  command log and write-drain hysteresis all publish through;
* a periodic time series (:mod:`repro.telemetry.sampler`): per-channel
  bandwidth, data-bus utilisation, row-hit rate, queue depths, per-core
  pending reads, MSHR occupancy and ROB stall fraction.

Exporters (:mod:`repro.telemetry.export`) write JSONL, CSV, and Chrome
trace-event JSON that Perfetto loads; :mod:`repro.telemetry.report`
renders a terminal summary.  See docs/OBSERVABILITY.md for the tour.

Quick start::

    from repro import Telemetry, run_multicore, workload_by_name
    from repro.telemetry import render_summary, write_chrome_trace

    tm = Telemetry(sample_every=2000, capture_decisions=True)
    result = run_multicore(workload_by_name("4MEM-1"), "LREQ",
                           inst_budget=30_000, telemetry=tm)
    print(render_summary(tm))
    write_chrome_trace(tm, "run.trace.json")
"""

from repro.telemetry.bus import TelemetryBus, TraceEvent
from repro.telemetry.export import (
    read_jsonl,
    write_chrome_trace,
    write_csv,
    write_jsonl,
)
from repro.telemetry.hub import Telemetry
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    NULL_INSTRUMENT,
    TelemetryRegistry,
)
from repro.telemetry.report import render_summary
from repro.telemetry.sampler import ChannelSample, CoreSample, Sample, Sampler

__all__ = [
    "Telemetry",
    "TelemetryBus",
    "TraceEvent",
    "TelemetryRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_INSTRUMENT",
    "Sampler",
    "Sample",
    "ChannelSample",
    "CoreSample",
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "write_chrome_trace",
    "render_summary",
]
