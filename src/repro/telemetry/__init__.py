"""repro.telemetry — unified, low-overhead instrumentation & trace export.

One :class:`Telemetry` hub per run collects three complementary views:

* a registry of named counters / gauges / histograms
  (:mod:`repro.telemetry.registry`) with no-op stubs when disabled;
* a shared event bus (:mod:`repro.telemetry.bus`) the decision log,
  command log and write-drain hysteresis all publish through;
* a periodic time series (:mod:`repro.telemetry.sampler`): per-channel
  bandwidth, data-bus utilisation, row-hit rate, queue depths, per-core
  pending reads, MSHR occupancy and ROB stall fraction.

Exporters (:mod:`repro.telemetry.export`) write JSONL, CSV, and Chrome
trace-event JSON that Perfetto loads; :mod:`repro.telemetry.report`
renders a terminal summary.  Opt-in request-lifecycle tracing
(:mod:`repro.telemetry.spans`, ``Telemetry(capture_spans=True)``) stamps
sampled requests at every stage and :mod:`repro.telemetry.attribution`
decomposes them into additive latency components.  See
docs/OBSERVABILITY.md for the tour.

Quick start::

    from repro import Telemetry, run_multicore, workload_by_name
    from repro.telemetry import render_summary, write_chrome_trace

    tm = Telemetry(sample_every=2000, capture_decisions=True)
    result = run_multicore(workload_by_name("4MEM-1"), "LREQ",
                           inst_budget=30_000, telemetry=tm)
    print(render_summary(tm))
    write_chrome_trace(tm, "run.trace.json")
"""

from repro.telemetry.attribution import (
    AttributionReport,
    CoreBreakdown,
    attribute,
    decompose,
    format_attribution,
)
from repro.telemetry.bus import TelemetryBus, TraceEvent
from repro.telemetry.export import (
    read_jsonl,
    run_metadata,
    write_chrome_trace,
    write_csv,
    write_jsonl,
    write_spans_jsonl,
)
from repro.telemetry.fleet import (
    FleetMetrics,
    FleetObserver,
    FleetTraceWriter,
    fleet_ids,
    merge_traces,
    new_run_id,
    prometheus_text,
    read_fleet_trace,
    render_dashboard,
    write_merged_trace,
    write_prometheus,
)
from repro.telemetry.hub import Telemetry
from repro.telemetry.profiling import EngineProfiler
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    NULL_INSTRUMENT,
    TelemetryRegistry,
)
from repro.telemetry.report import render_summary
from repro.telemetry.sampler import ChannelSample, CoreSample, Sample, Sampler
from repro.telemetry.spans import RequestSpan, SpanCollector

__all__ = [
    "Telemetry",
    "TelemetryBus",
    "TraceEvent",
    "TelemetryRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_INSTRUMENT",
    "Sampler",
    "Sample",
    "ChannelSample",
    "CoreSample",
    "RequestSpan",
    "SpanCollector",
    "AttributionReport",
    "CoreBreakdown",
    "attribute",
    "decompose",
    "format_attribution",
    "run_metadata",
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "write_chrome_trace",
    "write_spans_jsonl",
    "render_summary",
    "FleetMetrics",
    "FleetObserver",
    "FleetTraceWriter",
    "fleet_ids",
    "new_run_id",
    "prometheus_text",
    "write_prometheus",
    "read_fleet_trace",
    "merge_traces",
    "write_merged_trace",
    "render_dashboard",
    "EngineProfiler",
]
