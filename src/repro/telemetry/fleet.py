"""Fleet observability: cross-process traces, metrics and dashboards.

The per-run telemetry hub (:mod:`repro.telemetry.hub`) observes *one
simulation in one process*.  This module observes the machinery that
runs many simulations across many processes — the distributed sweep
service (:mod:`repro.service`) and the local parallel runner — and
answers the fleet-level questions the hub cannot: which worker is slow,
why a lease was retried, where fleet wall-clock goes.

Three pieces, all strictly opt-in (a fleet with observability disabled
does no extra work and produces bit-identical results):

* :class:`FleetTraceWriter` — an append-only JSONL recorder of
  wall-clock events, one file per process.  Every file carries the
  shared ``run_id`` in its header (plus the process role and worker
  name), so :func:`merge_traces` can stitch coordinator lease slices
  and worker cell slices from separate hosts into one Chrome trace
  timeline (``repro obs merge-trace``): one lane per process, slices =
  work, gaps = idle.
* :class:`FleetMetrics` — a coordinator-side instrument registry
  (reusing :class:`~repro.telemetry.registry.TelemetryRegistry`) of
  queue depths, lease grant/complete/expire/retry counters, per-worker
  throughput and heartbeat-gap histograms, and result-store
  hit/miss/verify counters.  :func:`prometheus_text` renders a snapshot
  in the Prometheus text exposition format; :class:`FleetObserver`
  snapshots periodically to JSONL and a ``.prom`` file and serves the
  live view through the coordinator's ``status`` request.
* :func:`render_dashboard` — the TTY progress-bar + worker-table view
  ``repro submit --watch`` refreshes from those status snapshots.

Correlation identifiers travel two ways: inside the service protocol
(``welcome.run_id``, ``task.cell_id`` — optional, backward-compatible
protocol-v1 fields) and through the ``REPRO_RUN_ID`` /
``REPRO_WORKER_ID`` / ``REPRO_CELL_ID`` environment variables, which
every exporter stamps into its run-metadata header
(:func:`repro.telemetry.export.run_metadata`) so even a per-simulation
Chrome trace written inside a worker names the fleet run it was part of.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from datetime import datetime, timezone

from repro.telemetry.registry import TelemetryRegistry

__all__ = [
    "FLEET_FORMAT",
    "new_run_id",
    "fleet_ids",
    "FleetTraceWriter",
    "FleetMetrics",
    "FleetObserver",
    "prometheus_text",
    "write_prometheus",
    "read_fleet_trace",
    "merge_traces",
    "write_merged_trace",
    "render_dashboard",
]

#: format marker on the JSONL header line of a fleet trace file
FLEET_FORMAT = "repro-fleet-trace-v1"

#: environment variables carrying correlation ids across process spawns
ENV_RUN_ID = "REPRO_RUN_ID"
ENV_WORKER_ID = "REPRO_WORKER_ID"
ENV_CELL_ID = "REPRO_CELL_ID"


def new_run_id() -> str:
    """A fresh fleet-run identifier (short, log-friendly, unique)."""
    return uuid.uuid4().hex[:12]


def fleet_ids() -> dict:
    """Correlation ids of the current process, from the environment.

    The service sets these (coordinator mints the ``run_id``, workers
    adopt it from ``welcome`` and stamp the executing ``cell_id``); the
    local parallel runner sets ``run_id`` before forking its pool.
    Empty dict outside any fleet context.
    """
    out = {}
    for field, env in (("run_id", ENV_RUN_ID), ("worker_id", ENV_WORKER_ID),
                       ("cell_id", ENV_CELL_ID)):
        value = os.environ.get(env)
        if value:
            out[field] = value
    return out


# -- trace recording -------------------------------------------------------------


class FleetTraceWriter:
    """Append-only JSONL recorder of wall-clock fleet events.

    One writer per process per run.  Records are flushed line-by-line so
    a crashed process leaves a readable prefix.  Record types:

    * ``header``   — format marker, role, ``run_id``, worker name, pid;
    * ``event``    — ``ph`` ``"B"``/``"E"``/``"i"`` (begin/end/instant)
      on a named ``track`` at wall-clock ``t`` (``time.time()``);
    * ``snapshot`` — a periodic counter sample (worker throughput,
      queue depths) rendered as counter tracks by the merger;
    * ``footer``   — lifetime totals, written by :meth:`close`.
    """

    def __init__(self, path, *, role: str, run_id: str,
                 worker_id: str | None = None) -> None:
        self.path = os.fspath(path)
        self.role = role
        self.run_id = run_id
        self.worker_id = worker_id
        self.events_written = 0
        self._f = open(self.path, "w")
        self._write({
            "type": "header",
            "format": FLEET_FORMAT,
            "role": role,
            "run_id": run_id,
            "worker_id": worker_id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "created": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
        })

    def _write(self, rec: dict) -> None:
        self._f.write(json.dumps(rec) + "\n")
        self._f.flush()

    def event(self, name: str, ph: str, track: str,
              t: float | None = None, **args) -> None:
        """Record one begin/end/instant event on a track."""
        if ph not in ("B", "E", "i"):
            raise ValueError(f"unknown fleet event phase {ph!r}")
        rec = {"type": "event", "name": name, "ph": ph,
               "t": time.time() if t is None else t, "track": track}
        if args:
            rec["args"] = args
        self._write(rec)
        self.events_written += 1

    def snapshot(self, track: str, t: float | None = None, **values) -> None:
        """Record one periodic counter sample on a track."""
        self._write({"type": "snapshot", "t": time.time() if t is None
                     else t, "track": track, "values": values})
        self.events_written += 1

    def close(self, **totals) -> None:
        if self._f.closed:
            return
        self._write({"type": "footer", "t": time.time(), "totals": totals,
                     "events": self.events_written})
        self._f.close()


# -- coordinator metrics ---------------------------------------------------------


class FleetMetrics:
    """Coordinator-side fleet instrument registry + per-worker table.

    Instrument names are fixed (no per-worker instruments) so the
    Prometheus output has bounded cardinality on the registry side;
    per-worker detail lives in :meth:`worker_table`, exported as
    labelled series by :func:`prometheus_text`.
    """

    def __init__(self, run_id: str) -> None:
        self.run_id = run_id
        self.registry = TelemetryRegistry(enabled=True)
        r = self.registry
        self.lease_granted = r.counter("fleet.lease.granted")
        self.lease_completed = r.counter("fleet.lease.completed")
        self.lease_expired = r.counter("fleet.lease.expired")
        self.lease_retried = r.counter("fleet.lease.retried")
        self.lease_failed = r.counter("fleet.lease.failed")
        self.store_hits = r.counter("fleet.store.hits")
        self.store_misses = r.counter("fleet.store.misses")
        self.store_verify_failures = r.counter("fleet.store.verify_failures")
        self.jobs_submitted = r.counter("fleet.jobs.submitted")
        self.jobs_completed = r.counter("fleet.jobs.completed")
        self.workers_joined = r.counter("fleet.workers.joined")
        self.workers_left = r.counter("fleet.workers.left")
        self.cell_seconds = r.histogram("fleet.cell.seconds")
        self.heartbeat_gap = r.histogram("fleet.worker.heartbeat_gap")
        #: worker name -> mutable per-worker stats row
        self.workers: dict[str, dict] = {}
        self._t0 = time.time()

    # -- worker lifecycle --------------------------------------------------------

    def _row(self, worker: str) -> dict:
        row = self.workers.get(worker)
        if row is None:
            row = self.workers[worker] = {
                "cells": 0, "busy_seconds": 0.0, "connected": True,
                "joined": time.time(), "last_heartbeat": time.time(),
                "heartbeat_gap_max": 0.0, "current": None,
            }
        return row

    def on_worker_join(self, worker: str) -> None:
        self.workers_joined.inc()
        self._row(worker)

    def on_worker_leave(self, worker: str) -> None:
        self.workers_left.inc()
        row = self._row(worker)
        row["connected"] = False
        row["current"] = None

    def on_heartbeat(self, worker: str) -> None:
        row = self._row(worker)
        now = time.time()
        gap = now - row["last_heartbeat"]
        row["last_heartbeat"] = now
        if gap > row["heartbeat_gap_max"]:
            row["heartbeat_gap_max"] = gap
        self.heartbeat_gap.observe(gap)

    # -- lease lifecycle ---------------------------------------------------------

    def on_lease_granted(self, worker: str, key_str: str,
                         attempt: int) -> None:
        self.lease_granted.inc()
        if attempt > 0:
            self.lease_retried.inc()
        self._row(worker)["current"] = key_str

    def on_lease_ended(self, worker: str, status: str,
                       seconds: float) -> None:
        """``status``: done | failed | corrupt | expired | disconnect."""
        row = self._row(worker)
        row["current"] = None
        if status == "done":
            self.lease_completed.inc()
            self.cell_seconds.observe(seconds)
            row["cells"] += 1
            row["busy_seconds"] += seconds
        elif status == "expired":
            self.lease_expired.inc()
        elif status == "corrupt":
            self.store_verify_failures.inc()
        elif status == "failed":
            self.lease_failed.inc()

    # -- snapshots ---------------------------------------------------------------

    def worker_table(self) -> dict[str, dict]:
        """Per-worker derived stats (cells/sec, heartbeat age, ...)."""
        now = time.time()
        out = {}
        for name, row in sorted(self.workers.items()):
            alive = now - row["joined"]
            out[name] = {
                "connected": row["connected"],
                "cells": row["cells"],
                "busy_seconds": round(row["busy_seconds"], 3),
                "cells_per_sec": round(row["cells"] / alive, 4) if alive
                else 0.0,
                "utilization": round(row["busy_seconds"] / alive, 4)
                if alive else 0.0,
                "heartbeat_age": round(now - row["last_heartbeat"], 3),
                "heartbeat_gap_max": round(row["heartbeat_gap_max"], 3),
                "current": row["current"],
            }
        return out

    def snapshot(self, queue: dict[str, int] | None = None) -> dict:
        """One point-in-time metrics document (JSONL / status / prom)."""
        return {
            "t": time.time(),
            "run_id": self.run_id,
            "uptime_seconds": round(time.time() - self._t0, 3),
            "queue": dict(queue or {}),
            "instruments": self.registry.snapshot(),
            "workers": self.worker_table(),
        }


# -- Prometheus text format ------------------------------------------------------


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def prometheus_text(snapshot: dict) -> str:
    """Render a :meth:`FleetMetrics.snapshot` document in the Prometheus
    text exposition format (one scrape's worth, suitable for the
    textfile collector).

    Counters get a ``_total`` suffix; histograms are exported as the
    summary gauges ``_count`` / ``_sum`` / ``_min`` / ``_max`` (full
    distributions are never kept — see
    :class:`~repro.telemetry.registry.Histogram`).  Per-worker rows
    become series labelled ``{worker="..."}``.
    """
    run_id = snapshot.get("run_id", "")
    lines: list[str] = []

    def emit(name: str, kind: str, value, labels: str = "") -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{labels} {value}")

    for key, value in sorted(snapshot.get("queue", {}).items()):
        emit(_prom_name(f"fleet.queue.{key}"), "gauge", value)
    for name, inst in sorted(snapshot.get("instruments", {}).items()):
        base = _prom_name(name)
        if inst["kind"] == "counter":
            emit(base + "_total", "counter", inst["value"])
        elif inst["kind"] == "gauge":
            emit(base, "gauge", inst["value"])
        else:  # histogram summary
            emit(base + "_count", "gauge", inst["count"])
            emit(base + "_sum", "gauge", inst["sum"])
            emit(base + "_min", "gauge", inst["min"])
            emit(base + "_max", "gauge", inst["max"])
    workers = snapshot.get("workers", {})
    for field, kind in (("cells", "counter"), ("busy_seconds", "counter"),
                        ("cells_per_sec", "gauge"), ("utilization", "gauge"),
                        ("heartbeat_age", "gauge"),
                        ("heartbeat_gap_max", "gauge")):
        name = _prom_name(f"fleet.worker.{field}")
        suffix = "_total" if kind == "counter" else ""
        if workers:
            lines.append(f"# TYPE {name}{suffix} {kind}")
        for wname, row in sorted(workers.items()):
            labels = f'{{worker="{wname}",run_id="{run_id}"}}'
            lines.append(f"{name}{suffix}{labels} {row[field]}")
    emit(_prom_name("fleet.uptime_seconds"), "gauge",
         snapshot.get("uptime_seconds", 0.0))
    return "\n".join(lines) + "\n"


def write_prometheus(snapshot: dict, path) -> None:
    """Atomically write one snapshot as a Prometheus textfile."""
    tmp = os.fspath(path) + ".tmp"
    with open(tmp, "w") as f:
        f.write(prometheus_text(snapshot))
    os.replace(tmp, path)


# -- the coordinator-side observer ----------------------------------------------


class FleetObserver:
    """Everything the coordinator records about its own fleet.

    Bundles the optional pieces — a :class:`FleetMetrics` registry, a
    :class:`FleetTraceWriter`, and the periodic snapshot loop writing
    metrics JSONL and a Prometheus textfile — behind one object whose
    every hook tolerates any subset being disabled.  The coordinator
    calls the ``on_*`` hooks from its message handlers; ``start()`` /
    ``stop()`` bracket the asyncio snapshot task.
    """

    def __init__(
        self,
        run_id: str | None = None,
        *,
        metrics: bool = True,
        trace_out=None,
        metrics_out=None,
        prometheus_out=None,
        snapshot_every: float = 5.0,
    ) -> None:
        self.run_id = run_id or new_run_id()
        self.metrics = FleetMetrics(self.run_id) if metrics else None
        self.trace = (FleetTraceWriter(trace_out, role="coordinator",
                                       run_id=self.run_id)
                      if trace_out else None)
        self.metrics_out = (os.fspath(metrics_out) if metrics_out
                            else None)
        self.prometheus_out = (os.fspath(prometheus_out) if prometheus_out
                               else None)
        self.snapshot_every = snapshot_every
        self.snapshots_written = 0
        #: live board-counts supplier, set by the coordinator
        self.board_counts = lambda: {}
        #: worker -> (cell digest, key_str, lease wall-clock start)
        self._open: dict[str, tuple[str, str, float]] = {}
        self._digest_worker: dict[str, str] = {}
        self._snap_task = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Begin the periodic snapshot loop (requires a running loop)."""
        if self.metrics is None or not (self.metrics_out
                                        or self.prometheus_out):
            return
        import asyncio

        self._snap_task = asyncio.create_task(self._snapshot_loop())

    async def _snapshot_loop(self) -> None:
        import asyncio

        while True:
            await asyncio.sleep(self.snapshot_every)
            self.write_snapshot()

    def write_snapshot(self) -> dict:
        """Take one metrics snapshot and flush it to the output files."""
        snap = self.metrics.snapshot(queue=self.board_counts())
        if self.metrics_out:
            with open(self.metrics_out, "a") as f:
                f.write(json.dumps(snap) + "\n")
        if self.prometheus_out:
            write_prometheus(snap, self.prometheus_out)
        self.snapshots_written += 1
        return snap

    async def stop(self) -> None:
        if self._snap_task is not None:
            import asyncio

            self._snap_task.cancel()
            try:
                await self._snap_task
            except asyncio.CancelledError:
                pass
            self._snap_task = None
        if self.metrics is not None and (self.metrics_out
                                         or self.prometheus_out):
            self.write_snapshot()  # final point, even on short runs
        if self.trace is not None:
            totals = (self.metrics.snapshot(queue=self.board_counts())
                      if self.metrics is not None else {})
            self.trace.close(**{"snapshots": self.snapshots_written,
                                "queue": totals.get("queue", {})})

    # -- hooks (all safe with any piece disabled) --------------------------------

    def on_worker_join(self, worker: str) -> None:
        if self.metrics is not None:
            self.metrics.on_worker_join(worker)
        if self.trace is not None:
            self.trace.event("worker join", "i", track=worker)

    def on_worker_leave(self, worker: str, executed: int) -> None:
        self._end_lease_of(worker, "disconnect")
        if self.metrics is not None:
            self.metrics.on_worker_leave(worker)
        if self.trace is not None:
            self.trace.event("worker leave", "i", track=worker,
                             executed=executed)

    def on_heartbeat(self, worker: str) -> None:
        if self.metrics is not None:
            self.metrics.on_heartbeat(worker)

    def on_lease_granted(self, worker: str, digest: str, key_str: str,
                         attempt: int) -> None:
        now = time.time()
        self._open[worker] = (digest, key_str, now)
        self._digest_worker[digest] = worker
        if self.metrics is not None:
            self.metrics.on_lease_granted(worker, key_str, attempt)
        if self.trace is not None:
            self.trace.event(f"lease {key_str.split(':cfg=')[0]}", "B",
                             track=worker, t=now, cell_id=digest,
                             attempt=attempt)

    def on_lease_ended(self, digest: str, status: str) -> None:
        """Close the open lease slice for ``digest`` (if any)."""
        worker = self._digest_worker.pop(digest, None)
        if worker is None:
            return
        open_lease = self._open.get(worker)
        if open_lease is None or open_lease[0] != digest:
            return
        del self._open[worker]
        now = time.time()
        seconds = now - open_lease[2]
        if self.metrics is not None:
            self.metrics.on_lease_ended(worker, status, seconds)
        if self.trace is not None:
            self.trace.event(f"lease {open_lease[1].split(':cfg=')[0]}",
                             "E", track=worker, t=now, status=status)

    def _end_lease_of(self, worker: str, status: str) -> None:
        open_lease = self._open.get(worker)
        if open_lease is not None:
            self.on_lease_ended(open_lease[0], status)

    def on_store_probe(self, hit: bool) -> None:
        if self.metrics is not None:
            (self.metrics.store_hits if hit
             else self.metrics.store_misses).inc()

    def on_job(self, status: str, job_id: int, total: int) -> None:
        if self.metrics is not None:
            (self.metrics.jobs_submitted if status == "submitted"
             else self.metrics.jobs_completed).inc()
        if self.trace is not None:
            self.trace.event(f"job {job_id} {status}", "i", track="jobs",
                             total=total)

    # -- status ------------------------------------------------------------------

    def status_doc(self) -> dict | None:
        """The ``fleet`` section of a ``status_reply`` (None = disabled)."""
        if self.metrics is None:
            return None
        return self.metrics.snapshot(queue=self.board_counts())


# -- trace merging ---------------------------------------------------------------


def read_fleet_trace(path) -> dict:
    """Parse one :class:`FleetTraceWriter` file.

    Returns ``{"header": ..., "events": [...], "snapshots": [...],
    "footer": ...}``; raises ``ValueError`` for files this library did
    not write (missing or foreign header).
    """
    out: dict = {"header": None, "events": [], "snapshots": [],
                 "footer": None}
    with open(path) as f:
        for lineno, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.get("type")
            if lineno == 0:
                if kind != "header" or rec.get("format") != FLEET_FORMAT:
                    raise ValueError(f"{path}: not a {FLEET_FORMAT} file")
                out["header"] = rec
            elif kind == "event":
                out["events"].append(rec)
            elif kind == "snapshot":
                out["snapshots"].append(rec)
            elif kind == "footer":
                out["footer"] = rec
            else:
                raise ValueError(
                    f"{path}:{lineno + 1}: unknown record type {kind!r}")
    if out["header"] is None:
        raise ValueError(f"{path}: empty fleet trace")
    return out


def merge_traces(paths) -> dict:
    """Stitch per-process fleet traces into one Chrome trace document.

    Every input file must carry the same ``run_id`` (mixing runs in one
    timeline would be meaningless — a mismatch raises ``ValueError``).
    Each process becomes one Chrome ``pid`` (coordinator first, then
    workers and clients sorted by name), each track within it one
    ``tid``; begin/end events become duration slices, instants stay
    instants, snapshots become counter tracks.  Timestamps are
    wall-clock microseconds relative to the earliest event across all
    files, so lanes line up and gaps between slices read as idle time.
    """
    traces = [(os.fspath(p), read_fleet_trace(p)) for p in paths]
    if not traces:
        raise ValueError("no fleet trace files given")
    run_ids = {t["header"]["run_id"] for _, t in traces}
    if len(run_ids) != 1:
        raise ValueError(
            f"fleet traces span {len(run_ids)} run_ids {sorted(run_ids)}; "
            "merge one run at a time")
    run_id = run_ids.pop()

    def source_rank(item):
        header = item[1]["header"]
        role_rank = {"coordinator": 0, "worker": 1, "client": 2}.get(
            header["role"], 3)
        return (role_rank, header.get("worker_id") or "", item[0])

    traces.sort(key=source_rank)
    t0 = min((e["t"] for _, t in traces for e in t["events"]
              + t["snapshots"]), default=0.0)

    def ts(t: float) -> float:
        return (t - t0) * 1e6

    events: list[dict] = []
    sources = []
    for pid, (path, trace) in enumerate(traces, start=1):
        header = trace["header"]
        label = header["role"]
        if header.get("worker_id"):
            label += f" {header['worker_id']}"
        sources.append({"path": path, "pid": pid, "role": header["role"],
                        "worker_id": header.get("worker_id"),
                        "events": len(trace["events"])})
        events.append({"ph": "M", "pid": pid, "name": "process_name",
                       "args": {"name": label}})
        tids: dict[str, int] = {}

        def tid(track: str) -> int:
            t = tids.get(track)
            if t is None:
                t = tids[track] = len(tids)
                events.append({"ph": "M", "pid": pid, "tid": t,
                               "name": "thread_name",
                               "args": {"name": track}})
            return t

        for e in trace["events"]:
            rec = {"ph": e["ph"], "pid": pid, "tid": tid(e["track"]),
                   "ts": ts(e["t"]), "name": e["name"], "cat": "fleet"}
            if e["ph"] == "i":
                rec["s"] = "t"
            args = dict(e.get("args", {}))
            args["run_id"] = run_id
            rec["args"] = args
            events.append(rec)
        for s in trace["snapshots"]:
            events.append({"ph": "C", "pid": pid,
                           "tid": tid(s.get("track", "counters")),
                           "ts": ts(s["t"]),
                           "name": s.get("track", "counters"),
                           "args": s.get("values", {})})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": FLEET_FORMAT,
            "run_id": run_id,
            "sources": sources,
        },
    }


def write_merged_trace(paths, out_path) -> dict:
    """``repro obs merge-trace``'s body: merge and write; returns doc."""
    doc = merge_traces(paths)
    with open(out_path, "w") as f:
        json.dump(doc, f)
        f.write("\n")
    return doc


# -- TTY dashboard ---------------------------------------------------------------


def render_dashboard(status: dict, done: int, total: int,
                     width: int = 72) -> str:
    """Render one frame of the ``repro submit --watch`` dashboard.

    ``status`` is a coordinator ``status_reply`` document; ``done`` and
    ``total`` come from the submitting client's own progress counters
    (the stream of ``cell_done`` messages), which track *this job*
    rather than the whole board.
    """
    bar_width = max(10, width - 30)
    frac = done / total if total else 1.0
    filled = int(round(frac * bar_width))
    bar = "#" * filled + "-" * (bar_width - filled)
    lines = [f"[{bar}] {done}/{total} cells ({frac:6.1%})"]
    tasks = status.get("tasks", {})
    if tasks:
        lines.append(
            "board: " + "  ".join(f"{k}={tasks.get(k, 0)}"
                                  for k in ("pending", "leased", "done",
                                            "failed")))
    fleet = status.get("fleet") or {}
    workers = fleet.get("workers") or {}
    if workers:
        lines.append(f"{'worker':<14} {'cells':>6} {'cells/s':>8} "
                     f"{'util':>6} {'hb age':>7}  current")
        for name, row in workers.items():
            state = "" if row["connected"] else " (gone)"
            current = (row["current"] or "idle").split(":cfg=")[0]
            if len(current) > 32:
                current = current[:31] + "…"
            lines.append(
                f"{name[:14]:<14} {row['cells']:>6} "
                f"{row['cells_per_sec']:>8.2f} {row['utilization']:>6.1%} "
                f"{row['heartbeat_age']:>6.1f}s  {current}{state}")
    else:
        names = status.get("workers", [])
        lines.append(f"workers: {', '.join(names) or '(none)'}")
    return "\n".join(lines)
