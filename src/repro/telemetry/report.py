"""Terminal summary of a telemetry capture.

Renders the run the way EXPERIMENTS.md renders figures — ASCII bar
charts from :mod:`repro.metrics.report` — so ``repro run --telemetry``
can explain where bandwidth went without leaving the terminal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.report import bar_chart

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = ["render_summary"]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def render_summary(telemetry: "Telemetry") -> str:
    """One-screen text summary of the sampled series and event stream."""
    samples = telemetry.samples
    if not samples:
        return "telemetry: no samples captured"
    totals = telemetry.totals()
    cycles = totals["cycles"]
    lines = [
        f"telemetry: {len(samples)} samples over {cycles} cycles "
        f"(epoch {telemetry.sample_every}), {len(telemetry.bus.events)} events",
    ]
    if totals["clamped_events"]:
        lines.append(f"  clamped past-cycle events: {totals['clamped_events']}")

    # Per-channel: time-weighted mean bandwidth and utilisation.
    bw = {}
    for c in samples[0].channels:
        i = c.index
        bw[f"ch{i} GB/s"] = sum(
            s.channels[i].bw_gbps * s.span for s in samples
        ) / cycles
    lines.append("\nchannel bandwidth (run average):")
    lines.append(bar_chart(bw, width=30))
    util = {}
    for c in samples[0].channels:
        i = c.index
        util[f"ch{i} util"] = sum(
            s.channels[i].bus_util * s.span for s in samples
        ) / cycles
    lines.append("data-bus utilisation:")
    lines.append(bar_chart(util, width=30, fmt="{:.1%}"))
    lines.append(f"row-hit rate: {totals['row_hit_rate']:.1%}")

    # Queue depths and drain residency.
    lines.append(
        f"queue depth (mean at epoch ticks): "
        f"reads={_mean([float(s.read_queue) for s in samples]):.1f} "
        f"writes={_mean([float(s.write_queue) for s in samples]):.1f}"
    )
    drain = sum(s.span for s in samples if s.drain_mode)
    lines.append(f"write-drain engaged at {drain / cycles:.1%} of epoch ticks")

    # Per-core pressure.
    stall = {}
    for c in samples[0].cores:
        i = c.index
        stall[f"core{i} stall"] = sum(
            s.cores[i].rob_stall_frac * s.span for s in samples
        ) / cycles
    lines.append("\nROB head-load stall fraction:")
    lines.append(bar_chart(stall, width=30, fmt="{:.1%}"))
    pend = {}
    for c in samples[0].cores:
        i = c.index
        pend[f"core{i} pend-rd"] = _mean(
            [float(s.cores[i].pending_reads) for s in samples]
        )
    lines.append("pending demand reads (mean):")
    lines.append(bar_chart(pend, width=30, fmt="{:.2f}"))

    if telemetry.registry.snapshot():
        lines.append("\ninstruments:")
        for name, rec in telemetry.registry.snapshot().items():
            if rec["kind"] == "histogram":
                lines.append(
                    f"  {name}: n={rec['count']} mean={rec['mean']:.4g} "
                    f"min={rec['min']:.4g} max={rec['max']:.4g}"
                )
            else:
                lines.append(f"  {name}: {rec['value']}")
    return "\n".join(lines)
