"""Instrument registry: named counters, gauges and histograms.

The registry is the metric half of the telemetry subsystem (the event/
span half lives in :mod:`repro.telemetry.bus`).  Components request
instruments once, at construction time, and update them on their hot
paths::

    clamped = telemetry.registry.counter("engine.clamped_events")
    ...
    clamped.inc()

When telemetry is disabled every lookup returns a shared *null*
instrument whose update methods are empty ``pass`` bodies — the cheapest
thing Python can call — so instrumented components never need an
``if telemetry:`` branch around each update.  Truly hot per-event paths
should still prefer plain integer attributes that the periodic
:class:`~repro.telemetry.sampler.Sampler` reads at epoch boundaries;
instruments are for values that have no natural home on a component.
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NullInstrument",
    "NULL_INSTRUMENT",
    "TelemetryRegistry",
]


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-written named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary of a sample: count / sum / min / max.

    Full distributions are deliberately not kept — a run can observe
    millions of values and the summary is what the report renderer and
    exporters consume.  Callers that need quantiles should export the raw
    series through the event bus instead.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class NullInstrument:
    """No-op stand-in for every instrument kind when telemetry is off."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    total = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass


#: the shared disabled-mode instrument; identity-comparable in tests
NULL_INSTRUMENT = NullInstrument()


class TelemetryRegistry:
    """Name -> instrument mapping with disabled-mode null stubs.

    Requesting the same name twice returns the same instrument, so
    independent components may share a counter by agreeing on its name.
    A name is bound to one instrument kind for the registry's lifetime.
    """

    __slots__ = ("enabled", "_instruments")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        if not self.enabled:
            return NULL_INSTRUMENT
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name)
        elif type(inst) is not cls:
            raise TypeError(
                f"instrument {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict[str, dict]:
        """All instruments as plain data (for exporters / reports)."""
        out: dict[str, dict] = {}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Counter):
                out[name] = {"kind": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                out[name] = {"kind": "gauge", "value": inst.value}
            else:
                out[name] = {
                    "kind": "histogram",
                    "count": inst.count,
                    "sum": inst.total,
                    "min": inst.min if inst.count else 0.0,
                    "max": inst.max if inst.count else 0.0,
                    "mean": inst.mean,
                }
        return out

    def __len__(self) -> int:
        return len(self._instruments)
