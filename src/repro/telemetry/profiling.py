"""Engine profiling hooks: cProfile wrapped for bench/CLI consumption.

:class:`EngineProfiler` is a context manager that profiles whatever runs
inside it (the engine loop, a figure sweep) and writes two artifacts
plus an in-memory summary:

* ``<base>.pstats`` — the raw :mod:`pstats` dump, for ``snakeviz`` /
  ``python -m pstats``;
* ``<base>.folded`` — collapsed stacks (``caller;callee microseconds``
  per line) for flame-graph tools.  cProfile only keeps caller→callee
  edges, not full stacks, so these are *exact two-frame* stacks: each
  line carries the callee's own time attributed to one direct caller —
  enough for a "where does time go, called from where" flame view
  without the sampling error of a statistical profiler;
* :attr:`top` — the top-N functions by cumulative time, embedded by
  ``bench_suite.py --profile`` into the bench artifact so committed
  ``BENCH_PR<n>.json`` baselines carry a residual-profile fingerprint
  (which functions dominate, not just how long the run took).

Profiling is a measurement tool, not a telemetry stream: it perturbs
timings (typically 1.3–2×), so the bench suite runs a *separate*
profiled pass after the timed pass rather than profiling the timing
legs themselves.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats

__all__ = ["EngineProfiler"]


def _func_name(func: tuple) -> str:
    """``pstats`` function key -> ``file:line(name)`` (or ``~:0(<builtin>)``)."""
    filename, lineno, name = func
    if filename == "~":
        return name
    return f"{os.path.basename(filename)}:{lineno}({name})"


class EngineProfiler:
    """``with EngineProfiler("out/profile") as prof: run(...)``.

    On exit, writes ``out/profile.pstats`` and ``out/profile.folded``
    and fills :attr:`top` / :attr:`stats`.  ``out_base=None`` keeps the
    profile in memory only (no files) — used by tests and by callers
    that only want :attr:`top`.
    """

    def __init__(self, out_base: str | os.PathLike | None = None,
                 *, top_n: int = 15) -> None:
        self.out_base = os.fspath(out_base) if out_base is not None else None
        self.top_n = top_n
        self.profile = cProfile.Profile()
        self.stats: pstats.Stats | None = None
        self.top: list[dict] = []
        self.pstats_path: str | None = None
        self.folded_path: str | None = None

    def __enter__(self) -> "EngineProfiler":
        self.profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.profile.disable()
        self.stats = pstats.Stats(self.profile, stream=io.StringIO())
        self._summarize()
        if self.out_base is not None and exc_type is None:
            self.pstats_path = self.out_base + ".pstats"
            self.folded_path = self.out_base + ".folded"
            self.stats.dump_stats(self.pstats_path)
            with open(self.folded_path, "w") as f:
                f.write(self.folded())

    def _summarize(self) -> None:
        entries = []
        for func, (cc, nc, tt, ct, _callers) in self.stats.stats.items():
            entries.append({
                "func": _func_name(func),
                "ncalls": nc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            })
        entries.sort(key=lambda e: (-e["cumtime"], e["func"]))
        self.top = entries[: self.top_n]

    def folded(self) -> str:
        """Collapsed two-frame stacks, one ``caller;callee µs`` per line.

        Per-caller own-time comes straight from the exact ``callers``
        tuples pstats keeps (``callers[caller] = (cc, nc, tt, ct)`` —
        ``tt`` is the callee's tottime attributable to that caller), so
        the flame widths are measured, not estimated.
        """
        lines = []
        for func, (cc, nc, tt, ct, callers) in sorted(
                self.stats.stats.items()):
            callee = _func_name(func)
            if not callers:
                us = int(round(tt * 1e6))
                if us:
                    lines.append(f"{callee} {us}")
                continue
            for caller, (_cc, _nc, caller_tt, _ct) in sorted(
                    callers.items()):
                us = int(round(caller_tt * 1e6))
                if us:
                    lines.append(f"{_func_name(caller)};{callee} {us}")
        return "\n".join(lines) + "\n" if lines else ""

    def format_top(self) -> str:
        """Human-readable top-N table (``repro run --profile`` output)."""
        if not self.top:
            return "profile: no calls recorded\n"
        width = max(len(e["func"]) for e in self.top)
        lines = [f"{'function':<{width}} {'ncalls':>9} {'tottime':>9} "
                 f"{'cumtime':>9}"]
        for e in self.top:
            lines.append(f"{e['func']:<{width}} {e['ncalls']:>9} "
                         f"{e['tottime']:>9.4f} {e['cumtime']:>9.4f}")
        return "\n".join(lines) + "\n"
