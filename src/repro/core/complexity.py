"""Hardware-complexity model of the scheduling policies.

The paper argues cost as much as performance: ME-LREQ is only viable
because its division collapses into the N x 64 x 10-bit SRAM of Figure 1,
and later schedulers (BLISS, arXiv:1504.00390 §6) make *complexity* an
explicit evaluation axis next to performance and fairness — critical-path
length, per-core ranking state, and comparator width all gate what a
memory controller can actually ship.  This module gives every registered
policy a comparable cost sheet so the arena
(:mod:`repro.experiments.arena`) can print a complexity column alongside
weighted speedup and unfairness.

Accounting conventions (matching how the papers count):

* ``priority_table_bits`` — dedicated SRAM lookup state (the Fig. 1 table
  for ME-LREQ; zero for everything else here);
* ``per_core_bits`` — ranking/bookkeeping flip-flops that scale linearly
  with the core count (blacklist bits, virtual clocks, rank registers);
* ``global_bits`` — controller-wide registers independent of the core
  count (rotation pointers, streak counters, interval timers).

Request-queue storage, per-core pending-read counters used only for
back-pressure, and the row-buffer state held by the DRAM itself are
controller baseline cost shared by every policy, so they are *excluded*
— except for LREQ, where the pending counters are the ranking input and
the papers bill them to the scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["HardwareCost", "log2_bits"]


def log2_bits(n: int) -> int:
    """Bits needed to encode ``n`` distinct values (>= 1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return max(1, math.ceil(math.log2(n))) if n > 1 else 1


@dataclass(frozen=True)
class HardwareCost:
    """Scheduling-state cost sheet of one policy on an N-core controller.

    ``priority_table_bits`` is the *total* SRAM size (already multiplied
    out over cores); ``per_core_bits`` is the cost of ONE core's ranking
    state.  ``notes`` names what the bits are, for docs/POLICIES.md.
    """

    priority_table_bits: int = 0
    per_core_bits: int = 0
    global_bits: int = 0
    notes: str = "stateless (age and row state live in the controller)"

    def total_bits(self, num_cores: int) -> int:
        """Everything the policy adds to the controller, in bits."""
        return (self.priority_table_bits
                + self.per_core_bits * num_cores
                + self.global_bits)

    def total_bytes(self, num_cores: int) -> float:
        return self.total_bits(num_cores) / 8.0
