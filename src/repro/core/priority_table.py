"""The hardware priority table of the paper's Figure 1.

ME-LREQ's priority ``ME[i] / PendingRead[i]`` involves a division, which is
too expensive for the memory controller's scheduling path.  The paper's
implementation instead *pre-computes* the quotient for every possible
pending-read count (1..64) at program-load / context-switch time and stores
it, scaled to 10 bits, in a small SRAM: ``N cores x 64 entries x 10 bits``
(640 N bits total).  At a scheduling point the outstanding-read counters
index the tables in parallel and a comparator tree picks the winner.

This module models that table bit-exactly so the simulated policy sees the
same quantisation the hardware would: entries saturate at the top code, and
distinct (ME, pending) pairs may collide onto one code — the random
tie-break then decides, exactly as in the paper.

The paper only says the priorities are "scaled approximately".  Profiled
memory-efficiency values span five orders of magnitude (Table 2: 1 for
``applu`` to 16276 for ``eon``), so a *linear* 10-bit scaling quantises all
memory-intensive applications onto code 0 whenever an ILP application is in
the mix and the comparator degenerates to a coin flip among them.  The
default here is therefore **logarithmic** encoding (equal relative steps of
about 1.8 % across 8 decades), which preserves ME ratios at every
magnitude; linear encoding is available for the quantisation ablation
(`experiments.ablations`).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.util.fixedpoint import FixedPointCodec

__all__ = ["PriorityTable"]

#: log-encoding range: priorities below this floor clamp to code 0
_LOG_FLOOR = 1e-3


class PriorityTable:
    """Per-core quantised ``ME/pending`` lookup table.

    Parameters
    ----------
    me_values:
        Profiled memory efficiency per core.
    max_pending:
        Table depth — the maximum pending-read count per core (64 in the
        paper's setup).
    bits:
        Entry width (10 in the paper).
    encoding:
        ``"log"`` (default) or ``"linear"`` — see the module docstring.
    scale_to:
        The real priority value mapped to the full-scale code.  Defaults to
        the largest ``ME[i]/1`` across cores, i.e. the tables are scaled
        jointly so priorities stay comparable *across* cores — the OS would
        do this scaling when it initialises the tables.
    """

    __slots__ = ("me_values", "max_pending", "encoding", "codec", "_log_top", "_table")

    def __init__(
        self,
        me_values: Sequence[float],
        max_pending: int = 64,
        bits: int = 10,
        encoding: str = "log",
        scale_to: float | None = None,
    ) -> None:
        if not me_values:
            raise ValueError("me_values must be non-empty")
        if any(v < 0 for v in me_values):
            raise ValueError("memory efficiency cannot be negative")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if encoding not in ("log", "linear"):
            raise ValueError(f"unknown encoding {encoding!r}")
        self.me_values = tuple(float(v) for v in me_values)
        self.max_pending = max_pending
        self.encoding = encoding
        top = scale_to if scale_to is not None else max(self.me_values)
        if top <= 0:
            # All-zero ME profile: any positive scale works, every entry is 0.
            top = 1.0
        if encoding == "log":
            # Codes span [_LOG_FLOOR, top] in equal relative steps.
            self._log_top = top
            self.codec = FixedPointCodec(
                bits=bits, max_value=max(math.log(top / _LOG_FLOOR), 1e-9)
            )
        else:
            self._log_top = 0.0
            self.codec = FixedPointCodec(bits=bits, max_value=top)
        # _table[core][pending-1] = 10-bit code for ME[core]/pending
        self._table: list[list[int]] = [
            [self._encode(me / p) for p in range(1, max_pending + 1)]
            for me in self.me_values
        ]

    def _encode(self, priority: float) -> int:
        if self.encoding == "linear":
            return self.codec.encode(priority)
        if priority <= _LOG_FLOOR:
            return 0
        return self.codec.encode(math.log(priority / _LOG_FLOOR))

    @property
    def num_cores(self) -> int:
        return len(self.me_values)

    @property
    def total_bits(self) -> int:
        """Storage cost — the paper's ``N x 64 x 10`` = 640 N bits."""
        return self.num_cores * self.max_pending * self.codec.bits

    def lookup(self, core_id: int, pending_reads: int) -> int:
        """Quantised priority code of ``core_id`` with ``pending_reads``
        outstanding reads.

        Counts above the table depth clamp to the last entry (the hardware
        counter saturates); a zero count is a caller bug — cores without
        pending reads never reach the comparator.
        """
        if pending_reads < 1:
            raise ValueError("priority lookup requires pending_reads >= 1")
        idx = min(pending_reads, self.max_pending) - 1
        return self._table[core_id][idx]

    def exact(self, core_id: int, pending_reads: int) -> float:
        """Unquantised ``ME/pending`` — reference value for tests/ablations."""
        if pending_reads < 1:
            raise ValueError("pending_reads must be >= 1")
        return self.me_values[core_id] / pending_reads

    def row(self, core_id: int) -> tuple[int, ...]:
        """The full quantised row for one core (for inspection/tests)."""
        return tuple(self._table[core_id])
