"""BLISS: the Blacklisting Memory Scheduler (arXiv:1504.00390).

Subramanian et al. observe that the application-*ranking* schedulers
(ATLAS, TCM — and in this repo's lineage ME/ME-LREQ) pay for their gains
with a full ordering over cores: N-deep comparator trees on the critical
path and per-core ranking state.  BLISS replaces the full ranking with a
single bit per core — *blacklisted or not* — driven by one observation:
an application that is interference-prone reveals itself right at the
controller, by getting long consecutive runs of its own requests served
(Section 3, "Key Observation 1").

Mechanism (Section 4 of the paper, state in Figure 4 there):

* the controller remembers the last core served and a counter of how many
  of its requests were served back-to-back;
* when the streak reaches ``blacklist_threshold`` (paper value: 4), that
  core is *blacklisted*;
* scheduling priority is ``non-blacklisted first > row-hit first >
  oldest first`` — blacklisted cores are deprioritised as a group, never
  individually ranked;
* every ``clearing_interval`` cycles (paper value: 10000) all blacklist
  bits are cleared, bounding how long any core stays deprioritised
  (this is also what gives BLISS its starvation freedom).

Because the *blacklist* test outranks the row-hit test, this policy opts
out of the controller's global hit-first prefilter
(``hit_first_global = False``, like FCFS/RF) and applies hit-first
*within* the surviving pool itself — mirroring the paper's priority
order exactly.  Selection is fully deterministic (oldest within the
pool), so BLISS draws nothing from the shared tie-break RNG stream and
runs bit-identically on the object and fast backends.

Hardware cost (the paper's headline): one blacklist bit and nothing
else per core, plus one streak counter, one last-core register and the
interval countdown globally — versus ME-LREQ's 640-bit-per-core table.
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.core.complexity import HardwareCost, log2_bits
from repro.core.policy import SchedulingContext, SchedulingPolicy, hit_first_oldest
from repro.core.registry import register_policy
from repro.util.rng import RngStream

__all__ = ["BlissPolicy"]


@register_policy("BLISS")
class BlissPolicy(SchedulingPolicy):
    """Blacklist cores with long served-request streaks; serve the rest first.

    Parameters
    ----------
    blacklist_threshold:
        Consecutive served requests from one core that trigger its
        blacklisting (the paper's ``Blacklisting Threshold``; default 4).
    clearing_interval:
        Cycles between blacklist wipes (the paper's ``Clearing Interval``;
        default 10000).
    """

    #: BLISS's own precedence is blacklist > row-hit > age, so the global
    #: hit-first prefilter must not run above it.
    hit_first_global = False

    def __init__(
        self, blacklist_threshold: int = 4, clearing_interval: int = 10_000
    ) -> None:
        super().__init__()
        if blacklist_threshold < 1:
            raise ValueError("blacklist_threshold must be >= 1")
        if clearing_interval < 1:
            raise ValueError("clearing_interval must be >= 1")
        self.blacklist_threshold = blacklist_threshold
        self.clearing_interval = clearing_interval
        self._blacklisted: list[bool] = []
        self._last_core = -1
        self._streak = 0
        self._next_clear = clearing_interval
        #: number of blacklist wipes performed (tests/diagnostics)
        self.clearings = 0

    def setup(self, num_cores: int, rng: RngStream) -> None:
        super().setup(num_cores, rng)
        self._blacklisted = [False] * num_cores
        self._last_core = -1
        self._streak = 0
        self._next_clear = self.clearing_interval
        self.clearings = 0

    def reset(self) -> None:
        self._blacklisted = [False] * max(self.num_cores, 1)
        self._last_core = -1
        self._streak = 0
        self._next_clear = self.clearing_interval
        self.clearings = 0

    def is_blacklisted(self, core_id: int) -> bool:
        """Expose a core's blacklist bit (tests/diagnostics)."""
        return self._blacklisted[core_id]

    def _maybe_clear(self, now: int) -> None:
        # Clearing happens on a fixed cycle grid so the policy's state
        # depends only on `now`, never on how often scheduling points fire
        # (the two backends reach select_read at identical cycles but
        # this keeps the invariant explicit).
        if now < self._next_clear:
            return
        self._blacklisted = [False] * self.num_cores
        self._streak = 0
        self._last_core = -1
        self.clearings += 1
        periods = (now - self._next_clear) // self.clearing_interval + 1
        self._next_clear += periods * self.clearing_interval

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        self._maybe_clear(ctx.now)
        pool = [r for r in candidates if not self._blacklisted[r.core_id]]
        if not pool:
            # Everyone present is blacklisted: the distinction carries no
            # information, fall through to plain hit-first/oldest.
            pool = list(candidates)
        chosen = hit_first_oldest(pool, ctx)
        # Track the served-streak of the winning core and blacklist on
        # threshold (Section 4: the counter resets whenever the controller
        # switches cores, and after triggering a blacklist).
        if chosen.core_id == self._last_core:
            self._streak += 1
        else:
            self._last_core = chosen.core_id
            self._streak = 1
        if self._streak >= self.blacklist_threshold:
            self._blacklisted[chosen.core_id] = True
            self._streak = 0
            self._last_core = -1
        return chosen

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        # Figure 4 of the paper: 1 blacklist bit per core; globally a
        # last-core id, a streak counter sized by the threshold (paper
        # default 4 -> 3 bits) and the clearing-interval countdown
        # (10000 cycles -> 14 bits).
        return HardwareCost(
            per_core_bits=1,
            global_bits=log2_bits(num_cores) + 3 + 14,
            notes="1 blacklist bit/core; global streak counter, "
            "last-core id, interval countdown",
        )
