"""Round-Robin over cores (Section 2, 'Round-Robin').

The controller serves one request from each core in turn, skipping cores
with nothing pending on the channel being scheduled.  This bounds any
core's waiting time but, as the paper notes, 'destroys the spatial locality
available in memory access streams' — within the chosen core we still apply
hit-first/oldest, but the forced rotation across cores breaks up row-hit
runs that HF-RF would have exploited.

The rotation pointer is per-policy (i.e. global across channels), matching
a controller that arbitrates cores once and lets address interleaving pick
the channel.
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.core.complexity import HardwareCost, log2_bits
from repro.core.policy import SchedulingContext, SchedulingPolicy, hit_first_oldest
from repro.core.registry import register_policy
from repro.util.rng import RngStream

__all__ = ["RoundRobinPolicy"]


@register_policy("RR")
class RoundRobinPolicy(SchedulingPolicy):
    """Serve cores in cyclic order, skipping cores with no candidates."""

    def __init__(self) -> None:
        super().__init__()
        self._next_core = 0

    def setup(self, num_cores: int, rng: RngStream) -> None:
        super().setup(num_cores, rng)
        self._next_core = 0

    def reset(self) -> None:
        self._next_core = 0

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        by_core: dict[int, list[MemoryRequest]] = {}
        for r in candidates:
            by_core.setdefault(r.core_id, []).append(r)
        # Walk the rotation from the pointer until a core with work is found.
        for step in range(self.num_cores):
            core = (self._next_core + step) % self.num_cores
            if core in by_core:
                self._next_core = (core + 1) % self.num_cores
                return hit_first_oldest(by_core[core], ctx)
        raise ValueError("select_read called with no candidates")

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        return HardwareCost(
            global_bits=log2_bits(num_cores),
            notes="single rotation pointer",
        )
