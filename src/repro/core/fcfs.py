"""FCFS and Read-First FCFS (Section 2, 'FCFS and Read-First').

Plain FCFS serves requests strictly in arrival order with no awareness of
row buffers or cores.  Read-First FCFS adds the standard refinement of
letting reads bypass writes — in this simulator the read/write split is
performed by the controller (reads normally, writes in drain mode), so both
classes differ only in how the *controller* is configured to treat writes;
``FcfsPolicy`` additionally disables the hit-first write ordering to stay
truly arrival-ordered.

These schemes are context for the evaluation; the paper's baseline is
HF-RF (:mod:`repro.core.hit_first`).
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.core.policy import SchedulingContext, SchedulingPolicy, oldest
from repro.core.registry import register_policy

__all__ = ["FcfsPolicy", "ReadFirstFcfsPolicy"]


@register_policy("FCFS")
class FcfsPolicy(SchedulingPolicy):
    """Strict arrival order, for reads and writes alike."""

    hit_first_global = False  # predates hit-first: pure arrival order

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        return oldest(candidates)

    def select_write(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        # No hit-first refinement: pure arrival order.
        return oldest(candidates)


@register_policy("RF")
class ReadFirstFcfsPolicy(SchedulingPolicy):
    """Arrival order among reads; writes drain hit-first (controller default).

    The read-bypass-write behaviour itself is the controller's read/write
    sequencing, shared by every policy here.
    """

    hit_first_global = False  # arrival order among reads, by definition

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        return oldest(candidates)
