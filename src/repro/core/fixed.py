"""FIX-*: arbitrary fixed core-priority orders (Section 5.2).

The paper asks whether ME's gains come merely from *having* a fixed
priority order, by comparing against two arbitrary orders: FIX-3210
(core 3 highest) and FIX-0123 (core 0 highest).  The answer is no — an
arbitrary order can help one workload by +2.8 % and hurt another by −13.8 %
or −18 %, while ME's profiled order behaves consistently.  This module
implements any permutation so that experiment (and broader sweeps) can run.
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.core.complexity import HardwareCost, log2_bits
from repro.core.policy import SchedulingContext, SchedulingPolicy
from repro.util.rng import RngStream

__all__ = ["FixedPriorityPolicy"]


class FixedPriorityPolicy(SchedulingPolicy):
    """Fixed core priority by an explicit order.

    Parameters
    ----------
    order:
        Core ids from highest to lowest priority; must be a permutation of
        ``range(num_cores)`` (checked at :meth:`setup`).

    Note: not decorated with ``@register_policy`` — instances are built by
    :func:`repro.core.registry.make_policy` from ``FIX-<digits>`` names.
    """

    name = "FIX"

    def __init__(self, order: Sequence[int]) -> None:
        super().__init__()
        self.order = tuple(int(c) for c in order)
        if len(set(self.order)) != len(self.order):
            raise ValueError(f"priority order {self.order} repeats a core")
        self.name = "FIX-" + "".join(str(c) for c in self.order)
        # priority value per core: first in order = highest
        self._prio = {c: len(self.order) - i for i, c in enumerate(self.order)}

    def setup(self, num_cores: int, rng: RngStream) -> None:
        super().setup(num_cores, rng)
        if sorted(self.order) != list(range(num_cores)):
            raise ValueError(
                f"order {self.order} is not a permutation of 0..{num_cores - 1}"
            )

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        return self._select_core_then_request(
            candidates, ctx, lambda core: self._prio[core]
        )

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        # A priority-level register per core holding its place in the
        # fixed order.
        return HardwareCost(
            per_core_bits=log2_bits(num_cores),
            notes="fixed priority-level register/core",
        )
