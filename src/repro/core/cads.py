"""CADS: core-aware dynamic scheduling with adaptive rank intervals
(after Jain et al., arXiv:1907.07776).

The ranking schedulers in this repo recompute core priorities either
never (ME, FIX) or on a fixed window (ME-LREQ-ONLINE).  CADS's
contribution is making the *re-ranking cadence itself* adaptive: cores
are ranked by attained service — the least-served core gets the highest
priority, an ATLAS-style long-term fairness rule — and the interval at
which ranks are recomputed shrinks when the service distribution is
skewed (ranks are stale, interference is being mis-attributed) and grows
when service is balanced (re-ranking buys nothing, so save the
comparator work and keep row locality stable for longer).

Mechanism, as implemented here:

* per core, a *served-request* counter accumulates during the current
  rank interval;
* when the interval expires, cores are ranked by served count ascending
  (least-served = rank 0 = highest priority; ties by core id — fully
  deterministic), the counters are reset, and the next interval begins;
* at the same boundary the interval length adapts: if the service
  *imbalance* ``max(served)/min(served)`` exceeds ``imbalance_high`` the
  interval halves (clamped to ``min_interval``); if it is below
  ``imbalance_low`` the interval doubles (clamped to ``max_interval``);
  otherwise it is kept;
* between boundaries, selection is the standard two-level rule of
  Section 3.2 of the base paper: global hit-first, then the
  highest-ranked core with a candidate (random tie-break between cores
  sharing a rank value across channels never occurs — ranks are a
  permutation — but the shared tie-break machinery is reused so an
  unranked/equal-rank start behaves like the other core-aware policies),
  then oldest within the core.

Interval boundaries are evaluated lazily at scheduling points, on a
``now``-based grid, so the adaptation depends only on cycle time and
served counts — both identical across the object and fast backends —
keeping CADS bit-identical on the two engines.

Hardware cost: a served counter and a rank register per core, plus the
interval length and its countdown globally — no SRAM table, no division.
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.core.complexity import HardwareCost, log2_bits
from repro.core.policy import SchedulingContext, SchedulingPolicy
from repro.core.registry import register_policy
from repro.util.rng import RngStream

__all__ = ["CadsPolicy"]


@register_policy("CADS")
class CadsPolicy(SchedulingPolicy):
    """Least-attained-service ranking with an adaptive re-rank interval.

    Parameters
    ----------
    rank_interval:
        Starting interval, in cycles, between rank recomputations.
    min_interval / max_interval:
        Clamps for the adaptive interval.
    imbalance_high:
        Served-count imbalance above which the interval halves.
    imbalance_low:
        Imbalance below which the interval doubles.
    """

    def __init__(
        self,
        rank_interval: int = 10_000,
        min_interval: int = 2_500,
        max_interval: int = 40_000,
        imbalance_high: float = 4.0,
        imbalance_low: float = 1.5,
    ) -> None:
        super().__init__()
        if not 1 <= min_interval <= rank_interval <= max_interval:
            raise ValueError(
                "need 1 <= min_interval <= rank_interval <= max_interval"
            )
        if not 0 < imbalance_low < imbalance_high:
            raise ValueError("need 0 < imbalance_low < imbalance_high")
        self.rank_interval = rank_interval
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.imbalance_high = imbalance_high
        self.imbalance_low = imbalance_low
        self._served: list[int] = []
        self._rank: list[int] = []
        self._interval = rank_interval
        self._interval_end = rank_interval
        #: adaptation counters (tests/diagnostics)
        self.rerank_count = 0
        self.shrink_count = 0
        self.grow_count = 0

    def setup(self, num_cores: int, rng: RngStream) -> None:
        super().setup(num_cores, rng)
        self._served = [0] * num_cores
        self._rank = [0] * num_cores
        self._interval = self.rank_interval
        self._interval_end = self.rank_interval
        self.rerank_count = 0
        self.shrink_count = 0
        self.grow_count = 0

    def reset(self) -> None:
        n = max(self.num_cores, 1)
        self._served = [0] * n
        self._rank = [0] * n
        self._interval = self.rank_interval
        self._interval_end = self.rank_interval
        self.rerank_count = 0
        self.shrink_count = 0
        self.grow_count = 0

    def rank_of(self, core_id: int) -> int:
        """Current rank of ``core_id`` (0 = highest priority)."""
        return self._rank[core_id]

    @property
    def current_interval(self) -> int:
        """The adaptive rank interval, in cycles."""
        return self._interval

    def _maybe_rerank(self, now: int) -> None:
        # Lazy boundary evaluation on a now-based grid: catch up over any
        # skipped boundaries one at a time so interval adaptation sees the
        # same sequence regardless of how sparse scheduling points are.
        while now >= self._interval_end:
            self._rerank()
            self._adapt_interval()
            self._served = [0] * self.num_cores
            self._interval_end += self._interval

    def _rerank(self) -> None:
        # Least attained service first; core id breaks ties so the rank
        # permutation is deterministic.
        order = sorted(range(self.num_cores), key=lambda c: (self._served[c], c))
        for rank, core in enumerate(order):
            self._rank[core] = rank
        self.rerank_count += 1

    def _adapt_interval(self) -> None:
        busiest = max(self._served)
        if busiest == 0:
            # Idle interval: nothing to learn, keep the cadence.
            return
        imbalance = busiest / max(min(self._served), 1)
        if imbalance > self.imbalance_high and self._interval > self.min_interval:
            self._interval = max(self._interval // 2, self.min_interval)
            self.shrink_count += 1
        elif imbalance < self.imbalance_low and self._interval < self.max_interval:
            self._interval = min(self._interval * 2, self.max_interval)
            self.grow_count += 1

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        self._maybe_rerank(ctx.now)
        chosen = self._select_core_then_request(
            candidates, ctx, lambda core: -self._rank[core]
        )
        self._served[chosen.core_id] += 1
        return chosen

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        # Per core: a 16-bit served counter plus a log2(N)-bit rank
        # register; globally the interval length and its countdown
        # (16 bits each, covering max_interval = 40000 cycles).
        return HardwareCost(
            per_core_bits=16 + log2_bits(num_cores),
            global_bits=32,
            notes="16b served counter + rank register/core; "
            "global interval length + countdown",
        )
