"""Extension policies from the paper's related-work section.

The paper positions ME-LREQ against two contemporaneous fairness-oriented
schedulers (Section 6): Nesbit et al.'s *Fair Queuing CMP Memory Systems*
(MICRO'06) and Mutlu & Moscibroda's *Stall-Time Fair Memory scheduling*
(MICRO'07).  Neither is evaluated in the paper, but a reproduction that
wants to explore the design space needs comparable implementations, so
simplified-but-faithful versions are provided here:

* :class:`FairQueueingPolicy` (``FQ``) — network-fair-queueing transplant:
  each core owns a virtual clock that advances by a service quantum per
  transaction served; the core with the smallest virtual finish time wins.
  Idle cores' clocks are clamped forward so they cannot hoard credit.
* :class:`StallTimeFairPolicy` (``STFM``) — prioritises the core whose
  estimated slowdown (observed memory latency vs an unloaded-latency
  baseline) is currently largest, the core idea of STFM without its
  detailed interference accounting.
* :class:`BatchSchedulingPolicy` (``BATCH``) — a PAR-BS-style scheduler
  (Mutlu & Moscibroda, ISCA'08, contemporaneous with the paper): requests
  are grouped into batches (up to ``marking_cap`` per core); the current
  batch is fully served before newer requests, which bounds any request's
  wait to one batch, and within the batch cores are ranked
  shortest-job-first (fewest marked requests).

All plug into the same controller/per-channel scheduling machinery as the
paper's policies and honour the global hit-first command rule.
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.core.complexity import HardwareCost
from repro.core.policy import SchedulingContext, SchedulingPolicy
from repro.core.registry import register_policy
from repro.util.rng import RngStream

__all__ = ["BatchSchedulingPolicy", "FairQueueingPolicy", "StallTimeFairPolicy"]


@register_policy("FQ")
class FairQueueingPolicy(SchedulingPolicy):
    """Fair queueing over cores via virtual finish times.

    Parameters
    ----------
    quantum:
        Virtual service units charged per transaction.  The absolute value
        is irrelevant (only comparisons matter); shares are equal, as in
        the base fair-queueing formulation.
    """

    def __init__(self, quantum: int = 64) -> None:
        super().__init__()
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self._vclock: list[int] = []
        #: system virtual time: a core (re)joining the backlog starts here,
        #: so idle periods bank no credit
        self._vfloor = 0

    def setup(self, num_cores: int, rng: RngStream) -> None:
        super().setup(num_cores, rng)
        self._vclock = [0] * num_cores
        self._vfloor = 0

    def reset(self) -> None:
        self._vclock = [0] * max(self.num_cores, 1)
        self._vfloor = 0

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        active = {r.core_id for r in candidates}
        for c in active:
            if self._vclock[c] < self._vfloor:
                self._vclock[c] = self._vfloor
        self._vfloor = min(self._vclock[c] for c in active)
        chosen = self._select_core_then_request(
            candidates, ctx, lambda core: -float(self._vclock[core])
        )
        self._vclock[chosen.core_id] += self.quantum
        return chosen

    def virtual_clock(self, core_id: int) -> int:
        """Expose a core's virtual time (tests/diagnostics)."""
        return self._vclock[core_id]

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        return HardwareCost(
            per_core_bits=32,
            global_bits=32,
            notes="32b virtual clock/core + system virtual-time floor",
        )


@register_policy("STFM")
class StallTimeFairPolicy(SchedulingPolicy):
    """Approximate stall-time fairness: serve the most-slowed-down core.

    Each core's *slowdown estimate* is the exponentially-smoothed ratio of
    its observed read latencies to ``baseline_latency`` (the unloaded DRAM
    round trip).  The scheduler promotes the core whose estimate is
    largest — the one currently suffering most interference.

    Parameters
    ----------
    baseline_latency:
        Unloaded read latency in cycles (row-miss service + controller
        overhead; the Table 1 value is 144).
    alpha:
        Smoothing factor for the latency estimate.
    """

    def __init__(self, baseline_latency: int = 144, alpha: float = 0.1) -> None:
        super().__init__()
        if baseline_latency < 1:
            raise ValueError("baseline_latency must be >= 1")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.baseline_latency = baseline_latency
        self.alpha = alpha
        self._avg_latency: list[float] = []
        self._last_issue: list[int] = []

    def setup(self, num_cores: int, rng: RngStream) -> None:
        super().setup(num_cores, rng)
        self._avg_latency = [float(self.baseline_latency)] * num_cores
        self._last_issue = [0] * num_cores

    def reset(self) -> None:
        n = max(self.num_cores, 1)
        self._avg_latency = [float(self.baseline_latency)] * n
        self._last_issue = [0] * n

    def slowdown(self, core_id: int) -> float:
        """Current slowdown estimate of ``core_id`` (>= ~1)."""
        return self._avg_latency[core_id] / self.baseline_latency

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        # Fold the waiting time of each candidate's oldest request into its
        # core's latency estimate (observable controller state).
        now = ctx.now
        oldest_wait: dict[int, int] = {}
        for r in candidates:
            w = now - r.arrival_cycle
            if r.core_id not in oldest_wait or w > oldest_wait[r.core_id]:
                oldest_wait[r.core_id] = w
        for core, wait in oldest_wait.items():
            sample = wait + self.baseline_latency
            self._avg_latency[core] += self.alpha * (sample - self._avg_latency[core])
        return self._select_core_then_request(
            candidates, ctx, lambda core: self.slowdown(core)
        )

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        return HardwareCost(
            per_core_bits=16,
            notes="16b smoothed-latency estimator/core",
        )


@register_policy("BATCH")
class BatchSchedulingPolicy(SchedulingPolicy):
    """PAR-BS-style batch scheduling.

    Semantics (simplified from the ISCA'08 mechanism):

    * when the current batch is empty, mark up to ``marking_cap`` of the
      oldest pending reads of *each* core as the new batch;
    * marked requests strictly precede unmarked ones — no request waits
      longer than one batch turnaround (starvation freedom);
    * within the batch, cores with fewer marked requests rank higher
      (shortest-job-first maximises the number of unblocked cores), ties
      by the shared random tie-break, oldest within a core.

    The global hit-first rule still applies above this policy, mirroring
    PAR-BS's own row-hit-first ranking.
    """

    def __init__(self, marking_cap: int = 5) -> None:
        super().__init__()
        if marking_cap < 1:
            raise ValueError("marking_cap must be >= 1")
        self.marking_cap = marking_cap
        #: seq numbers of the currently marked (batched) requests
        self._batch: set[int] = set()
        self.batches_formed = 0

    def reset(self) -> None:
        self._batch.clear()
        self.batches_formed = 0

    def _form_batch(self, ctx: SchedulingContext) -> None:
        """Mark the oldest <= marking_cap pending reads of every core."""
        per_core: dict[int, list[MemoryRequest]] = {}
        for r in ctx.queues.reads:
            per_core.setdefault(r.core_id, []).append(r)
        self._batch.clear()
        for reqs in per_core.values():
            reqs.sort(key=lambda r: r.seq)
            for r in reqs[: self.marking_cap]:
                self._batch.add(r.seq)
        self.batches_formed += 1

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        # Drop marks of requests that have left the queue entirely.
        live = {r.seq for r in ctx.queues.reads}
        self._batch &= live
        if not self._batch:
            self._form_batch(ctx)
        marked = [r for r in candidates if r.seq in self._batch]
        pool = marked if marked else list(candidates)
        # shortest-job-first over *marked* request counts per core
        marked_count: dict[int, int] = {}
        for r in ctx.queues.reads:
            if r.seq in self._batch:
                marked_count[r.core_id] = marked_count.get(r.core_id, 0) + 1
        chosen = self._select_core_then_request(
            pool, ctx, lambda core: -marked_count.get(core, 0)
        )
        self._batch.discard(chosen.seq)
        return chosen

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        # One marked bit per queue slot (64-deep read queue) plus a 3-bit
        # marked-request counter per core for the shortest-job ranking.
        return HardwareCost(
            per_core_bits=3,
            global_bits=64,
            notes="marked bit/queue slot + 3b marked-count/core",
        )
