"""LREQ: Least-Request scheduling (Section 2, after Zhu & Zhang HPCA'05).

The core with the *fewest pending read requests* gets the highest priority:
returning one of its few requests likely unblocks more dependent
instructions than serving a core that has dozens of requests queued — the
short-term-urgency argument.  Within the chosen core, hit-first then oldest;
equal pending counts are tie-broken randomly.

LREQ is the scheme ME-LREQ extends, and the second-best performer in the
paper's evaluation.
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.core.complexity import HardwareCost
from repro.core.policy import SchedulingContext, SchedulingPolicy
from repro.core.registry import register_policy

__all__ = ["LeastRequestPolicy"]


@register_policy("LREQ")
class LeastRequestPolicy(SchedulingPolicy):
    """Fewest-pending-reads core first."""

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        # Higher priority == fewer pending reads, hence the negation.
        return self._select_core_then_request(
            candidates, ctx, lambda core: -ctx.pending_reads(core)
        )

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        # The pending-read counters are LREQ's ranking input, so they are
        # billed to the scheme (6 bits cover the 64-deep queue).
        return HardwareCost(
            per_core_bits=6,
            notes="pending-read counter/core feeds the comparator",
        )
