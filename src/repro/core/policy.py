"""Scheduling-policy interface and shared selection helpers.

A policy is consulted at each per-channel scheduling point with the list of
candidate requests (already filtered to that channel and to the correct
kind — reads normally, writes in drain mode) and a
:class:`SchedulingContext` exposing exactly the state a real controller
could see: the cycle, per-core outstanding-request counters, and row-buffer
hit status.  The policy returns the single request to commit.

Precedence, following the paper exactly:

1. **hit-first, globally** — 'memory commands are issued according to the
   hit-first policy' (Section 4.1) and 'row buffer hits have higher
   priority than ... row buffer misses' (Section 3.2): when any candidate
   hits an open row, only row-hit candidates are eligible, *regardless of
   core priority*.  This is what keeps core-aware policies from breaking
   row-hit chains and losing DRAM efficiency; policies that predate
   hit-first (plain FCFS/RF) opt out via :attr:`~SchedulingPolicy.
   hit_first_global`.
2. the policy's core-selection rule (round-robin, fewest-pending,
   memory-efficiency, ...), with ties between cores broken randomly
   ('a tie of equal priority may be broken by a random selection');
3. oldest-first within the chosen core ('the first read request of the
   selected thread is scheduled').
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from operator import attrgetter
from typing import TYPE_CHECKING, Callable, Sequence

from repro.controller.request import MemoryRequest
from repro.core.complexity import HardwareCost
from repro.util.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.controller.queues import RequestQueues
    from repro.dram.dram_system import DramSystem

__all__ = ["SchedulingContext", "SchedulingPolicy", "hit_first_oldest", "oldest"]


class SchedulingContext:
    """Controller state visible to a policy at a scheduling point."""

    __slots__ = ("now", "channel", "queues", "dram", "rng", "hits_prefiltered")

    def __init__(
        self,
        now: int,
        channel: int,
        queues: "RequestQueues",
        dram: "DramSystem",
        rng: RngStream,
        hits_prefiltered: bool = False,
    ) -> None:
        self.now = now
        self.channel = channel
        self.queues = queues
        self.dram = dram
        self.rng = rng
        #: the controller already applied the global hit-first rule to the
        #: candidate list: either every candidate is a row hit or none is,
        #: and that also holds for any per-core subset — so
        #: :func:`hit_first_oldest` provably reduces to :func:`oldest` and
        #: skips its per-candidate row-hit probes (a hot-path win; the
        #: selection outcome is unchanged)
        self.hits_prefiltered = hits_prefiltered

    def is_row_hit(self, req: MemoryRequest) -> bool:
        """Whether ``req`` targets the currently open row of its bank."""
        return self.dram.is_row_hit(req.coord)

    def pending_reads(self, core_id: int) -> int:
        """Outstanding read count of ``core_id`` (the LREQ input)."""
        return self.queues.pending_reads[core_id]


_by_seq = attrgetter("seq")


def oldest(candidates: Sequence[MemoryRequest]) -> MemoryRequest:
    """The request with the smallest controller sequence number."""
    return min(candidates, key=_by_seq)


def hit_first_oldest(
    candidates: Sequence[MemoryRequest], ctx: SchedulingContext
) -> MemoryRequest:
    """Row-buffer hits first, then oldest — the hit-first command rule.

    When the controller pre-applied the global hit-first filter
    (``ctx.hits_prefiltered``) the hit/miss split is degenerate on any
    subset of its candidate list, so the re-filter is skipped outright.
    """
    if len(candidates) == 1:
        return candidates[0]
    if ctx.hits_prefiltered:
        return min(candidates, key=_by_seq)
    hits = [r for r in candidates if ctx.is_row_hit(r)]
    return oldest(hits) if hits else oldest(candidates)


class SchedulingPolicy(ABC):
    """Base class for all memory-access scheduling schemes.

    Subclasses implement :meth:`select_read`; the shared write path
    (hit-first, oldest) is policy-independent because the paper schedules
    writes only in drain mode, outside the policy's core-ranking logic.
    """

    #: registry name; subclasses override
    name: str = "abstract"

    #: apply the paper's global hit-first command rule before this
    #: policy's selection (Section 4.1); FCFS/RF opt out
    hit_first_global: bool = True

    def __init__(self) -> None:
        self.num_cores: int = 0

    def setup(self, num_cores: int, rng: RngStream) -> None:
        """Bind the policy to a system; called once before simulation."""
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.num_cores = num_cores

    @abstractmethod
    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        """Choose the read request to commit, from a non-empty candidate list."""

    def select_write(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        """Choose the write to commit during a drain (hit-first, oldest)."""
        return hit_first_oldest(candidates, ctx)

    def on_read_complete(self, core_id: int, bytes_moved: int, now: int) -> None:
        """Completion hook (used by the online-ME extension); default no-op."""

    def reset(self) -> None:
        """Clear any dynamic state between runs; default no-op."""

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        """Scheduling-state cost of this policy on an ``num_cores`` system.

        The default is the all-zeros sheet — correct for the stateless
        schemes (FCFS/RF/HF-RF), whose age and row-hit inputs are
        controller baseline state charged to every policy alike.  Stateful
        policies override this; the arena prints the result as its
        hardware-complexity column (see :mod:`repro.core.complexity`).
        """
        return HardwareCost()

    # -- shared core-selection machinery --------------------------------------

    def _select_core_then_request(
        self,
        candidates: Sequence[MemoryRequest],
        ctx: SchedulingContext,
        core_priority: Callable[[int], float],
    ) -> MemoryRequest:
        """Pick the core with maximal ``core_priority`` among those with a
        candidate on this channel (random tie-break), then that core's
        hit-first/oldest request.

        This is the two-level structure of Section 3.2: 'select the thread
        with the highest priority, and then the first read request of the
        selected thread is scheduled'.
        """
        if len(candidates) == 1:
            # One candidate: one core, no tie-break draw, one request.
            return candidates[0]
        by_core: dict[int, list[MemoryRequest]] = {}
        for r in candidates:
            by_core.setdefault(r.core_id, []).append(r)
        best_cores: list[int] = []
        best_prio = float("-inf")
        for core_id in by_core:
            p = core_priority(core_id)
            if p > best_prio:
                best_prio = p
                best_cores = [core_id]
            elif p == best_prio:
                best_cores.append(core_id)
        if len(best_cores) == 1:
            chosen = best_cores[0]
        else:
            chosen = best_cores[ctx.rng.randint(0, len(best_cores))]
        return hit_first_oldest(by_core[chosen], ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
