"""Name -> policy factory registry.

Experiments refer to policies by the short names the paper uses (``HF-RF``,
``ME``, ``RR``, ``LREQ``, ``ME-LREQ``, ``FIX-3210`` ...).  The registry maps
those names to constructors; FIX-* names are parsed dynamically so any core
permutation can be requested, matching Section 5.2's 'assign a different
priority sequence' experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.complexity import HardwareCost
    from repro.core.policy import SchedulingPolicy

__all__ = [
    "register_policy",
    "make_policy",
    "available_policies",
    "registered_policies",
    "policy_complexity",
]

_REGISTRY: dict[str, Type["SchedulingPolicy"]] = {}


def register_policy(name: str) -> Callable[[type], type]:
    """Class decorator registering a policy under ``name`` (upper-cased)."""

    def deco(cls: type) -> type:
        key = name.upper()
        if key in _REGISTRY:
            raise ValueError(f"policy {key!r} already registered")
        _REGISTRY[key] = cls
        cls.name = key
        return cls

    return deco


def available_policies() -> list[str]:
    """Registered policy names (FIX-* is available but parameterised)."""
    return sorted(_REGISTRY) + ["FIX-<order>"]


def registered_policies() -> list[str]:
    """Only the concrete registry names, without the FIX-* placeholder."""
    return sorted(_REGISTRY)


def policy_complexity(name: str, num_cores: int) -> "HardwareCost":
    """Hardware cost sheet of policy ``name`` on an ``num_cores`` system.

    Resolves classes without instantiating (``ME``/``ME-LREQ`` need no
    profile here); ``FIX-<digits>`` and the generic ``FIX-<order>`` /
    ``FIX-DESC`` spellings all map to :class:`FixedPriorityPolicy`.
    """
    from repro.core.fixed import FixedPriorityPolicy

    key = name.upper()
    if key.startswith("FIX"):
        return FixedPriorityPolicy.describe_hardware(num_cores)
    try:
        cls = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None
    return cls.describe_hardware(num_cores)


def make_policy(name: str, **kwargs) -> "SchedulingPolicy":
    """Instantiate a policy by its paper name.

    ``ME`` and ``ME-LREQ`` require ``me_values`` (the profiled memory
    efficiencies, indexed by core).  ``FIX-<digits>`` builds a fixed-priority
    policy: ``FIX-3210`` gives core 3 the highest priority, then 2, 1, 0.

    >>> make_policy("RR").name
    'RR'
    >>> make_policy("FIX-0123").order
    (0, 1, 2, 3)
    """
    # Imports here to avoid a cycle (policies import the base class).
    from repro.core.fixed import FixedPriorityPolicy

    key = name.upper()
    if key.startswith("FIX-"):
        digits = key[len("FIX-") :]
        if not digits.isdigit():
            raise ValueError(f"bad FIX policy spec {name!r}")
        order = tuple(int(d) for d in digits)
        return FixedPriorityPolicy(order=order, **kwargs)
    try:
        cls = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None
    return cls(**kwargs)
