"""ME: fixed-priority scheduling by memory efficiency (Section 3.1 / 5.1).

Each core's priority is its application's profiled memory efficiency
``ME[i] = IPC_single[i] / BW_single[i]`` (Eq. 1), fixed for the whole run.
The paper evaluates this scheme to isolate the long-term component of
ME-LREQ: it turns out slightly *worse* than HF-RF on average, because a
fixed order ignores the dynamic gain of serving a request — a burst from a
high-ME core blocks everyone else unconditionally and can starve
low-priority cores (Figure 4's 1042-cycle core-3 latency under 4MEM-5).
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.core.complexity import HardwareCost
from repro.core.policy import SchedulingContext, SchedulingPolicy
from repro.core.registry import register_policy
from repro.util.rng import RngStream

__all__ = ["MemoryEfficiencyPolicy"]


@register_policy("ME")
class MemoryEfficiencyPolicy(SchedulingPolicy):
    """Fixed core priority = profiled memory efficiency.

    Parameters
    ----------
    me_values:
        Memory efficiency per core (same order as core ids), from profiling
        — see :mod:`repro.metrics.memory_efficiency`.
    """

    def __init__(self, me_values: Sequence[float]) -> None:
        super().__init__()
        if not me_values:
            raise ValueError("me_values must be non-empty")
        if any(v < 0 for v in me_values):
            raise ValueError("memory efficiency cannot be negative")
        self.me_values = tuple(float(v) for v in me_values)

    def setup(self, num_cores: int, rng: RngStream) -> None:
        super().setup(num_cores, rng)
        if len(self.me_values) != num_cores:
            raise ValueError(
                f"got {len(self.me_values)} ME values for {num_cores} cores"
            )

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        return self._select_core_then_request(
            candidates, ctx, lambda core: self.me_values[core]
        )

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        # One quantised ME register per core (the 10-bit code width of the
        # paper's Figure 1 table, depth 1 — no pending-read index needed).
        return HardwareCost(
            per_core_bits=10,
            notes="10b profiled-ME register/core",
        )
