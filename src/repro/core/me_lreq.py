"""ME-LREQ — the paper's proposed scheme (Section 3.2) — plus an online
variant (the paper's stated future work).

ME-LREQ ranks cores by ``Priority[i] = ME[i] / PendingRead[i]`` (Eq. 2):
high profiled memory efficiency (long-term gain — this core turns memory
bandwidth into many committed instructions) combined with few pending reads
(short-term gain — serving it unblocks a starved core) wins.  Reads and row
hits retain their usual precedence, and the priority is evaluated through
the quantised hardware table of Figure 1, not an ideal divider.

``OnlineMeLreqPolicy`` replaces the offline profile with a windowed runtime
estimate of each core's IPC/BW, rebuilding its table at the end of every
window — a model of the 'reasonable on-line scheme [that] can detect the
changes of running phases' sketched in Section 3.1.
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.core.complexity import HardwareCost
from repro.core.policy import SchedulingContext, SchedulingPolicy
from repro.core.priority_table import PriorityTable
from repro.core.registry import register_policy
from repro.util.rng import RngStream
from repro.util.units import gbps

__all__ = ["MeLreqPolicy", "OnlineMeLreqPolicy"]


@register_policy("ME-LREQ")
class MeLreqPolicy(SchedulingPolicy):
    """Memory-Efficiency + Least-Request scheduling through the Fig. 1 table.

    Parameters
    ----------
    me_values:
        Profiled memory efficiency per core (Eq. 1).
    table_bits / max_pending:
        Hardware-table geometry; defaults are the paper's 10 bits x 64
        entries.  ``table_bits=None`` selects an ideal (unquantised)
        implementation, used by the quantisation ablation.
    """

    def __init__(
        self,
        me_values: Sequence[float],
        table_bits: int | None = 10,
        max_pending: int = 64,
        table_encoding: str = "log",
    ) -> None:
        super().__init__()
        if not me_values:
            raise ValueError("me_values must be non-empty")
        self.me_values = tuple(float(v) for v in me_values)
        self.table_bits = table_bits
        self.max_pending = max_pending
        self.table_encoding = table_encoding
        self.table: PriorityTable | None = None
        if table_bits is not None:
            self.table = PriorityTable(
                self.me_values,
                max_pending=max_pending,
                bits=table_bits,
                encoding=table_encoding,
            )

    def setup(self, num_cores: int, rng: RngStream) -> None:
        super().setup(num_cores, rng)
        if len(self.me_values) != num_cores:
            raise ValueError(
                f"got {len(self.me_values)} ME values for {num_cores} cores"
            )

    def _priority(self, core: int, pending: int) -> float:
        if self.table is not None:
            return float(self.table.lookup(core, pending))
        return self.me_values[core] / pending

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        return self._select_core_then_request(
            candidates,
            ctx,
            lambda core: self._priority(core, max(ctx.pending_reads(core), 1)),
        )

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        # Figure 1 geometry with the default construction: a 64 x 10-bit
        # SRAM row per core, indexed by the 6-bit pending-read counter.
        return HardwareCost(
            priority_table_bits=num_cores * 64 * 10,
            per_core_bits=6,
            notes="64x10b Fig.1 SRAM row/core + pending-read index",
        )


@register_policy("ME-LREQ-ONLINE")
class OnlineMeLreqPolicy(MeLreqPolicy):
    """ME-LREQ with runtime memory-efficiency estimation.

    Every ``window`` cycles the policy recomputes each core's memory
    efficiency from the instructions it committed and the bytes it moved in
    that window (exponentially smoothed with factor ``alpha``), then
    rebuilds its priority table — modelling an OS/firmware loop driven by
    the performance counters the paper says are 'widely available'.

    The simulation system feeds the counters through
    :meth:`observe_window`; until the first window closes the policy falls
    back to equal priorities, i.e. pure LREQ behaviour.
    """

    def __init__(
        self,
        num_cores_hint: int | None = None,
        window: int = 50_000,
        alpha: float = 0.5,
        table_bits: int | None = 10,
        max_pending: int = 64,
        table_encoding: str = "log",
    ) -> None:
        # Start with flat (equal) ME; real values arrive online.
        n = num_cores_hint or 1
        super().__init__(
            me_values=[1.0] * n,
            table_bits=table_bits,
            max_pending=max_pending,
            table_encoding=table_encoding,
        )
        if window < 1:
            raise ValueError("window must be >= 1 cycle")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.window = window
        self.alpha = alpha

    def setup(self, num_cores: int, rng: RngStream) -> None:
        if len(self.me_values) != num_cores:
            self.me_values = tuple([1.0] * num_cores)
            self._rebuild_table()
        super().setup(num_cores, rng)

    def _rebuild_table(self) -> None:
        if self.table_bits is not None:
            self.table = PriorityTable(
                self.me_values,
                max_pending=self.max_pending,
                bits=self.table_bits,
                encoding=self.table_encoding,
            )

    def observe_window(
        self, committed: Sequence[int], bytes_moved: Sequence[int], cycles: int
    ) -> None:
        """Fold one measurement window into the running ME estimates.

        Parameters
        ----------
        committed / bytes_moved:
            Per-core instruction and DRAM-byte counts for the window.
        cycles:
            Window length in cycles.
        """
        if cycles <= 0:
            return
        new = []
        for core, old in enumerate(self.me_values):
            ipc = committed[core] / cycles
            bw = gbps(bytes_moved[core], cycles)
            if bw <= 0:
                # No traffic this window: the core needs nothing from the
                # scheduler; keep its previous estimate.
                new.append(old)
                continue
            sample = ipc / bw
            new.append((1 - self.alpha) * old + self.alpha * sample)
        self.me_values = tuple(new)
        self._rebuild_table()

    def reset(self) -> None:
        self.me_values = tuple([1.0] * max(self.num_cores, 1))
        self._rebuild_table()

    @classmethod
    def describe_hardware(cls, num_cores: int) -> HardwareCost:
        # The offline table plus the window accumulators the on-line loop
        # reads: a 32-bit committed-instruction counter and a 32-bit
        # bytes-moved counter per core.
        return HardwareCost(
            priority_table_bits=num_cores * 64 * 10,
            per_core_bits=6 + 64,
            notes="Fig.1 SRAM + 2x32b window counters/core (online ME)",
        )
