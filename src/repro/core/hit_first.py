"""HF-RF: Hit-First with Read-First — the paper's performance baseline.

Row-buffer hits are scheduled before misses (Hit-First, after Rixner et
al.'s FR-FCFS), reads bypass writes (Read-First; the controller's write
drain provides the bypass), and age breaks ties.  HF-RF is core-oblivious:
it 'serves requests from different cores as if they were produced by a
single core' (Section 5.3), which is why every core observes nearly the
same average read latency under it.
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.core.policy import SchedulingContext, SchedulingPolicy, hit_first_oldest
from repro.core.registry import register_policy

__all__ = ["HitFirstReadFirstPolicy"]


@register_policy("HF-RF")
class HitFirstReadFirstPolicy(SchedulingPolicy):
    """Global hit-first / oldest-first over all cores' reads."""

    def select_read(
        self, candidates: Sequence[MemoryRequest], ctx: SchedulingContext
    ) -> MemoryRequest:
        return hit_first_oldest(candidates, ctx)
