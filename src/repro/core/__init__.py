"""The paper's contribution: memory-access scheduling policies.

This package implements every scheme evaluated in the paper —

* **FCFS / RF** — first-come-first-serve, optionally read-bypass-write
  (Section 2, 'FCFS and Read-First')
* **HF-RF** — hit-first with read-first, the paper's baseline
* **RR** — round-robin over cores
* **LREQ** — fewest-pending-reads core first (Zhu & Zhang, HPCA'05)
* **ME** — fixed priority by profiled memory efficiency
* **ME-LREQ** — the proposed scheme, ``Priority[i] = ME[i]/PendingRead[i]``
  realised through the quantised hardware priority table of Figure 1
* **FIX-xxxx** — arbitrary fixed core priority orders (Section 5.2)

plus an online-ME variant of ME-LREQ (the paper's stated future work).

Policies are selected by name through :func:`repro.core.registry.make_policy`.
"""

from repro.core.extensions import FairQueueingPolicy, StallTimeFairPolicy
from repro.core.fcfs import FcfsPolicy, ReadFirstFcfsPolicy
from repro.core.fixed import FixedPriorityPolicy
from repro.core.hit_first import HitFirstReadFirstPolicy
from repro.core.lreq import LeastRequestPolicy
from repro.core.me import MemoryEfficiencyPolicy
from repro.core.me_lreq import MeLreqPolicy, OnlineMeLreqPolicy
from repro.core.policy import SchedulingContext, SchedulingPolicy
from repro.core.priority_table import PriorityTable
from repro.core.registry import available_policies, make_policy, register_policy
from repro.core.round_robin import RoundRobinPolicy

__all__ = [
    "FairQueueingPolicy",
    "FcfsPolicy",
    "FixedPriorityPolicy",
    "StallTimeFairPolicy",
    "HitFirstReadFirstPolicy",
    "LeastRequestPolicy",
    "MeLreqPolicy",
    "MemoryEfficiencyPolicy",
    "OnlineMeLreqPolicy",
    "PriorityTable",
    "ReadFirstFcfsPolicy",
    "RoundRobinPolicy",
    "SchedulingContext",
    "SchedulingPolicy",
    "available_policies",
    "make_policy",
    "register_policy",
]
