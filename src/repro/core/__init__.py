"""The paper's contribution: memory-access scheduling policies.

This package implements every scheme evaluated in the paper —

* **FCFS / RF** — first-come-first-serve, optionally read-bypass-write
  (Section 2, 'FCFS and Read-First')
* **HF-RF** — hit-first with read-first, the paper's baseline
* **RR** — round-robin over cores
* **LREQ** — fewest-pending-reads core first (Zhu & Zhang, HPCA'05)
* **ME** — fixed priority by profiled memory efficiency
* **ME-LREQ** — the proposed scheme, ``Priority[i] = ME[i]/PendingRead[i]``
  realised through the quantised hardware priority table of Figure 1
* **FIX-xxxx** — arbitrary fixed core priority orders (Section 5.2)

plus an online-ME variant of ME-LREQ (the paper's stated future work),
the related-work extensions **FQ**, **STFM** and **BATCH**
(:mod:`repro.core.extensions`), and two modern successors:

* **BLISS** — interference-based blacklisting (arXiv:1504.00390)
* **CADS** — core-aware dynamic scheduling with adaptive rank intervals
  (arXiv:1907.07776)

Policies are selected by name through :func:`repro.core.registry.make_policy`;
each class also reports its scheduling-state cost via
:meth:`~repro.core.policy.SchedulingPolicy.describe_hardware`
(:mod:`repro.core.complexity`), which the policy arena prints as its
hardware-complexity column.  The full per-policy handbook is
``docs/POLICIES.md``.
"""

from repro.core.bliss import BlissPolicy
from repro.core.cads import CadsPolicy
from repro.core.complexity import HardwareCost
from repro.core.extensions import (
    BatchSchedulingPolicy,
    FairQueueingPolicy,
    StallTimeFairPolicy,
)
from repro.core.fcfs import FcfsPolicy, ReadFirstFcfsPolicy
from repro.core.fixed import FixedPriorityPolicy
from repro.core.hit_first import HitFirstReadFirstPolicy
from repro.core.lreq import LeastRequestPolicy
from repro.core.me import MemoryEfficiencyPolicy
from repro.core.me_lreq import MeLreqPolicy, OnlineMeLreqPolicy
from repro.core.policy import SchedulingContext, SchedulingPolicy
from repro.core.priority_table import PriorityTable
from repro.core.registry import (
    available_policies,
    make_policy,
    policy_complexity,
    register_policy,
    registered_policies,
)
from repro.core.round_robin import RoundRobinPolicy

__all__ = [
    "BatchSchedulingPolicy",
    "BlissPolicy",
    "CadsPolicy",
    "FairQueueingPolicy",
    "FcfsPolicy",
    "FixedPriorityPolicy",
    "HardwareCost",
    "StallTimeFairPolicy",
    "HitFirstReadFirstPolicy",
    "LeastRequestPolicy",
    "MeLreqPolicy",
    "MemoryEfficiencyPolicy",
    "OnlineMeLreqPolicy",
    "PriorityTable",
    "ReadFirstFcfsPolicy",
    "RoundRobinPolicy",
    "SchedulingContext",
    "SchedulingPolicy",
    "available_policies",
    "make_policy",
    "policy_complexity",
    "register_policy",
    "registered_policies",
]
