"""Cache-hierarchy substrate: per-core L1 data caches and a shared L2.

Functional (hit/miss + LRU + dirty bits) with latency modelling delegated
to the core model; misses beyond the L2 become
:class:`~repro.controller.request.MemoryRequest` line fills, dirty evictions
become writebacks.  MSHRs bound per-core outstanding misses (Table 1:
32 data MSHRs per core, 64 at the L2) and merge same-line misses.
"""

from repro.cache.cache import CacheStats, SetAssocCache
from repro.cache.hierarchy import BLOCKED, MERGED, PENDING, CacheHierarchy
from repro.cache.mshr import MshrFile
from repro.cache.prefetch import PrefetchConfig, StridePrefetcher

__all__ = [
    "BLOCKED",
    "CacheHierarchy",
    "CacheStats",
    "MERGED",
    "MshrFile",
    "PENDING",
    "PrefetchConfig",
    "StridePrefetcher",
    "SetAssocCache",
]
