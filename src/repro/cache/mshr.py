"""Miss-status holding registers (MSHRs).

An MSHR file tracks outstanding line misses: each entry owns one in-flight
line address and a list of waiters (core-side callbacks) that merged onto
it.  Capacity models the Table 1 limits (32 data MSHRs per core, 64 at the
L2); a full file back-pressures the core's fetch stage, which is precisely
what bounds per-core memory-level parallelism in the paper's setup (and
what makes LREQ's 'pending request count' a bounded 1..64 quantity).
"""

from __future__ import annotations

from typing import Callable

__all__ = ["MshrFile"]

#: waiter callback signature: fn(line_addr, now)
Waiter = Callable[[int, int], None]


class MshrFile:
    """Fixed-capacity miss tracker with same-line merging."""

    __slots__ = (
        "capacity",
        "name",
        "_entries",
        "peak_occupancy",
        "merges",
        "allocations",
        "on_merge",
    )

    def __init__(self, capacity: int, name: str = "mshr") -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        #: line_addr -> list of waiters; entry exists while the miss is in flight
        self._entries: dict[int, list[Waiter]] = {}
        self.peak_occupancy = 0
        self.merges = 0
        #: lifetime count of new entries (misses that went to memory)
        self.allocations = 0
        #: optional observer ``fn(line_addr, now)`` fired when a miss
        #: merges onto an in-flight entry (span tracing hook; None costs
        #: one attribute test on the merge path only)
        self.on_merge: Callable[[int, int], None] | None = None

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def outstanding(self, line_addr: int) -> bool:
        """Whether a miss for ``line_addr`` is already in flight."""
        return line_addr in self._entries

    def allocate(
        self, line_addr: int, waiter: Waiter | None = None, now: int = 0
    ) -> bool:
        """Track a new miss for ``line_addr`` observed at cycle ``now``.

        Returns ``True`` if a *new* entry was allocated (a request must be
        sent), ``False`` if the miss merged onto an existing entry.  Raises
        ``OverflowError`` if a new entry is needed but the file is full —
        callers must check :attr:`is_full` / :meth:`outstanding` first.
        """
        waiters = self._entries.get(line_addr)
        if waiters is not None:
            if waiter is not None:
                waiters.append(waiter)
            self.merges += 1
            if self.on_merge is not None:
                self.on_merge(line_addr, now)
            return False
        if self.is_full:
            raise OverflowError(f"{self.name} full ({self.capacity} entries)")
        self._entries[line_addr] = [waiter] if waiter is not None else []
        self.allocations += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return True

    def complete(self, line_addr: int, now: int) -> int:
        """Retire the entry for ``line_addr`` and fire its waiters.

        Returns the number of waiters notified.
        """
        try:
            waiters = self._entries.pop(line_addr)
        except KeyError:
            raise KeyError(f"{self.name}: no outstanding miss for {line_addr:#x}") from None
        for w in waiters:
            # A ``(method, entry)`` pair is the core model's closure-free
            # load waiter (see TraceCore._advance_fetch): the method takes
            # the ROB entry instead of the line address.
            if type(w) is tuple:
                w[0](w[1], now)
            else:
                w(line_addr, now)
        return len(waiters)

    def clear(self) -> None:
        """Drop all entries without notifying waiters (reset between runs)."""
        self._entries.clear()
        self.peak_occupancy = 0
        self.merges = 0
        self.allocations = 0
