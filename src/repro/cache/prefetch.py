"""Stream prefetching at the L2/memory boundary (extension).

The paper's controller serves demand traffic only; its Impulse citation
(and the prefetch-aware scheduling literature that followed) motivates
asking how the policies behave when a prefetcher shares the memory
system.  This module provides a classic per-core *stride stream
prefetcher*:

* a per-core table tracks the last demand-miss line and last stride;
* two consecutive misses with the same stride *train* a stream;
* a trained stream issues ``degree`` prefetches ahead of the demand miss
  (each a line-fill read tagged ``is_prefetch``);
* the controller serves prefetches only when a channel has no schedulable
  demand reads (demand-first), mirroring read-bypass-write;
* prefetched fills land in the L2 only; a later demand access that hits a
  prefetched line (or merges onto an in-flight prefetch) counts as a
  *useful* prefetch.

Disabled by default — the paper's configuration — and enabled via
``PrefetchConfig(enabled=True)`` on the system config.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PrefetchConfig", "StridePrefetcher"]


@dataclass(frozen=True)
class PrefetchConfig:
    """Stream-prefetcher parameters."""

    enabled: bool = False
    #: lines fetched ahead once a stream is trained
    degree: int = 2
    #: max outstanding prefetches per core (shares the core's MSHRs)
    max_outstanding: int = 8

    def validate(self) -> None:
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")


class StridePrefetcher:
    """Per-core stride detection and prefetch-address generation."""

    __slots__ = (
        "config",
        "line_bytes",
        "_last_line",
        "_last_stride",
        "_trained",
        "outstanding",
        "issued",
        "useful",
    )

    def __init__(self, config: PrefetchConfig, num_cores: int, line_bytes: int = 64) -> None:
        config.validate()
        self.config = config
        self.line_bytes = line_bytes
        self._last_line = [None] * num_cores
        self._last_stride = [0] * num_cores
        self._trained = [False] * num_cores
        self.outstanding = [0] * num_cores
        self.issued = 0
        self.useful = 0

    def observe_miss(self, core_id: int, line_addr: int) -> list[int]:
        """Feed one demand L2 miss; returns line addresses to prefetch.

        Training needs two consecutive misses with an identical non-zero
        stride; once trained, every further miss on the stream yields
        ``degree`` lookahead addresses (subject to the outstanding cap,
        enforced by the caller via :meth:`can_issue`).
        """
        line = line_addr // self.line_bytes
        last = self._last_line[core_id]
        out: list[int] = []
        if last is not None:
            stride = line - last
            if stride != 0 and stride == self._last_stride[core_id]:
                self._trained[core_id] = True
            elif stride != 0:
                self._trained[core_id] = False
                self._last_stride[core_id] = stride
            if self._trained[core_id]:
                for k in range(1, self.config.degree + 1):
                    out.append((line + k * stride) * self.line_bytes)
        self._last_line[core_id] = line
        return out

    def can_issue(self, core_id: int) -> bool:
        """Whether the per-core outstanding-prefetch budget allows one more."""
        return self.outstanding[core_id] < self.config.max_outstanding

    def mark_issued(self, core_id: int) -> None:
        self.outstanding[core_id] += 1
        self.issued += 1

    def mark_completed(self, core_id: int) -> None:
        self.outstanding[core_id] -= 1

    def mark_useful(self) -> None:
        """A demand access benefited from a prefetched line."""
        self.useful += 1

    @property
    def accuracy(self) -> float:
        """Useful fraction of issued prefetches (so far)."""
        return self.useful / self.issued if self.issued else 0.0
