"""Per-core L1D caches over a shared L2, wired to the memory controller.

The hierarchy is the glue between the trace-driven cores and the DRAM
substrate:

* L1 hit           -> core sees the L1 hit latency;
* L1 miss, L2 hit  -> core sees L1 + L2 latency;
* L2 miss          -> an MSHR is allocated (or the miss merges onto an
  in-flight line) and a read :class:`MemoryRequest` goes to the controller;
  the core's waiter callback fires when data returns;
* dirty evictions  -> writeback requests (attributed to the line's owner
  core so bandwidth accounting stays per-application);
* structural stalls -> a full MSHR file or controller buffer returns
  :data:`BLOCKED`; the core registers with :meth:`wait_unblock` and retries.

Instruction fetch is not simulated: the synthetic SPEC-like traces model
data references only (SPEC CPU2000 instruction footprints fit comfortably
in the 64 KB L1I), which the paper's memory-scheduling results do not
depend on.

Stores are write-allocate / write-back: a store miss fetches the line like
a load (occupying an MSHR) but never blocks commit — only the fetch stage,
via MSHR back-pressure.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.cache.cache import SetAssocCache
from repro.cache.mshr import MshrFile, Waiter
from repro.config import SystemConfig
from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest

__all__ = ["PENDING", "BLOCKED", "CacheHierarchy"]

#: access() result: new memory request issued; waiter fires on data return
PENDING = -1
#: access() result: structural stall (MSHR or controller buffer full)
BLOCKED = -2
#: access() result: miss merged onto an in-flight line; waiter still fires
MERGED = -3


class CacheHierarchy:
    """L1-per-core + shared-L2 hierarchy."""

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        num_cores: int,
    ) -> None:
        cc = config.caches
        self.config = config
        self.controller = controller
        self.num_cores = num_cores
        self.line_bytes = cc.l2.line_bytes
        self._line_mask = ~(self.line_bytes - 1)
        self.l1d = [
            SetAssocCache(cc.l1d, name=f"L1D[{i}]") for i in range(num_cores)
        ]
        self.l2 = SetAssocCache(cc.l2, name="L2")
        self.mshrs = [
            MshrFile(config.core.data_mshrs, name=f"MSHR[{i}]")
            for i in range(num_cores)
        ]
        self.l2_mshr_cap = cc.l2.mshrs
        self._l2_outstanding = 0
        #: in-flight lines that have a merged store (fill installs dirty)
        self._store_pending: set[int] = set()
        #: line owner for writeback attribution
        self._owner: dict[int, int] = {}
        #: writebacks that could not enter a full controller buffer
        self._wb_overflow: deque[MemoryRequest] = deque()
        self._wb_flush_armed = False
        #: one-shot callbacks of cores stalled on a structural hazard
        self._unblock_waiters: list[Callable[[int], None]] = []
        #: whether a controller-space watch is currently armed (single
        #: registration — re-arming per retry would accumulate stale
        #: callbacks and make every buffer-slot release O(retries))
        self._space_watch_armed = False
        #: request-lifecycle span collector (wired by MultiCoreSystem
        #: when the telemetry hub captures spans; None otherwise)
        self.spans = None
        #: per-core demand L2 misses (for workload statistics)
        self.l2_misses = [0] * num_cores
        self.demand_accesses = [0] * num_cores
        #: dirty lines written back to memory (telemetry / analyses)
        self.writebacks = 0
        #: optional stream prefetcher (extension; disabled by default)
        self.prefetcher = None
        self._prefetched_lines: set[int] = set()
        self._prefetch_inflight: set[int] = set()
        pf_cfg = getattr(config, "prefetch", None)
        if pf_cfg is not None and pf_cfg.enabled:
            from repro.cache.prefetch import StridePrefetcher

            self.prefetcher = StridePrefetcher(pf_cfg, num_cores, self.line_bytes)

    # -- core-facing API -------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr & self._line_mask

    def access(
        self,
        core_id: int,
        addr: int,
        is_write: bool,
        now: int,
        waiter: Waiter | None,
    ) -> int:
        """One data reference by ``core_id`` at cycle ``now``.

        Returns a non-negative hit latency, :data:`PENDING` (new memory
        request issued), :data:`MERGED` (joined an in-flight miss) — for
        both, ``waiter(line_addr, done_cycle)`` will fire — or
        :data:`BLOCKED` (retry after :meth:`wait_unblock`).
        """
        cc = self.config.caches
        self.demand_accesses[core_id] += 1
        l1 = self.l1d[core_id]
        if l1.lookup(addr, is_write=is_write):
            return cc.l1d.hit_latency
        line = self.line_of(addr)
        if self.l2.lookup(line):
            if line in self._prefetched_lines:
                self._prefetched_lines.discard(line)
                self.prefetcher.mark_useful()
            self._fill_l1(core_id, line, dirty=is_write, now=now)
            return cc.l1d.hit_latency + cc.l2.hit_latency
        # L2 demand miss (counted by the lookup above).
        mshr = self.mshrs[core_id]
        if mshr.outstanding(line):
            mshr.allocate(line, waiter, now)  # merge
            if line in self._prefetch_inflight:
                # demand caught up with an in-flight prefetch
                self.prefetcher.mark_useful()
                self._prefetch_inflight.discard(line)
            if is_write:
                self._store_pending.add(line)
            return MERGED
        if mshr.is_full or self._l2_outstanding >= self.l2_mshr_cap:
            return BLOCKED
        if not self.controller.can_accept():
            return BLOCKED
        mshr.allocate(line, waiter, now)
        self._l2_outstanding += 1
        self.l2_misses[core_id] += 1
        if is_write:
            self._store_pending.add(line)
        req = MemoryRequest(
            addr=line,
            core_id=core_id,
            is_write=False,
            arrival_cycle=now,
            on_complete=self._on_fill,
        )
        if self.spans is not None:
            req.span = self.spans.start_request(core_id, line, "read", now)
        accepted = self.controller.enqueue(req, now)
        assert accepted, "can_accept() checked above"
        if self.prefetcher is not None:
            self._maybe_prefetch(core_id, line, now)
        return PENDING

    # -- prefetching (extension) -------------------------------------------------

    def _maybe_prefetch(self, core_id: int, miss_line: int, now: int) -> None:
        """Train the stride prefetcher and issue speculative line fills."""
        pf = self.prefetcher
        mshr = self.mshrs[core_id]
        for addr in pf.observe_miss(core_id, miss_line):
            if addr < 0:
                continue
            line = self.line_of(addr)
            if (
                not pf.can_issue(core_id)
                or self.l2.probe(line)
                or mshr.outstanding(line)
                or mshr.is_full
                or self._l2_outstanding >= self.l2_mshr_cap
                or not self.controller.can_accept()
            ):
                continue
            mshr.allocate(line, now=now)
            self._l2_outstanding += 1
            self._prefetch_inflight.add(line)
            req = MemoryRequest(
                addr=line,
                core_id=core_id,
                is_write=False,
                arrival_cycle=now,
                on_complete=self._on_prefetch_fill,
                is_prefetch=True,
            )
            if self.spans is not None:
                req.span = self.spans.start_request(core_id, line, "prefetch", now)
            accepted = self.controller.enqueue(req, now)
            assert accepted, "can_accept() checked above"
            pf.mark_issued(core_id)

    def _on_prefetch_fill(self, req: MemoryRequest, now: int) -> None:
        """Prefetched data arrived: install in L2 only, wake any merged
        demand waiters (they made the prefetch 'useful' at merge time)."""
        line = req.addr
        core = req.core_id
        # a store that merged onto this prefetch dirties the L2 copy
        dirty = line in self._store_pending
        self._store_pending.discard(line)
        evicted = self.l2.fill(line, dirty=dirty)
        self._owner[line] = core
        if evicted is not None:
            self._handle_l2_eviction(evicted, now)
        if line in self._prefetch_inflight:
            # nobody merged: remember the line so a later demand hit counts
            self._prefetch_inflight.discard(line)
            self._prefetched_lines.add(line)
        self._l2_outstanding -= 1
        self.prefetcher.mark_completed(core)
        self.mshrs[core].complete(line, now)
        if self.spans is not None:
            self.spans.end_inflight(core, line)
        self._on_resource_freed(now)

    def wait_unblock(self, callback: Callable[[int], None]) -> None:
        """One-shot registration: fire when any structural resource frees."""
        self._unblock_waiters.append(callback)
        # A full controller buffer also resolves through controller space;
        # arm that watch at most once at a time.
        if not self._space_watch_armed:
            self._space_watch_armed = True
            self.controller.wait_for_space(self._on_space_freed)

    def _on_space_freed(self, now: int) -> None:
        self._space_watch_armed = False
        self._on_resource_freed(now)

    # -- fill / writeback paths --------------------------------------------------

    def _on_fill(self, req: MemoryRequest, now: int) -> None:
        """Read data returned from DRAM: install the line, wake waiters."""
        line = req.addr
        core = req.core_id
        dirty = line in self._store_pending
        self._store_pending.discard(line)
        evicted = self.l2.fill(line, dirty=False)
        self._owner[line] = core
        if evicted is not None:
            self._handle_l2_eviction(evicted, now)
        self._fill_l1(core, line, dirty=dirty, now=now)
        self._l2_outstanding -= 1
        self.mshrs[core].complete(line, now)
        if self.spans is not None:
            self.spans.end_inflight(core, line)
        self._on_resource_freed(now)

    def _fill_l1(self, core_id: int, line: int, *, dirty: bool, now: int) -> None:
        evicted = self.l1d[core_id].fill(line, dirty=dirty)
        if evicted is None:
            return
        v_addr, v_dirty = evicted
        if not v_dirty:
            return
        # Dirty L1 victim: update the L2 copy; if L2 lost the line in the
        # meantime (non-inclusive drift), write it back to memory directly.
        if not self.l2.set_dirty(v_addr):
            self._emit_writeback(core_id, v_addr, now)

    def _handle_l2_eviction(self, evicted: tuple[int, bool], now: int) -> None:
        v_addr, v_dirty = evicted
        owner = self._owner.pop(v_addr, 0)
        # The L1 copy (if any) is stale relative to an exclusive-ish victim;
        # invalidate to preserve inclusion. Merge its dirtiness first.
        l1 = self.l1d[owner] if owner < self.num_cores else None
        if l1 is not None and l1.probe(v_addr):
            v_dirty = v_dirty or l1.is_dirty(v_addr)
            l1.invalidate(v_addr)
        if v_dirty:
            self._emit_writeback(owner, v_addr, now)

    def _emit_writeback(self, core_id: int, line: int, now: int) -> None:
        self.writebacks += 1
        req = MemoryRequest(
            addr=line, core_id=core_id, is_write=True, arrival_cycle=now
        )
        if self.spans is not None:
            req.span = self.spans.start_request(core_id, line, "write", now)
        if not self.controller.enqueue(req, now):
            self._wb_overflow.append(req)
            self._arm_wb_flush()

    def _arm_wb_flush(self) -> None:
        if not self._wb_flush_armed:
            self._wb_flush_armed = True
            self.controller.wait_for_space(self._flush_writebacks)

    def _flush_writebacks(self, now: int) -> None:
        self._wb_flush_armed = False
        while self._wb_overflow:
            req = self._wb_overflow[0]
            if not self.controller.enqueue(req, now):
                self._arm_wb_flush()
                return
            self._wb_overflow.popleft()

    def _on_resource_freed(self, now: int) -> None:
        if not self._unblock_waiters:
            return
        waiters, self._unblock_waiters = self._unblock_waiters, []
        for cb in waiters:
            cb(now)

    # -- statistics ---------------------------------------------------------------

    def l1_miss_rate(self, core_id: int) -> float:
        return self.l1d[core_id].stats.miss_rate

    def l2_miss_count(self, core_id: int) -> int:
        return self.l2_misses[core_id]

    def mshr_occupancies(self) -> list[int]:
        """Current per-core MSHR occupancy (telemetry sampling point)."""
        return [m.occupancy for m in self.mshrs]
