"""Per-core L1D caches over a shared L2, wired to the memory controller.

The hierarchy is the glue between the trace-driven cores and the DRAM
substrate:

* L1 hit           -> core sees the L1 hit latency;
* L1 miss, L2 hit  -> core sees L1 + L2 latency;
* L2 miss          -> an MSHR is allocated (or the miss merges onto an
  in-flight line) and a read :class:`MemoryRequest` goes to the controller;
  the core's waiter callback fires when data returns;
* dirty evictions  -> writeback requests (attributed to the line's owner
  core so bandwidth accounting stays per-application);
* structural stalls -> a full MSHR file or controller buffer returns
  :data:`BLOCKED`; the core registers with :meth:`wait_unblock` and retries.

Instruction fetch is not simulated: the synthetic SPEC-like traces model
data references only (SPEC CPU2000 instruction footprints fit comfortably
in the 64 KB L1I), which the paper's memory-scheduling results do not
depend on.

Stores are write-allocate / write-back: a store miss fetches the line like
a load (occupying an MSHR) but never blocks commit — only the fetch stage,
via MSHR back-pressure.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.cache.cache import SetAssocCache
from repro.cache.mshr import MshrFile, Waiter
from repro.config import SystemConfig
from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest

__all__ = ["PENDING", "BLOCKED", "CacheHierarchy"]

#: access() result: new memory request issued; waiter fires on data return
PENDING = -1
#: access() result: structural stall (MSHR or controller buffer full)
BLOCKED = -2
#: access() result: miss merged onto an in-flight line; waiter still fires
MERGED = -3


class CacheHierarchy:
    """L1-per-core + shared-L2 hierarchy."""

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        num_cores: int,
    ) -> None:
        cc = config.caches
        self.config = config
        self.controller = controller
        self.num_cores = num_cores
        self.line_bytes = cc.l2.line_bytes
        self._line_mask = ~(self.line_bytes - 1)
        # Hit latencies resolved once at assembly time: access() is called
        # for every data reference and must not walk config dataclasses.
        self._l1_hit_latency = cc.l1d.hit_latency
        self._l2_hit_latency = cc.l1d.hit_latency + cc.l2.hit_latency
        self.l1d = [
            SetAssocCache(cc.l1d, name=f"L1D[{i}]") for i in range(num_cores)
        ]
        self.l2 = SetAssocCache(cc.l2, name="L2")
        self.mshrs = [
            MshrFile(config.core.data_mshrs, name=f"MSHR[{i}]")
            for i in range(num_cores)
        ]
        self.l2_mshr_cap = cc.l2.mshrs
        self._l2_outstanding = 0
        #: in-flight lines that have a merged store (fill installs dirty)
        self._store_pending: set[int] = set()
        #: line owner for writeback attribution
        self._owner: dict[int, int] = {}
        #: writebacks that could not enter a full controller buffer
        self._wb_overflow: deque[MemoryRequest] = deque()
        self._wb_flush_armed = False
        #: one-shot callbacks of cores stalled on a structural hazard
        self._unblock_waiters: list[Callable[[int], None]] = []
        #: whether a controller-space watch is currently armed (single
        #: registration — re-arming per retry would accumulate stale
        #: callbacks and make every buffer-slot release O(retries))
        self._space_watch_armed = False
        #: request-lifecycle span collector (wired by MultiCoreSystem
        #: when the telemetry hub captures spans; None otherwise)
        self.spans = None
        #: per-core demand L2 misses (for workload statistics)
        self.l2_misses = [0] * num_cores
        self.demand_accesses = [0] * num_cores
        #: dirty lines written back to memory (telemetry / analyses)
        self.writebacks = 0
        #: optional stream prefetcher (extension; disabled by default)
        self.prefetcher = None
        self._prefetched_lines: set[int] = set()
        self._prefetch_inflight: set[int] = set()
        pf_cfg = getattr(config, "prefetch", None)
        if pf_cfg is not None and pf_cfg.enabled:
            from repro.cache.prefetch import StridePrefetcher

            self.prefetcher = StridePrefetcher(pf_cfg, num_cores, self.line_bytes)

    # -- core-facing API -------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr & self._line_mask

    def access(
        self,
        core_id: int,
        addr: int,
        is_write: bool,
        now: int,
        waiter: Waiter | None,
    ) -> int:
        """One data reference by ``core_id`` at cycle ``now``.

        Returns a non-negative hit latency, :data:`PENDING` (new memory
        request issued), :data:`MERGED` (joined an in-flight miss) — for
        both, ``waiter(line_addr, done_cycle)`` will fire — or
        :data:`BLOCKED` (retry after :meth:`wait_unblock`).
        """
        self.demand_accesses[core_id] += 1
        # The L1 and L2 lookups are inlined bodies of
        # SetAssocCache.lookup — this is the hottest call chain in a
        # simulation, and the two calls it saves per reference are
        # measurable.  Keep in sync with cache.py.  The core model inlines
        # this same L1 prefix itself (see TraceCore._fetch_mem_op) and
        # jumps straight to :meth:`access_after_l1_miss`.
        l1 = self.l1d[core_id]
        tag = addr >> l1._off_bits
        s = l1._sets[tag & l1._set_mask]
        if tag in s:
            s[tag] = s.pop(tag) or is_write  # move-to-back refreshes recency
            l1.stats.hits += 1
            return self._l1_hit_latency
        l1.stats.misses += 1
        return self.access_after_l1_miss(core_id, addr, is_write, now, waiter)

    def access_after_l1_miss(
        self,
        core_id: int,
        addr: int,
        is_write: bool,
        now: int,
        waiter: Waiter | None,
    ) -> int:
        """Continuation of :meth:`access` once the L1 has missed.

        The caller must already have charged the reference to
        ``demand_accesses`` and the L1 stats — this entry point exists so
        the core model can run the (overwhelmingly common) L1-hit path
        without any call into the hierarchy.
        """
        line = addr & self._line_mask
        l2 = self.l2
        tag = line >> l2._off_bits
        s = l2._sets[tag & l2._set_mask]
        if tag in s:
            s[tag] = s.pop(tag)
            l2.stats.hits += 1
            if self.prefetcher is not None and line in self._prefetched_lines:
                self._prefetched_lines.discard(line)
                self.prefetcher.mark_useful()
            # -- L1 install (inlined _fill_l1; keep in sync) --
            l1 = self.l1d[core_id]
            t1 = line >> l1._off_bits
            s1 = l1._sets[t1 & l1._set_mask]
            if t1 in s1:
                s1[t1] = s1.pop(t1) or is_write
            else:
                v_dirty = False
                if len(s1) >= l1._assoc:
                    v_tag = next(iter(s1))  # front of dict == LRU
                    v_dirty = s1.pop(v_tag)
                    l1.stats.evictions += 1
                    if v_dirty:
                        l1.stats.dirty_evictions += 1
                s1[t1] = is_write
                l1.stats.fills += 1
                if v_dirty:
                    v_addr = v_tag << l1._off_bits
                    if not l2.set_dirty(v_addr):
                        self._emit_writeback(core_id, v_addr, now)
            return self._l2_hit_latency
        # L2 demand miss.
        l2.stats.misses += 1
        return self._after_l2_miss(core_id, line, is_write, now, waiter)

    def _after_l2_miss(
        self,
        core_id: int,
        line: int,
        is_write: bool,
        now: int,
        waiter: Waiter | None,
    ) -> int:
        """Continuation once the L2 has missed (``line`` already aligned).

        The caller has charged ``l2.stats.misses`` — the core model's
        fetch loop enters here directly after its own inlined L2 probe.
        The merge/full tests are the inlined guts of
        MshrFile.outstanding/allocate/is_full (keep in sync with
        mshr.py) — this path runs once per retry of every blocked
        reference, not just once per miss.
        """
        mshr = self.mshrs[core_id]
        entries = mshr._entries
        waiters = entries.get(line)
        if waiters is not None:
            # Merge onto the in-flight miss.
            if waiter is not None:
                waiters.append(waiter)
            mshr.merges += 1
            if mshr.on_merge is not None:
                mshr.on_merge(line, now)
            if line in self._prefetch_inflight:
                # demand caught up with an in-flight prefetch
                self.prefetcher.mark_useful()
                self._prefetch_inflight.discard(line)
            if is_write:
                self._store_pending.add(line)
            return MERGED
        if len(entries) >= mshr.capacity or self._l2_outstanding >= self.l2_mshr_cap:
            return BLOCKED
        if not self.controller.can_accept():
            return BLOCKED
        # -- new entry (inlined MshrFile.allocate; keep in sync) --
        entries[line] = [waiter] if waiter is not None else []
        mshr.allocations += 1
        if len(entries) > mshr.peak_occupancy:
            mshr.peak_occupancy = len(entries)
        self._l2_outstanding += 1
        self.l2_misses[core_id] += 1
        if is_write:
            self._store_pending.add(line)
        req = MemoryRequest(
            addr=line,
            core_id=core_id,
            is_write=False,
            arrival_cycle=now,
            on_complete=self._on_fill,
        )
        if self.spans is not None:
            req.span = self.spans.start_request(core_id, line, "read", now)
        accepted = self.controller.enqueue(req, now)
        assert accepted, "can_accept() checked above"
        if self.prefetcher is not None:
            self._maybe_prefetch(core_id, line, now)
        return PENDING

    # -- prefetching (extension) -------------------------------------------------

    def _maybe_prefetch(self, core_id: int, miss_line: int, now: int) -> None:
        """Train the stride prefetcher and issue speculative line fills."""
        pf = self.prefetcher
        mshr = self.mshrs[core_id]
        for addr in pf.observe_miss(core_id, miss_line):
            if addr < 0:
                continue
            line = self.line_of(addr)
            if (
                not pf.can_issue(core_id)
                or self.l2.probe(line)
                or mshr.outstanding(line)
                or mshr.is_full
                or self._l2_outstanding >= self.l2_mshr_cap
                or not self.controller.can_accept()
            ):
                continue
            mshr.allocate(line, now=now)
            self._l2_outstanding += 1
            self._prefetch_inflight.add(line)
            req = MemoryRequest(
                addr=line,
                core_id=core_id,
                is_write=False,
                arrival_cycle=now,
                on_complete=self._on_prefetch_fill,
                is_prefetch=True,
            )
            if self.spans is not None:
                req.span = self.spans.start_request(core_id, line, "prefetch", now)
            accepted = self.controller.enqueue(req, now)
            assert accepted, "can_accept() checked above"
            pf.mark_issued(core_id)

    def _on_prefetch_fill(self, req: MemoryRequest, now: int) -> None:
        """Prefetched data arrived: install in L2 only, wake any merged
        demand waiters (they made the prefetch 'useful' at merge time)."""
        line = req.addr
        core = req.core_id
        # a store that merged onto this prefetch dirties the L2 copy
        dirty = line in self._store_pending
        self._store_pending.discard(line)
        evicted = self.l2.fill(line, dirty=dirty)
        self._owner[line] = core
        if evicted is not None:
            self._handle_l2_eviction(evicted, now)
        if line in self._prefetch_inflight:
            # nobody merged: remember the line so a later demand hit counts
            self._prefetch_inflight.discard(line)
            self._prefetched_lines.add(line)
        self._l2_outstanding -= 1
        self.prefetcher.mark_completed(core)
        self.mshrs[core].complete(line, now)
        if self.spans is not None:
            self.spans.end_inflight(core, line)
        self._on_resource_freed(now)

    def wait_unblock(self, callback: Callable[[int], None]) -> None:
        """One-shot registration: fire when any structural resource frees."""
        self._unblock_waiters.append(callback)
        # A full controller buffer also resolves through controller space;
        # arm that watch at most once at a time.
        if not self._space_watch_armed:
            self._space_watch_armed = True
            self.controller.wait_for_space(self._on_space_freed)

    def _on_space_freed(self, now: int) -> None:
        self._space_watch_armed = False
        # Inlined _on_resource_freed: this fires once per freed buffer
        # slot, the hottest wake fan-out after fills.
        uw = self._unblock_waiters
        if uw:
            self._unblock_waiters = []
            for cb in uw:
                cb(now)

    # -- fill / writeback paths --------------------------------------------------

    def _on_fill(self, req: MemoryRequest, now: int) -> None:
        """Read data returned from DRAM: install the line, wake waiters.

        The L2 install, L1 install and MSHR retirement are the inlined
        bodies of SetAssocCache.fill / :meth:`_fill_l1` /
        :meth:`MshrFile.complete` (keep in sync) — this runs once per
        memory request and is the hottest completion path.
        """
        line = req.addr
        core = req.core_id
        dirty = line in self._store_pending
        self._store_pending.discard(line)
        l2 = self.l2
        tag = line >> l2._off_bits
        s = l2._sets[tag & l2._set_mask]
        evicted = None
        if tag in s:
            s[tag] = s.pop(tag)  # refresh recency; fill is clean
        else:
            if len(s) >= l2._assoc:
                victim_tag = next(iter(s))  # front of dict == LRU
                victim_dirty = s.pop(victim_tag)
                l2.stats.evictions += 1
                if victim_dirty:
                    l2.stats.dirty_evictions += 1
                evicted = (victim_tag << l2._off_bits, victim_dirty)
            s[tag] = False
            l2.stats.fills += 1
        self._owner[line] = core
        if evicted is not None:
            self._handle_l2_eviction(evicted, now)
        # -- L1 install (inlined _fill_l1) --
        l1 = self.l1d[core]
        t1 = line >> l1._off_bits
        s1 = l1._sets[t1 & l1._set_mask]
        if t1 in s1:
            s1[t1] = s1.pop(t1) or dirty
        else:
            v_dirty = False
            if len(s1) >= l1._assoc:
                v_tag = next(iter(s1))  # front of dict == LRU
                v_dirty = s1.pop(v_tag)
                l1.stats.evictions += 1
                if v_dirty:
                    l1.stats.dirty_evictions += 1
            s1[t1] = dirty
            l1.stats.fills += 1
            if v_dirty:
                v_addr = v_tag << l1._off_bits
                if not l2.set_dirty(v_addr):
                    self._emit_writeback(core, v_addr, now)
        self._l2_outstanding -= 1
        # -- MSHR retirement (inlined MshrFile.complete) --
        mshr = self.mshrs[core]
        waiters = mshr._entries.pop(line)
        for w in waiters:
            if type(w) is tuple:
                w[0](w[1], now)
            else:
                w(line, now)
        if self.spans is not None:
            self.spans.end_inflight(core, line)
        uw = self._unblock_waiters
        if uw:
            self._unblock_waiters = []
            for cb in uw:
                cb(now)

    def _fill_l1(self, core_id: int, line: int, *, dirty: bool, now: int) -> None:
        # Inlined body of SetAssocCache.fill (keep in sync with cache.py):
        # one call per L2 hit and per fill, hot enough to flatten.
        l1 = self.l1d[core_id]
        tag = line >> l1._off_bits
        s = l1._sets[tag & l1._set_mask]
        if tag in s:
            s[tag] = s.pop(tag) or dirty
            return
        v_dirty = False
        v_tag = 0
        if len(s) >= l1._assoc:
            v_tag = next(iter(s))  # front of dict == LRU
            v_dirty = s.pop(v_tag)
            l1.stats.evictions += 1
            if v_dirty:
                l1.stats.dirty_evictions += 1
        s[tag] = dirty
        l1.stats.fills += 1
        if not v_dirty:
            return
        # Dirty L1 victim: update the L2 copy; if L2 lost the line in the
        # meantime (non-inclusive drift), write it back to memory directly.
        v_addr = v_tag << l1._off_bits
        if not self.l2.set_dirty(v_addr):
            self._emit_writeback(core_id, v_addr, now)

    def _handle_l2_eviction(self, evicted: tuple[int, bool], now: int) -> None:
        v_addr, v_dirty = evicted
        owner = self._owner.pop(v_addr, 0)
        # The L1 copy (if any) is stale relative to an exclusive-ish victim;
        # invalidate to preserve inclusion. Merge its dirtiness first.
        l1 = self.l1d[owner] if owner < self.num_cores else None
        if l1 is not None and l1.probe(v_addr):
            v_dirty = v_dirty or l1.is_dirty(v_addr)
            l1.invalidate(v_addr)
        if v_dirty:
            self._emit_writeback(owner, v_addr, now)

    def _emit_writeback(self, core_id: int, line: int, now: int) -> None:
        self.writebacks += 1
        req = MemoryRequest(
            addr=line, core_id=core_id, is_write=True, arrival_cycle=now
        )
        if self.spans is not None:
            req.span = self.spans.start_request(core_id, line, "write", now)
        if not self.controller.enqueue(req, now):
            self._wb_overflow.append(req)
            self._arm_wb_flush()

    def _arm_wb_flush(self) -> None:
        if not self._wb_flush_armed:
            self._wb_flush_armed = True
            self.controller.wait_for_space(self._flush_writebacks)

    def _flush_writebacks(self, now: int) -> None:
        self._wb_flush_armed = False
        while self._wb_overflow:
            req = self._wb_overflow[0]
            if not self.controller.enqueue(req, now):
                self._arm_wb_flush()
                return
            self._wb_overflow.popleft()

    def _on_resource_freed(self, now: int) -> None:
        if not self._unblock_waiters:
            return
        waiters, self._unblock_waiters = self._unblock_waiters, []
        for cb in waiters:
            cb(now)

    # -- statistics ---------------------------------------------------------------

    def l1_miss_rate(self, core_id: int) -> float:
        return self.l1d[core_id].stats.miss_rate

    def l2_miss_count(self, core_id: int) -> int:
        return self.l2_misses[core_id]

    def mshr_occupancies(self) -> list[int]:
        """Current per-core MSHR occupancy (telemetry sampling point)."""
        return [m.occupancy for m in self.mshrs]
