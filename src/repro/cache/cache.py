"""Set-associative cache with LRU replacement and dirty bits.

Pure functional model: it answers hit/miss, tracks recency and dirtiness,
and reports evictions; timing lives in the core model and the memory
system.  Each set is a Python dict mapping tag -> dirty flag; dict insertion
order provides LRU for free (move-to-back on touch), which profiling showed
is the fastest pure-Python LRU for small associativities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CacheConfig

__all__ = ["CacheStats", "SetAssocCache"]


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    fills: int = field(default=0)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssocCache:
    """One cache level.

    Parameters
    ----------
    config:
        Geometry (size, associativity, line size); validated on entry.
    name:
        Label for diagnostics ("L1D[2]", "L2", ...).
    """

    __slots__ = ("config", "name", "stats", "_sets", "_set_mask", "_off_bits", "_assoc")

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        config.validate()
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._sets: list[dict[int, bool]] = [{} for _ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1
        self._off_bits = config.line_bytes.bit_length() - 1
        self._assoc = config.assoc

    # -- address split ------------------------------------------------------

    def set_index(self, addr: int) -> int:
        """The set an address maps to (exposed for tests)."""
        return (addr >> self._off_bits) & self._set_mask

    def _tag(self, addr: int) -> int:
        return addr >> self._off_bits

    # -- operations ----------------------------------------------------------

    def lookup(self, addr: int, *, is_write: bool = False) -> bool:
        """Access the line containing ``addr``.

        On a hit the line becomes most-recently-used and, for writes, dirty.
        Returns ``True`` on hit.

        The tag/index arithmetic is inlined here (and in the other
        operations) rather than calling :meth:`set_index`/:meth:`_tag` —
        this is the single most-called function in a simulation.
        """
        tag = addr >> self._off_bits
        s = self._sets[tag & self._set_mask]
        if tag in s:
            dirty = s.pop(tag) or is_write  # move-to-back refreshes recency
            s[tag] = dirty
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def probe(self, addr: int) -> bool:
        """Hit check without touching recency or stats."""
        tag = addr >> self._off_bits
        return tag in self._sets[tag & self._set_mask]

    def is_dirty(self, addr: int) -> bool:
        """Whether the resident line containing ``addr`` is dirty."""
        tag = addr >> self._off_bits
        return self._sets[tag & self._set_mask].get(tag, False)

    def fill(self, addr: int, *, dirty: bool = False) -> tuple[int, bool] | None:
        """Install the line containing ``addr`` as most-recently-used.

        Returns the evicted ``(line_address, was_dirty)`` if the set was
        full, else ``None``.  Filling an already-resident line just
        refreshes recency (and ORs the dirty flag).
        """
        tag = addr >> self._off_bits
        s = self._sets[tag & self._set_mask]
        if tag in s:
            s[tag] = s.pop(tag) or dirty
            return None
        evicted: tuple[int, bool] | None = None
        if len(s) >= self._assoc:
            victim_tag = next(iter(s))  # front of dict == LRU
            victim_dirty = s.pop(victim_tag)
            evicted = (victim_tag << self._off_bits, victim_dirty)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
        s[tag] = dirty
        self.stats.fills += 1
        return evicted

    def set_dirty(self, addr: int) -> bool:
        """Mark a resident line dirty; returns ``False`` if absent.

        Does NOT refresh recency: this is the writeback-update path (a
        dirty L1 victim merging into L2), not a demand use of the line.
        """
        tag = addr >> self._off_bits
        s = self._sets[tag & self._set_mask]
        if tag not in s:
            return False
        s[tag] = True  # in-place: insertion order (LRU position) unchanged
        return True

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr``; returns whether it was present."""
        tag = addr >> self._off_bits
        return self._sets[tag & self._set_mask].pop(tag, None) is not None

    def resident_lines(self) -> int:
        """Number of valid lines (for occupancy tests)."""
        return sum(len(s) for s in self._sets)

    def clear(self) -> None:
        """Empty the cache and zero statistics."""
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()
