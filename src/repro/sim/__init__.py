"""Simulation driver: discrete-event engine, system assembly, run helpers.

:class:`~repro.sim.engine.EventEngine` is a plain binary-heap event queue in
the CPU clock domain; :class:`~repro.sim.system.MultiCoreSystem` assembles
cores, caches, controller and DRAM from a :class:`~repro.config.SystemConfig`
and a workload; :mod:`repro.sim.runner` provides the two run shapes the
paper's methodology needs — single-core profiling runs and multi-core
evaluation runs that stop when the last core commits its instruction budget
(other cores keep generating traffic, statistics frozen at their own budget
crossing, exactly as in Section 4.1).
"""

from repro.sim.engine import EventEngine
from repro.sim.runner import CoreResult, RunResult, run_multicore, run_single_core
from repro.sim.sweep import SweepCell, SweepResult, grid, run_sweep
from repro.sim.system import MultiCoreSystem

__all__ = [
    "CoreResult",
    "EventEngine",
    "MultiCoreSystem",
    "RunResult",
    "SweepCell",
    "SweepResult",
    "grid",
    "run_multicore",
    "run_single_core",
    "run_sweep",
]
