"""Fast-backend event engine: heap + per-channel decision/completion lanes.

The object engine (:class:`repro.sim.engine.EventEngine`) funnels *every*
event through one binary heap.  Profiling shows that in a steady-state run
roughly two thirds of that traffic is just two event shapes owned by the
memory controller:

* **decision points** — at most one pending per channel at any time (the
  controller's ``_sched_pending`` dedupe guarantees it), so a heap is
  overkill: a single ``(cycle, seq)`` slot per channel suffices;
* **read/prefetch completions** — per channel these complete in strictly
  increasing ``data_end`` order (the data bus serialises bursts and the
  controller adds a constant overhead), so a plain FIFO deque per channel
  is already sorted.

:class:`FastEngine` therefore keeps three event sources — the heap (core
wake timers, online-ME window ticks, telemetry sampler ticks), the
decision slots, and the completion deques — and its run loop pops the
global ``(cycle, seq)`` minimum across them.  Sequence numbers are drawn
from the *same* counter regardless of lane, and lane dispatches are
counted in ``events_processed``, so the observable event order **and** the
engine counters are bit-identical to the object engine's; the golden deep
fingerprints (which include ``events_processed``/``clamped_events``) hold
for both backends against one golden file.

Decision points are scheduled at ``max(busy_until, now) >= now`` and
completions at ``data_end + overhead > now``, so neither lane can ever
need clamping — clamp accounting stays exclusively on the heap path.
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heappop
from typing import Callable

from repro.sim.engine import EventEngine

__all__ = ["FastEngine"]

#: sentinel cycle for an empty decision slot — beyond any real cycle
_NEVER = 1 << 62


class FastEngine(EventEngine):
    """Drop-in engine with O(1) lanes for controller-owned event shapes.

    Generic :meth:`~repro.sim.engine.EventEngine.schedule` still works and
    uses the heap; the controller routes its two hot shapes through
    :meth:`kick` and :meth:`complete` after calling
    :meth:`attach_channels`.
    """

    __slots__ = (
        "_nch",
        "_dec_cycle",
        "_dec_seq",
        "_comps",
        "_point_fn",
        "_deliver_fn",
    )

    def __init__(self, strict: bool = False) -> None:
        super().__init__(strict)
        self._nch = 0
        self._dec_cycle: list[int] = []
        self._dec_seq: list[int] = []
        self._comps: list[deque] = []
        self._point_fn: Callable | None = None
        self._deliver_fn: Callable | None = None

    def attach_channels(
        self,
        num_channels: int,
        point_fn: Callable[[int, int], None],
        deliver_fn: Callable[[int, object], None],
    ) -> None:
        """Register the controller's lane handlers.

        ``point_fn(now, channel)`` dispatches a decision slot;
        ``deliver_fn(now, req)`` dispatches a completion.
        """
        self._nch = num_channels
        self._dec_cycle = [_NEVER] * num_channels
        self._dec_seq = [_NEVER] * num_channels
        self._comps = [deque() for _ in range(num_channels)]
        self._point_fn = point_fn
        self._deliver_fn = deliver_fn

    # -- lane scheduling -----------------------------------------------------

    def kick(self, channel: int, cycle: int) -> None:
        """Arm the (single) decision slot for ``channel`` at ``cycle``.

        The caller guarantees the slot is empty (controller dedupe) and
        ``cycle >= now`` (it is ``max(busy_until, now)``), so no clamping
        logic is needed here.
        """
        self._dec_cycle[channel] = cycle
        self._dec_seq[channel] = self._seq
        self._seq += 1

    def complete(self, channel: int, cycle: int, req) -> None:
        """Append a completion to ``channel``'s FIFO lane.

        Valid because per-channel completion cycles are strictly
        increasing (bus serialisation + constant return overhead).
        """
        self._comps[channel].append((cycle, self._seq, req))
        self._seq += 1

    # -- introspection -------------------------------------------------------

    @property
    def pending(self) -> int:
        n = len(self._heap)
        never = _NEVER
        for c in self._dec_cycle:
            if c != never:
                n += 1
        for q in self._comps:
            n += len(q)
        return n

    def peek_cycle(self) -> int | None:
        best = self._heap[0][0] if self._heap else _NEVER
        for c in self._dec_cycle:
            if c < best:
                best = c
        for q in self._comps:
            if q and q[0][0] < best:
                best = q[0][0]
        return None if best == _NEVER else best

    def step(self) -> bool:
        """Process the single next event across all lanes."""
        heap = self._heap
        if heap:
            h0 = heap[0]
            bc, bs, src, ch = h0[0], h0[1], 0, 0
        else:
            bc, bs, src, ch = _NEVER, _NEVER, -1, 0
        for i in range(self._nch):
            c = self._dec_cycle[i]
            if c < bc or (c == bc and self._dec_seq[i] < bs):
                bc, bs, src, ch = c, self._dec_seq[i], 1, i
            q = self._comps[i]
            if q:
                e = q[0]
                if e[0] < bc or (e[0] == bc and e[1] < bs):
                    bc, bs, src, ch = e[0], e[1], 2, i
        if src < 0:
            return False
        self.now = bc
        self.events_processed += 1
        if src == 0:
            _, _, fn, args = heappop(heap)
            fn(bc, *args)
        elif src == 1:
            self._dec_cycle[ch] = _NEVER
            self._dec_seq[ch] = _NEVER
            self._point_fn(bc, ch)
        else:
            self._deliver_fn(bc, self._comps[ch].popleft()[2])
        return True

    # -- execution -----------------------------------------------------------

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_cycles: int | None = None,
        max_events: int | None = None,
    ) -> None:
        """Drain all three lanes in global ``(cycle, seq)`` order.

        Same contract as the object engine's :meth:`run`; the merged pop
        costs a handful of comparisons per event (channel counts are tiny)
        and removes one heap push+pop per decision point and completion.
        """
        heap = self._heap
        dec_c = self._dec_cycle
        dec_s = self._dec_seq
        comps = self._comps
        nch = self._nch
        point = self._point_fn
        deliver = self._deliver_fn
        pop = heappop
        never = _NEVER
        bounded = max_cycles is not None or max_events is not None
        start_events = self.events_processed
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                if heap:
                    h0 = heap[0]
                    bc = h0[0]
                    bs = h0[1]
                    src = 0
                else:
                    bc = never
                    bs = never
                    src = -1
                ch = 0
                i = 0
                while i < nch:
                    c = dec_c[i]
                    if c < bc or (c == bc and dec_s[i] < bs):
                        bc = c
                        bs = dec_s[i]
                        src = 1
                        ch = i
                    q = comps[i]
                    if q:
                        e = q[0]
                        c = e[0]
                        if c < bc or (c == bc and e[1] < bs):
                            bc = c
                            bs = e[1]
                            src = 2
                            ch = i
                    i += 1
                if src < 0:
                    return
                if bounded and max_cycles is not None and bc > max_cycles:
                    return
                self.now = bc
                self.events_processed += 1
                if src == 2:
                    deliver(bc, comps[ch].popleft()[2])
                elif src == 1:
                    dec_c[ch] = never
                    dec_s[ch] = never
                    point(bc, ch)
                else:
                    _, _, fn, args = pop(heap)
                    fn(bc, *args)
                if self.stop_requested:
                    return
                if until is not None and until():
                    return
                if (
                    bounded
                    and max_events is not None
                    and self.events_processed - start_events > max_events
                ):
                    raise RuntimeError(
                        f"event budget exceeded ({max_events}); livelock suspected"
                    )
        finally:
            if gc_was_enabled:
                gc.enable()

    def reset(self) -> None:
        super().reset()
        nch = self._nch
        self._dec_cycle = [_NEVER] * nch
        self._dec_seq = [_NEVER] * nch
        for q in self._comps:
            q.clear()
