"""Run helpers: single-core profiling runs and multi-core evaluation runs.

These are the two run shapes the paper's methodology uses:

* :func:`run_single_core` executes one application alone on a one-core
  machine (the denominator of SMT speedup and the source of the
  memory-efficiency profile, Eq. 1);
* :func:`run_multicore` executes a Table 3 mix under a chosen policy and
  reports per-core results plus system-level statistics.

Both return plain dataclasses so experiment harnesses and benchmarks can
format paper-style rows without touching simulator internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.core.policy import SchedulingPolicy
from repro.core.registry import make_policy
from repro.sim.system import MultiCoreSystem
from repro.telemetry.hub import Telemetry
from repro.util.units import gbps
from repro.workloads.mixes import Mix
from repro.workloads.spec2000 import AppProfile
from repro.workloads.synthetic import make_trace

__all__ = ["CoreResult", "RunResult", "run_single_core", "run_multicore"]

#: cap reported memory efficiency when an application moves (almost) no
#: data — the paper's eon-like case (its table caps implicitly at 16276)
ME_CAP = 1e5


@dataclass(frozen=True)
class CoreResult:
    """Outcome for one application instance on one core."""

    app: str
    code: str
    core_id: int
    ipc: float
    finish_cycle: int
    committed: int
    reads: int
    avg_read_latency: float
    bytes_total: int
    bw_gbps: float

    @property
    def memory_efficiency(self) -> float:
        """Eq. 1: IPC / bandwidth (GB/s), capped for zero-traffic runs."""
        if self.bw_gbps <= 0:
            return ME_CAP
        return min(self.ipc / self.bw_gbps, ME_CAP)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one multi-core evaluation run."""

    mix_name: str
    policy_name: str
    per_core: tuple[CoreResult, ...]
    end_cycle: int
    row_hit_rate: float
    drain_entries: int
    extra: dict = field(default_factory=dict)

    @property
    def num_cores(self) -> int:
        return len(self.per_core)

    def ipcs(self) -> tuple[float, ...]:
        return tuple(c.ipc for c in self.per_core)

    def avg_read_latency(self) -> float:
        """Read-count-weighted average latency across cores."""
        reads = sum(c.reads for c in self.per_core)
        if reads == 0:
            return 0.0
        total = sum(c.avg_read_latency * c.reads for c in self.per_core)
        return total / reads


def _core_result(system: MultiCoreSystem, core_id: int, app: AppProfile) -> CoreResult:
    win = system.window(core_id)  # counter deltas over the measured window
    core = system.cores[core_id]
    return CoreResult(
        app=app.name,
        code=app.code,
        core_id=core_id,
        ipc=core.ipc(),
        finish_cycle=core.finish_cycle,
        committed=system.target_insts,
        reads=win.read_count,
        avg_read_latency=win.avg_read_latency,
        bytes_total=win.bytes_total,
        bw_gbps=gbps(win.bytes_total, win.cycle),
    )


#: default warmup: enough instructions to commit the trace generators'
#: initialisation prologue (hot + L2-resident sets) plus pipeline fill
DEFAULT_WARMUP = 10_000


def run_single_core(
    app: AppProfile,
    inst_budget: int,
    seed: int = 0,
    phase: str = "profile",
    config: SystemConfig | None = None,
    policy: SchedulingPolicy | str = "HF-RF",
    warmup_insts: int = DEFAULT_WARMUP,
    max_events: int | None = None,
    telemetry: Telemetry | None = None,
    backend: str | None = None,
) -> CoreResult:
    """Run ``app`` alone on a single-core machine.

    ``phase`` selects the instruction slice: the paper profiles ME on one
    SimPoint and evaluates on different ones; here different phases derive
    different RNG streams.

    ``backend`` selects the simulation engine (see
    :mod:`repro.sim.backend`); stats are bit-identical either way.
    """
    cfg = (config or SystemConfig()).with_cores(1)
    if isinstance(policy, str):
        policy = make_policy(policy)
    trace = make_trace(app, seed, phase, core_id=0)
    system = MultiCoreSystem(
        cfg,
        policy,
        [trace],
        inst_budget,
        warmup_insts=warmup_insts,
        seed=seed,
        telemetry=telemetry,
        backend=backend,
    )
    if telemetry is not None:
        telemetry.meta.setdefault("run", {}).update(
            app=app.name, policy=policy.name, seed=seed, budget=inst_budget,
            config_hash=cfg.digest(),
        )
    system.run(max_events=max_events)
    return _core_result(system, 0, app)


def run_multicore(
    mix: Mix,
    policy: SchedulingPolicy | str,
    inst_budget: int,
    seed: int = 0,
    phase: str = "eval",
    config: SystemConfig | None = None,
    me_values: tuple[float, ...] | None = None,
    warmup_insts: int = DEFAULT_WARMUP,
    lookahead: int = 256,
    max_events: int | None = None,
    telemetry: Telemetry | None = None,
    backend: str | None = None,
) -> RunResult:
    """Run a Table 3 mix under ``policy``.

    ``policy`` may be a name (``'ME'``/``'ME-LREQ'`` then require
    ``me_values``, the per-core memory-efficiency profile) or a
    ready-built :class:`SchedulingPolicy`.

    ``telemetry`` attaches a telemetry hub to the run; the same hub
    object comes back under ``result.extra['telemetry']``.
    """
    cfg = (config or SystemConfig()).with_cores(mix.num_cores)
    if isinstance(policy, str):
        name = policy.upper()
        if name in ("ME", "ME-LREQ"):
            if me_values is None:
                raise ValueError(f"policy {name} requires me_values")
            policy = make_policy(name, me_values=me_values)
        else:
            policy = make_policy(name)
    apps = mix.apps()
    traces = [
        make_trace(app, seed, phase, core_id=i) for i, app in enumerate(apps)
    ]
    system = MultiCoreSystem(
        cfg,
        policy,
        traces,
        inst_budget,
        warmup_insts=warmup_insts,
        seed=seed,
        lookahead=lookahead,
        telemetry=telemetry,
        backend=backend,
    )
    if telemetry is not None:
        telemetry.meta.setdefault("run", {}).update(
            mix=mix.name, policy=policy.name, seed=seed, budget=inst_budget,
            config_hash=cfg.digest(),
        )
    system.run(max_events=max_events)
    per_core = tuple(
        _core_result(system, i, app) for i, app in enumerate(apps)
    )
    extra = {} if telemetry is None else {"telemetry": telemetry}
    return RunResult(
        mix_name=mix.name,
        policy_name=policy.name,
        per_core=per_core,
        end_cycle=system.end_cycle,
        row_hit_rate=system.dram.row_hit_rate(),
        drain_entries=system.controller.stats.drain_entries,
        extra=extra,
    )
