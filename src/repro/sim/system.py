"""Multi-core system assembly.

Builds the full simulated machine from a :class:`~repro.config.SystemConfig`:
event engine, DDR2 DRAM, policy-driven memory controller, shared cache
hierarchy and one trace-driven core per workload stream — then runs it until
every core has committed its instruction budget.

Methodology notes (paper Section 4.1):

* statistics for each core freeze the moment it commits its budget (its
  ``finish_cycle``); the core *keeps executing* so the other cores continue
  to see its memory traffic — the paper's 'reload and keep running';
* the run ends when the last core crosses its budget;
* if the active policy is :class:`~repro.core.me_lreq.OnlineMeLreqPolicy`,
  the system drives its measurement window from per-core commit and DRAM
  byte counters, modelling the performance-counter loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Sequence

from repro.cache.hierarchy import CacheHierarchy
from repro.config import SystemConfig
from repro.controller.controller import MemoryController
from repro.core.me_lreq import OnlineMeLreqPolicy
from repro.core.policy import SchedulingPolicy
from repro.cpu.core_model import TraceCore
from repro.cpu.trace import TraceSource
from repro.dram.dram_system import DramSystem
from repro.sim.backend import resolve_backend
from repro.sim.engine import EventEngine
from repro.telemetry.hub import Telemetry
from repro.telemetry.sampler import Sampler
from repro.util.rng import RngStream

__all__ = ["CoreSnapshot", "MultiCoreSystem"]


@dataclass
class CoreSnapshot:
    """Controller-side counters for one core, frozen at a commit crossing."""

    cycle: int
    read_count: int
    read_latency_sum: int
    bytes_read: int
    bytes_written: int

    def minus(self, start: "CoreSnapshot") -> "CoreSnapshot":
        """Counter deltas over a measurement window (finish - warmup)."""
        return CoreSnapshot(
            cycle=self.cycle - start.cycle,
            read_count=self.read_count - start.read_count,
            read_latency_sum=self.read_latency_sum - start.read_latency_sum,
            bytes_read=self.bytes_read - start.bytes_read,
            bytes_written=self.bytes_written - start.bytes_written,
        )

    @property
    def avg_read_latency(self) -> float:
        return self.read_latency_sum / self.read_count if self.read_count else 0.0

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written


class MultiCoreSystem:
    """One fully-assembled simulated machine."""

    def __init__(
        self,
        config: SystemConfig,
        policy: SchedulingPolicy,
        traces: Sequence[TraceSource],
        target_insts: int,
        warmup_insts: int = 0,
        seed: int = 0,
        lookahead: int = 256,
        controller_kind: str = "shared",
        policy_factory=None,
        telemetry: Telemetry | None = None,
        backend: str | None = None,
    ) -> None:
        """``controller_kind='shared'`` is the paper's single controller;
        ``'split'`` builds one controller per logic channel (an
        architectural ablation) and requires ``policy_factory`` — a
        zero-argument callable producing a fresh policy per channel.

        ``telemetry`` attaches a :class:`~repro.telemetry.hub.Telemetry`
        hub: a periodic sampler rides the event engine and the controller
        publishes drain windows on the hub's bus.  ``None`` (the default)
        schedules no extra events and costs nothing.

        ``backend`` selects the simulation engine (``'auto'``/``'fast'``/
        ``'object'``; see :mod:`repro.sim.backend`).  ``None`` consults
        the ``REPRO_BACKEND`` environment variable, defaulting to auto.
        Both backends produce bit-identical statistics."""
        config.validate()
        if len(traces) != config.num_cores:
            raise ValueError(
                f"{len(traces)} traces for {config.num_cores} cores"
            )
        self.config = config
        self.policy = policy
        self.target_insts = target_insts
        self.warmup_insts = warmup_insts
        self.rng = RngStream(seed, "system")
        self.backend = resolve_backend(backend, config, controller_kind)
        if self.backend == "fast":
            from repro.controller.fast import FastMemoryController
            from repro.dram.fast import FastDramSystem
            from repro.sim.fast import FastEngine

            self.engine = FastEngine()
            self.dram = FastDramSystem(
                config.dram_topology, config.dram_timing, config.line_bytes
            )
            self.controller = FastMemoryController(
                config.controller,
                self.dram,
                policy,
                config.num_cores,
                self.engine,
                self.rng.child("controller"),
                line_bytes=config.line_bytes,
                telemetry=telemetry,
            )
        elif controller_kind == "shared":
            self.engine = EventEngine()
            self.dram = DramSystem(
                config.dram_topology, config.dram_timing, config.line_bytes
            )
            self.controller = MemoryController(
                config.controller,
                self.dram,
                policy,
                config.num_cores,
                self.engine,
                self.rng.child("controller"),
                line_bytes=config.line_bytes,
                telemetry=telemetry,
            )
        elif controller_kind == "split":
            from repro.controller.split import SplitControllerGroup

            self.engine = EventEngine()
            self.dram = DramSystem(
                config.dram_topology, config.dram_timing, config.line_bytes
            )
            if policy_factory is None:
                raise ValueError("split controllers need a policy_factory")
            policies = [
                policy_factory() for _ in range(config.dram_topology.logic_channels)
            ]
            self.controller = SplitControllerGroup(
                config.controller,
                self.dram,
                policies,
                config.num_cores,
                self.engine,
                self.rng.child("controller"),
                line_bytes=config.line_bytes,
                telemetry=telemetry,
            )
        else:
            raise ValueError(f"unknown controller_kind {controller_kind!r}")
        self.hierarchy = CacheHierarchy(config, self.controller, config.num_cores)
        self.cores = [
            TraceCore(
                core_id=i,
                config=config.core,
                trace=traces[i],
                hierarchy=self.hierarchy,
                engine=self.engine,
                target_insts=target_insts,
                warmup_insts=warmup_insts,
                lookahead=lookahead,
            )
            for i in range(config.num_cores)
        ]
        self.start_snapshots: list[CoreSnapshot | None] = [None] * config.num_cores
        self.snapshots: list[CoreSnapshot | None] = [None] * config.num_cores
        #: cores still short of their budget — the engine polls
        #: ``all_finished`` after every event, so it must be O(1)
        self._unfinished = config.num_cores
        for core in self.cores:
            core.on_warmup = self._make_snapshot_hook(core.core_id, self.start_snapshots)
            core.on_finish = self._make_snapshot_hook(core.core_id, self.snapshots)
        if warmup_insts == 0:
            # Warmup crossing is immediate; snapshot the pristine counters.
            for i in range(config.num_cores):
                self.start_snapshots[i] = CoreSnapshot(0, 0, 0, 0, 0)
        # Online-ME support: a recurring measurement window.
        self._online = policy if isinstance(policy, OnlineMeLreqPolicy) else None
        self._win_committed = [0] * config.num_cores
        self._win_bytes = [0] * config.num_cores
        self._win_start = 0
        # Telemetry: a read-only sampler riding the event engine, plus the
        # opt-in high-volume streams (per-decision / per-command events on
        # the shared bus).
        self.telemetry = telemetry
        self.sampler = Sampler(telemetry, self) if telemetry is not None else None
        self.decision_log = None
        self.command_log = None
        if telemetry is not None and telemetry.spans is not None:
            # Request-lifecycle tracing: hand the collector to every
            # producer that stamps a stage transition.  The controller(s)
            # picked it up from the hub already.
            spans = telemetry.spans
            spans.timing = config.dram_timing
            spans.overhead = config.controller.overhead
            self.hierarchy.spans = spans
            for core in self.cores:
                core.spans = spans
            for i, mshr in enumerate(self.hierarchy.mshrs):
                mshr.on_merge = partial(spans.note_merge, i)
        if telemetry is not None:
            if telemetry.capture_decisions:
                from repro.controller.decision_log import DecisionLog

                subs = getattr(self.controller, "controllers", None)
                if subs is not None:
                    self.decision_log = [
                        DecisionLog.attach(c, telemetry, track=f"ch{ch}")
                        for ch, c in enumerate(subs)
                    ]
                else:
                    self.decision_log = DecisionLog.attach(self.controller, telemetry)
            if telemetry.capture_commands:
                from repro.dram.command import CommandLog

                self.command_log = CommandLog(config.dram_timing).attach(
                    self.dram, telemetry
                )

    # -- finish bookkeeping -----------------------------------------------------

    def _make_snapshot_hook(self, core_id: int, store: list):
        def hook(core: TraceCore) -> None:
            st = self.controller.stats
            cycle = (
                core.finish_cycle
                if store is self.snapshots
                else core.warmup_cycle
            )
            store[core_id] = CoreSnapshot(
                cycle=cycle,
                read_count=st.read_count[core_id],
                read_latency_sum=st.read_latency_sum[core_id],
                bytes_read=st.bytes_read[core_id],
                bytes_written=st.bytes_written[core_id],
            )
            if store is self.snapshots:
                self._unfinished -= 1
                if self._unfinished == 0:
                    # Flag the engine instead of having run() evaluate an
                    # ``until`` predicate after every event.
                    self.engine.stop_requested = True

        return hook

    def window(self, core_id: int) -> CoreSnapshot:
        """Measurement-window deltas for one core (finish - warmup)."""
        end = self.snapshots[core_id]
        start = self.start_snapshots[core_id]
        if end is None or start is None:
            raise RuntimeError(f"core {core_id} has not finished")
        return end.minus(start)

    @property
    def all_finished(self) -> bool:
        return self._unfinished == 0

    # -- online-ME window -----------------------------------------------------------

    def _window_tick(self, now: int) -> None:
        policy = self._online
        assert policy is not None
        committed = [c.committed for c in self.cores]
        st = self.controller.stats
        bytes_now = [
            st.bytes_read[i] + st.bytes_written[i]
            for i in range(self.config.num_cores)
        ]
        d_committed = [
            committed[i] - self._win_committed[i]
            for i in range(self.config.num_cores)
        ]
        d_bytes = [
            bytes_now[i] - self._win_bytes[i] for i in range(self.config.num_cores)
        ]
        policy.observe_window(d_committed, d_bytes, now - self._win_start)
        self._win_committed = committed
        self._win_bytes = bytes_now
        self._win_start = now
        if not self.all_finished:
            self.engine.schedule(now + policy.window, self._window_tick)

    # -- execution ----------------------------------------------------------------

    def run(self, max_cycles: int | None = None, max_events: int | None = None) -> None:
        """Run until every core commits its budget (or a bound trips)."""
        for core in self.cores:
            core.start()
        if self._online is not None:
            self.engine.schedule(self._online.window, self._window_tick)
        if self.sampler is not None:
            self.sampler.start()
        self.engine.run(max_cycles=max_cycles, max_events=max_events)
        for core in self.cores:
            core.stop()
        if self.sampler is not None:
            # Flush the trailing partial epoch to the true end of run:
            # commit crossings are interpolated analytically and can land
            # past the last engine event, so engine.now alone would leave
            # the final cycles unsampled.
            end = self.engine.now
            if self.all_finished:
                end = max(end, self.end_cycle)
            self.sampler.finalize(end)
        if not self.all_finished:
            unfinished = [i for i, s in enumerate(self.snapshots) if s is None]
            raise RuntimeError(
                f"cores {unfinished} did not reach {self.target_insts} "
                f"instructions within the simulation bounds"
            )

    @property
    def end_cycle(self) -> int:
        """Cycle the last core crossed its budget."""
        return max(s.cycle for s in self.snapshots)
