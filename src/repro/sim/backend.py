"""Simulation-backend selection.

Two engines produce bit-identical statistics (enforced by the golden
fingerprint suite in ``tests/test_golden_stats.py``):

``object``
    The original heap-driven engine over the Bank/Channel object graph.
    Supports every configuration, including refresh scheduling and split
    per-channel controller groups.
``fast``
    Struct-of-arrays bank state + per-channel event lanes with fused
    scheduling points (:mod:`repro.sim.fast`, :mod:`repro.dram.fast`,
    :mod:`repro.controller.fast`).  Unsupported configurations: refresh
    (mutates Bank objects directly) and split controllers.

Selection order: an explicit ``backend=`` argument wins, else the
``REPRO_BACKEND`` environment variable, else ``"auto"``.  ``auto`` picks
the fast engine whenever the configuration supports it and silently
falls back to the object engine otherwise; an *explicit* ``"fast"`` on
an unsupported configuration raises instead of silently degrading.

The CLI's ``--backend`` flag sets ``REPRO_BACKEND`` so worker processes
spawned by the parallel and distributed runners inherit the choice.
Because results are bit-identical, the backend is deliberately **not**
part of experiment cell keys — cached results are valid under either.
"""

from __future__ import annotations

import os

__all__ = ["BACKENDS", "fast_supported", "resolve_backend"]

BACKENDS = ("auto", "fast", "object")

#: environment variable consulted when no explicit backend is given
ENV_VAR = "REPRO_BACKEND"


def fast_supported(config, controller_kind: str = "shared") -> tuple[bool, str]:
    """Whether the fast backend can run ``config``; ``(ok, reason)``."""
    if controller_kind != "shared":
        return False, f"controller_kind={controller_kind!r} (fast needs 'shared')"
    if config.controller.refresh_enabled:
        return False, "refresh_enabled (refresh mutates Bank objects)"
    return True, ""


def resolve_backend(
    requested: str | None, config, controller_kind: str = "shared"
) -> str:
    """Resolve a backend name to ``"fast"`` or ``"object"``.

    ``requested=None`` consults ``REPRO_BACKEND`` (default ``auto``).
    """
    name = requested if requested is not None else os.environ.get(ENV_VAR, "auto")
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {', '.join(BACKENDS)}"
        )
    if name == "object":
        return "object"
    ok, reason = fast_supported(config, controller_kind)
    if ok:
        return "fast"
    if name == "fast":
        raise ValueError(f"fast backend unsupported for this run: {reason}")
    return "object"
