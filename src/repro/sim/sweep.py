"""Parallel experiment sweeps over a process pool.

A Figure 2-style sweep is embarrassingly parallel — every
(workload, policy, seed) cell is an independent simulation — so this
module distributes cells over a ``multiprocessing`` pool (per the
HPC-Python guidance: processes, not threads, for CPU-bound pure-Python
work).  Cells are described by picklable :class:`SweepCell` records;
profiling runs (single-core ME / IPC baselines) are computed inside each
worker and memoised per process via a worker-local cache, so a sweep
touches each application at most once per worker.

Typical use::

    cells = [SweepCell(w, p, s) for w in ("4MEM-1", "4MEM-2")
             for p in ("HF-RF", "ME-LREQ") for s in (1, 2)]
    results = run_sweep(cells, inst_budget=30_000, workers=4)
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.metrics.speedup import smt_speedup, unfairness
from repro.sim.runner import DEFAULT_WARMUP, run_multicore
from repro.workloads.mixes import workload_by_name

__all__ = ["SweepCell", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepCell:
    """One simulation to run: a (workload, policy, seed) triple."""

    workload: str
    policy: str
    seed: int


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one cell."""

    cell: SweepCell
    smt_speedup: float
    unfairness: float
    avg_read_latency: float
    per_core_ipc: tuple[float, ...]


# Worker-local state: one profiler per (budget, seed) per process.  Plain
# module globals are safe here because each pool worker is its own process.
_WORKER_CFG: dict = {}
_WORKER_PROFILERS: dict = {}


def _init_worker(inst_budget: int, profile_budget: int, warmup: int) -> None:
    _WORKER_CFG["inst_budget"] = inst_budget
    _WORKER_CFG["profile_budget"] = profile_budget
    _WORKER_CFG["warmup"] = warmup


def _profiler(seed: int):
    # Imported here: repro.metrics imports repro.sim.runner, so a
    # module-level import from repro.sim would be circular.
    from repro.metrics.memory_efficiency import MeProfiler

    prof = _WORKER_PROFILERS.get(seed)
    if prof is None:
        prof = MeProfiler(_WORKER_CFG["profile_budget"], seed=seed)
        _WORKER_PROFILERS[seed] = prof
    return prof


def _run_cell(cell: SweepCell) -> SweepResult:
    mix = workload_by_name(cell.workload)
    prof = _profiler(cell.seed)
    me = (
        prof.me_values(mix)
        if cell.policy.upper() in ("ME", "ME-LREQ")
        else None
    )
    result = run_multicore(
        mix,
        cell.policy,
        inst_budget=_WORKER_CFG["inst_budget"],
        seed=cell.seed,
        me_values=me,
        warmup_insts=_WORKER_CFG["warmup"],
    )
    single = prof.single_ipcs(mix)
    return SweepResult(
        cell=cell,
        smt_speedup=smt_speedup(result.ipcs(), single),
        unfairness=unfairness(result.ipcs(), single),
        avg_read_latency=result.avg_read_latency(),
        per_core_ipc=result.ipcs(),
    )


def run_sweep(
    cells: Iterable[SweepCell],
    inst_budget: int = 30_000,
    profile_budget: int | None = None,
    warmup_insts: int = DEFAULT_WARMUP,
    workers: int | None = None,
) -> list[SweepResult]:
    """Run every cell, fanning out over a process pool.

    ``workers=None`` uses ``os.cpu_count()``; ``workers=1`` (or a single
    cell) runs inline — useful under debuggers and on platforms where
    fork is unavailable. Results are returned in the input cell order.
    """
    cell_list = list(cells)
    if not cell_list:
        return []
    if profile_budget is None:
        profile_budget = max(inst_budget // 2, 5_000)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(cell_list) == 1:
        _init_worker(inst_budget, profile_budget, warmup_insts)
        try:
            return [_run_cell(c) for c in cell_list]
        finally:
            _WORKER_PROFILERS.clear()
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    with ctx.Pool(
        processes=min(workers, len(cell_list)),
        initializer=_init_worker,
        initargs=(inst_budget, profile_budget, warmup_insts),
    ) as pool:
        return pool.map(_run_cell, cell_list)


def grid(
    workloads: Sequence[str],
    policies: Sequence[str],
    seeds: Sequence[int],
) -> list[SweepCell]:
    """Cartesian-product cell list (workload-major order)."""
    return [
        SweepCell(w, p, s)
        for w in workloads
        for p in policies
        for s in seeds
    ]
