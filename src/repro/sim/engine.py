"""Discrete-event engine.

A minimal binary-heap scheduler in the CPU clock domain.  Components
schedule ``fn(now, *args)`` callbacks at absolute cycles; the engine pops
them in (cycle, insertion-order) order, so same-cycle events run in the
order they were scheduled — deterministic, which the reproducibility tests
rely on.

Events may be scheduled in the past only up to the current cycle (they are
clamped to ``now``); attempting to go genuinely backwards would mean a
causality bug, and clamping keeps rounding slack from small analytic
models from crashing a run while the invariant `engine.now` never
decreases still holds.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventEngine"]


class EventEngine:
    """Binary-heap discrete-event scheduler."""

    __slots__ = ("now", "_heap", "_seq", "events_processed")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Callable, tuple]] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, cycle: int, fn: Callable, *args) -> None:
        """Run ``fn(now, *args)`` at ``cycle`` (clamped to the present)."""
        when = cycle if cycle > self.now else self.now
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1

    @property
    def pending(self) -> int:
        """Number of queued events."""
        return len(self._heap)

    def peek_cycle(self) -> int | None:
        """Cycle of the next event, or ``None`` when idle."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Process one event; returns ``False`` when the queue is empty."""
        if not self._heap:
            return False
        when, _, fn, args = heapq.heappop(self._heap)
        self.now = when
        self.events_processed += 1
        fn(when, *args)
        return True

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_cycles: int | None = None,
        max_events: int | None = None,
    ) -> None:
        """Drain events until the queue empties or a bound is hit.

        Parameters
        ----------
        until:
            Optional predicate checked after every event; ``True`` stops.
        max_cycles / max_events:
            Safety bounds; exceeding ``max_cycles`` stops cleanly (runs are
            expected to finish via ``until``), exceeding ``max_events``
            raises — that means a livelock bug.
        """
        start_events = self.events_processed
        while self._heap:
            if max_cycles is not None and self._heap[0][0] > max_cycles:
                return
            self.step()
            if until is not None and until():
                return
            if (
                max_events is not None
                and self.events_processed - start_events > max_events
            ):
                raise RuntimeError(
                    f"event budget exceeded ({max_events}); livelock suspected"
                )

    def reset(self) -> None:
        """Drop all pending events and rewind the clock."""
        self._heap.clear()
        self.now = 0
        self._seq = 0
        self.events_processed = 0
