"""Discrete-event engine.

A minimal binary-heap scheduler in the CPU clock domain.  Components
schedule ``fn(now, *args)`` callbacks at absolute cycles; the engine pops
them in (cycle, insertion-order) order, so same-cycle events run in the
order they were scheduled — deterministic, which the reproducibility tests
rely on.

Events may be scheduled in the past only up to the current cycle (they are
clamped to ``now``); attempting to go genuinely backwards would mean a
causality bug, and clamping keeps rounding slack from small analytic
models from crashing a run while the invariant `engine.now` never
decreases still holds.  Every clamp is counted in ``clamped_events`` (the
telemetry sampler exposes it as a time series), and ``strict=True`` turns
clamping into :class:`PastEventError` for tests hunting causality bugs.
"""

from __future__ import annotations

import gc
import heapq
from heapq import heappop, heappush
from typing import Callable

__all__ = ["EventEngine", "PastEventError"]


class PastEventError(RuntimeError):
    """A strict-mode engine was asked to schedule before ``now``."""


class EventEngine:
    """Binary-heap discrete-event scheduler."""

    __slots__ = ("now", "strict", "_heap", "_seq", "events_processed", "clamped_events", "stop_requested")

    def __init__(self, strict: bool = False) -> None:
        self.now: int = 0
        self.strict = strict
        self._heap: list[tuple[int, int, Callable, tuple]] = []
        self._seq = 0
        self.events_processed = 0
        #: cooperative stop: a finish hook sets this instead of making the
        #: run loop call a predicate after every event (see MultiCoreSystem)
        self.stop_requested = False
        #: past-cycle schedules clamped to the present (0 in a clean run)
        self.clamped_events = 0

    def schedule(self, cycle: int, fn: Callable, *args) -> None:
        """Run ``fn(now, *args)`` at ``cycle`` (clamped to the present)."""
        if cycle <= self.now:
            if cycle < self.now:
                # Count the clamp before a strict-mode raise: the counter
                # is the record of causality violations, and an exception
                # a caller swallows must not make the run look clean.
                self.clamped_events += 1
                if self.strict:
                    raise PastEventError(
                        f"schedule at cycle {cycle} while now={self.now}"
                    )
            cycle = self.now
        heappush(self._heap, (cycle, self._seq, fn, args))
        self._seq += 1

    @property
    def pending(self) -> int:
        """Number of queued events."""
        return len(self._heap)

    def peek_cycle(self) -> int | None:
        """Cycle of the next event, or ``None`` when idle."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Process one event; returns ``False`` when the queue is empty."""
        if not self._heap:
            return False
        when, _, fn, args = heapq.heappop(self._heap)
        self.now = when
        self.events_processed += 1
        fn(when, *args)
        return True

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_cycles: int | None = None,
        max_events: int | None = None,
    ) -> None:
        """Drain events until the queue empties or a bound is hit.

        Parameters
        ----------
        until:
            Optional predicate checked after every event; ``True`` stops.
        max_cycles / max_events:
            Safety bounds; exceeding ``max_cycles`` stops cleanly (runs are
            expected to finish via ``until``), exceeding ``max_events``
            raises — that means a livelock bug.

        The unbounded path (no ``max_cycles``/``max_events``) is the hot
        loop of every simulation: it pops batches of same-cycle events
        directly off the heap with everything bound to locals, writing
        ``now`` once per cycle group instead of once per event.  Bounded
        runs take the straightforward per-event loop — they exist for
        tests and safety nets, not throughput.
        """
        heap = self._heap
        # The simulation allocates millions of short-lived containers (ROB
        # entries, waiter lists, request objects); none of them form cycles
        # that must be reclaimed mid-run, so the generational collector's
        # periodic scans are pure overhead — a measurable fraction of a
        # run.  Suspend it for the drain and restore the caller's setting;
        # anything deferred is collected at the next threshold after.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if max_cycles is None and max_events is None:
                # Hot path: one heappop per event, but all loop state is
                # local and `now` advances once per batch of same-cycle
                # events.
                pop = heappop
                processed = self.events_processed
                try:
                    while heap:
                        when = heap[0][0]
                        self.now = when
                        # Drain the same-cycle batch. New events scheduled
                        # for this cycle land behind the batch in
                        # (cycle, seq) order, so the outer loop picks them
                        # up next.
                        while heap and heap[0][0] == when:
                            _, _, fn, args = pop(heap)
                            processed += 1
                            self.events_processed = processed
                            fn(when, *args)
                            if self.stop_requested:
                                return
                            if until is not None and until():
                                return
                finally:
                    self.events_processed = processed
                return
            start_events = self.events_processed
            while heap:
                if max_cycles is not None and heap[0][0] > max_cycles:
                    return
                self.step()
                if self.stop_requested:
                    return
                if until is not None and until():
                    return
                if (
                    max_events is not None
                    and self.events_processed - start_events > max_events
                ):
                    raise RuntimeError(
                        f"event budget exceeded ({max_events}); livelock suspected"
                    )
        finally:
            if gc_was_enabled:
                gc.enable()

    def reset(self) -> None:
        """Drop all pending events and rewind the clock."""
        self._heap.clear()
        self.now = 0
        self._seq = 0
        self.events_processed = 0
        self.clamped_events = 0
        self.stop_requested = False
