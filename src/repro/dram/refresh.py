"""DRAM refresh modelling (optional extension).

The paper's simulator (like most scheduling studies of its era) ignores
refresh; we provide it as an optional fidelity extension so its impact can
be quantified (about 1–3 % of time at DDR2 rates).  Standard DDR2
auto-refresh: every ``t_refi`` (7.8 µs) the controller must issue a
refresh that occupies all banks of a channel for ``t_rfc`` (~127.5 ns for
1 Gb parts).

Modelled at transaction granularity: a :class:`RefreshScheduler` tracks,
per channel, when the next refresh window falls; the controller asks it to
``advance`` past a cycle and receives the cycle at which the channel is
next usable, while every bank's ready time is pushed past the window and
all rows are closed (refresh implies precharge-all).
"""

from __future__ import annotations

from repro.dram.channel import Channel
from repro.util.units import ns_to_cycles

__all__ = ["RefreshScheduler"]

#: average refresh interval, DDR2 (7.8 us)
T_REFI = ns_to_cycles(7_800.0)
#: refresh cycle time for a 1 Gb DDR2 device (127.5 ns)
T_RFC = ns_to_cycles(127.5)


class RefreshScheduler:
    """Per-channel periodic all-bank refresh."""

    __slots__ = ("t_refi", "t_rfc", "_next_refresh", "refreshes_issued")

    def __init__(
        self,
        num_channels: int,
        t_refi: int = T_REFI,
        t_rfc: int = T_RFC,
    ) -> None:
        if t_refi <= t_rfc:
            raise ValueError("t_refi must exceed t_rfc")
        self.t_refi = t_refi
        self.t_rfc = t_rfc
        # Stagger channels so they never refresh simultaneously.
        step = t_refi // max(num_channels, 1)
        self._next_refresh = [t_refi + i * step for i in range(num_channels)]
        self.refreshes_issued = 0

    def next_refresh(self, channel: int) -> int:
        """Cycle the next refresh window opens on ``channel``."""
        return self._next_refresh[channel]

    def advance(self, channel_idx: int, channel: Channel, now: int) -> int:
        """Apply any refresh windows due by ``now``.

        Returns the earliest cycle the channel may start a transaction
        (``now`` itself when no refresh interferes).  Overdue refreshes are
        issued back-to-back, as a real controller would catch up.
        """
        start = now
        while self._next_refresh[channel_idx] <= start:
            window_start = max(
                self._next_refresh[channel_idx],
                max(b.ready_cycle for b in channel.banks) if channel.banks else 0,
            )
            window_end = window_start + self.t_rfc
            for bank in channel.banks:
                bank.open_row = None  # refresh precharges every bank
                if bank.ready_cycle < window_end:
                    bank.ready_cycle = window_end
            self._next_refresh[channel_idx] += self.t_refi
            self.refreshes_issued += 1
            if window_end > start:
                start = window_end
        return start
