"""DDR2 energy accounting (extension).

Memory-scheduling papers of this era report performance only, but a
production simulator needs energy counters, so we provide the standard
IDD-based accounting (after Micron's DDR2 power application note,
simplified to the quantities our transaction model exposes):

* ``e_activate``   — one ACT/PRE pair (row open + close);
* ``e_read/e_write`` — one column burst;
* ``e_refresh``    — one all-bank refresh;
* ``p_background`` — standby power, charged per cycle per channel.

Values default to representative DDR2-800 1 Gb numbers (nanojoules /
milliwatts at the CPU clock); they are parameters, not measurements — the
interesting outputs are *relative* (policy A vs policy B, hit-rich vs
hit-poor schedules), which is also how the counters are tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.dram_system import DramSystem
from repro.util.units import CPU_FREQ_HZ, seconds

__all__ = ["DramEnergyModel", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy totals in nanojoules, by component."""

    activate_nj: float
    read_nj: float
    write_nj: float
    refresh_nj: float
    background_nj: float

    @property
    def total_nj(self) -> float:
        return (
            self.activate_nj
            + self.read_nj
            + self.write_nj
            + self.refresh_nj
            + self.background_nj
        )

    def avg_power_mw(self, cycles: int) -> float:
        """Average power over ``cycles`` CPU cycles, in milliwatts."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        t = seconds(cycles)
        return self.total_nj * 1e-9 / t * 1e3

    def energy_per_bit_pj(self, total_bytes: int) -> float:
        """Total energy per transferred bit, in picojoules."""
        bits = total_bytes * 8
        if bits <= 0:
            return 0.0
        return self.total_nj * 1e3 / bits


class DramEnergyModel:
    """Accumulates energy from a :class:`DramSystem`'s counters.

    Parameters are per-event energies (nJ) and per-channel background
    power (mW).  Attach with :meth:`observe_run` after a simulation, or
    incrementally via the DRAM observer hook for windowed accounting.
    """

    def __init__(
        self,
        e_activate_nj: float = 3.0,
        e_read_nj: float = 2.0,
        e_write_nj: float = 2.2,
        e_refresh_nj: float = 25.0,
        p_background_mw_per_channel: float = 150.0,
    ) -> None:
        for name, v in (
            ("e_activate_nj", e_activate_nj),
            ("e_read_nj", e_read_nj),
            ("e_write_nj", e_write_nj),
            ("e_refresh_nj", e_refresh_nj),
            ("p_background_mw_per_channel", p_background_mw_per_channel),
        ):
            if v < 0:
                raise ValueError(f"{name} must be >= 0")
        self.e_activate_nj = e_activate_nj
        self.e_read_nj = e_read_nj
        self.e_write_nj = e_write_nj
        self.e_refresh_nj = e_refresh_nj
        self.p_background_mw = p_background_mw_per_channel

    def measure(
        self,
        dram: DramSystem,
        cycles: int,
        reads: int,
        writes: int,
        refreshes: int = 0,
    ) -> EnergyBreakdown:
        """Energy of a finished run.

        ``reads``/``writes`` are transaction counts (the DRAM system does
        not distinguish them itself); activations come from the bank
        counters, so row hits are correctly cheaper than misses.
        """
        if cycles < 0 or reads < 0 or writes < 0 or refreshes < 0:
            raise ValueError("counts must be >= 0")
        background_j_per_channel = (
            self.p_background_mw * 1e-3 * cycles / CPU_FREQ_HZ
        )
        return EnergyBreakdown(
            activate_nj=dram.total_activations * self.e_activate_nj,
            read_nj=reads * self.e_read_nj,
            write_nj=writes * self.e_write_nj,
            refresh_nj=refreshes * self.e_refresh_nj,
            background_nj=(
                background_j_per_channel * 1e9 * len(dram.channels)
            ),
        )

    def measure_system(self, system) -> EnergyBreakdown:
        """Convenience wrapper over a finished :class:`MultiCoreSystem`."""
        st = system.controller.stats
        refreshes = (
            system.controller.refresh.refreshes_issued
            if system.controller.refresh is not None
            else 0
        )
        return self.measure(
            system.dram,
            cycles=system.engine.now,
            reads=sum(st.read_count),
            writes=sum(st.write_count),
            refreshes=refreshes,
        )
