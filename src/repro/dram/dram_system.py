"""Whole DRAM system: the channel array plus the address mapper.

This is the device-side substrate the memory controller drives.  It knows
nothing about scheduling policies; it answers row-hit queries and executes
transactions chosen by the controller, returning resolved timing.
"""

from __future__ import annotations

from repro.config import DramTimingConfig, DramTopologyConfig
from repro.dram.address import AddressMapper, DramCoord
from repro.dram.channel import Channel, TransactionTiming

__all__ = ["DramSystem"]


class DramSystem:
    """All logic channels behind one memory controller.

    ``observer`` is an optional hook called after every executed
    transaction with ``(coord, timing, is_write, keep_open, had_conflict)``
    — the attachment point for command-level logging/analysis
    (:class:`repro.dram.command.CommandLog`) without per-command cost in
    normal runs.
    """

    __slots__ = ("topology", "timing", "mapper", "channels", "observer")

    def __init__(
        self,
        topology: DramTopologyConfig,
        timing: DramTimingConfig,
        line_bytes: int = 64,
    ) -> None:
        topology.validate()
        timing.validate()
        self.topology = topology
        self.timing = timing
        self.mapper = AddressMapper(topology, line_bytes)
        self.channels = [
            Channel(i, topology.banks_per_channel, timing)
            for i in range(topology.logic_channels)
        ]
        self.observer = None

    def coord(self, addr: int) -> DramCoord:
        """Decode a byte address into its DRAM coordinate."""
        return self.mapper.decode(addr)

    def is_row_hit(self, coord: DramCoord) -> bool:
        """Would a request to ``coord`` hit its bank's open row now?"""
        return self.channels[coord.channel].is_row_hit(coord.bank, coord.row)

    def execute(
        self,
        coord: DramCoord,
        now: int,
        *,
        is_write: bool,
        keep_open: bool,
    ) -> TransactionTiming:
        """Execute one line transaction at ``coord`` starting no earlier
        than ``now``; returns the resolved timing."""
        channel = self.channels[coord.channel]
        t = channel.execute(
            coord.bank, coord.row, now, is_write=is_write, keep_open=keep_open
        )
        if self.observer is not None:
            self.observer(coord, t, is_write, keep_open, t.conflict)
        return t

    def reset(self) -> None:
        """Reset every channel and bank."""
        for ch in self.channels:
            ch.reset()

    # -- statistics ----------------------------------------------------------

    @property
    def total_transactions(self) -> int:
        return sum(ch.transactions for ch in self.channels)

    @property
    def total_row_hits(self) -> int:
        return sum(ch.total_row_hits for ch in self.channels)

    @property
    def total_activations(self) -> int:
        return sum(ch.total_activations for ch in self.channels)

    def row_hit_rate(self) -> float:
        """Fraction of transactions that reused an open row."""
        total = self.total_transactions
        return self.total_row_hits / total if total else 0.0
