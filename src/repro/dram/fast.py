"""Struct-of-arrays DRAM state for the fast backend.

:class:`repro.dram.bank.Bank` keeps each bank's hot state (``open_row``,
``ready_cycle``) and counters in one Python object; a scheduling point
then chases ``banks[i].ready_cycle`` attribute chains or snapshots them
into throwaway lists.  :class:`FastChannel` flattens that per-bank state
into parallel integer lists indexed by bank::

    ready[bank]     earliest cycle a new command may start (busy-until)
    open_row[bank]  row latched in the row buffer, -1 when precharged
    hits/acts/confs lifetime per-bank counters

The fast controller reads and writes these arrays directly — no snapshot
listcomps, no ``Bank.commit`` call per transaction.  Rows are always
non-negative, so ``-1`` is a faithful stand-in for the object model's
``None`` in every comparison the scheduler makes.

The statistics surface matches :class:`repro.dram.channel.Channel`
(``transactions``/``writes``/``data_cycles`` scalars, ``total_*``
properties, ``bus_utilisation``) so the telemetry sampler and the golden
deep fingerprints read both backends identically.
"""

from __future__ import annotations

from collections import deque

from repro.config import DramTimingConfig, DramTopologyConfig
from repro.dram.channel import TransactionTiming
from repro.dram.dram_system import DramSystem

__all__ = ["FastBankView", "FastChannel", "FastDramSystem"]


class FastBankView:
    """Read-only snapshot of one bank's SoA state, Bank-shaped.

    Post-run consumers (``repro.metrics.analysis``, debugging) iterate
    ``channel.banks`` for per-bank counters; the fast channel has no Bank
    objects, so :attr:`FastChannel.banks` materialises these views on
    demand.  Mutating a view does **not** write back to the arrays —
    components that mutate banks (refresh) run on the object backend.
    """

    __slots__ = ("index", "open_row", "ready_cycle", "activations", "row_hits", "conflicts")

    def __init__(self, index, open_row, ready_cycle, activations, row_hits, conflicts):
        self.index = index
        #: ``None`` when precharged, matching :class:`repro.dram.bank.Bank`
        self.open_row = open_row
        self.ready_cycle = ready_cycle
        self.activations = activations
        self.row_hits = row_hits
        self.conflicts = conflicts

    def is_open(self, row: int) -> bool:
        return self.open_row == row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FastBankView({self.index}, open_row={self.open_row}, "
            f"ready={self.ready_cycle})"
        )


class FastChannel:
    """One logic channel with bank state held in parallel arrays."""

    __slots__ = (
        "index",
        "timing",
        "num_banks",
        "ready",
        "open_row",
        "hits",
        "acts",
        "confs",
        "bus_free_cycle",
        "busy_until",
        "transactions",
        "writes",
        "data_cycles",
        "_act_times",
        "_t_rp",
        "_t_rcd",
        "_t_cl",
        "_t_burst",
        "_t_rrd",
        "_t_faw",
        "_t_wr",
        "_act_tracking",
    )

    def __init__(self, index: int, num_banks: int, timing: DramTimingConfig) -> None:
        if num_banks < 1:
            raise ValueError("channel needs at least one bank")
        self.index = index
        self.timing = timing
        self.num_banks = num_banks
        self._t_rp = timing.t_rp
        self._t_rcd = timing.t_rcd
        self._t_cl = timing.t_cl
        self._t_burst = timing.t_burst
        self._t_rrd = timing.t_rrd
        self._t_faw = timing.t_faw
        self._t_wr = timing.t_wr
        self._act_tracking = bool(timing.t_rrd or timing.t_faw)
        #: struct-of-arrays bank state, indexed by bank number
        self.ready = [0] * num_banks
        self.open_row = [-1] * num_banks
        self.hits = [0] * num_banks
        self.acts = [0] * num_banks
        self.confs = [0] * num_banks
        self.bus_free_cycle: int = 0
        self.busy_until: int = 0
        self.transactions: int = 0
        self.writes: int = 0
        self.data_cycles: int = 0
        self._act_times: deque[int] = deque(maxlen=4)

    # -- queries -------------------------------------------------------------

    def is_row_hit(self, bank: int, row: int) -> bool:
        """Would a request to (bank, row) hit the open row right now?"""
        return self.open_row[bank] == row

    def earliest_issue(self, now: int) -> int:
        """Earliest cycle the scheduler may commit another transaction."""
        return max(now, self.busy_until)

    def reset(self) -> None:
        """Reset bus and all banks to the initial state."""
        self.bus_free_cycle = 0
        self.busy_until = 0
        self.transactions = 0
        self.writes = 0
        self.data_cycles = 0
        self._act_times.clear()
        nb = self.num_banks
        self.ready = [0] * nb
        self.open_row = [-1] * nb
        self.hits = [0] * nb
        self.acts = [0] * nb
        self.confs = [0] * nb

    # -- scheduling ----------------------------------------------------------

    def execute(
        self,
        bank_idx: int,
        row: int,
        now: int,
        *,
        is_write: bool,
        keep_open: bool,
    ) -> TransactionTiming:
        """Commit one line transaction; array-backed twin of
        :meth:`repro.dram.channel.Channel.execute` (same arithmetic, same
        counters, same returned timing).

        The fast controller inlines this body at its scheduling point;
        this method exists for the generic :meth:`DramSystem.execute`
        path (command-log ablations, microbenchmarks, tests).
        """
        ready = self.ready
        open_row = self.open_row
        ready_cycle = ready[bank_idx]
        start = now if now > ready_cycle else ready_cycle
        bank_start = start
        hit = open_row[bank_idx] == row
        conflict = False
        if hit:
            cas = start
        else:
            if open_row[bank_idx] != -1:
                start += self._t_rp
                self.confs[bank_idx] += 1
                conflict = True
            act = start
            if self._act_tracking:
                act_times = self._act_times
                if self._t_rrd and act_times:
                    t = act_times[-1] + self._t_rrd
                    if t > act:
                        act = t
                if self._t_faw and len(act_times) == 4:
                    t = act_times[0] + self._t_faw
                    if t > act:
                        act = t
                act_times.append(act)
            cas = act + self._t_rcd
        data_start = cas + self._t_cl
        if data_start < self.bus_free_cycle:
            data_start = self.bus_free_cycle
        data_end = data_start + self._t_burst
        self.bus_free_cycle = data_end
        self.busy_until = now + self._t_burst
        if hit:
            self.hits[bank_idx] += 1
        else:
            self.acts[bank_idx] += 1
        recovery = self._t_wr if is_write else 0
        if keep_open:
            open_row[bank_idx] = row
            ready[bank_idx] = data_end + recovery
        else:
            open_row[bank_idx] = -1
            ready[bank_idx] = data_end + recovery + self._t_rp
        self.transactions += 1
        if is_write:
            self.writes += 1
        self.data_cycles += data_end - data_start
        return TransactionTiming(
            cas_cycle=cas,
            data_start=data_start,
            data_end=data_end,
            row_hit=hit,
            start_cycle=bank_start,
            conflict=conflict,
        )

    # -- statistics ----------------------------------------------------------

    @property
    def banks(self) -> tuple[FastBankView, ...]:
        """Bank-shaped read-only views over the arrays (built on demand)."""
        return tuple(
            FastBankView(
                i,
                None if self.open_row[i] == -1 else self.open_row[i],
                self.ready[i],
                self.acts[i],
                self.hits[i],
                self.confs[i],
            )
            for i in range(self.num_banks)
        )

    @property
    def total_activations(self) -> int:
        return sum(self.acts)

    @property
    def total_row_hits(self) -> int:
        return sum(self.hits)

    @property
    def total_conflicts(self) -> int:
        """Row-buffer conflicts (precharge forced before activate)."""
        return sum(self.confs)

    def bus_utilisation(self, now: int) -> float:
        """Lifetime data-bus busy fraction up to ``now``."""
        return min(self.data_cycles / now, 1.0) if now > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FastChannel({self.index}, banks={self.num_banks}, "
            f"bus_free={self.bus_free_cycle})"
        )


class FastDramSystem(DramSystem):
    """DRAM system whose channels hold struct-of-arrays bank state.

    Shares the mapper, observer hook, ``execute`` dispatch and every
    statistics property with :class:`DramSystem`; only the channel layout
    differs.
    """

    __slots__ = ()

    def __init__(
        self,
        topology: DramTopologyConfig,
        timing: DramTimingConfig,
        line_bytes: int = 64,
    ) -> None:
        super().__init__(topology, timing, line_bytes)
        self.channels = [
            FastChannel(i, topology.banks_per_channel, timing)
            for i in range(topology.logic_channels)
        ]
