"""DDR2 memory-system substrate.

Models the paper's Table 1 memory organisation: two logic channels (each a
ganged pair of physical channels with a 16 B transfer width), two DIMMs per
physical channel and four banks per DIMM, with cache-line interleaving and
the close-page policy described in Section 4.1.

The model is transaction-level but timing-faithful: each bank is a small
state machine tracking its open row and ready time, each logic channel has a
data bus with occupancy, and a transaction's start/finish cycles are derived
from the DDR2 timing parameters (tRP, tRCD, CL, burst, tWR) expressed in CPU
cycles.
"""

from repro.dram.address import AddressMapper, DramCoord
from repro.dram.bank import Bank
from repro.dram.channel import Channel, TransactionTiming
from repro.dram.dram_system import DramSystem

__all__ = [
    "AddressMapper",
    "Bank",
    "Channel",
    "DramCoord",
    "DramSystem",
    "TransactionTiming",
]
